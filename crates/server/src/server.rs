//! The serving front end: plan queries through the engine, replay them
//! through the serving simulator.
//!
//! Serving splits into two phases so that load sweeps stay cheap:
//!
//! 1. **Plan** ([`GriffinServer::plan`]): run every request through the
//!    hybrid engine once, bridge its measured step trace into serving
//!    stages, and (for degradable requests) measure the CPU-only
//!    fallback schedule. This is the expensive part — it simulates the
//!    actual index work — and it is load-independent.
//! 2. **Replay** ([`GriffinServer::replay`]): feed the planned schedules
//!    plus an arrival process into [`ServerSim`]. This is pure
//!    discrete-event simulation, so sweeping arrival rates or toggling
//!    batching re-runs only this phase.
//!
//! [`GriffinServer::serve`] does both in one call for the common case.

use std::cell::RefCell;

use griffin::serving::StageReq;
use griffin::{ExecMode, Griffin, QueryRequest, RESULT_CACHE_LOOKUP};
use griffin_gpu_sim::VirtualNanos;
use griffin_index::InvertedIndex;
use griffin_telemetry::Telemetry;

use crate::admission::{Outcome, OverloadPolicy, ServedQuery};
use crate::bridge::stages_of;
use crate::flight::{verdict_from_stages, FlightConfig, FlightRecord, FlightRecorder};
use crate::health::{BreakerConfig, BreakerState, BreakerStats, GpuHealth};
use crate::sim::{ServerSim, SimConfig, SimJob, SimReport, SimStats};
use crate::slo::{SloConfig, SloMonitor};
use crate::Timeline;
use griffin_telemetry::QueryProfile;

/// Server configuration: the simulator knobs, re-exported at the
/// serving layer. See [`SimConfig`].
pub type ServerConfig = SimConfig;

/// FNV-1a over the cache-signature string: a tiny, dependency-free
/// hash whose values are stable run-to-run (std's SipHash keys are an
/// implementation detail), so single-flight keys are reproducible.
pub(crate) fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in s.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A query with its (virtual) arrival instant.
#[derive(Debug, Clone)]
pub struct ArrivingQuery {
    pub request: QueryRequest,
    pub arrival: VirtualNanos,
}

/// One planned query: the engine's answer plus the measured schedules
/// the simulator replays.
#[derive(Debug, Clone)]
pub struct PlannedQuery {
    /// The engine's top-k result (doc id, score) — serving never changes
    /// *what* a query answers, only *when*.
    pub topk: Vec<(u32, f32)>,
    /// Unloaded service time; equals the stage-duration sum.
    pub service_time: VirtualNanos,
    /// Bridged serving stages in execution order.
    pub stages: Vec<StageReq>,
    /// Measured CPU-only service time, when the request could degrade
    /// (planned with a non-CpuOnly mode).
    pub cpu_fallback: Option<VirtualNanos>,
    /// Virtual cost of answering this request from the engine's result
    /// cache, when the cache held an entry at planning time (probed
    /// *before* the plan ran, so only an earlier identical request can
    /// have seeded it). Feeds [`crate::sim::SimJob::stale_available`]
    /// for the serve-stale overload policy. `None` while the result
    /// cache is off — the default, which keeps replay byte-identical.
    pub stale_available: Option<VirtualNanos>,
    /// Single-flight identity: a hash of the request's cache signature,
    /// populated only while the engine's result cache is enabled. Jobs
    /// sharing the key coalesce in the simulator instead of stampeding.
    pub coalesce_key: Option<u64>,
    /// Carried from the request.
    pub deadline: Option<VirtualNanos>,
    /// True when the GPU health breaker was open and the query was
    /// planned on its CPU-only schedule despite requesting the GPU.
    pub breaker_degraded: bool,
    /// The engine-trace query id this plan was measured under, when
    /// planning ran with telemetry — keys the flight recorder into the
    /// trace for latency attribution. `None` without telemetry (or for
    /// hand-built plans).
    pub trace_query: Option<u64>,
}

/// Everything one serving run produces.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Per-query outcomes, in submission order.
    pub queries: Vec<ServedQuery>,
    pub stats: SimStats,
    pub timeline: Timeline,
}

impl ServeReport {
    /// Latencies of queries that ran (completed or degraded), ascending.
    pub fn sorted_latencies(&self) -> Vec<VirtualNanos> {
        let mut v: Vec<VirtualNanos> = self.queries.iter().filter_map(|q| q.latency).collect();
        v.sort_unstable();
        v
    }

    /// The p-th percentile (0.0..=1.0) of served-query latency.
    pub fn latency_percentile(&self, p: f64) -> Option<VirtualNanos> {
        let v = self.sorted_latencies();
        if v.is_empty() {
            return None;
        }
        let idx = ((v.len() as f64 - 1.0) * p.clamp(0.0, 1.0)).round() as usize;
        Some(v[idx])
    }

    /// Fraction of served deadline-carrying queries that missed their
    /// deadline. Shed queries have no verdict here; `stats` counts their
    /// misses separately.
    pub fn deadline_miss_rate(&self) -> Option<f64> {
        let verdicts: Vec<bool> = self.queries.iter().filter_map(|q| q.deadline_met).collect();
        if verdicts.is_empty() {
            return None;
        }
        Some(verdicts.iter().filter(|&&met| !met).count() as f64 / verdicts.len() as f64)
    }
}

/// The serving front end. Holds the scheduling configuration and an
/// optional telemetry session; borrows an engine per `plan`/`serve`
/// call.
pub struct GriffinServer {
    config: ServerConfig,
    telemetry: Telemetry,
    /// GPU circuit breaker fed by per-query fault outcomes during
    /// planning. Interior mutability keeps `plan`/`serve` on `&self`.
    health: RefCell<GpuHealth>,
    /// Tail flight recorder, fed by `replay`. `None` until enabled.
    flight: RefCell<Option<FlightRecorder>>,
    /// SLO burn-rate monitor, fed by `replay`. `None` until enabled.
    slo: RefCell<Option<SloMonitor>>,
}

impl GriffinServer {
    pub fn new(config: ServerConfig) -> GriffinServer {
        GriffinServer {
            config,
            telemetry: Telemetry::disabled(),
            health: RefCell::new(GpuHealth::new(BreakerConfig::default())),
            flight: RefCell::new(None),
            slo: RefCell::new(None),
        }
    }

    /// Replace the GPU health breaker's tuning (resets its state).
    pub fn set_breaker(&mut self, config: BreakerConfig) {
        self.health = RefCell::new(GpuHealth::new(config));
    }

    /// The breaker's current position.
    pub fn breaker_state(&self) -> BreakerState {
        self.health.borrow().state()
    }

    /// The breaker's activity counters so far.
    pub fn breaker_stats(&self) -> BreakerStats {
        self.health.borrow().stats()
    }

    /// Attach a telemetry session; replay records queue, shed, and batch
    /// metrics into it.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Enable the tail flight recorder (resets any previous one).
    /// `replay` feeds every served query's latency into it and retains
    /// the tail per [`FlightConfig`], with an attribution profile and
    /// dominant-cause verdict for each retained flight.
    pub fn set_flight_recorder(&mut self, config: FlightConfig) {
        self.flight = RefCell::new(Some(FlightRecorder::new(config)));
    }

    /// Snapshot of the retained tail flights, oldest first (empty when
    /// the recorder is disabled).
    pub fn flight_records(&self) -> Vec<FlightRecord> {
        self.flight
            .borrow()
            .as_ref()
            .map(|f| f.records().cloned().collect())
            .unwrap_or_default()
    }

    /// Enable the SLO burn-rate monitor (resets any previous one).
    /// `replay` classifies every query against the latency SLO in
    /// completion order and exports `griffin_slo_*` metrics.
    pub fn set_slo(&mut self, config: SloConfig) {
        self.slo = RefCell::new(Some(SloMonitor::new(config)));
    }

    /// Run `f` against the SLO monitor, if enabled — e.g. to poll
    /// [`SloMonitor::early_warning`] between replays.
    pub fn with_slo<T>(&self, f: impl FnOnce(&SloMonitor) -> T) -> Option<T> {
        self.slo.borrow().as_ref().map(f)
    }

    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Phase 1: run every request through the engine and bridge its
    /// measured trace into serving stages. When the admission policy can
    /// degrade and the request is not already CPU-only, the CPU-only
    /// fallback schedule is measured too.
    ///
    /// The GPU health breaker sits in front of this phase: each finished
    /// GPU-mode query reports whether it observed a device fault
    /// ([`griffin::GriffinOutput::gpu_faults`]), and once the windowed
    /// failure fraction trips the breaker, subsequent GPU-hungry
    /// requests are planned on their CPU-only schedule instead —
    /// *degraded, never dropped*. After the cooldown, canary queries
    /// probe the device and close the breaker again when it behaves.
    pub fn plan(
        &self,
        engine: &Griffin<'_>,
        index: &InvertedIndex,
        requests: &[QueryRequest],
    ) -> Vec<PlannedQuery> {
        let wants_fallback = self.config.admission.policy == OverloadPolicy::DegradeToCpuOnly
            && self.config.admission.gpu_depth_threshold != usize::MAX;
        let planned = requests
            .iter()
            .map(|req| {
                // Probe the result cache before planning runs the
                // query (which would seed its own entry): a Some here
                // means an earlier identical request already cached the
                // answer — exactly what an overloaded replay could
                // serve stale.
                let cache_on = engine.result_cache_enabled();
                let stale_available = engine
                    .result_cache_peek(req)
                    .map(|hit| hit.time.min(RESULT_CACHE_LOOKUP));
                let coalesce_key =
                    cache_on.then(|| fnv1a(&req.cache_signature(engine.index_epoch())));
                let wants_gpu = req.mode != ExecMode::CpuOnly;
                let gpu_allowed = !wants_gpu || self.breaker_allows(engine.device().now());
                let out = if gpu_allowed {
                    let out = engine.run(index, req);
                    if wants_gpu {
                        self.breaker_record(engine.device().now(), out.gpu_faults > 0);
                    }
                    out
                } else {
                    self.health.borrow_mut().note_degraded();
                    self.telemetry
                        .counter_add("griffin_fault_breaker_degraded_total", 1);
                    let mut degraded = req.clone();
                    degraded.mode = ExecMode::CpuOnly;
                    engine.run(index, &degraded)
                };
                // Key the plan to the trace id its measurement ran
                // under (the fallback run below mints its own id).
                let trace_query = engine.telemetry().recorder().map(|r| r.current_query());
                let cpu_fallback = if wants_fallback && wants_gpu && gpu_allowed {
                    let fb = req.clone().mode(ExecMode::CpuOnly);
                    Some(engine.run(index, &fb).time)
                } else {
                    None
                };
                PlannedQuery {
                    topk: out.topk.clone(),
                    service_time: out.time,
                    stages: stages_of(&out),
                    cpu_fallback,
                    stale_available,
                    coalesce_key,
                    deadline: req.deadline,
                    breaker_degraded: wants_gpu && !gpu_allowed,
                    trace_query,
                }
            })
            .collect();
        self.telemetry.gauge_set(
            "griffin_fault_breaker_state",
            self.health.borrow().state().gauge_value(),
        );
        planned
    }

    /// Asks the breaker whether the next GPU-hungry query may use the
    /// device, recording any state transition it causes.
    fn breaker_allows(&self, now: VirtualNanos) -> bool {
        let mut h = self.health.borrow_mut();
        let before = h.state();
        let allowed = h.allow_gpu(now);
        let after = h.state();
        drop(h);
        self.note_transition(before, after);
        allowed
    }

    /// Feeds one finished GPU-mode query's fault outcome to the breaker,
    /// recording any state transition it causes.
    fn breaker_record(&self, now: VirtualNanos, had_fault: bool) {
        let mut h = self.health.borrow_mut();
        let before = h.state();
        h.record(now, had_fault);
        let after = h.state();
        drop(h);
        self.note_transition(before, after);
    }

    fn note_transition(&self, before: BreakerState, after: BreakerState) {
        if before != after {
            self.telemetry.counter_add(
                &format!(
                    "griffin_fault_breaker_transitions_total{{to=\"{}\"}}",
                    after.label()
                ),
                1,
            );
        }
    }

    /// Phase 2: replay planned queries arriving at the given instants
    /// through the serving simulator. `arrivals` and `planned` pair up
    /// by index.
    pub fn replay(&self, planned: &[PlannedQuery], arrivals: &[VirtualNanos]) -> ServeReport {
        assert_eq!(
            planned.len(),
            arrivals.len(),
            "one arrival instant per planned query"
        );
        let jobs: Vec<SimJob> = planned
            .iter()
            .zip(arrivals)
            .map(|(p, &arrival)| SimJob {
                arrival,
                stages: p.stages.clone(),
                cpu_fallback: p.cpu_fallback,
                deadline: p.deadline,
                stale_available: p.stale_available,
                coalesce_key: p.coalesce_key,
            })
            .collect();
        let report = ServerSim::new(self.config).run(&jobs);
        self.record(&report);
        self.record_forensics(planned, arrivals, &report.queries);
        ServeReport {
            queries: report.queries,
            stats: report.stats,
            timeline: report.timeline,
        }
    }

    /// Feed the replayed outcomes to the flight recorder and SLO
    /// monitor, in completion order (virtual time), and export their
    /// metrics. Purely observational: scheduling already happened.
    fn record_forensics(
        &self,
        planned: &[PlannedQuery],
        arrivals: &[VirtualNanos],
        queries: &[ServedQuery],
    ) {
        let mut flight = self.flight.borrow_mut();
        let mut slo = self.slo.borrow_mut();
        if flight.is_none() && slo.is_none() {
            return;
        }
        // Completion instants: arrival + latency for ran queries, the
        // arrival itself for shed ones. Sort (stably, by index on ties)
        // so the rolling monitors see virtual time move forward.
        let mut order: Vec<usize> = (0..queries.len()).collect();
        let instant = |i: usize| arrivals[i] + queries[i].latency.unwrap_or(VirtualNanos::ZERO);
        order.sort_by_key(|&i| (instant(i), i));
        let trace = self
            .telemetry
            .recorder()
            .map(|r| r.events())
            .unwrap_or_default();
        let mut last = VirtualNanos::ZERO;
        for &i in &order {
            let q = &queries[i];
            let p = &planned[i];
            let now = instant(i);
            last = now;
            if let Some(m) = slo.as_mut() {
                m.record_latency(now, q.latency);
            }
            let (Some(f), Some(latency)) = (flight.as_mut(), q.latency) else {
                continue;
            };
            let service = match q.outcome {
                Outcome::Degraded => p.cpu_fallback.unwrap_or(p.service_time),
                _ => p.service_time,
            };
            let queue_wait = latency.saturating_sub(service);
            let profile = p
                .trace_query
                .and_then(|tq| QueryProfile::from_trace(tq, &trace));
            let verdict = match &profile {
                Some(prof) => prof.dominant_cause(queue_wait),
                None => verdict_from_stages(&p.stages, queue_wait, latency),
            };
            f.observe(FlightRecord {
                query_index: i,
                trace_query: p.trace_query,
                outcome: q.outcome,
                latency,
                service,
                queue_wait,
                verdict,
                profile,
                shards: Vec::new(),
            });
        }
        if let Some(f) = flight.as_ref() {
            self.telemetry
                .gauge_set("griffin_flight_ring_len", f.len() as f64);
            self.telemetry
                .gauge_set("griffin_flight_retained_total", f.retained_total() as f64);
            self.telemetry
                .gauge_set("griffin_flight_evicted_total", f.evicted_total() as f64);
            if let Some(t) = f.threshold() {
                self.telemetry
                    .gauge_set("griffin_flight_threshold_ns", t.as_nanos() as f64);
            }
        }
        if let Some(m) = slo.as_ref() {
            m.export(&self.telemetry, last);
        }
    }

    /// Plan + replay in one call.
    pub fn serve(
        &self,
        engine: &Griffin<'_>,
        index: &InvertedIndex,
        queries: &[ArrivingQuery],
    ) -> ServeReport {
        let requests: Vec<QueryRequest> = queries.iter().map(|q| q.request.clone()).collect();
        let arrivals: Vec<VirtualNanos> = queries.iter().map(|q| q.arrival).collect();
        let planned = self.plan(engine, index, &requests);
        self.replay(&planned, &arrivals)
    }

    fn record(&self, report: &SimReport) {
        let s = &report.stats;
        self.telemetry
            .counter_add("griffin_server_admitted_total", s.admitted as u64);
        self.telemetry
            .counter_add("griffin_server_shed_total", s.shed as u64);
        self.telemetry
            .counter_add("griffin_server_degraded_total", s.degraded as u64);
        self.telemetry.counter_add(
            "griffin_server_deadline_missed_total",
            s.deadline_missed as u64,
        );
        self.telemetry
            .counter_add("griffin_server_served_stale_total", s.served_stale as u64);
        self.telemetry
            .counter_add("griffin_server_coalesced_total", s.coalesced as u64);
        self.telemetry
            .counter_add("griffin_server_gpu_launches_total", s.gpu_launches);
        self.telemetry
            .counter_add("griffin_server_gpu_stages_total", s.gpu_stages);
        self.telemetry.counter_add(
            "griffin_server_gpu_time_saved_ns_total",
            s.gpu_time_saved.as_nanos(),
        );
        self.telemetry.gauge_set(
            "griffin_server_batch_occupancy_mean",
            s.mean_batch_occupancy(),
        );
        self.telemetry.gauge_set(
            "griffin_server_batch_occupancy_max",
            s.max_batch_occupancy as f64,
        );
        self.telemetry.gauge_set(
            "griffin_server_gpu_queue_depth_max",
            s.max_gpu_queue_depth as f64,
        );
        for q in &report.queries {
            if let Some(latency) = q.latency {
                self.telemetry
                    .observe_duration("griffin_server_latency_ns", latency);
            }
        }
    }
}
