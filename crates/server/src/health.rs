//! GPU health tracking: a circuit breaker over per-query fault outcomes.
//!
//! The engine's recovery layer (see `griffin::RecoveryPolicy`) makes a
//! single faulting query *complete* — retries, then mid-query migration
//! to the CPU. But recovery is not free: every failed attempt burns
//! device time and every migration re-materializes state on the host. A
//! device that faults on most queries should stop receiving them
//! altogether until it proves itself healthy again. That is this
//! module's job.
//!
//! [`GpuHealth`] is a classic three-state circuit breaker driven by the
//! *virtual* clock:
//!
//! * **Closed** — the GPU lane is live. Each finished GPU-mode query
//!   reports whether it observed any device fault; outcomes feed a
//!   sliding window, and when the windowed failure fraction reaches
//!   [`BreakerConfig::failure_threshold`] (with at least
//!   [`BreakerConfig::min_samples`] observations) the breaker trips.
//! * **Open** — the GPU lane is out. Queries are planned CPU-only
//!   (*degraded*, never dropped) until
//!   [`BreakerConfig::cooldown`] of virtual time has passed.
//! * **HalfOpen** — after the cooldown, canary queries are allowed back
//!   onto the device. [`BreakerConfig::canary_successes`] consecutive
//!   fault-free canaries close the breaker; a single faulting canary
//!   re-opens it and restarts the cooldown.
//!
//! The breaker is deterministic: it has no wall-clock or randomness,
//! only the device's virtual time and the observed fault sequence, so a
//! fixed fault-plan seed reproduces the exact same open/close history.

use std::collections::VecDeque;

use griffin_gpu_sim::VirtualNanos;

/// The breaker's position. See the module docs for the state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// GPU lane live; outcomes feed the sliding window.
    Closed,
    /// GPU lane tripped; queries degrade to CPU-only until the cooldown
    /// elapses.
    Open,
    /// Cooldown elapsed; canary queries probe the device.
    HalfOpen,
}

impl BreakerState {
    /// Stable label for telemetry (`closed` / `open` / `half_open`).
    pub fn label(&self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }

    /// Numeric encoding for the `griffin_fault_breaker_state` gauge:
    /// 0 = closed, 1 = half-open, 2 = open.
    pub fn gauge_value(&self) -> f64 {
        match self {
            BreakerState::Closed => 0.0,
            BreakerState::HalfOpen => 1.0,
            BreakerState::Open => 2.0,
        }
    }
}

/// Circuit-breaker tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerConfig {
    /// Sliding window length (most recent GPU-mode query outcomes).
    pub window: usize,
    /// Fraction of faulting queries in the window that trips the
    /// breaker (`0.5` = half the window faulted).
    pub failure_threshold: f64,
    /// Minimum outcomes in the window before the threshold applies —
    /// one unlucky first query must not trip the lane.
    pub min_samples: usize,
    /// Virtual time the breaker stays open before probing again.
    pub cooldown: VirtualNanos,
    /// Consecutive fault-free canaries required to close again.
    pub canary_successes: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            window: 20,
            failure_threshold: 0.5,
            min_samples: 8,
            cooldown: VirtualNanos::from_millis(5),
            canary_successes: 3,
        }
    }
}

/// Counts of breaker activity, for telemetry and reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BreakerStats {
    /// Closed/HalfOpen → Open transitions.
    pub opens: u64,
    /// HalfOpen → Closed transitions.
    pub closes: u64,
    /// Open → HalfOpen transitions.
    pub half_opens: u64,
    /// Queries forced onto their CPU-only plan because the lane was out.
    pub degraded: u64,
}

/// The GPU health tracker. One per server; drive it with
/// [`allow_gpu`](GpuHealth::allow_gpu) before planning each GPU-hungry
/// query and [`record`](GpuHealth::record) after the query finishes.
#[derive(Debug, Clone)]
pub struct GpuHealth {
    config: BreakerConfig,
    state: BreakerState,
    /// Recent outcomes, `true` = the query observed at least one fault.
    window: VecDeque<bool>,
    faults_in_window: usize,
    opened_at: VirtualNanos,
    canary_ok: u32,
    stats: BreakerStats,
}

impl GpuHealth {
    pub fn new(config: BreakerConfig) -> GpuHealth {
        assert!(config.window >= 1, "window must hold at least one outcome");
        assert!(
            config.min_samples >= 1,
            "min_samples of 0 would trip on no evidence"
        );
        GpuHealth {
            config,
            state: BreakerState::Closed,
            window: VecDeque::with_capacity(config.window),
            faults_in_window: 0,
            opened_at: VirtualNanos::ZERO,
            canary_ok: 0,
            stats: BreakerStats::default(),
        }
    }

    pub fn config(&self) -> &BreakerConfig {
        &self.config
    }

    pub fn state(&self) -> BreakerState {
        self.state
    }

    pub fn stats(&self) -> BreakerStats {
        self.stats
    }

    /// Windowed failure fraction (0.0 when the window is empty).
    pub fn failure_fraction(&self) -> f64 {
        if self.window.is_empty() {
            0.0
        } else {
            self.faults_in_window as f64 / self.window.len() as f64
        }
    }

    /// May the next GPU-hungry query use the device? `now` is the
    /// device's virtual clock; an open breaker whose cooldown has
    /// elapsed moves to half-open here and lets a canary through.
    pub fn allow_gpu(&mut self, now: VirtualNanos) -> bool {
        match self.state {
            BreakerState::Closed => true,
            BreakerState::HalfOpen => true,
            BreakerState::Open => {
                if now - self.opened_at >= self.config.cooldown {
                    self.state = BreakerState::HalfOpen;
                    self.canary_ok = 0;
                    self.stats.half_opens += 1;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Report one finished GPU-mode query: `had_fault` is whether the
    /// engine observed any device fault while running it (transient or
    /// not — a retried-and-absorbed fault still signals a sick device).
    pub fn record(&mut self, now: VirtualNanos, had_fault: bool) {
        match self.state {
            BreakerState::Closed => {
                if self.window.len() == self.config.window && self.window.pop_front() == Some(true)
                {
                    self.faults_in_window -= 1;
                }
                self.window.push_back(had_fault);
                if had_fault {
                    self.faults_in_window += 1;
                }
                if self.window.len() >= self.config.min_samples
                    && self.failure_fraction() >= self.config.failure_threshold
                {
                    self.trip(now);
                }
            }
            BreakerState::HalfOpen => {
                if had_fault {
                    self.trip(now);
                } else {
                    self.canary_ok += 1;
                    if self.canary_ok >= self.config.canary_successes {
                        self.close();
                    }
                }
            }
            // A query planned before the trip may finish after it;
            // its outcome is stale evidence — ignore it.
            BreakerState::Open => {}
        }
    }

    /// Count one query forced onto its CPU-only plan by an open breaker.
    pub fn note_degraded(&mut self) {
        self.stats.degraded += 1;
    }

    fn trip(&mut self, now: VirtualNanos) {
        self.state = BreakerState::Open;
        self.opened_at = now;
        self.window.clear();
        self.faults_in_window = 0;
        self.canary_ok = 0;
        self.stats.opens += 1;
    }

    fn close(&mut self) {
        self.state = BreakerState::Closed;
        self.window.clear();
        self.faults_in_window = 0;
        self.canary_ok = 0;
        self.stats.closes += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(v: u64) -> VirtualNanos {
        VirtualNanos::from_nanos(v)
    }

    fn breaker(window: usize, min_samples: usize) -> GpuHealth {
        GpuHealth::new(BreakerConfig {
            window,
            failure_threshold: 0.5,
            min_samples,
            cooldown: ns(1_000),
            canary_successes: 2,
        })
    }

    #[test]
    fn stays_closed_under_occasional_faults() {
        let mut h = breaker(10, 4);
        for i in 0..50 {
            assert!(h.allow_gpu(ns(i)));
            h.record(ns(i), i % 5 == 0); // 20% fault rate < 50% threshold
        }
        assert_eq!(h.state(), BreakerState::Closed);
        assert_eq!(h.stats().opens, 0);
    }

    #[test]
    fn trips_when_window_crosses_threshold() {
        let mut h = breaker(8, 4);
        for i in 0..4 {
            h.record(ns(i), true);
        }
        assert_eq!(h.state(), BreakerState::Open);
        assert_eq!(h.stats().opens, 1);
        assert!(!h.allow_gpu(ns(10)), "still inside the cooldown");
    }

    #[test]
    fn min_samples_guards_against_early_trip() {
        let mut h = breaker(8, 4);
        h.record(ns(0), true);
        h.record(ns(1), true);
        // 100% failure fraction but only 2 of the 4 required samples.
        assert_eq!(h.state(), BreakerState::Closed);
    }

    #[test]
    fn cooldown_then_canaries_close_the_breaker() {
        let mut h = breaker(8, 4);
        for i in 0..4 {
            h.record(ns(i), true);
        }
        assert_eq!(h.state(), BreakerState::Open);
        // Cooldown (1000ns from the trip at t=3) not yet elapsed.
        assert!(!h.allow_gpu(ns(500)));
        // Elapsed: half-open, canaries allowed.
        assert!(h.allow_gpu(ns(1_003)));
        assert_eq!(h.state(), BreakerState::HalfOpen);
        h.record(ns(1_100), false);
        assert_eq!(h.state(), BreakerState::HalfOpen, "one of two canaries");
        h.record(ns(1_200), false);
        assert_eq!(h.state(), BreakerState::Closed);
        assert_eq!(h.stats().closes, 1);
        assert_eq!(h.stats().half_opens, 1);
    }

    #[test]
    fn faulting_canary_reopens() {
        let mut h = breaker(8, 4);
        for i in 0..4 {
            h.record(ns(i), true);
        }
        assert!(h.allow_gpu(ns(2_000)));
        h.record(ns(2_100), true);
        assert_eq!(h.state(), BreakerState::Open);
        assert_eq!(h.stats().opens, 2);
        // Cooldown restarts from the re-trip.
        assert!(!h.allow_gpu(ns(2_500)));
        assert!(h.allow_gpu(ns(3_200)));
    }

    #[test]
    fn window_slides_old_faults_out() {
        let mut h = breaker(4, 4);
        h.record(ns(0), true);
        h.record(ns(1), true);
        h.record(ns(2), false);
        // 2/3 faults but min_samples=4 holds fire; two clean outcomes
        // push the faults out of the window.
        h.record(ns(3), false);
        assert_eq!(h.state(), BreakerState::Open, "4 samples at 50% trips");
    }

    #[test]
    fn stale_outcomes_ignored_while_open() {
        let mut h = breaker(8, 4);
        for i in 0..4 {
            h.record(ns(i), true);
        }
        let stats = h.stats();
        h.record(ns(5), true);
        h.record(ns(6), false);
        assert_eq!(h.stats(), stats, "open breaker ignores outcomes");
    }
}
