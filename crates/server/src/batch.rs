//! GPU batch packing: coalescing small device stages across queries.
//!
//! The gpu-sim charges every kernel launch a fixed driver/dispatch
//! overhead ([`DeviceConfig::kernel_launch_overhead_ns`]), and every
//! device stage additionally pays allocation and DMA-setup costs. When
//! many *small* GPU stages from different queries sit in the device
//! queue at once, launching them back to back repays that fixed cost
//! once per stage — while a batched submission (one graph-style launch
//! enqueueing the member kernels back to back) pays it once per *batch*.
//! The packer models exactly that saving: members execute concatenated
//! in queue order, and every member after the first shaves its fixed
//! per-stage overhead off its own duration (clamped to that duration —
//! a member cannot finish in negative time). Crucially each member's
//! result is ready when *its* kernels complete, not at the end of the
//! batch, so packing never delays anyone: it is purely work-conserving.

use griffin_gpu_sim::{DeviceConfig, VirtualNanos};

/// Batch-packing configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchConfig {
    /// Maximum stages coalesced into one launch (1 disables packing).
    pub max_batch: usize,
    /// Only stages at or below this duration are coalesced; larger
    /// stages already amortize their launch costs and would only delay
    /// their batch-mates.
    pub small_stage: VirtualNanos,
    /// Fixed per-stage cost a coalesced member no longer pays. See
    /// [`BatchConfig::for_device`] for the derivation.
    pub per_stage_overhead: VirtualNanos,
    /// Fraction of a GPU stage's duration that is PCIe copy work (its
    /// list upload). With async streams the device overlaps a member's
    /// copy with the *previous* member's compute, so inside a batch this
    /// fraction of each non-first member pipelines instead of
    /// serializing. `0.0` disables overlap modeling (members run strictly
    /// concatenated, the pre-stream behaviour).
    pub copy_fraction: f64,
}

impl BatchConfig {
    /// Derives the per-stage fixed overhead from the device model: a
    /// bridged GPU stage issues at least two kernels (decompress +
    /// intersect/score) and one buffer round trip, so a coalesced
    /// member saves two launch overheads plus one allocation/free pair —
    /// a deliberately conservative floor (real stages issue more).
    pub fn for_device(cfg: &DeviceConfig) -> BatchConfig {
        BatchConfig {
            max_batch: 8,
            small_stage: VirtualNanos::from_millis(2),
            per_stage_overhead: VirtualNanos::from_nanos(
                2 * cfg.kernel_launch_overhead_ns + cfg.malloc_overhead_ns + cfg.free_overhead_ns,
            ),
            // Small (transfer-bound) stages spend roughly this share of
            // their time on the PCIe upload; the ratio follows from the
            // link (8 GB/s) vs device bandwidth (208 GB/s) at the
            // packer's small-stage sizes. Only meaningful on devices with
            // a dedicated copy engine.
            copy_fraction: if cfg.copy_engines > 0 { 0.4 } else { 0.0 },
        }
    }

    /// Splits a member's effective duration into its (copy, compute)
    /// portions per [`BatchConfig::copy_fraction`].
    pub fn split(&self, duration: VirtualNanos) -> (VirtualNanos, VirtualNanos) {
        let copy = VirtualNanos::from_nanos_f64(
            duration.as_nanos() as f64 * self.copy_fraction.clamp(0.0, 1.0),
        );
        (copy.min(duration), duration - copy.min(duration))
    }

    /// Whether a stage of this duration is eligible for coalescing.
    pub fn is_small(&self, duration: VirtualNanos) -> bool {
        duration <= self.small_stage
    }

    /// How much of a coalesced (non-first) member's duration the shared
    /// submission saves: the fixed per-stage overhead, clamped to the
    /// member's own duration.
    pub fn saving_for(&self, duration: VirtualNanos) -> VirtualNanos {
        self.per_stage_overhead.min(duration)
    }

    /// Device time of one batched submission over stages with the given
    /// durations: the members run concatenated, and every member after
    /// the first saves its per-stage overhead ([`BatchConfig::saving_for`]).
    pub fn packed_duration(&self, durations: &[VirtualNanos]) -> VirtualNanos {
        let sum: VirtualNanos = durations.iter().copied().sum();
        let saved: VirtualNanos = durations.iter().skip(1).map(|&d| self.saving_for(d)).sum();
        sum - saved
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(v: u64) -> VirtualNanos {
        VirtualNanos::from_nanos(v)
    }

    fn config(overhead: u64) -> BatchConfig {
        BatchConfig {
            max_batch: 8,
            small_stage: ns(1_000_000),
            per_stage_overhead: ns(overhead),
            copy_fraction: 0.0,
        }
    }

    #[test]
    fn singleton_batch_is_exact() {
        // One stage saves nothing — the bit-exact unloaded-latency
        // guarantee depends on this.
        assert_eq!(config(10_000).packed_duration(&[ns(123_456)]), ns(123_456));
    }

    #[test]
    fn batch_saves_one_overhead_per_extra_member() {
        let c = config(1_000);
        assert_eq!(
            c.packed_duration(&[ns(50_000), ns(60_000), ns(70_000)]),
            ns(178_000)
        );
    }

    #[test]
    fn savings_clamp_to_the_member_duration() {
        let c = config(100_000);
        // The 1µs member can save at most its own duration.
        assert_eq!(c.packed_duration(&[ns(110_000), ns(1_000)]), ns(110_000));
        assert_eq!(c.saving_for(ns(1_000)), ns(1_000));
        assert_eq!(c.saving_for(ns(500_000)), ns(100_000));
    }

    #[test]
    fn device_derivation_is_positive_and_conservative() {
        let cfg = DeviceConfig::tesla_k20();
        let b = BatchConfig::for_device(&cfg);
        let overhead = b.per_stage_overhead.as_nanos();
        assert!(overhead >= cfg.kernel_launch_overhead_ns);
        // Far below any realistic small-stage duration.
        assert!(b.per_stage_overhead < b.small_stage);
        assert!((0.0..=1.0).contains(&b.copy_fraction));
        assert!(b.copy_fraction > 0.0, "the K20 has copy engines");
    }

    #[test]
    fn split_partitions_the_duration_exactly() {
        let mut c = config(0);
        c.copy_fraction = 0.4;
        let (copy, compute) = c.split(ns(1_000));
        assert_eq!(copy + compute, ns(1_000));
        assert_eq!(copy, ns(400));
        c.copy_fraction = 0.0;
        assert_eq!(c.split(ns(777)), (ns(0), ns(777)));
        c.copy_fraction = 1.5; // clamped
        assert_eq!(c.split(ns(10)), (ns(10), ns(0)));
    }

    #[test]
    fn empty_batch_is_zero() {
        assert_eq!(config(1).packed_duration(&[]), VirtualNanos::ZERO);
    }
}
