//! The trace → stage bridge.
//!
//! [`griffin::Griffin::run`] returns a measured per-operation schedule —
//! the [`StepTrace`] sequence — for every execution mode. This module
//! converts that schedule into the [`StageReq`] lanes the serving
//! simulator understands: CPU steps become [`Resource::Cpu`] stages, GPU
//! kernels *and PCIe migrations* become [`Resource::Gpu`] stages (the
//! paper's single device owns its DMA engine, so a transfer occupies the
//! GPU lane just like a kernel).
//!
//! The bridge is exact by construction: the engine guarantees that step
//! durations sum to [`griffin::GriffinOutput::time`] in every mode, so a
//! single unloaded query replayed through the simulator reproduces its
//! engine latency bit for bit (see the `bridge_properties` test suite).

use griffin::serving::{Resource, StageReq};
use griffin::{GriffinOutput, Proc, StepOp, StepTrace};
use griffin_gpu_sim::VirtualNanos;

/// Which serving resource a step occupies: GPU-resident work and PCIe
/// migrations hold the GPU lane; everything else holds a CPU core.
pub fn resource_of(step: &StepTrace) -> Resource {
    match (step.proc, step.op) {
        (Proc::Gpu, _) | (_, StepOp::Migrate) => Resource::Gpu,
        (Proc::Cpu, _) => Resource::Cpu,
    }
}

/// Host-core time running concurrently with a GPU-lane step: the CPU
/// lane of a co-executed split intersection. Zero for everything else —
/// including a split whose GPU lane degenerated to nothing (the bridge
/// sees that step on the CPU lane, so its host time is the stage itself,
/// not a shadow).
pub fn cpu_shadow_of(step: &StepTrace) -> VirtualNanos {
    match step.op {
        StepOp::SplitIntersect { cpu_lane, .. } if resource_of(step) == Resource::Gpu => cpu_lane,
        _ => VirtualNanos::ZERO,
    }
}

/// Converts a query's measured step trace into serving stages, merging
/// consecutive steps on the same resource into one stage (a query holds
/// its core/device across adjacent operations; only a resource *switch*
/// is a scheduling point).
pub fn stages_of(out: &GriffinOutput) -> Vec<StageReq> {
    let mut stages: Vec<StageReq> = Vec::new();
    for step in &out.steps {
        let resource = resource_of(step);
        match stages.last_mut() {
            Some(last) if last.resource == resource => {
                last.duration += step.time;
                last.cpu_shadow += cpu_shadow_of(step);
            }
            _ => stages.push(StageReq {
                resource,
                duration: step.time,
                cpu_shadow: cpu_shadow_of(step),
            }),
        }
    }
    stages
}

/// Estimates the PCIe-copy share of a workload's GPU-lane time from its
/// measured step traces: Migrate steps are pure transfers, while GPU
/// compute steps (init/intersect) count as kernel time — with overlap
/// enabled the engine already pipelines their own uploads behind compute,
/// so those transfers must not be counted twice. The result feeds
/// [`crate::batch::BatchConfig`]'s `copy_fraction` when the
/// device-derived default does not fit the workload.
pub fn gpu_copy_fraction<'a>(traces: impl IntoIterator<Item = &'a [StepTrace]>) -> f64 {
    let mut copy = VirtualNanos::ZERO;
    let mut total = VirtualNanos::ZERO;
    for steps in traces {
        for s in steps {
            if resource_of(s) == Resource::Gpu {
                total += s.time;
                if s.op == StepOp::Migrate {
                    copy += s.time;
                }
            }
        }
    }
    if total == VirtualNanos::ZERO {
        0.0
    } else {
        copy.as_nanos() as f64 / total.as_nanos() as f64
    }
}

/// Total stage duration per resource: `(cpu, gpu)`.
pub fn resource_totals(stages: &[StageReq]) -> (VirtualNanos, VirtualNanos) {
    let mut cpu = VirtualNanos::ZERO;
    let mut gpu = VirtualNanos::ZERO;
    for s in stages {
        match s.resource {
            Resource::Cpu => cpu += s.duration,
            Resource::Gpu => gpu += s.duration,
        }
    }
    (cpu, gpu)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step(op: StepOp, proc: Proc, ns: u64) -> StepTrace {
        StepTrace {
            op,
            proc,
            time: VirtualNanos::from_nanos(ns),
            inter_len: 0,
        }
    }

    fn output(steps: Vec<StepTrace>) -> GriffinOutput {
        let time = steps.iter().map(|s| s.time).sum();
        GriffinOutput {
            topk: Vec::new(),
            time,
            steps,
            gpu_faults: 0,
            gpu_abandoned: false,
            pruning: None,
            fleet: None,
            result_cache_hit: false,
        }
    }

    #[test]
    fn copy_fraction_counts_migrations_only() {
        let steps = [
            step(StepOp::Init, Proc::Gpu, 600),
            step(StepOp::Migrate, Proc::Cpu, 300), // PCIe, GPU lane
            step(StepOp::Intersect(1), Proc::Cpu, 5_000), // CPU lane
            step(StepOp::TopK, Proc::Cpu, 100),
        ];
        let f = gpu_copy_fraction([&steps[..]]);
        assert!((f - 300.0 / 900.0).abs() < 1e-9, "{f}");
        assert_eq!(gpu_copy_fraction([&[][..]]), 0.0);
    }

    #[test]
    fn stages_sum_to_total_time() {
        let out = output(vec![
            step(StepOp::Init, Proc::Gpu, 100),
            step(StepOp::Intersect(1), Proc::Gpu, 200),
            step(StepOp::Migrate, Proc::Cpu, 50),
            step(StepOp::Intersect(2), Proc::Cpu, 75),
            step(StepOp::TopK, Proc::Cpu, 25),
        ]);
        let stages = stages_of(&out);
        let total: VirtualNanos = stages.iter().map(|s| s.duration).sum();
        assert_eq!(total, out.time);
    }

    #[test]
    fn consecutive_same_resource_steps_merge() {
        let out = output(vec![
            step(StepOp::Init, Proc::Gpu, 100),
            step(StepOp::Intersect(1), Proc::Gpu, 200),
            // Download migration occupies the GPU lane too, so it merges.
            step(StepOp::Migrate, Proc::Cpu, 50),
            step(StepOp::TopK, Proc::Cpu, 25),
        ]);
        let stages = stages_of(&out);
        assert_eq!(
            stages,
            vec![
                StageReq::new(Resource::Gpu, VirtualNanos::from_nanos(350)),
                StageReq::new(Resource::Cpu, VirtualNanos::from_nanos(25)),
            ]
        );
    }

    #[test]
    fn migration_occupies_the_gpu_lane() {
        let up = step(StepOp::Migrate, Proc::Gpu, 10);
        let down = step(StepOp::Migrate, Proc::Cpu, 10);
        assert_eq!(resource_of(&up), Resource::Gpu);
        assert_eq!(resource_of(&down), Resource::Gpu);
        let cpu = step(StepOp::Intersect(1), Proc::Cpu, 10);
        assert_eq!(resource_of(&cpu), Resource::Cpu);
    }

    #[test]
    fn split_intersections_carry_their_cpu_shadow() {
        let split = |cpu: u64, gpu: u64, proc: Proc| StepTrace {
            op: StepOp::SplitIntersect {
                term: 1,
                cpu_lane: VirtualNanos::from_nanos(cpu),
                gpu_lane: VirtualNanos::from_nanos(gpu),
            },
            proc,
            time: VirtualNanos::from_nanos(cpu.max(gpu)),
            inter_len: 0,
        };
        // A GPU-lane split holds the device for max(lanes) and shadows a
        // host core for its CPU lane.
        let s = split(300, 400, Proc::Gpu);
        assert_eq!(resource_of(&s), Resource::Gpu);
        assert_eq!(cpu_shadow_of(&s), VirtualNanos::from_nanos(300));
        // A split whose GPU lane degenerated is an ordinary CPU stage.
        let c = split(300, 0, Proc::Cpu);
        assert_eq!(resource_of(&c), Resource::Cpu);
        assert_eq!(cpu_shadow_of(&c), VirtualNanos::ZERO);
        // Merging accumulates shadows; shadow never exceeds the stage.
        let out = output(vec![
            step(StepOp::Init, Proc::Gpu, 100),
            s,
            split(200, 500, Proc::Gpu),
        ]);
        let stages = stages_of(&out);
        assert_eq!(stages.len(), 1);
        assert_eq!(stages[0].duration, VirtualNanos::from_nanos(1_000));
        assert_eq!(stages[0].cpu_shadow, VirtualNanos::from_nanos(500));
        assert!(stages[0].cpu_shadow <= stages[0].duration);
    }

    #[test]
    fn empty_trace_bridges_to_no_stages() {
        assert!(stages_of(&output(Vec::new())).is_empty());
    }

    #[test]
    fn totals_split_by_resource() {
        let out = output(vec![
            step(StepOp::Init, Proc::Gpu, 40),
            step(StepOp::TopK, Proc::Cpu, 60),
        ]);
        let (cpu, gpu) = resource_totals(&stages_of(&out));
        assert_eq!(cpu, VirtualNanos::from_nanos(60));
        assert_eq!(gpu, VirtualNanos::from_nanos(40));
    }
}
