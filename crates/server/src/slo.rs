//! SLO monitor: rolling good/bad windows and multi-window burn-rate
//! alerts.
//!
//! A query is *good* when it completes within the configured latency
//! SLO (shed queries are always bad). The monitor keeps a rolling
//! window of outcomes in virtual time and reports **burn rate** per
//! window: the observed bad fraction divided by the SLO's error budget
//! (`1 − objective`). Burn rate 1.0 means the error budget is being
//! consumed exactly at the sustainable rate; 10× means ten times too
//! fast.
//!
//! Alerting follows the SRE multi-window recipe: a [`BurnWindow`] fires
//! only when *both* its long window (resistant to blips) and its short
//! window (proof the problem is still happening) exceed the factor.
//! [`SloMonitor::early_warning`] is true while any window fires — the
//! admission queue and the GPU health breaker consume it as an
//! early-warning signal before deadline misses pile up.
//!
//! The monitor is deterministic and passive: it only observes the
//! replayed outcomes, in virtual time, and never changes scheduling.

use std::collections::VecDeque;

use griffin_gpu_sim::VirtualNanos;
use griffin_telemetry::Telemetry;

/// One multi-window burn-rate alert rule.
#[derive(Debug, Clone, Copy)]
pub struct BurnWindow {
    /// The long (paging) window.
    pub long: VirtualNanos,
    /// The short (still-happening) window; a fraction of `long`.
    pub short: VirtualNanos,
    /// Burn-rate factor both windows must exceed to fire.
    pub factor: f64,
}

/// SLO-monitor configuration.
#[derive(Debug, Clone)]
pub struct SloConfig {
    /// Per-query latency SLO: completing within this is *good*.
    pub latency_slo: VirtualNanos,
    /// Availability objective (fraction of queries that should be
    /// good, e.g. 0.99). The error budget is `1 − objective`.
    pub objective: f64,
    /// Alert rules, typically fast-burn first.
    pub windows: Vec<BurnWindow>,
}

impl SloConfig {
    /// Default rules scaled to a window length: a fast-burn rule over
    /// `window` at 10× and a slow-burn rule over `4 × window` at 2×,
    /// each with a 1/12 short window (the classic 1h/5m shape).
    pub fn with_windows(latency_slo: VirtualNanos, objective: f64, window: VirtualNanos) -> Self {
        let short = VirtualNanos::from_nanos((window.as_nanos() / 12).max(1));
        SloConfig {
            latency_slo,
            objective,
            windows: vec![
                BurnWindow {
                    long: window,
                    short,
                    factor: 10.0,
                },
                BurnWindow {
                    long: VirtualNanos::from_nanos(window.as_nanos().saturating_mul(4)),
                    short: window,
                    factor: 2.0,
                },
            ],
        }
    }
}

impl Default for SloConfig {
    /// 10ms latency SLO at a 99% objective, burn windows over 1s/4s of
    /// virtual time — sized for the serving experiments, override for
    /// anything else.
    fn default() -> Self {
        SloConfig::with_windows(
            VirtualNanos::from_millis(10),
            0.99,
            VirtualNanos::from_millis(1_000),
        )
    }
}

/// Rolling good/bad monitor with burn-rate queries.
#[derive(Debug, Clone)]
pub struct SloMonitor {
    config: SloConfig,
    /// `(instant, good)` outcomes, oldest first, pruned beyond the
    /// longest configured window.
    events: VecDeque<(VirtualNanos, bool)>,
    good_total: u64,
    bad_total: u64,
}

impl SloMonitor {
    pub fn new(config: SloConfig) -> SloMonitor {
        SloMonitor {
            config,
            events: VecDeque::new(),
            good_total: 0,
            bad_total: 0,
        }
    }

    pub fn config(&self) -> &SloConfig {
        &self.config
    }

    /// Longest window any rule looks back over.
    fn horizon(&self) -> VirtualNanos {
        self.config
            .windows
            .iter()
            .map(|w| w.long)
            .fold(VirtualNanos::ZERO, VirtualNanos::max)
    }

    /// Record one query outcome at virtual instant `now`. Instants must
    /// be non-decreasing (the replay feeds completions in time order).
    pub fn record(&mut self, now: VirtualNanos, good: bool) {
        if good {
            self.good_total += 1;
        } else {
            self.bad_total += 1;
        }
        self.events.push_back((now, good));
        let cutoff = now.saturating_sub(self.horizon());
        while let Some(&(t, _)) = self.events.front() {
            if t < cutoff {
                self.events.pop_front();
            } else {
                break;
            }
        }
    }

    /// Convenience: classify a latency against the SLO and record it.
    /// `None` (a shed query) is always bad.
    pub fn record_latency(&mut self, now: VirtualNanos, latency: Option<VirtualNanos>) {
        let good = matches!(latency, Some(l) if l <= self.config.latency_slo);
        self.record(now, good);
    }

    pub fn good_total(&self) -> u64 {
        self.good_total
    }

    pub fn bad_total(&self) -> u64 {
        self.bad_total
    }

    /// Fraction of bad outcomes in `(now − window, now]`; 0.0 when the
    /// window holds no events.
    pub fn bad_fraction(&self, now: VirtualNanos, window: VirtualNanos) -> f64 {
        let cutoff = now.saturating_sub(window);
        let mut good = 0u64;
        let mut bad = 0u64;
        for &(t, g) in self.events.iter().rev() {
            if t < cutoff || t > now {
                if t < cutoff {
                    break;
                }
                continue;
            }
            if g {
                good += 1;
            } else {
                bad += 1;
            }
        }
        let total = good + bad;
        if total == 0 {
            0.0
        } else {
            bad as f64 / total as f64
        }
    }

    /// Burn rate over `window`: bad fraction divided by the error
    /// budget. 1.0 = sustainable; higher = burning too fast.
    pub fn burn_rate(&self, now: VirtualNanos, window: VirtualNanos) -> f64 {
        let budget = (1.0 - self.config.objective).max(f64::EPSILON);
        self.bad_fraction(now, window) / budget
    }

    /// The first configured rule whose long *and* short windows both
    /// exceed their factor at `now`, if any.
    pub fn alerting(&self, now: VirtualNanos) -> Option<&BurnWindow> {
        self.config.windows.iter().find(|w| {
            self.burn_rate(now, w.long) >= w.factor && self.burn_rate(now, w.short) >= w.factor
        })
    }

    /// True while any burn-rate rule fires — the signal the admission
    /// queue and health breaker consume.
    pub fn early_warning(&self, now: VirtualNanos) -> bool {
        self.alerting(now).is_some()
    }

    /// Export `griffin_slo_*` gauges/counters as of `now`.
    pub fn export(&self, telemetry: &Telemetry, now: VirtualNanos) {
        telemetry.gauge_set("griffin_slo_objective", self.config.objective);
        telemetry.gauge_set(
            "griffin_slo_latency_slo_ns",
            self.config.latency_slo.as_nanos() as f64,
        );
        telemetry.gauge_set("griffin_slo_good_total", self.good_total as f64);
        telemetry.gauge_set("griffin_slo_bad_total", self.bad_total as f64);
        for w in &self.config.windows {
            let ms = w.long.as_nanos() / 1_000_000;
            telemetry.gauge_set(
                &format!("griffin_slo_burn_rate{{window=\"{ms}ms\"}}"),
                self.burn_rate(now, w.long),
            );
        }
        telemetry.gauge_set(
            "griffin_slo_early_warning",
            if self.early_warning(now) { 1.0 } else { 0.0 },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(v: u64) -> VirtualNanos {
        VirtualNanos::from_nanos(v)
    }

    fn monitor(objective: f64) -> SloMonitor {
        SloMonitor::new(SloConfig::with_windows(ns(1_000), objective, ns(10_000)))
    }

    #[test]
    fn burn_rate_scales_with_bad_fraction() {
        let mut m = monitor(0.99);
        for i in 0..90 {
            m.record(ns(i * 100), true);
        }
        for i in 90..100 {
            m.record(ns(i * 100), false);
        }
        let now = ns(10_000);
        // 10% bad over a 1% budget = 10× burn.
        assert!((m.burn_rate(now, ns(10_000)) - 10.0).abs() < 1e-9);
        assert_eq!(m.good_total(), 90);
        assert_eq!(m.bad_total(), 10);
    }

    #[test]
    fn multi_window_needs_both_windows_hot() {
        let mut m = monitor(0.99);
        // Old badness only: long window hot, short window clean.
        for i in 0..50 {
            m.record(ns(i * 10), false);
        }
        for i in 0..50 {
            m.record(ns(5_000 + i * 10), true);
        }
        // By 15_000ns the badness has aged out of both rules' short
        // windows (833ns and 10_000ns) while still inside the slow
        // rule's 40_000ns long window: long hot, short clean, no page.
        let now = ns(15_000);
        assert!(m.burn_rate(now, ns(40_000)) > 10.0);
        assert!(m.burn_rate(now, ns(10_000)) < 1.0);
        assert!(!m.early_warning(now), "stale badness must not page");
        // Fresh badness: both windows hot.
        for i in 0..50 {
            m.record(ns(15_600 + i), false);
        }
        assert!(m.early_warning(ns(15_700)));
    }

    #[test]
    fn events_prune_beyond_horizon() {
        let mut m = monitor(0.99);
        for i in 0..1_000 {
            m.record(ns(i * 1_000), i % 2 == 0);
        }
        // Horizon is 4×10_000ns; the deque cannot hold all 1000 events.
        assert!(m.events.len() < 100);
    }

    #[test]
    fn shed_queries_are_bad() {
        let mut m = monitor(0.5);
        m.record_latency(ns(0), None);
        m.record_latency(ns(1), Some(ns(500)));
        m.record_latency(ns(2), Some(ns(5_000)));
        assert_eq!(m.good_total(), 1);
        assert_eq!(m.bad_total(), 2);
    }
}
