//! # griffin-server — the end-to-end serving pipeline
//!
//! The engine crates answer *one query at a time*; this crate answers a
//! *stream*. It takes each query through the hybrid engine, converts
//! the engine's measured per-operation schedule (its [`StepTrace`]
//! sequence) into serving stages, and replays the stream through a
//! discrete-event simulator modelling N CPU cores sharing one GPU —
//! the paper's tail-latency setting (Fig. 15), extended with the three
//! disciplines a loaded node needs:
//!
//! * **Admission control** ([`AdmissionConfig`]): a bounded in-flight
//!   queue, with load-shedding or degrade-to-CPU-only when the GPU
//!   backlog crosses a threshold.
//! * **GPU batch packing** ([`BatchConfig`]): adjacent small device
//!   stages from different queries coalesce into one launch, paying the
//!   fixed kernel-launch/allocation overhead once per batch instead of
//!   once per stage.
//! * **Deadlines**: [`QueryRequest::deadline`](griffin::QueryRequest) is carried through and
//!   every served query reports whether it met its budget.
//! * **GPU health breaker** ([`GpuHealth`]): a circuit breaker over
//!   per-query device-fault outcomes. A sliding window of faulting
//!   queries trips the GPU lane to CPU-only *degraded* planning (zero
//!   drops); after a virtual-time cooldown, canary probes close it
//!   again once the device behaves.
//! * **Latency forensics** ([`FlightRecorder`], [`SloMonitor`]): a tail
//!   flight recorder that retains the slowest queries with their
//!   attribution profiles and one-line dominant-cause verdicts, and a
//!   multi-window SLO burn-rate monitor whose early-warning signal the
//!   admission/breaker layers can consume.
//! * **Sharded scatter–gather fleet** ([`Fleet`]): docID-range shards ×
//!   replicas, each an engine with its own device and breaker; hedged
//!   shard requests with cancellation accounting, replica failover, a
//!   CPU-only degraded lane, retry budgets, and partial results with
//!   explicit per-shard coverage. Complete answers are bit-exact with
//!   the unsharded engine.
//!
//! The pipeline is **bit-exact when unloaded**: a single query replayed
//! through the simulator finishes in exactly
//! [`GriffinOutput::time`](griffin::GriffinOutput), because the bridge
//! preserves the engine's step durations and a singleton batch packs to
//! its exact duration. The `bridge_properties` test suite pins this
//! down with property tests.
//!
//! ## Quick start
//!
//! ```
//! use griffin::{ExecMode, Griffin, QueryRequest};
//! use griffin_codec::Codec;
//! use griffin_gpu_sim::{DeviceConfig, Gpu, VirtualNanos};
//! use griffin_index::IndexBuilder;
//! use griffin_server::{ArrivingQuery, BatchConfig, GriffinServer, ServerConfig};
//!
//! // A toy corpus and engine.
//! let mut builder = IndexBuilder::new(Codec::EliasFano);
//! builder.add_text("fast retrieval on the cpu");
//! builder.add_text("fast retrieval on the gpu");
//! let index = builder.build();
//! let device = Gpu::new(DeviceConfig::test_tiny());
//! let engine = Griffin::new(&device, index.meta(), index.block_len());
//!
//! // A server with batching on and otherwise-unbounded admission.
//! let config = ServerConfig {
//!     batching: Some(BatchConfig::for_device(device.config())),
//!     ..Default::default()
//! };
//! let server = GriffinServer::new(config);
//!
//! let terms: Vec<_> = ["fast", "retrieval"]
//!     .iter()
//!     .map(|w| index.lookup(w).unwrap())
//!     .collect();
//! let queries = vec![ArrivingQuery {
//!     request: QueryRequest::new(terms)
//!         .k(10)
//!         .mode(ExecMode::Hybrid)
//!         .deadline(VirtualNanos::from_millis(50)),
//!     arrival: VirtualNanos::ZERO,
//! }];
//! let report = server.serve(&engine, &index, &queries);
//! assert_eq!(report.queries[0].deadline_met, Some(true));
//! ```
//!
//! [`StepTrace`]: griffin::StepTrace

pub mod admission;
pub mod batch;
pub mod bridge;
pub mod fleet;
pub mod flight;
pub mod health;
pub mod server;
pub mod sim;
pub mod slo;

pub use admission::{AdmissionConfig, Outcome, OverloadPolicy, ServedQuery};
pub use batch::BatchConfig;
pub use bridge::{cpu_shadow_of, gpu_copy_fraction, resource_of, resource_totals, stages_of};
pub use fleet::{
    Fleet, FleetConfig, FleetDevices, FleetReport, FleetServedQuery, FleetStats, HedgeConfig,
    RetryBudgetConfig,
};
pub use flight::{verdict_from_stages, FlightConfig, FlightRecord, FlightRecorder, ShardVerdict};
pub use health::{BreakerConfig, BreakerState, BreakerStats, GpuHealth};
pub use server::{ArrivingQuery, GriffinServer, PlannedQuery, ServeReport, ServerConfig};
pub use sim::{ServerSim, SimConfig, SimJob, SimReport, SimStats};
pub use slo::{BurnWindow, SloConfig, SloMonitor};

pub use griffin_telemetry::Timeline;
