//! Sharded scatter–gather fleet: hedged shard requests, replica
//! failover, and honest partial results.
//!
//! One engine per (shard, replica) pair serves a docID-range slice of
//! the corpus (see `griffin::fleet::ShardedIndex`); the [`Fleet`]
//! coordinator fans each [`QueryRequest`] out to one replica per shard
//! and merges the per-shard top-k's with the engine's own comparator,
//! so a complete answer is bit-identical to the unsharded engine's.
//! Everything else in this module is about what happens when a shard
//! does *not* answer promptly:
//!
//! * **Hedged requests** (the tail-at-scale defense): shard answer
//!   latencies feed a rolling fleet-wide histogram; once a shard's
//!   primary has been outstanding longer than a quantile-derived
//!   deadline ([`HedgeConfig`]), the same request is issued to a second
//!   replica and the first answer wins. Because every replica is its
//!   own FIFO lane, the hedge dodges both a slow execution *and* a
//!   backlogged queue on the primary. The loser is cancelled at the
//!   winner's finish instant and charged only for the device time it
//!   actually burned, so hedging never double-counts capacity:
//!   `busy_total == service_total − hedge_cancelled_saved` holds
//!   exactly ([`FleetStats`]).
//! * **Replica failover + fleet health**: every replica carries its own
//!   circuit breaker ([`GpuHealth`]) fed by per-query recovery
//!   outcomes — a fault the retry layer absorbed is not a breaker
//!   failure; an exhausted recovery or sticky device loss is.
//!   Routing skips dead replicas and replicas whose breaker is open;
//!   a shard whose every live replica is breaker-open degrades to a
//!   CPU-only lane (exact results, different latency) rather than
//!   dropping out.
//! * **Partial-result degradation**: when a query carries a deadline
//!   and [`FleetConfig::partial_on_deadline`] is set, shards answering
//!   after the deadline are left out of the merge — but never
//!   silently: every shard appears in the answer's
//!   [`FleetInfo`] with an explicit outcome, and
//!   `coverage` says exactly how much of the corpus the top-k reflects.
//!   A query is always answered; if no shard made the deadline the
//!   coordinator waits for all of them rather than returning nothing.
//! * **Retry budgets**: hedges spend from a per-query allowance and a
//!   fleet-wide token bucket ([`RetryBudgetConfig`]), bounding the
//!   extra load the tail defense may add during a brown-out.
//!
//! All timing is virtual and deterministic: replicas are FIFO lanes
//! (`busy_until`), service times come from the engines' own virtual
//! clocks, and a fixed fault-plan seed reproduces the same hedges,
//! trips, and coverage history run after run.

use griffin::{
    merge_topk, ExecMode, FleetInfo, Griffin, GriffinOutput, Proc, PruneStats, QueryRequest,
    ResultCacheStats, ShardOutcome, ShardStatus, ShardedIndex, StepOp, StepTrace,
};
use griffin_gpu_sim::{DeviceConfig, Gpu, VirtualNanos};
use griffin_telemetry::{Cause, Histogram, Telemetry, Verdict};

use crate::admission::Outcome;
use crate::flight::{FlightConfig, FlightRecord, FlightRecorder, ShardVerdict};
use crate::health::{BreakerConfig, BreakerState, GpuHealth};
use crate::server::ArrivingQuery;

/// Hedged-request policy. The hedge deadline is
/// `quantile(latency) × multiplier`, floored at `min_deadline`; no
/// hedging happens until the fleet has `min_samples` observed shard
/// answers.
///
/// The deadline tracks shard *answer latencies* (queue wait plus
/// service): each replica is an independent FIFO lane, so a request
/// stuck behind a straggling predecessor is exactly what a hedge to
/// the twin replica rescues — as is a slow execution on a sick device.
/// The histogram is pooled fleet-wide rather than per shard: docID-range
/// slices of one corpus are statistically exchangeable, and pooling
/// warms the deadline `shards ×` faster after a cold start, when the
/// tail is most exposed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HedgeConfig {
    pub enabled: bool,
    /// Latency quantile the deadline tracks (0.95 = hedge once the
    /// primary has been outstanding past the answer-latency p95).
    pub quantile: f64,
    /// Deadline = quantile × multiplier.
    pub multiplier: f64,
    /// Observed shard answers required before the deadline is defined.
    pub min_samples: u64,
    /// Lower bound on the deadline, so a warm cache of sub-microsecond
    /// answers cannot make every query hedge.
    pub min_deadline: VirtualNanos,
}

impl Default for HedgeConfig {
    fn default() -> Self {
        HedgeConfig {
            enabled: true,
            quantile: 0.95,
            multiplier: 1.0,
            min_samples: 32,
            min_deadline: VirtualNanos::from_nanos(1_000),
        }
    }
}

/// Bounds on retry/hedge amplification.
///
/// Each query may hedge at most `per_query` shards; fleet-wide, hedges
/// spend from a token bucket holding at most `burst` tokens that
/// refills by `refill_per_query` per served query — i.e. in steady
/// state at most `refill_per_query` of queries hedge, with bursts of
/// up to `burst` absorbing transient stragglers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryBudgetConfig {
    pub per_query: u32,
    pub burst: f64,
    pub refill_per_query: f64,
}

impl Default for RetryBudgetConfig {
    fn default() -> Self {
        RetryBudgetConfig {
            per_query: 2,
            burst: 8.0,
            refill_per_query: 0.2,
        }
    }
}

/// Fleet coordinator tuning. The shard count comes from the
/// [`ShardedIndex`], the replica count from the [`FleetDevices`].
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Per-replica circuit-breaker tuning (every replica gets its own
    /// breaker built from this).
    pub breaker: BreakerConfig,
    pub hedge: HedgeConfig,
    pub budget: RetryBudgetConfig,
    /// Return partial results when a deadline-carrying query would
    /// otherwise wait for a straggler shard past its deadline. When
    /// false the coordinator always waits for every answering shard.
    pub partial_on_deadline: bool,
    /// Attach a tail flight recorder with per-shard verdicts.
    pub flight: Option<FlightConfig>,
    /// Per-replica result-cache sizing `(max_entries, budget_bytes)`,
    /// applied to every replica engine at construction. Each replica
    /// caches its own shard's answers — hits never cross shard
    /// boundaries, so replicas of a hot shard warm independently.
    /// `None` (the default) leaves the tier off.
    pub result_cache: Option<(usize, u64)>,
    /// Per-replica host decoded-list cache byte budget, applied to
    /// every replica's CPU engine at construction. `None` keeps the
    /// engine default.
    pub host_cache_bytes: Option<u64>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            breaker: BreakerConfig::default(),
            hedge: HedgeConfig::default(),
            budget: RetryBudgetConfig::default(),
            partial_on_deadline: true,
            flight: None,
            result_cache: None,
            host_cache_bytes: None,
        }
    }
}

/// The fleet's devices: one simulated GPU per (shard, replica) pair,
/// shard-major. Owned separately from [`Fleet`] because each engine
/// borrows its device for the fleet's lifetime; build this first, then
/// attach fault plans to individual devices before constructing the
/// fleet.
pub struct FleetDevices {
    devices: Vec<Gpu>,
    replicas: usize,
}

impl FleetDevices {
    /// `shards × replicas` identical devices.
    pub fn new(shards: usize, replicas: usize, config: &DeviceConfig) -> FleetDevices {
        FleetDevices::heterogeneous(shards, replicas, |_, _| config.clone())
    }

    /// `shards × replicas` devices, with `config(shard, replica)` picking
    /// each one — for modelling uneven fleets (a thermally throttled
    /// replica, a beefier tier for a hot shard).
    pub fn heterogeneous<F>(shards: usize, replicas: usize, mut config: F) -> FleetDevices
    where
        F: FnMut(usize, usize) -> DeviceConfig,
    {
        assert!(shards >= 1 && replicas >= 1, "need at least one device");
        let mut devices = Vec::with_capacity(shards * replicas);
        for s in 0..shards {
            for r in 0..replicas {
                devices.push(Gpu::new(config(s, r)));
            }
        }
        FleetDevices { devices, replicas }
    }

    pub fn replicas(&self) -> usize {
        self.replicas
    }

    pub fn num_devices(&self) -> usize {
        self.devices.len()
    }

    /// The device backing `(shard, replica)`.
    pub fn device(&self, shard: usize, replica: usize) -> &Gpu {
        assert!(replica < self.replicas);
        &self.devices[shard * self.replicas + replica]
    }

    pub fn iter(&self) -> impl Iterator<Item = &Gpu> {
        self.devices.iter()
    }

    /// Total device memory in use across the fleet (leak checking).
    pub fn mem_in_use(&self) -> u64 {
        self.devices.iter().map(|d| d.mem_in_use()).sum()
    }
}

/// One (shard, replica) lane: an engine over the shard view, its
/// breaker, and a FIFO availability horizon in fleet virtual time.
struct Replica<'g> {
    engine: Griffin<'g>,
    health: GpuHealth,
    alive: bool,
    busy_until: VirtualNanos,
}

/// Fleet-lifetime counters. The hedging invariant
/// `busy_total == service_total − hedge_cancelled_saved` is what "a
/// cancelled hedge is not billed" means, and is asserted by the
/// property tests.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FleetStats {
    pub queries: u64,
    /// Hedged shard requests issued.
    pub hedges: u64,
    /// Hedges whose answer beat the primary's.
    pub hedge_wins: u64,
    /// Hedges suppressed by an exhausted per-query or fleet budget.
    pub budget_denied: u64,
    /// Shard requests served through the CPU-only degraded lane.
    pub degraded_cpu: u64,
    /// Shard slots with no live replica at all.
    pub missing_shards: u64,
    /// Shard answers excluded from a merge by the deadline policy.
    pub dropped_shards: u64,
    /// Device-lane occupancy actually billed (cancellation-adjusted).
    pub busy_total: VirtualNanos,
    /// Raw service time of every run issued, winners and losers alike.
    pub service_total: VirtualNanos,
    /// Service time the cancellation of losing hedges gave back.
    pub hedge_cancelled_saved: VirtualNanos,
    /// Sum of per-query coverage fractions.
    pub coverage_sum: f64,
}

impl FleetStats {
    /// Mean coverage over all served queries (1.0 when none served).
    pub fn mean_coverage(&self) -> f64 {
        if self.queries == 0 {
            1.0
        } else {
            self.coverage_sum / self.queries as f64
        }
    }
}

/// One query's trip through the fleet, as returned by [`Fleet::serve`].
#[derive(Debug, Clone)]
pub struct FleetServedQuery {
    pub arrival: VirtualNanos,
    /// Answer instant − arrival (what the client saw).
    pub latency: VirtualNanos,
    /// The merged answer; `output.fleet` is always `Some`.
    pub output: GriffinOutput,
}

/// A served trace: every query answered, in submission order.
#[derive(Debug, Clone, Default)]
pub struct FleetReport {
    pub queries: Vec<FleetServedQuery>,
}

impl FleetReport {
    /// Served latencies, ascending — feed to a percentile helper.
    pub fn sorted_latencies(&self) -> Vec<VirtualNanos> {
        let mut v: Vec<VirtualNanos> = self.queries.iter().map(|q| q.latency).collect();
        v.sort_unstable();
        v
    }

    /// Mean coverage across the trace.
    pub fn mean_coverage(&self) -> f64 {
        if self.queries.is_empty() {
            return 1.0;
        }
        let sum: f64 = self
            .queries
            .iter()
            .map(|q| q.output.fleet.as_ref().map_or(1.0, |f| f.coverage))
            .sum();
        sum / self.queries.len() as f64
    }

    /// Queries whose merge covered every shard.
    pub fn complete_answers(&self) -> usize {
        self.queries
            .iter()
            .filter(|q| q.output.fleet.as_ref().is_none_or(|f| f.complete()))
            .count()
    }
}

/// A per-shard answer before the gather step.
struct ShardAnswer {
    topk: Vec<(u32, f32)>,
    pruning: Option<PruneStats>,
    /// Absolute answer instant; `None` when the shard was missing.
    finish: Option<VirtualNanos>,
    gpu_abandoned: bool,
    status: ShardStatus,
}

/// The scatter–gather coordinator. See the module docs for the
/// policies; [`Fleet::run_query`] serves closed-loop (one query at a
/// time on the fleet clock), [`Fleet::serve`] replays an arrival trace.
pub struct Fleet<'g> {
    config: FleetConfig,
    index: &'g ShardedIndex,
    replicas_per_shard: usize,
    /// Shard-major: `replicas[s * replicas_per_shard + r]`.
    replicas: Vec<Replica<'g>>,
    /// Per-shard answer-latency histograms (telemetry, per-shard tail).
    shard_latency: Vec<Histogram>,
    /// Fleet-wide answer-latency histogram driving hedge deadlines
    /// (pooled across shards — see [`HedgeConfig`]).
    hedge_latency: Histogram,
    /// Fleet-wide hedge tokens (see [`RetryBudgetConfig`]).
    tokens: f64,
    clock: VirtualNanos,
    stats: FleetStats,
    telemetry: Telemetry,
    flight: Option<FlightRecorder>,
}

impl<'g> Fleet<'g> {
    /// Builds one engine per (shard, replica) pair over `index`'s shard
    /// views. `devices` must hold exactly `num_shards × replicas`
    /// devices.
    pub fn new(
        devices: &'g FleetDevices,
        index: &'g ShardedIndex,
        config: FleetConfig,
    ) -> Fleet<'g> {
        let shards = index.num_shards();
        assert_eq!(
            devices.num_devices(),
            shards * devices.replicas(),
            "devices must match shards × replicas"
        );
        let replicas_per_shard = devices.replicas();
        let mut replicas = Vec::with_capacity(shards * replicas_per_shard);
        for s in 0..shards {
            let shard = index.shard(s);
            for r in 0..replicas_per_shard {
                let engine = Griffin::new(devices.device(s, r), shard.meta(), shard.block_len());
                if let Some((entries, bytes)) = config.result_cache {
                    engine.set_result_cache(entries, bytes);
                }
                if let Some(bytes) = config.host_cache_bytes {
                    engine.cpu.set_host_cache_budget(bytes);
                }
                replicas.push(Replica {
                    engine,
                    health: GpuHealth::new(config.breaker),
                    alive: true,
                    busy_until: VirtualNanos::ZERO,
                });
            }
        }
        let flight = config.flight.map(FlightRecorder::new);
        let tokens = config.budget.burst;
        Fleet {
            config,
            index,
            replicas_per_shard,
            replicas,
            shard_latency: (0..shards).map(|_| Histogram::default()).collect(),
            hedge_latency: Histogram::default(),
            tokens,
            clock: VirtualNanos::ZERO,
            stats: FleetStats::default(),
            telemetry: Telemetry::disabled(),
            flight,
        }
    }

    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    pub fn stats(&self) -> &FleetStats {
        &self.stats
    }

    /// The fleet's closed-loop clock (advances in [`Fleet::run_query`]).
    pub fn clock(&self) -> VirtualNanos {
        self.clock
    }

    pub fn num_shards(&self) -> usize {
        self.index.num_shards()
    }

    pub fn replicas_per_shard(&self) -> usize {
        self.replicas_per_shard
    }

    /// Summed result-cache accounting across every replica engine (all
    /// zeros while the per-replica tier is off —
    /// [`FleetConfig::result_cache`]).
    pub fn result_cache_stats(&self) -> ResultCacheStats {
        let mut total = ResultCacheStats::default();
        for rep in &self.replicas {
            if let Some(s) = rep.engine.result_cache_stats() {
                total.hits += s.hits;
                total.misses += s.misses;
                total.evictions += s.evictions;
                total.bytes_resident += s.bytes_resident;
            }
        }
        total
    }

    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    pub fn flight_recorder(&self) -> Option<&FlightRecorder> {
        self.flight.as_ref()
    }

    /// Takes `(shard, replica)` out of the routing set (a crashed or
    /// drained process). Its breaker state is preserved for revival.
    pub fn kill_replica(&mut self, shard: usize, replica: usize) {
        self.replica_mut(shard, replica).alive = false;
    }

    /// Returns a killed replica to the routing set.
    pub fn revive_replica(&mut self, shard: usize, replica: usize) {
        self.replica_mut(shard, replica).alive = true;
    }

    pub fn replica_alive(&self, shard: usize, replica: usize) -> bool {
        self.replica_ref(shard, replica).alive
    }

    pub fn breaker_state(&self, shard: usize, replica: usize) -> BreakerState {
        self.replica_ref(shard, replica).health.state()
    }

    /// Applies `f` to every replica engine (scheduler knobs, recovery
    /// policies) — the fleet analogue of configuring a single engine.
    pub fn tune<F: FnMut(&mut Griffin<'g>)>(&mut self, mut f: F) {
        for rep in &mut self.replicas {
            f(&mut rep.engine);
        }
    }

    /// Applies `f` to one replica's engine — for modelling heterogeneous
    /// fleets (a degraded device with a punishing retry backoff, say).
    pub fn tune_replica<F: FnOnce(&mut Griffin<'g>)>(
        &mut self,
        shard: usize,
        replica: usize,
        f: F,
    ) {
        f(&mut self.replica_mut(shard, replica).engine);
    }

    /// Serves one query closed-loop: it arrives at the fleet clock and
    /// the clock advances to its answer instant.
    pub fn run_query(&mut self, req: &QueryRequest) -> GriffinOutput {
        let arrival = self.clock;
        let (output, answered_at) = self.submit(req, arrival);
        self.clock = self.clock.max(answered_at);
        output
    }

    /// Replays an arrival trace (ascending `arrival`s). Every query is
    /// answered — degradation shows up as coverage, never as a missing
    /// entry.
    pub fn serve(&mut self, queries: &[ArrivingQuery]) -> FleetReport {
        let mut report = FleetReport::default();
        for aq in queries {
            let (output, answered_at) = self.submit(&aq.request, aq.arrival);
            self.clock = self.clock.max(answered_at);
            report.queries.push(FleetServedQuery {
                arrival: aq.arrival,
                latency: answered_at.saturating_sub(aq.arrival),
                output,
            });
        }
        report
    }

    /// Scatter to one replica per shard, gather, merge. Returns the
    /// merged output and the absolute answer instant.
    fn submit(
        &mut self,
        req: &QueryRequest,
        arrival: VirtualNanos,
    ) -> (GriffinOutput, VirtualNanos) {
        let query_index = self.stats.queries as usize;
        self.stats.queries += 1;
        self.tokens =
            (self.tokens + self.config.budget.refill_per_query).min(self.config.budget.burst);
        let mut per_query_hedges = self.config.budget.per_query;

        let shards = self.index.num_shards();
        let mut answers: Vec<ShardAnswer> = Vec::with_capacity(shards);
        for s in 0..shards {
            let answer = self.shard_request(s, req, arrival, &mut per_query_hedges);
            answers.push(answer);
        }

        // Gather: pick the answer instant, applying the partial-results
        // policy only when at least one shard made the deadline (a
        // query is never answered empty while a shard is still coming).
        let slowest = answers.iter().filter_map(|a| a.finish).max();
        let mut answered_at = slowest.unwrap_or(arrival);
        if let (Some(deadline), true, Some(slowest)) =
            (req.deadline, self.config.partial_on_deadline, slowest)
        {
            let cutoff = arrival + deadline;
            let any_on_time = answers
                .iter()
                .any(|a| a.finish.is_some_and(|f| f <= cutoff));
            if slowest > cutoff && any_on_time {
                answered_at = cutoff;
                for a in &mut answers {
                    if a.finish.is_some_and(|f| f > cutoff) {
                        a.status.outcome = ShardOutcome::Dropped;
                        self.stats.dropped_shards += 1;
                        self.telemetry.counter_add("griffin_fleet_dropped_total", 1);
                    }
                }
            }
        }

        let latency = answered_at.saturating_sub(arrival);
        let mut gpu_faults = 0u32;
        let mut gpu_abandoned = false;
        let mut pruning: Option<PruneStats> = None;
        let mut parts: Vec<Vec<(u32, f32)>> = Vec::with_capacity(answers.len());
        for a in &mut answers {
            gpu_faults += a.status.gpu_faults;
            gpu_abandoned |= a.gpu_abandoned;
            if !a.status.outcome.covered() {
                continue;
            }
            parts.push(std::mem::take(&mut a.topk));
            if let Some(p) = a.pruning.take() {
                let agg = pruning.get_or_insert_with(PruneStats::default);
                agg.tf_blocks_total += p.tf_blocks_total;
                agg.tf_blocks_decoded += p.tf_blocks_decoded;
                agg.candidates += p.candidates;
                agg.verified += p.verified;
            }
        }
        let topk = merge_topk(&parts, req.k);

        let statuses: Vec<ShardStatus> = answers.iter().map(|a| a.status).collect();
        let info = FleetInfo::from_statuses(statuses);
        self.stats.coverage_sum += info.coverage;
        if let Some(rec) = self.telemetry.recorder() {
            rec.registry.observe(
                "griffin_fleet_coverage_bp",
                (info.coverage * 10_000.0) as u64,
            );
        }
        self.record_flight(query_index, latency, &info);

        let output = GriffinOutput {
            // One coarse coordinator step spanning the whole answer
            // keeps the step-sum invariant (steps sum to `time`).
            steps: vec![StepTrace {
                op: StepOp::Exec,
                proc: Proc::Cpu,
                time: latency,
                inter_len: topk.len(),
            }],
            topk,
            time: latency,
            gpu_faults,
            gpu_abandoned,
            pruning,
            fleet: Some(info),
            result_cache_hit: false,
        };
        (output, answered_at)
    }

    /// Runs one shard's slice of the query: route, hedge, account.
    fn shard_request(
        &mut self,
        s: usize,
        req: &QueryRequest,
        issue: VirtualNanos,
        per_query_hedges: &mut u32,
    ) -> ShardAnswer {
        let live: Vec<usize> = (0..self.replicas_per_shard)
            .filter(|&r| self.replica_ref(s, r).alive)
            .collect();
        if live.is_empty() {
            self.stats.missing_shards += 1;
            self.telemetry.counter_add("griffin_fleet_missing_total", 1);
            return ShardAnswer {
                topk: Vec::new(),
                pruning: None,
                finish: None,
                gpu_abandoned: false,
                status: ShardStatus {
                    shard: s,
                    replica: None,
                    outcome: ShardOutcome::Missing,
                    latency: VirtualNanos::ZERO,
                    hedged: false,
                    hedge_won: false,
                    gpu_faults: 0,
                },
            };
        }

        // Breaker gate: each live replica is probed at the instant it
        // would start this query, which is also what lets an open
        // breaker half-open once its cooldown has passed.
        let uses_gpu = req.mode != ExecMode::CpuOnly;
        let candidates: Vec<usize> = if uses_gpu {
            live.iter()
                .copied()
                .filter(|&r| {
                    let start = self.replica_ref(s, r).busy_until.max(issue);
                    self.replica_mut(s, r).health.allow_gpu(start)
                })
                .collect()
        } else {
            live.clone()
        };

        if candidates.is_empty() {
            // Every live replica's GPU lane is out: CPU-only degraded
            // lane. Results stay exact — only the latency differs.
            return self.run_degraded_cpu(s, req, issue, &live);
        }

        let primary = self.least_busy(s, &candidates);
        let (start_p, finish_p, out_p) = self.run_on(s, primary, req, issue);
        let latency_p = finish_p - issue;

        // Hedge decision: the primary's answer outstanding past the
        // fleet's latency deadline, budgets permitting, and a second
        // candidate exists. The hedge is issued the moment the request
        // becomes overdue (issue + deadline) on the twin's own FIFO
        // lane, so it dodges the primary's backlog as well as a slow
        // execution.
        let mut hedged = false;
        let mut hedge_won = false;
        let mut winner = (primary, start_p, finish_p, out_p);
        let mut loser: Option<(usize, VirtualNanos, VirtualNanos)> = None;
        if self.config.hedge.enabled && candidates.len() > 1 {
            if let Some(deadline) = self.hedge_deadline() {
                if latency_p > deadline {
                    if *per_query_hedges > 0 && self.tokens >= 1.0 {
                        *per_query_hedges -= 1;
                        self.tokens -= 1.0;
                        hedged = true;
                        self.stats.hedges += 1;
                        self.telemetry.counter_add("griffin_fleet_hedges_total", 1);
                        let others: Vec<usize> = candidates
                            .iter()
                            .copied()
                            .filter(|&r| r != primary)
                            .collect();
                        let second = self.least_busy(s, &others);
                        let (start_h, finish_h, out_h) =
                            self.run_on(s, second, req, issue + deadline);
                        if finish_h < finish_p {
                            hedge_won = true;
                            self.stats.hedge_wins += 1;
                            self.telemetry
                                .counter_add("griffin_fleet_hedge_wins_total", 1);
                            loser = Some((primary, start_p, finish_p - start_p));
                            winner = (second, start_h, finish_h, out_h);
                        } else {
                            loser = Some((second, start_h, finish_h - start_h));
                        }
                    } else {
                        self.stats.budget_denied += 1;
                        self.telemetry
                            .counter_add("griffin_fleet_budget_denied_total", 1);
                    }
                }
            }
        }

        // Winner billed in full; loser cancelled at the winner's finish
        // and billed only for time actually burned.
        let (win_r, win_start, win_finish, win_out) = winner;
        {
            let rep = self.replica_mut(s, win_r);
            rep.busy_until = win_finish;
            if uses_gpu {
                // The breaker keys on *exhausted* recovery — the engine
                // abandoning the device — not on transient faults the
                // retry layer absorbed. At a few-percent per-op fault
                // rate nearly every request sees a recovered hiccup;
                // tripping on those would collapse the fleet's GPU
                // capacity exactly when it still works.
                rep.health.record(win_finish, win_out.gpu_abandoned);
            }
        }
        self.stats.busy_total += win_finish - win_start;
        if let Some((lose_r, lose_start, lose_service)) = loser {
            let charged = if lose_start >= win_finish {
                VirtualNanos::ZERO
            } else {
                let c = win_finish - lose_start;
                self.replica_mut(s, lose_r).busy_until = win_finish;
                c
            };
            debug_assert!(
                charged <= lose_service,
                "a loser never bills past its own run"
            );
            self.stats.busy_total += charged;
            let saved = lose_service - charged;
            self.stats.hedge_cancelled_saved += saved;
            self.telemetry
                .counter_add("griffin_fleet_hedge_cancelled_ns_total", saved.as_nanos());
        }

        let latency = win_finish - issue;
        self.shard_latency[s].record(latency.as_nanos());
        self.hedge_latency.record(latency.as_nanos());
        self.telemetry.observe_duration(
            &format!("griffin_fleet_shard_latency_ns{{shard=\"{s}\"}}"),
            latency,
        );
        ShardAnswer {
            topk: win_out.topk,
            pruning: win_out.pruning,
            finish: Some(win_finish),
            gpu_abandoned: win_out.gpu_abandoned,
            status: ShardStatus {
                shard: s,
                replica: Some(win_r),
                outcome: ShardOutcome::Answered,
                latency,
                hedged,
                hedge_won,
                gpu_faults: win_out.gpu_faults,
            },
        }
    }

    /// The all-breakers-open path: run the query CPU-only on the least
    /// busy live replica. Bit-exact with the GPU'd answer by the
    /// engine's mode-invariance contract.
    fn run_degraded_cpu(
        &mut self,
        s: usize,
        req: &QueryRequest,
        issue: VirtualNanos,
        live: &[usize],
    ) -> ShardAnswer {
        let r = self.least_busy(s, live);
        let cpu_req = req.clone().mode(ExecMode::CpuOnly);
        let (start, finish, out) = self.run_on(s, r, &cpu_req, issue);
        {
            let rep = self.replica_mut(s, r);
            rep.busy_until = finish;
            rep.health.note_degraded();
        }
        self.stats.busy_total += finish - start;
        self.stats.degraded_cpu += 1;
        self.telemetry
            .counter_add("griffin_fleet_degraded_cpu_total", 1);
        let latency = finish - issue;
        self.shard_latency[s].record(latency.as_nanos());
        self.hedge_latency.record(latency.as_nanos());
        self.telemetry.observe_duration(
            &format!("griffin_fleet_shard_latency_ns{{shard=\"{s}\"}}"),
            latency,
        );
        ShardAnswer {
            topk: out.topk,
            pruning: out.pruning,
            finish: Some(finish),
            gpu_abandoned: out.gpu_abandoned,
            status: ShardStatus {
                shard: s,
                replica: Some(r),
                outcome: ShardOutcome::AnsweredCpuOnly,
                latency,
                hedged: false,
                hedge_won: false,
                gpu_faults: out.gpu_faults,
            },
        }
    }

    /// Runs `req` on `(s, r)` starting no earlier than `not_before`
    /// (FIFO behind the replica's queue). Returns (start, finish, out)
    /// without committing `busy_until` — the caller decides billing.
    fn run_on(
        &mut self,
        s: usize,
        r: usize,
        req: &QueryRequest,
        not_before: VirtualNanos,
    ) -> (VirtualNanos, VirtualNanos, GriffinOutput) {
        let index = self.index;
        let rep = self.replica_ref(s, r);
        let start = rep.busy_until.max(not_before);
        let out = rep.engine.run(index.shard(s), req);
        self.stats.service_total += out.time;
        let finish = start + out.time;
        (start, finish, out)
    }

    /// The hedge deadline, once enough answer-latency samples exist
    /// (see [`HedgeConfig`]: fleet-wide pooled latencies).
    fn hedge_deadline(&self) -> Option<VirtualNanos> {
        let hist = &self.hedge_latency;
        if hist.count() < self.config.hedge.min_samples {
            return None;
        }
        let q = hist.quantile(self.config.hedge.quantile) as f64 * self.config.hedge.multiplier;
        Some(VirtualNanos::from_nanos_f64(q).max(self.config.hedge.min_deadline))
    }

    fn least_busy(&self, s: usize, among: &[usize]) -> usize {
        *among
            .iter()
            .min_by_key(|&&r| (self.replica_ref(s, r).busy_until, r))
            .expect("candidate set is nonempty")
    }

    fn record_flight(&mut self, query_index: usize, latency: VirtualNanos, info: &FleetInfo) {
        let Some(recorder) = &mut self.flight else {
            return;
        };
        let straggler = info
            .shards
            .iter()
            .filter(|st| st.outcome.covered())
            .max_by_key(|st| (st.latency, st.shard))
            .map(|st| st.shard);
        let shards: Vec<ShardVerdict> = info
            .shards
            .iter()
            .map(|st| ShardVerdict {
                shard: st.shard,
                replica: st.replica,
                latency: st.latency,
                hedged: st.hedged,
                hedge_won: st.hedge_won,
                straggler: Some(st.shard) == straggler,
            })
            .collect();
        let service = info
            .shards
            .iter()
            .filter(|st| st.outcome.covered())
            .map(|st| st.latency)
            .max()
            .unwrap_or(VirtualNanos::ZERO);
        let cause = match straggler.map(|s| info.shards[s].outcome) {
            Some(ShardOutcome::AnsweredCpuOnly) => Cause::CpuCompute,
            _ => Cause::GpuCompute,
        };
        let degraded = info
            .shards
            .iter()
            .any(|st| st.outcome != ShardOutcome::Answered);
        recorder.observe(FlightRecord {
            query_index,
            trace_query: None,
            outcome: if degraded {
                Outcome::Degraded
            } else {
                Outcome::Completed
            },
            latency,
            service,
            queue_wait: latency.saturating_sub(service),
            verdict: Verdict {
                cause,
                dominant: service,
                total: latency,
                cache_flips: 0,
            },
            profile: None,
            shards,
        });
    }

    /// Tears every engine down, releasing cached device memory — after
    /// this, [`FleetDevices::mem_in_use`] must report zero (the benches
    /// use this as a leak check).
    pub fn shutdown(self) {
        for rep in self.replicas {
            rep.engine.gpu.shutdown();
        }
    }

    fn replica_ref(&self, s: usize, r: usize) -> &Replica<'g> {
        &self.replicas[s * self.replicas_per_shard + r]
    }

    fn replica_mut(&mut self, s: usize, r: usize) -> &mut Replica<'g> {
        &mut self.replicas[s * self.replicas_per_shard + r]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use griffin_gpu_sim::FaultPlan;
    use griffin_index::{InvertedIndex, TermId};
    use griffin_workload::{build_list_index, ListIndexSpec, QueryLogSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn workload() -> (InvertedIndex, Vec<Vec<TermId>>) {
        let mut rng = StdRng::seed_from_u64(7);
        let spec = ListIndexSpec {
            num_terms: 24,
            num_docs: 400_000,
            max_list_len: 80_000,
            ..Default::default()
        };
        let (index, _) = build_list_index(&spec, &mut rng);
        let queries = QueryLogSpec {
            num_queries: 24,
            ..Default::default()
        }
        .generate(&index, &mut rng);
        (index, queries)
    }

    fn docids(topk: &[(u32, f32)]) -> Vec<u32> {
        topk.iter().map(|&(d, _)| d).collect()
    }

    #[test]
    fn fleet_answers_match_the_unsharded_engine_bit_for_bit() {
        let (index, queries) = workload();
        let sharded = ShardedIndex::build(&index, 3);
        let devices = FleetDevices::new(3, 2, &DeviceConfig::test_tiny());
        let mut fleet = Fleet::new(&devices, &sharded, FleetConfig::default());

        let single_gpu = Gpu::new(DeviceConfig::test_tiny());
        let single = Griffin::new(&single_gpu, index.meta(), index.block_len());

        for q in &queries {
            let req = QueryRequest::new(q.clone()).k(10);
            let fleet_out = fleet.run_query(&req);
            let single_out = single.run(&index, &req);
            assert_eq!(
                fleet_out.topk, single_out.topk,
                "merged top-k must be bit-exact"
            );
            let info = fleet_out.fleet.expect("fleet answers carry coverage info");
            assert_eq!(info.coverage, 1.0);
            assert!(info.complete());
            assert_eq!(info.shards.len(), 3);
            // Step-sum invariant: the coordinator step spans the answer.
            let step_sum: VirtualNanos = fleet_out.steps.iter().map(|s| s.time).sum();
            assert_eq!(step_sum, fleet_out.time);
        }
        let stats = *fleet.stats();
        assert_eq!(stats.queries, queries.len() as u64);
        assert_eq!(
            stats.busy_total,
            stats.service_total - stats.hedge_cancelled_saved,
            "cancellation accounting must balance"
        );
    }

    #[test]
    fn losing_a_whole_shard_degrades_coverage_without_silent_drops() {
        let (index, queries) = workload();
        let sharded = ShardedIndex::build(&index, 4);
        let devices = FleetDevices::new(4, 2, &DeviceConfig::test_tiny());
        let mut fleet = Fleet::new(&devices, &sharded, FleetConfig::default());
        fleet.kill_replica(1, 0);
        fleet.kill_replica(1, 1);

        let lost = sharded.range(1);
        for q in &queries {
            let req = QueryRequest::new(q.clone()).k(10);
            let out = fleet.run_query(&req);
            let info = out.fleet.expect("coverage info");
            assert_eq!(info.coverage, 0.75);
            assert_eq!(info.shards[1].outcome, ShardOutcome::Missing);
            assert_eq!(info.shards[1].replica, None);
            assert!(
                info.shards.iter().all(|st| st.shard < 4),
                "every shard accounted"
            );
            for d in docids(&out.topk) {
                assert!(!lost.contains(&d), "a missing shard's docs cannot appear");
            }
        }
        assert_eq!(fleet.stats().missing_shards, queries.len() as u64);
    }

    #[test]
    fn open_breakers_degrade_a_shard_to_its_cpu_lane_with_exact_results() {
        let (index, queries) = workload();
        let sharded = ShardedIndex::build(&index, 2);
        let devices = FleetDevices::new(2, 2, &DeviceConfig::test_tiny());
        // Both of shard 0's devices fault on every op: breakers trip,
        // then the shard must keep answering through the CPU lane.
        devices
            .device(0, 0)
            .set_fault_plan(Some(FaultPlan::seeded(3).with_fault_rate(1.0)));
        devices
            .device(0, 1)
            .set_fault_plan(Some(FaultPlan::seeded(4).with_fault_rate(1.0)));
        let config = FleetConfig {
            breaker: BreakerConfig {
                window: 4,
                failure_threshold: 0.5,
                min_samples: 2,
                cooldown: VirtualNanos::from_millis(500),
                canary_successes: 2,
            },
            ..FleetConfig::default()
        };
        let mut fleet = Fleet::new(&devices, &sharded, config);

        let single_gpu = Gpu::new(DeviceConfig::test_tiny());
        let single = Griffin::new(&single_gpu, index.meta(), index.block_len());
        let mut degraded_seen = false;
        for q in &queries {
            // GpuOnly keeps the scheduler from routing the (smaller)
            // shard slices to the CPU, so the faulting devices are hit.
            let req = QueryRequest::new(q.clone()).k(10).mode(ExecMode::GpuOnly);
            let out = fleet.run_query(&req);
            let cpu = single.run(&index, &req.clone().mode(ExecMode::CpuOnly));
            assert_eq!(
                docids(&out.topk),
                docids(&cpu.topk),
                "degraded lane stays exact"
            );
            let info = out.fleet.expect("coverage info");
            assert_eq!(info.coverage, 1.0, "breaker trips must not cost coverage");
            degraded_seen |= info.shards[0].outcome == ShardOutcome::AnsweredCpuOnly;
        }
        assert!(degraded_seen, "shard 0 should have hit the CPU-only lane");
        assert!(fleet.stats().degraded_cpu > 0);
    }

    #[test]
    fn deadline_pressure_yields_partial_answers_with_honest_coverage() {
        let (index, queries) = workload();
        let sharded = ShardedIndex::build(&index, 3);
        let devices = FleetDevices::new(3, 1, &DeviceConfig::test_tiny());
        let mut fleet = Fleet::new(&devices, &sharded, FleetConfig::default());

        // Warm once to learn typical latency, then set a deadline below
        // the straggler's answer time.
        let warm = fleet.run_query(&QueryRequest::new(queries[0].clone()).k(10));
        let tight = VirtualNanos::from_nanos((warm.time.as_nanos() / 2).max(1));
        let mut partials = 0;
        for q in &queries {
            let req = QueryRequest::new(q.clone()).k(10).deadline(tight);
            let out = fleet.run_query(&req);
            let info = out.fleet.expect("coverage info");
            assert!(
                !out.topk.is_empty() || info.coverage == 0.0,
                "always answer"
            );
            if info.coverage < 1.0 {
                partials += 1;
                assert!(info
                    .shards
                    .iter()
                    .any(|st| st.outcome == ShardOutcome::Dropped));
                assert!(out.time <= tight, "partial answers honor the deadline");
            }
        }
        assert_eq!(
            fleet.stats().dropped_shards > 0,
            partials > 0,
            "drops and partials must agree"
        );
    }
}
