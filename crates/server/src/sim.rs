//! The serving-pipeline discrete-event simulator.
//!
//! Extends the core [`griffin::serving::ServingSim`] model (N CPU cores +
//! one GPU, stages interleaving in ready-time order) with the three
//! disciplines a single shared GPU needs to survive concurrent load:
//!
//! * an **admission queue** — at most [`AdmissionConfig::capacity`]
//!   queries in flight, the rest shed;
//! * an **overload policy** — arrivals that would deepen an
//!   already-backlogged GPU queue are shed or degraded to their CPU-only
//!   schedule ([`OverloadPolicy`]);
//! * a **batch packer** — adjacent small GPU stages from different
//!   queries coalesce into one launch, amortizing the fixed per-stage
//!   overheads the device model charges ([`BatchConfig`]).
//!
//! With admission unbounded and batching disabled the schedule reduces
//! exactly to the core simulator's: greedy earliest-available-core for
//! CPU stages, FIFO single-server GPU. An unloaded single query finishes
//! in exactly the sum of its stage durations — the serving pipeline's
//! bit-exactness guarantee.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

use griffin::serving::{Resource, StageReq};
use griffin_gpu_sim::VirtualNanos;
use griffin_telemetry::{SpanEvent, Timeline};

use crate::admission::{AdmissionConfig, Outcome, OverloadPolicy, ServedQuery};
use crate::batch::BatchConfig;

/// One query as the simulator sees it: an arrival, a measured stage
/// schedule, and the admission metadata.
#[derive(Debug, Clone)]
pub struct SimJob {
    pub arrival: VirtualNanos,
    /// The measured schedule (from the trace → stage bridge).
    pub stages: Vec<StageReq>,
    /// Measured CPU-only service time, the degrade target. `None` means
    /// the job cannot degrade (it is shed instead under overload).
    pub cpu_fallback: Option<VirtualNanos>,
    /// Latency budget relative to arrival.
    pub deadline: Option<VirtualNanos>,
    /// Virtual cost of answering this query from the result cache, when
    /// the cache held a (possibly stale) entry at planning time. `None`
    /// means no cached answer exists. Only consulted when
    /// [`AdmissionConfig::serve_stale`] is on and the query would
    /// otherwise be shed.
    pub stale_available: Option<VirtualNanos>,
    /// Single-flight identity: jobs sharing a key are the same canonical
    /// query. While one holder of a key is in flight, later arrivals
    /// with the same key coalesce onto it — they consume no capacity or
    /// execution resources and complete when the leader does
    /// ([`Outcome::Coalesced`]). `None` opts out of coalescing.
    pub coalesce_key: Option<u64>,
}

/// Simulator configuration.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// CPU worker cores (paper testbed: 4).
    pub cpu_workers: usize,
    pub admission: AdmissionConfig,
    /// GPU batch packing; `None` launches every stage individually.
    pub batching: Option<BatchConfig>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            cpu_workers: 4,
            admission: AdmissionConfig::default(),
            batching: None,
        }
    }
}

/// Aggregate counters of one simulation run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimStats {
    pub admitted: usize,
    pub shed: usize,
    pub degraded: usize,
    /// Queries with a deadline that finished after it (shed queries with
    /// a deadline also count as missed).
    pub deadline_missed: usize,
    /// GPU launches issued (a batch is one launch).
    pub gpu_launches: u64,
    /// GPU stages executed (batched or not).
    pub gpu_stages: u64,
    /// Largest number of stages coalesced into one launch.
    pub max_batch_occupancy: usize,
    /// Device time saved by batching (sum of per-member overheads not
    /// paid).
    pub gpu_time_saved: VirtualNanos,
    /// Device time saved by copy/compute overlap inside batches: each
    /// member's upload ships on the copy engine while the previous
    /// member's kernels compute (see [`BatchConfig::copy_fraction`]).
    pub gpu_overlap_saved: VirtualNanos,
    /// Deepest GPU queue observed (waiting + running stages).
    pub max_gpu_queue_depth: usize,
    /// Host-core time consumed by the CPU lanes of co-executed split
    /// intersections running in the shadow of their GPU stages.
    pub cpu_shadow_busy: VirtualNanos,
    /// Queries that would have been shed but were answered (flagged)
    /// from the result cache instead ([`Outcome::ServedStale`]).
    pub served_stale: usize,
    /// Queries that coalesced onto an identical in-flight leader
    /// instead of executing ([`Outcome::Coalesced`]).
    pub coalesced: usize,
}

impl SimStats {
    /// Mean stages per GPU launch (1.0 when batching never coalesced).
    pub fn mean_batch_occupancy(&self) -> f64 {
        if self.gpu_launches == 0 {
            0.0
        } else {
            self.gpu_stages as f64 / self.gpu_launches as f64
        }
    }
}

/// Everything a simulation run produces.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Per-query results, in job order.
    pub queries: Vec<ServedQuery>,
    pub stats: SimStats,
    /// The executed schedule (batched GPU members share their launch's
    /// span interval).
    pub timeline: Timeline,
}

/// Event kinds, ordered so that at equal timestamps arrivals enqueue
/// first, freshly ready stages join the GPU queue second, and the GPU
/// dispatcher fires last — maximizing (deterministic) batching.
const EV_ARRIVE: u8 = 0;
const EV_READY: u8 = 1;
const EV_DISPATCH: u8 = 2;

/// One stage waiting in the GPU queue.
struct QueuedStage {
    job: usize,
    stage: usize,
    ready: VirtualNanos,
    duration: VirtualNanos,
    /// Concurrent host-lane time (a co-executed split's CPU slice).
    cpu_shadow: VirtualNanos,
}

/// The serving simulator. Create one per run.
pub struct ServerSim {
    config: SimConfig,
}

impl ServerSim {
    pub fn new(config: SimConfig) -> ServerSim {
        assert!(config.cpu_workers > 0, "need at least one CPU worker");
        if let Some(b) = &config.batching {
            assert!(b.max_batch >= 1, "max_batch of 0 would stall the GPU");
        }
        ServerSim { config }
    }

    /// Runs all jobs to completion (or shedding) and reports per-query
    /// outcomes, aggregate stats, and the executed timeline.
    pub fn run(&self, jobs: &[SimJob]) -> SimReport {
        let mut heap: BinaryHeap<Reverse<(VirtualNanos, u8, usize, usize)>> = BinaryHeap::new();
        for (j, job) in jobs.iter().enumerate() {
            heap.push(Reverse((job.arrival, EV_ARRIVE, j, 0)));
        }

        // Effective schedule per job (replaced on degrade).
        let mut schedules: Vec<Option<Vec<StageReq>>> = vec![None; jobs.len()];
        let mut results: Vec<ServedQuery> = jobs
            .iter()
            .map(|_| ServedQuery {
                outcome: Outcome::Shed,
                latency: None,
                deadline_met: None,
            })
            .collect();

        let mut cpu_free = vec![VirtualNanos::ZERO; self.config.cpu_workers];
        let mut gpu_free = VirtualNanos::ZERO;
        let mut gpu_queue: VecDeque<QueuedStage> = VecDeque::new();
        let mut running_batch = 0usize;
        let mut in_flight = 0usize;
        // Single-flight bookkeeping: which job currently leads each
        // coalesce key, and which followers ride on each leader.
        let mut leaders: HashMap<u64, usize> = HashMap::new();
        let mut followers: Vec<Vec<usize>> = vec![Vec::new(); jobs.len()];

        let mut stats = SimStats::default();
        let mut timeline = Timeline::default();

        while let Some(Reverse((now, kind, j, stage_idx))) = heap.pop() {
            match kind {
                EV_ARRIVE => {
                    let job = &jobs[j];
                    let gpu_depth =
                        gpu_queue.len() + if now < gpu_free { running_batch } else { 0 };
                    stats.max_gpu_queue_depth = stats.max_gpu_queue_depth.max(gpu_depth);
                    let wants_gpu = job.stages.iter().any(|s| s.resource == Resource::Gpu);

                    // Single-flight: an identical query already in
                    // flight absorbs this arrival — no capacity slot, no
                    // stages, no stampede. It completes when the leader
                    // does.
                    if let Some(key) = job.coalesce_key {
                        if let Some(&leader) = leaders.get(&key) {
                            followers[leader].push(j);
                            results[j].outcome = Outcome::Coalesced;
                            stats.coalesced += 1;
                            continue;
                        }
                    }

                    if in_flight >= self.config.admission.capacity {
                        Self::shed_or_stale(
                            &self.config.admission,
                            job,
                            &mut results[j],
                            &mut stats,
                        );
                        continue; // results[j] says Shed (or ServedStale).
                    }
                    let mut schedule = job.stages.clone();
                    let mut outcome = Outcome::Completed;
                    if wants_gpu && gpu_depth > self.config.admission.gpu_depth_threshold {
                        match (self.config.admission.policy, job.cpu_fallback) {
                            (OverloadPolicy::DegradeToCpuOnly, Some(fallback)) => {
                                schedule = vec![StageReq::new(Resource::Cpu, fallback)];
                                outcome = Outcome::Degraded;
                                stats.degraded += 1;
                            }
                            _ => {
                                Self::shed_or_stale(
                                    &self.config.admission,
                                    job,
                                    &mut results[j],
                                    &mut stats,
                                );
                                continue;
                            }
                        }
                    }
                    stats.admitted += 1;
                    in_flight += 1;
                    results[j].outcome = outcome;
                    schedules[j] = Some(schedule);
                    if let Some(key) = job.coalesce_key {
                        leaders.insert(key, j);
                    }
                    heap.push(Reverse((now, EV_READY, j, 0)));
                }
                EV_READY => {
                    let schedule = schedules[j].as_ref().expect("admitted before ready");
                    if stage_idx >= schedule.len() {
                        // Job complete.
                        in_flight -= 1;
                        let latency = now - jobs[j].arrival;
                        results[j].latency = Some(latency);
                        results[j].deadline_met = jobs[j].deadline.map(|d| latency <= d);
                        if results[j].deadline_met == Some(false) {
                            stats.deadline_missed += 1;
                        }
                        // Release the single-flight key and complete
                        // every coalesced follower at this instant.
                        if let Some(key) = jobs[j].coalesce_key {
                            if leaders.get(&key) == Some(&j) {
                                leaders.remove(&key);
                            }
                        }
                        for &f in &followers[j] {
                            let fl = now - jobs[f].arrival;
                            results[f].latency = Some(fl);
                            results[f].deadline_met = jobs[f].deadline.map(|d| fl <= d);
                            if results[f].deadline_met == Some(false) {
                                stats.deadline_missed += 1;
                            }
                        }
                        continue;
                    }
                    let stage = schedule[stage_idx];
                    match stage.resource {
                        Resource::Cpu => {
                            let core = cpu_free
                                .iter()
                                .enumerate()
                                .min_by_key(|&(_, &t)| t)
                                .map(|(i, _)| i)
                                .expect("at least one core");
                            let start = now.max(cpu_free[core]);
                            let end = start + stage.duration;
                            cpu_free[core] = end;
                            timeline.push(SpanEvent {
                                resource: "cpu",
                                lane: core,
                                job: j,
                                stage: stage_idx,
                                ready: now,
                                start,
                                end,
                            });
                            heap.push(Reverse((end, EV_READY, j, stage_idx + 1)));
                        }
                        Resource::Gpu => {
                            gpu_queue.push_back(QueuedStage {
                                job: j,
                                stage: stage_idx,
                                ready: now,
                                duration: stage.duration,
                                cpu_shadow: stage.cpu_shadow,
                            });
                            heap.push(Reverse((now.max(gpu_free), EV_DISPATCH, 0, 0)));
                        }
                    }
                }
                EV_DISPATCH => {
                    if gpu_queue.is_empty() {
                        continue;
                    }
                    if now < gpu_free {
                        // Still executing an earlier launch; a dispatch is
                        // already scheduled at `gpu_free` by that launch.
                        continue;
                    }
                    stats.max_gpu_queue_depth = stats.max_gpu_queue_depth.max(gpu_queue.len());
                    let batch = self.take_batch(&mut gpu_queue);
                    running_batch = batch.len();
                    stats.gpu_launches += 1;
                    stats.gpu_stages += batch.len() as u64;
                    stats.max_batch_occupancy = stats.max_batch_occupancy.max(batch.len());
                    // Members execute within the one submission; every
                    // member after the first shaves its fixed per-stage
                    // overhead, and — with a copy fraction configured —
                    // ships its list on the copy engine while the
                    // previous member's kernels compute. Each member's
                    // result is ready when its own compute completes, so
                    // packing never delays anyone.
                    let mut copy_done = now;
                    let mut compute_end = now;
                    let mut serial_end = now;
                    for (i, member) in batch.into_iter().enumerate() {
                        let saved = match (&self.config.batching, i) {
                            (Some(b), 1..) => b.saving_for(member.duration),
                            _ => VirtualNanos::ZERO,
                        };
                        stats.gpu_time_saved += saved;
                        let effective = member.duration - saved;
                        let (copy, compute) = match &self.config.batching {
                            // A co-executed split ships only its GPU
                            // slice and pipelines that upload inside the
                            // engine's own streams, so the packer has no
                            // separate copy phase to overlap for it.
                            Some(b) if member.cpu_shadow == VirtualNanos::ZERO => {
                                b.split(effective)
                            }
                            _ => (VirtualNanos::ZERO, effective),
                        };
                        copy_done += copy;
                        let span_start = compute_end;
                        let end = copy_done.max(compute_end) + compute;
                        serial_end += effective;
                        timeline.push(SpanEvent {
                            resource: "gpu",
                            lane: 0,
                            job: member.job,
                            stage: member.stage,
                            ready: member.ready,
                            start: span_start,
                            end,
                        });
                        if member.cpu_shadow > VirtualNanos::ZERO {
                            // The split's host lane runs concurrently
                            // with its device slice on the earliest-free
                            // core. It never delays the stage itself (the
                            // recorded duration is already the max of the
                            // lanes), but under load it consumes core
                            // time other queries then queue behind.
                            let core = cpu_free
                                .iter()
                                .enumerate()
                                .min_by_key(|&(_, &t)| t)
                                .map(|(i, _)| i)
                                .expect("at least one core");
                            let s = span_start.max(cpu_free[core]);
                            let e = s + member.cpu_shadow;
                            cpu_free[core] = e;
                            stats.cpu_shadow_busy += member.cpu_shadow;
                            timeline.push(SpanEvent {
                                resource: "cpu",
                                lane: core,
                                job: member.job,
                                stage: member.stage,
                                ready: span_start,
                                start: s,
                                end: e,
                            });
                        }
                        heap.push(Reverse((end, EV_READY, member.job, member.stage + 1)));
                        compute_end = end;
                    }
                    stats.gpu_overlap_saved += serial_end - compute_end;
                    gpu_free = compute_end;
                    if !gpu_queue.is_empty() {
                        heap.push(Reverse((compute_end, EV_DISPATCH, 0, 0)));
                    }
                }
                _ => unreachable!("unknown event kind"),
            }
        }

        SimReport {
            queries: results,
            stats,
            timeline,
        }
    }

    /// Sheds one arrival — unless the serve-stale policy is on and the
    /// result cache held an answer at planning time, in which case the
    /// query is answered from the cache at its lookup cost, explicitly
    /// flagged [`Outcome::ServedStale`]. The latency is the lookup cost
    /// alone: the cache probe bypasses the queues that shed it.
    fn shed_or_stale(
        admission: &AdmissionConfig,
        job: &SimJob,
        result: &mut ServedQuery,
        stats: &mut SimStats,
    ) {
        if admission.serve_stale {
            if let Some(cost) = job.stale_available {
                result.outcome = Outcome::ServedStale;
                result.latency = Some(cost);
                result.deadline_met = job.deadline.map(|d| cost <= d);
                stats.served_stale += 1;
                if result.deadline_met == Some(false) {
                    stats.deadline_missed += 1;
                }
                return;
            }
        }
        stats.shed += 1;
        if job.deadline.is_some() {
            stats.deadline_missed += 1;
        }
    }

    /// Pops the next launch off the queue head: a single stage, or — with
    /// batching enabled and a *small* stage at the head — the maximal run
    /// of adjacent small stages up to `max_batch`.
    fn take_batch(&self, queue: &mut VecDeque<QueuedStage>) -> Vec<QueuedStage> {
        let head = queue.pop_front().expect("checked non-empty");
        let Some(b) = &self.config.batching else {
            return vec![head];
        };
        if !b.is_small(head.duration) {
            return vec![head];
        }
        let mut batch = vec![head];
        while batch.len() < b.max_batch {
            match queue.front() {
                Some(next) if b.is_small(next.duration) => {
                    batch.push(queue.pop_front().expect("front exists"));
                }
                _ => break,
            }
        }
        batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(v: u64) -> VirtualNanos {
        VirtualNanos::from_nanos(v)
    }

    fn cpu(d: u64) -> StageReq {
        StageReq::new(Resource::Cpu, ns(d))
    }

    fn gpu(d: u64) -> StageReq {
        StageReq::new(Resource::Gpu, ns(d))
    }

    /// A co-executed split stage: GPU lane `d`, concurrent host lane
    /// `shadow` (`shadow <= d` by the engine's max-of-lanes accounting).
    fn split(d: u64, shadow: u64) -> StageReq {
        StageReq {
            resource: Resource::Gpu,
            duration: ns(d),
            cpu_shadow: ns(shadow),
        }
    }

    fn job(arrival: u64, stages: Vec<StageReq>) -> SimJob {
        SimJob {
            arrival: ns(arrival),
            stages,
            cpu_fallback: None,
            deadline: None,
            stale_available: None,
            coalesce_key: None,
        }
    }

    #[test]
    fn unloaded_query_latency_is_exact_stage_sum() {
        let sim = ServerSim::new(SimConfig::default());
        let report = sim.run(&[job(0, vec![gpu(1_000), cpu(500), gpu(250)])]);
        assert_eq!(report.queries[0].latency, Some(ns(1_750)));
        assert_eq!(report.queries[0].outcome, Outcome::Completed);
    }

    #[test]
    fn unloaded_exactness_survives_batching() {
        let sim = ServerSim::new(SimConfig {
            batching: Some(BatchConfig {
                max_batch: 8,
                small_stage: ns(u64::MAX),
                per_stage_overhead: ns(10_000),
                copy_fraction: 0.5,
            }),
            ..Default::default()
        });
        // A lone query's stages are sequential — never in the queue
        // together — so batching must not alter its latency.
        let report = sim.run(&[job(0, vec![gpu(1_000), cpu(500), gpu(250)])]);
        assert_eq!(report.queries[0].latency, Some(ns(1_750)));
        assert_eq!(report.stats.gpu_time_saved, VirtualNanos::ZERO);
        assert_eq!(report.stats.gpu_overlap_saved, VirtualNanos::ZERO);
    }

    #[test]
    fn batched_members_overlap_copy_with_previous_compute() {
        let b = BatchConfig {
            max_batch: 4,
            small_stage: ns(10_000),
            per_stage_overhead: ns(0),
            copy_fraction: 0.5,
        };
        let sim = ServerSim::new(SimConfig {
            cpu_workers: 1,
            admission: AdmissionConfig::default(),
            batching: Some(b),
        });
        // A long head stage parks the GPU; three 1µs members coalesce
        // behind it. Each member's 500ns copy ships under the previous
        // member's 500ns compute, so every member after the first adds
        // only its compute to the chain.
        let jobs = vec![
            job(0, vec![gpu(100_000)]),
            job(1, vec![gpu(1_000)]),
            job(2, vec![gpu(1_000)]),
            job(3, vec![gpu(1_000)]),
        ];
        let report = sim.run(&jobs);
        assert_eq!(report.stats.gpu_launches, 2);
        assert_eq!(report.stats.max_batch_occupancy, 3);
        // Serial concatenation would take 3µs; the pipeline finishes the
        // batch in 2µs (1000 + 500 + 500).
        assert_eq!(report.stats.gpu_overlap_saved, ns(1_000));
        let ends = [101_000u64, 101_500, 102_000];
        for ((q, arrival), end) in report.queries[1..].iter().zip([1u64, 2, 3]).zip(ends) {
            assert_eq!(q.latency, Some(ns(end - arrival)));
        }
    }

    #[test]
    fn matches_core_sim_semantics_without_extensions() {
        use griffin::serving::{Job, ServingSim};
        let stages = [
            vec![cpu(100), gpu(200)],
            vec![gpu(50)],
            vec![cpu(300), cpu(100)],
            vec![gpu(75), cpu(25), gpu(10)],
        ];
        let arrivals = [0u64, 10, 20, 30];
        let jobs: Vec<SimJob> = arrivals
            .iter()
            .zip(&stages)
            .map(|(&a, s)| job(a, s.clone()))
            .collect();
        let core_jobs: Vec<Job> = arrivals
            .iter()
            .zip(&stages)
            .map(|(&a, s)| Job {
                arrival: ns(a),
                stages: s.clone(),
            })
            .collect();
        let core_lat = ServingSim::new(2).run(&core_jobs);
        let report = ServerSim::new(SimConfig {
            cpu_workers: 2,
            ..Default::default()
        })
        .run(&jobs);
        let lat: Vec<VirtualNanos> = report
            .queries
            .iter()
            .map(|q| q.latency.expect("all admitted"))
            .collect();
        assert_eq!(lat, core_lat);
    }

    #[test]
    fn capacity_sheds_excess_arrivals() {
        let sim = ServerSim::new(SimConfig {
            cpu_workers: 1,
            admission: AdmissionConfig {
                capacity: 2,
                ..Default::default()
            },
            batching: None,
        });
        // Three simultaneous arrivals into capacity 2.
        let jobs: Vec<SimJob> = (0..3).map(|_| job(0, vec![cpu(100)])).collect();
        let report = sim.run(&jobs);
        let shed = report
            .queries
            .iter()
            .filter(|q| q.outcome == Outcome::Shed)
            .count();
        assert_eq!(shed, 1);
        assert_eq!(report.stats.shed, 1);
        assert_eq!(report.stats.admitted, 2);
        assert_eq!(report.queries[2].latency, None);
    }

    #[test]
    fn gpu_backlog_degrades_to_cpu_fallback() {
        let sim = ServerSim::new(SimConfig {
            cpu_workers: 2,
            admission: AdmissionConfig {
                capacity: usize::MAX,
                gpu_depth_threshold: 0,
                policy: OverloadPolicy::DegradeToCpuOnly,
                ..Default::default()
            },
            batching: None,
        });
        // First query parks a long stage on the GPU; the second arrives
        // while it runs and must degrade to its fallback.
        let mut second = job(10, vec![gpu(1_000_000)]);
        second.cpu_fallback = Some(ns(5_000_000));
        let report = sim.run(&[job(0, vec![gpu(1_000_000)]), second]);
        assert_eq!(report.queries[0].outcome, Outcome::Completed);
        assert_eq!(report.queries[1].outcome, Outcome::Degraded);
        // Degraded latency is the fallback service time (idle cores).
        assert_eq!(report.queries[1].latency, Some(ns(5_000_000)));
        assert_eq!(report.stats.degraded, 1);
    }

    #[test]
    fn gpu_backlog_sheds_without_fallback() {
        let sim = ServerSim::new(SimConfig {
            cpu_workers: 2,
            admission: AdmissionConfig {
                capacity: usize::MAX,
                gpu_depth_threshold: 0,
                policy: OverloadPolicy::Shed,
                ..Default::default()
            },
            batching: None,
        });
        let report = sim.run(&[job(0, vec![gpu(1_000_000)]), job(10, vec![gpu(100)])]);
        assert_eq!(report.queries[1].outcome, Outcome::Shed);
        assert_eq!(report.stats.shed, 1);
    }

    #[test]
    fn serve_stale_answers_shed_queries_from_the_cache() {
        let sim = ServerSim::new(SimConfig {
            cpu_workers: 1,
            admission: AdmissionConfig {
                capacity: 1,
                serve_stale: true,
                ..Default::default()
            },
            batching: None,
        });
        // B arrives while A fills the only slot. With a cached answer
        // it is served stale at the lookup cost instead of shed.
        let mut b = job(10, vec![cpu(100)]);
        b.stale_available = Some(ns(2_000));
        b.deadline = Some(ns(5_000));
        let report = sim.run(&[job(0, vec![cpu(1_000_000)]), b]);
        assert_eq!(report.queries[1].outcome, Outcome::ServedStale);
        assert_eq!(report.queries[1].latency, Some(ns(2_000)));
        assert_eq!(report.queries[1].deadline_met, Some(true));
        assert_eq!(report.stats.served_stale, 1);
        assert_eq!(report.stats.shed, 0);
    }

    #[test]
    fn serve_stale_needs_both_policy_and_cached_answer() {
        let capacity_one = |serve_stale| SimConfig {
            cpu_workers: 1,
            admission: AdmissionConfig {
                capacity: 1,
                serve_stale,
                ..Default::default()
            },
            batching: None,
        };
        // Policy off: a cached answer does not prevent the shed.
        let mut b = job(10, vec![cpu(100)]);
        b.stale_available = Some(ns(2_000));
        let report =
            ServerSim::new(capacity_one(false)).run(&[job(0, vec![cpu(1_000_000)]), b.clone()]);
        assert_eq!(report.queries[1].outcome, Outcome::Shed);
        // Policy on but no cached answer: still shed.
        b.stale_available = None;
        let report = ServerSim::new(capacity_one(true)).run(&[job(0, vec![cpu(1_000_000)]), b]);
        assert_eq!(report.queries[1].outcome, Outcome::Shed);
        assert_eq!(report.stats.served_stale, 0);
    }

    #[test]
    fn identical_inflight_queries_coalesce_on_the_leader() {
        let sim = ServerSim::new(SimConfig {
            cpu_workers: 4,
            ..Default::default()
        });
        // Three arrivals of the same query while the first is in
        // flight; a fourth arrives after completion and runs itself.
        let mut jobs: Vec<SimJob> = vec![
            job(0, vec![cpu(1_000)]),
            job(100, vec![cpu(1_000)]),
            job(200, vec![cpu(1_000)]),
            job(5_000, vec![cpu(1_000)]),
        ];
        for jb in &mut jobs {
            jb.coalesce_key = Some(42);
        }
        let report = sim.run(&jobs);
        assert_eq!(report.queries[0].outcome, Outcome::Completed);
        assert_eq!(report.queries[1].outcome, Outcome::Coalesced);
        assert_eq!(report.queries[2].outcome, Outcome::Coalesced);
        // Followers complete at the leader's instant (t = 1000),
        // measured from their own arrivals.
        assert_eq!(report.queries[1].latency, Some(ns(900)));
        assert_eq!(report.queries[2].latency, Some(ns(800)));
        // The key was released at completion: the late arrival leads
        // its own flight.
        assert_eq!(report.queries[3].outcome, Outcome::Completed);
        assert_eq!(report.stats.coalesced, 2);
        assert_eq!(report.stats.admitted, 2);
    }

    #[test]
    fn coalesced_followers_consume_no_capacity() {
        // Capacity 1: the leader takes the slot, nine identical
        // followers still get answers; a *different* query is shed.
        let sim = ServerSim::new(SimConfig {
            cpu_workers: 1,
            admission: AdmissionConfig {
                capacity: 1,
                ..Default::default()
            },
            batching: None,
        });
        let mut jobs: Vec<SimJob> = (0..11).map(|i| job(i, vec![cpu(10_000)])).collect();
        for jb in jobs.iter_mut() {
            jb.coalesce_key = Some(7);
        }
        jobs[10].coalesce_key = Some(8); // a different query: no slot left
        let report = sim.run(&jobs);
        assert_eq!(report.stats.coalesced, 9);
        assert_eq!(report.stats.shed, 1);
        assert_eq!(report.queries[10].outcome, Outcome::Shed);
        assert!(report.queries[..10].iter().all(|q| q.latency.is_some()));
    }

    #[test]
    fn batching_coalesces_queued_small_stages() {
        let b = BatchConfig {
            max_batch: 4,
            small_stage: ns(1_000),
            per_stage_overhead: ns(100),
            copy_fraction: 0.0,
        };
        let sim = ServerSim::new(SimConfig {
            cpu_workers: 1,
            admission: AdmissionConfig::default(),
            batching: Some(b),
        });
        // A long stage occupies the GPU; three small stages queue behind
        // it and coalesce into one launch.
        let jobs = vec![
            job(0, vec![gpu(10_000)]),
            job(1, vec![gpu(500)]),
            job(2, vec![gpu(500)]),
            job(3, vec![gpu(500)]),
        ];
        let report = sim.run(&jobs);
        assert_eq!(report.stats.gpu_launches, 2, "long launch + one batch");
        assert_eq!(report.stats.max_batch_occupancy, 3);
        assert_eq!(report.stats.gpu_time_saved, ns(200));
        // Members run concatenated from 10_000, the second and third
        // shaving the 100ns overhead; each completes at its own offset.
        let ends = [10_500u64, 10_900, 11_300];
        for ((q, arrival), end) in report.queries[1..].iter().zip([1u64, 2, 3]).zip(ends) {
            assert_eq!(q.latency, Some(ns(end - arrival)));
        }
    }

    #[test]
    fn large_stages_do_not_batch() {
        let b = BatchConfig {
            max_batch: 4,
            small_stage: ns(100),
            per_stage_overhead: ns(10),
            copy_fraction: 0.0,
        };
        let sim = ServerSim::new(SimConfig {
            cpu_workers: 1,
            admission: AdmissionConfig::default(),
            batching: Some(b),
        });
        let jobs = vec![
            job(0, vec![gpu(10_000)]),
            job(1, vec![gpu(5_000)]),
            job(2, vec![gpu(5_000)]),
        ];
        let report = sim.run(&jobs);
        assert_eq!(report.stats.gpu_launches, 3);
        assert_eq!(report.stats.max_batch_occupancy, 1);
        assert_eq!(report.stats.gpu_time_saved, VirtualNanos::ZERO);
    }

    #[test]
    fn split_shadow_occupies_a_core_without_delaying_the_stage() {
        let sim = ServerSim::new(SimConfig {
            cpu_workers: 1,
            ..Default::default()
        });
        let report = sim.run(&[
            job(0, vec![split(10_000, 8_000)]),
            // Arrives after the split dispatched: its CPU stage queues
            // behind the shadow on the single core.
            job(1, vec![cpu(1_000)]),
        ]);
        // The split's own latency is its recorded max-of-lanes duration —
        // the shadow runs inside the stage window, never extending it.
        assert_eq!(report.queries[0].latency, Some(ns(10_000)));
        assert_eq!(report.queries[1].latency, Some(ns(8_999)));
        assert_eq!(report.stats.cpu_shadow_busy, ns(8_000));
        let shadow: Vec<_> = report
            .timeline
            .spans
            .iter()
            .filter(|s| s.resource == "cpu" && s.job == 0)
            .collect();
        assert_eq!(shadow.len(), 1, "one host-lane span per split stage");
        assert_eq!((shadow[0].start, shadow[0].end), (ns(0), ns(8_000)));
    }

    #[test]
    fn deadlines_are_reported() {
        let sim = ServerSim::new(SimConfig::default());
        let mut hit = job(0, vec![cpu(100)]);
        hit.deadline = Some(ns(200));
        let mut miss = job(0, vec![cpu(100_000)]);
        miss.deadline = Some(ns(200));
        let none = job(0, vec![cpu(100)]);
        let report = sim.run(&[hit, miss, none]);
        assert_eq!(report.queries[0].deadline_met, Some(true));
        assert_eq!(report.queries[1].deadline_met, Some(false));
        assert_eq!(report.queries[2].deadline_met, None);
    }

    #[test]
    fn empty_schedule_completes_instantly() {
        let sim = ServerSim::new(SimConfig::default());
        let report = sim.run(&[job(5, vec![])]);
        assert_eq!(report.queries[0].latency, Some(ns(0)));
        assert_eq!(report.queries[0].outcome, Outcome::Completed);
    }
}
