//! Admission control: capacity limits and GPU overload policies.
//!
//! A production retrieval node cannot queue unboundedly — the paper's
//! tail-latency study (Fig. 15) shows exactly what happens when it
//! tries. The admission queue bounds the number of in-flight queries,
//! and an overload policy decides what to do with a hybrid query when
//! the single shared GPU is already deep in backlog: reject it outright,
//! or *degrade* it to CPU-only execution (the co-processing discipline
//! from the fgssjoin line of work — when the accelerator is the
//! bottleneck, falling back to the host beats queueing behind it).

use griffin_gpu_sim::VirtualNanos;

/// What to do with a GPU-hungry query when the GPU queue is too deep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverloadPolicy {
    /// Reject the query (it is counted, not simulated).
    Shed,
    /// Run it CPU-only instead, using its measured CPU-only schedule.
    DegradeToCpuOnly,
}

/// Admission-control configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Maximum queries in flight (arrived, not yet finished). Arrivals
    /// beyond this are shed regardless of policy.
    pub capacity: usize,
    /// GPU queue depth (stages waiting or running on the device) above
    /// which the overload policy applies to newly arriving queries with
    /// GPU stages.
    pub gpu_depth_threshold: usize,
    /// The overload response.
    pub policy: OverloadPolicy,
    /// Answer queries that would otherwise be shed from the result
    /// cache when a (possibly stale) cached answer exists
    /// ([`crate::sim::SimJob::stale_available`]). The outcome is
    /// explicitly flagged [`Outcome::ServedStale`] — a client can always
    /// tell a stale answer from a fresh one; nothing is silently stale.
    pub serve_stale: bool,
}

impl Default for AdmissionConfig {
    /// Effectively-unbounded admission: nothing is shed or degraded.
    /// Serving experiments override these.
    fn default() -> Self {
        AdmissionConfig {
            capacity: usize::MAX,
            gpu_depth_threshold: usize::MAX,
            policy: OverloadPolicy::DegradeToCpuOnly,
            serve_stale: false,
        }
    }
}

/// What happened to one query at (and after) admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Ran its measured schedule to completion.
    Completed,
    /// Ran, but on its CPU-only fallback schedule.
    Degraded,
    /// Rejected at admission; never ran.
    Shed,
    /// Rejected at admission but answered from the result cache with a
    /// possibly stale entry ([`AdmissionConfig::serve_stale`]). The
    /// latency is the cache-lookup cost; the flag is the contract —
    /// staleness is always visible to the caller.
    ServedStale,
    /// Coalesced onto an identical in-flight query (single-flight): it
    /// consumed no execution resources and completed when its leader
    /// did.
    Coalesced,
}

/// Per-query serving result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServedQuery {
    pub outcome: Outcome,
    /// Completion − arrival; `None` for shed queries.
    pub latency: Option<VirtualNanos>,
    /// Whether the latency met the request's deadline (`None` when the
    /// request had no deadline, or the query was shed).
    pub deadline_met: Option<bool>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{GriffinServer, PlannedQuery};
    use crate::sim::{ServerSim, SimConfig, SimJob};
    use griffin::serving::{Resource, StageReq};
    use griffin_telemetry::Telemetry;

    fn ns(v: u64) -> VirtualNanos {
        VirtualNanos::from_nanos(v)
    }

    fn cpu_job(arrival: u64, dur: u64) -> SimJob {
        SimJob {
            arrival: ns(arrival),
            stages: vec![StageReq::new(Resource::Cpu, ns(dur))],
            cpu_fallback: None,
            deadline: None,
            stale_available: None,
            coalesce_key: None,
        }
    }

    fn gpu_job(arrival: u64, dur: u64, fallback: Option<u64>) -> SimJob {
        SimJob {
            arrival: ns(arrival),
            stages: vec![StageReq::new(Resource::Gpu, ns(dur))],
            cpu_fallback: fallback.map(ns),
            deadline: None,
            stale_available: None,
            coalesce_key: None,
        }
    }

    fn sim(admission: AdmissionConfig) -> ServerSim {
        ServerSim::new(SimConfig {
            cpu_workers: 2,
            admission,
            batching: None,
        })
    }

    #[test]
    fn default_admits_everything() {
        let a = AdmissionConfig::default();
        assert_eq!(a.capacity, usize::MAX);
        assert_eq!(a.gpu_depth_threshold, usize::MAX);
    }

    #[test]
    fn burst_beyond_capacity_sheds_exactly_the_overflow() {
        let s = sim(AdmissionConfig {
            capacity: 4,
            ..Default::default()
        });
        // Ten queries land in the same instant; the queue holds four.
        let jobs: Vec<SimJob> = (0..10).map(|_| cpu_job(0, 1_000)).collect();
        let report = s.run(&jobs);
        assert_eq!(report.stats.admitted, 4);
        assert_eq!(report.stats.shed, 6);
        // Arrival order breaks the tie: the first four by submission
        // index win the slots, deterministically.
        for (j, q) in report.queries.iter().enumerate() {
            let expect = if j < 4 {
                Outcome::Completed
            } else {
                Outcome::Shed
            };
            assert_eq!(q.outcome, expect, "job {j}");
        }
    }

    #[test]
    fn capacity_bounds_in_flight_queries_not_total_volume() {
        let s = sim(AdmissionConfig {
            capacity: 1,
            ..Default::default()
        });
        // A runs [0, 100). B arrives while A is in flight: shed. C
        // arrives after A finished: the slot is free again.
        let jobs = vec![cpu_job(0, 100), cpu_job(50, 100), cpu_job(150, 100)];
        let report = s.run(&jobs);
        assert_eq!(report.queries[0].outcome, Outcome::Completed);
        assert_eq!(report.queries[1].outcome, Outcome::Shed);
        assert_eq!(report.queries[2].outcome, Outcome::Completed);
        assert_eq!(report.stats.shed, 1);
        assert_eq!(report.stats.admitted, 2);
    }

    #[test]
    fn same_burst_sheds_or_degrades_by_policy() {
        // Four GPU queries in a burst behind a zero-depth threshold: the
        // first occupies the device, the rest are over the line.
        let burst = || {
            vec![
                gpu_job(0, 10_000, Some(50_000)),
                gpu_job(1, 10_000, Some(50_000)),
                gpu_job(2, 10_000, Some(50_000)),
                gpu_job(3, 10_000, Some(50_000)),
            ]
        };
        let overloaded = |policy| AdmissionConfig {
            capacity: usize::MAX,
            gpu_depth_threshold: 0,
            policy,
            ..Default::default()
        };

        let shed = sim(overloaded(OverloadPolicy::Shed)).run(&burst());
        assert_eq!(shed.queries[0].outcome, Outcome::Completed);
        assert_eq!(shed.stats.shed, 3, "shed policy rejects the backlog");
        assert_eq!(shed.stats.degraded, 0);

        let deg = sim(overloaded(OverloadPolicy::DegradeToCpuOnly)).run(&burst());
        assert_eq!(deg.stats.shed, 0, "degrade policy drops nothing");
        assert_eq!(deg.stats.degraded, 3);
        assert!(
            deg.queries.iter().all(|q| q.latency.is_some()),
            "every query is served under degrade"
        );
        // Degraded queries run their (slower) CPU-only schedule on the
        // idle cores instead of queueing behind the device.
        assert_eq!(deg.queries[1].latency, Some(ns(50_000)));
    }

    #[test]
    fn degrade_policy_sheds_when_no_fallback_exists() {
        let s = sim(AdmissionConfig {
            capacity: usize::MAX,
            gpu_depth_threshold: 0,
            policy: OverloadPolicy::DegradeToCpuOnly,
            ..Default::default()
        });
        // The second query has no measured CPU-only schedule (e.g. it
        // was planned GpuOnly), so degrade cannot apply.
        let jobs = vec![gpu_job(0, 10_000, None), gpu_job(1, 100, None)];
        let report = s.run(&jobs);
        assert_eq!(report.queries[1].outcome, Outcome::Shed);
        assert_eq!(report.stats.shed, 1);
        assert_eq!(report.stats.degraded, 0);
    }

    #[test]
    fn shed_and_degrade_metrics_surface_through_server_telemetry() {
        let mut server = GriffinServer::new(SimConfig {
            cpu_workers: 2,
            admission: AdmissionConfig {
                capacity: 1,
                ..Default::default()
            },
            batching: None,
        });
        server.set_telemetry(Telemetry::enabled());
        let planned: Vec<PlannedQuery> = (0..3)
            .map(|_| PlannedQuery {
                topk: Vec::new(),
                service_time: ns(1_000),
                stages: vec![StageReq::new(Resource::Cpu, ns(1_000))],
                cpu_fallback: None,
                stale_available: None,
                coalesce_key: None,
                deadline: Some(ns(10_000)),
                breaker_degraded: false,
                trace_query: None,
            })
            .collect();
        // All three arrive together into a single slot.
        let report = server.replay(&planned, &[ns(0), ns(0), ns(0)]);
        assert_eq!(report.stats.admitted, 1);
        assert_eq!(report.stats.shed, 2);

        let registry = &server.telemetry().recorder().expect("enabled").registry;
        assert_eq!(registry.counter("griffin_server_admitted_total"), 1);
        assert_eq!(registry.counter("griffin_server_shed_total"), 2);
        // Shed queries carried deadlines, so they count as missed.
        assert_eq!(registry.counter("griffin_server_deadline_missed_total"), 2);
    }
}
