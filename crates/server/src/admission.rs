//! Admission control: capacity limits and GPU overload policies.
//!
//! A production retrieval node cannot queue unboundedly — the paper's
//! tail-latency study (Fig. 15) shows exactly what happens when it
//! tries. The admission queue bounds the number of in-flight queries,
//! and an overload policy decides what to do with a hybrid query when
//! the single shared GPU is already deep in backlog: reject it outright,
//! or *degrade* it to CPU-only execution (the co-processing discipline
//! from the fgssjoin line of work — when the accelerator is the
//! bottleneck, falling back to the host beats queueing behind it).

use griffin_gpu_sim::VirtualNanos;

/// What to do with a GPU-hungry query when the GPU queue is too deep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverloadPolicy {
    /// Reject the query (it is counted, not simulated).
    Shed,
    /// Run it CPU-only instead, using its measured CPU-only schedule.
    DegradeToCpuOnly,
}

/// Admission-control configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Maximum queries in flight (arrived, not yet finished). Arrivals
    /// beyond this are shed regardless of policy.
    pub capacity: usize,
    /// GPU queue depth (stages waiting or running on the device) above
    /// which the overload policy applies to newly arriving queries with
    /// GPU stages.
    pub gpu_depth_threshold: usize,
    /// The overload response.
    pub policy: OverloadPolicy,
}

impl Default for AdmissionConfig {
    /// Effectively-unbounded admission: nothing is shed or degraded.
    /// Serving experiments override these.
    fn default() -> Self {
        AdmissionConfig {
            capacity: usize::MAX,
            gpu_depth_threshold: usize::MAX,
            policy: OverloadPolicy::DegradeToCpuOnly,
        }
    }
}

/// What happened to one query at (and after) admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Ran its measured schedule to completion.
    Completed,
    /// Ran, but on its CPU-only fallback schedule.
    Degraded,
    /// Rejected at admission; never ran.
    Shed,
}

/// Per-query serving result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServedQuery {
    pub outcome: Outcome,
    /// Completion − arrival; `None` for shed queries.
    pub latency: Option<VirtualNanos>,
    /// Whether the latency met the request's deadline (`None` when the
    /// request had no deadline, or the query was shed).
    pub deadline_met: Option<bool>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_admits_everything() {
        let a = AdmissionConfig::default();
        assert_eq!(a.capacity, usize::MAX);
        assert_eq!(a.gpu_depth_threshold, usize::MAX);
    }
}
