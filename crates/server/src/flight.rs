//! Tail flight recorder: full forensics for the slowest queries only.
//!
//! Keeping a complete attribution tree for every query would dwarf the
//! index itself under load; keeping none makes a p99.9 spike
//! undebuggable. The flight recorder splits the difference the way
//! aircraft do: a bounded ring that retains the *interesting* flights —
//! queries whose latency breaches a rolling quantile threshold — each
//! with its profile and a one-line dominant-cause verdict
//! ([`griffin_telemetry::Verdict`]), so the on-call answer to "why was
//! that query slow?" is already recorded when the page fires.
//!
//! Retention policy:
//! * every served latency feeds a rolling [`Histogram`];
//! * until [`FlightConfig::min_samples`] latencies are seen the
//!   threshold is undefined and every query is retained (an empty
//!   recorder is worse than an over-full one at startup);
//! * afterwards only queries at or above the configured latency
//!   quantile are retained;
//! * the ring never exceeds [`FlightConfig::capacity`] — the oldest
//!   retained flight is evicted to admit a new one.

use std::collections::VecDeque;

use griffin::serving::{Resource, StageReq};
use griffin_gpu_sim::VirtualNanos;
use griffin_telemetry::{Cause, Histogram, QueryProfile, Verdict};

use crate::admission::Outcome;

/// Flight-recorder tuning.
#[derive(Debug, Clone, Copy)]
pub struct FlightConfig {
    /// Maximum retained flights (ring bound).
    pub capacity: usize,
    /// Latency quantile a query must breach to be retained (0.0..=1.0).
    pub quantile: f64,
    /// Latency samples required before the threshold applies; until
    /// then every query is retained.
    pub min_samples: u64,
}

impl Default for FlightConfig {
    fn default() -> Self {
        FlightConfig {
            capacity: 32,
            quantile: 0.95,
            min_samples: 64,
        }
    }
}

/// One retained flight: everything needed to explain a slow query
/// after the fact.
#[derive(Debug, Clone)]
pub struct FlightRecord {
    /// Index of the query in the replayed batch (submission order).
    pub query_index: usize,
    /// The engine-trace query id, when planning ran with telemetry —
    /// keys into the trace and the attribution profile.
    pub trace_query: Option<u64>,
    pub outcome: Outcome,
    /// Completion − arrival.
    pub latency: VirtualNanos,
    /// Time actually spent in service (the schedule that ran).
    pub service: VirtualNanos,
    /// `latency − service`: time lost to queueing and batching.
    pub queue_wait: VirtualNanos,
    /// Dominant-cause verdict for the latency.
    pub verdict: Verdict,
    /// Full attribution tree, when a trace was available at plan time.
    pub profile: Option<QueryProfile>,
    /// Fleet-scope attribution: one entry per shard when the flight was
    /// recorded by a scatter–gather coordinator, so a tail flight names
    /// the straggler *shard* (and whether a hedge fired for it), not
    /// just a processor. Empty for single-engine flights.
    pub shards: Vec<ShardVerdict>,
}

/// Per-shard slice of a fleet flight: where the time went, shard by
/// shard. The shard with `straggler` set determined the fleet latency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardVerdict {
    pub shard: usize,
    /// Replica that served the answer (`None` when the shard was
    /// missing).
    pub replica: Option<usize>,
    /// The shard's answer latency relative to the query's arrival.
    pub latency: VirtualNanos,
    /// A hedged second-replica request was issued.
    pub hedged: bool,
    /// The hedge answered first.
    pub hedge_won: bool,
    /// This shard's answer arrived last and set the fleet latency.
    pub straggler: bool,
}

/// Bounded ring of tail-latency flights.
#[derive(Default)]
pub struct FlightRecorder {
    config: FlightConfig,
    latencies: Histogram,
    ring: VecDeque<FlightRecord>,
    retained_total: u64,
    evicted_total: u64,
}

impl FlightRecorder {
    pub fn new(config: FlightConfig) -> FlightRecorder {
        FlightRecorder {
            config,
            ..FlightRecorder::default()
        }
    }

    pub fn config(&self) -> &FlightConfig {
        &self.config
    }

    /// The current retention threshold; `None` while warming up.
    pub fn threshold(&self) -> Option<VirtualNanos> {
        if self.latencies.count() < self.config.min_samples {
            None
        } else {
            Some(VirtualNanos::from_nanos(
                self.latencies.quantile(self.config.quantile),
            ))
        }
    }

    /// Feed one served query. Returns true when the flight was retained.
    pub fn observe(&mut self, record: FlightRecord) -> bool {
        let latency = record.latency;
        let retain = match self.threshold() {
            None => true,
            Some(t) => latency >= t,
        };
        self.latencies.record(latency.as_nanos());
        if retain {
            if self.ring.len() >= self.config.capacity.max(1) {
                self.ring.pop_front();
                self.evicted_total += 1;
            }
            self.ring.push_back(record);
            self.retained_total += 1;
        }
        retain
    }

    /// Retained flights, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &FlightRecord> {
        self.ring.iter()
    }

    pub fn len(&self) -> usize {
        self.ring.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Flights retained over the recorder's lifetime (≥ `len()`).
    pub fn retained_total(&self) -> u64 {
        self.retained_total
    }

    /// Flights pushed out of the ring to admit newer ones.
    pub fn evicted_total(&self) -> u64 {
        self.evicted_total
    }

    /// Latencies observed so far (all queries, retained or not).
    pub fn observed_total(&self) -> u64 {
        self.latencies.count()
    }
}

/// Dominant-cause verdict from the serving schedule alone, for queries
/// planned without telemetry: attributes service time to the CPU/GPU
/// stages and weighs it against queue wait. Coarser than
/// [`QueryProfile::dominant_cause`] — it cannot separate PCIe from
/// kernels or see fault recovery — but it never misattributes queueing.
pub fn verdict_from_stages(
    stages: &[StageReq],
    queue_wait: VirtualNanos,
    latency: VirtualNanos,
) -> Verdict {
    let mut cpu = VirtualNanos::ZERO;
    let mut gpu = VirtualNanos::ZERO;
    for s in stages {
        match s.resource {
            Resource::Cpu => cpu += s.duration,
            Resource::Gpu => gpu += s.duration,
        }
    }
    let buckets = [
        (Cause::Queueing, queue_wait),
        (Cause::GpuCompute, gpu),
        (Cause::CpuCompute, cpu),
    ];
    let (cause, dominant) = buckets
        .into_iter()
        .reduce(|a, b| if b.1 > a.1 { b } else { a })
        .expect("buckets nonempty");
    Verdict {
        cause,
        dominant,
        total: latency,
        cache_flips: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(v: u64) -> VirtualNanos {
        VirtualNanos::from_nanos(v)
    }

    fn flight(i: usize, latency: u64) -> FlightRecord {
        let latency = ns(latency);
        FlightRecord {
            query_index: i,
            trace_query: None,
            outcome: Outcome::Completed,
            latency,
            service: latency,
            queue_wait: VirtualNanos::ZERO,
            verdict: verdict_from_stages(&[], VirtualNanos::ZERO, latency),
            profile: None,
            shards: Vec::new(),
        }
    }

    #[test]
    fn warmup_retains_everything_then_threshold_applies() {
        let mut fr = FlightRecorder::new(FlightConfig {
            capacity: 100,
            quantile: 0.9,
            min_samples: 10,
        });
        for i in 0..10 {
            assert!(fr.observe(flight(i, 1_000)));
        }
        assert!(fr.threshold().is_some());
        // 1_000ns sits at the p100 of the warmup set; a faster query is
        // now below the p90 threshold and must be dropped.
        assert!(!fr.observe(flight(10, 10)));
        assert!(fr.observe(flight(11, 50_000)));
        assert_eq!(fr.len(), 11);
        assert_eq!(fr.observed_total(), 12);
    }

    #[test]
    fn ring_never_exceeds_capacity() {
        let mut fr = FlightRecorder::new(FlightConfig {
            capacity: 4,
            quantile: 0.5,
            min_samples: 1_000_000, // stay in warmup: retain all
        });
        for i in 0..50 {
            fr.observe(flight(i, 100 + i as u64));
        }
        assert_eq!(fr.len(), 4);
        assert_eq!(fr.retained_total(), 50);
        assert_eq!(fr.evicted_total(), 46);
        // Oldest evicted first: the ring holds the last four flights.
        let idx: Vec<usize> = fr.records().map(|r| r.query_index).collect();
        assert_eq!(idx, vec![46, 47, 48, 49]);
    }

    #[test]
    fn stage_verdict_blames_the_biggest_bucket() {
        let stages = [
            StageReq::new(Resource::Cpu, ns(100)),
            StageReq::new(Resource::Gpu, ns(700)),
        ];
        let v = verdict_from_stages(&stages, ns(50), ns(850));
        assert_eq!(v.cause, Cause::GpuCompute);
        let v = verdict_from_stages(&stages, ns(5_000), ns(5_800));
        assert_eq!(v.cause, Cause::Queueing);
        assert!(v.one_line().starts_with("queueing"));
    }
}
