//! Property tests pinning the serving pipeline's exactness guarantees:
//!
//! * an **unloaded** single query replayed through the full pipeline
//!   (engine → trace → stage bridge → discrete-event simulator) finishes
//!   in exactly [`griffin::GriffinOutput::time`] — bit-exact, in every
//!   execution mode, with or without batch packing;
//! * the bridged stages' per-resource totals equal the step trace's
//!   per-processor sums (PCIe migrations on the GPU side).

use griffin::serving::Resource;
use griffin::{ExecMode, Griffin, Proc, QueryRequest, StepOp};
use griffin_codec::Codec;
use griffin_gpu_sim::{DeviceConfig, Gpu, VirtualNanos};
use griffin_index::{IndexBuilder, InvertedIndex, TermId};
use griffin_server::{
    resource_totals, stages_of, ArrivingQuery, BatchConfig, GriffinServer, ServerConfig,
};
use proptest::collection::vec;
use proptest::prelude::*;

/// Small random corpora: each document is a list of small word ids.
fn corpora() -> impl Strategy<Value = Vec<Vec<u8>>> {
    vec(vec(0u8..30, 1..40), 2..40)
}

fn build_index(docs: &[Vec<u8>]) -> InvertedIndex {
    let mut b = IndexBuilder::new(Codec::EliasFano);
    for words in docs {
        let tokens: Vec<String> = words.iter().map(|w| format!("w{w}")).collect();
        let refs: Vec<&str> = tokens.iter().map(String::as_str).collect();
        b.add_document(&refs);
    }
    b.build()
}

fn resolve(idx: &InvertedIndex, words: &[u8]) -> Vec<TermId> {
    let mut terms: Vec<TermId> = words
        .iter()
        .filter_map(|w| idx.lookup(&format!("w{w}")))
        .collect();
    terms.dedup();
    terms
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// End-to-end: one query served through the whole pipeline, with an
    /// idle system, completes in exactly the engine's measured latency
    /// and returns exactly the engine's results.
    #[test]
    fn unloaded_pipeline_latency_is_bit_exact(
        docs in corpora(),
        qwords in vec(0u8..30, 1..4),
        mode_idx in 0usize..3,
        batching in any::<bool>(),
    ) {
        let idx = build_index(&docs);
        let terms = resolve(&idx, &qwords);
        if terms.is_empty() {
            return Ok(()); // vocabulary miss — nothing to run
        }

        let gpu = Gpu::new(DeviceConfig::test_tiny());
        let engine = Griffin::new(&gpu, idx.meta(), idx.block_len());
        // The GPU list cache warms across runs; disable it so the
        // measurement run and the serve-phase run cost the same.
        engine.gpu.set_cache_budget(0);
        let mode = [ExecMode::CpuOnly, ExecMode::GpuOnly, ExecMode::Hybrid][mode_idx];
        let req = QueryRequest::new(terms).k(5).mode(mode);
        let out = engine.run(&idx, &req);

        let config = ServerConfig {
            cpu_workers: 4,
            batching: batching.then(|| BatchConfig::for_device(gpu.config())),
            ..Default::default()
        };
        let server = GriffinServer::new(config);
        let report = server.serve(
            &engine,
            &idx,
            &[ArrivingQuery { request: req, arrival: VirtualNanos::ZERO }],
        );
        prop_assert_eq!(report.queries[0].latency, Some(out.time));
    }

    /// The bridge preserves time exactly, split by resource: CPU stages
    /// total the CPU-processor steps, GPU stages total the GPU steps
    /// plus PCIe migrations, and together they are the engine latency.
    #[test]
    fn stage_totals_match_step_trace_per_proc_sums(
        docs in corpora(),
        qwords in vec(0u8..30, 1..4),
        mode_idx in 0usize..3,
    ) {
        let idx = build_index(&docs);
        let terms = resolve(&idx, &qwords);
        if terms.is_empty() {
            return Ok(()); // vocabulary miss — nothing to run
        }

        let gpu = Gpu::new(DeviceConfig::test_tiny());
        let engine = Griffin::new(&gpu, idx.meta(), idx.block_len());
        let mode = [ExecMode::CpuOnly, ExecMode::GpuOnly, ExecMode::Hybrid][mode_idx];
        let out = engine.run(&idx, &QueryRequest::new(terms).k(5).mode(mode));

        // Independent per-processor sums straight off the step trace.
        let mut cpu_ref = VirtualNanos::ZERO;
        let mut gpu_ref = VirtualNanos::ZERO;
        for s in &out.steps {
            if s.proc == Proc::Gpu || s.op == StepOp::Migrate {
                gpu_ref += s.time;
            } else {
                cpu_ref += s.time;
            }
        }

        let stages = stages_of(&out);
        let (cpu_total, gpu_total) = resource_totals(&stages);
        prop_assert_eq!(cpu_total, cpu_ref);
        prop_assert_eq!(gpu_total, gpu_ref);
        prop_assert_eq!(cpu_total + gpu_total, out.time);
        // Merging means adjacent stages always alternate resources.
        for pair in stages.windows(2) {
            prop_assert_ne!(pair[0].resource, pair[1].resource);
        }
        let _ = Resource::Cpu; // used via resource_totals
    }
}
