//! The GPU health breaker end to end: a device faulting on half its
//! queries trips the GPU lane to CPU-only degraded planning with zero
//! drops, and the breaker closes again once the faults clear.

use griffin::serving::Resource;
use griffin::{ExecMode, Griffin, QueryRequest};
use griffin_gpu_sim::{DeviceConfig, FaultPlan, Gpu, VirtualNanos};
use griffin_index::{InvertedIndex, TermId};
use griffin_server::{
    BreakerConfig, BreakerState, GriffinServer, Outcome, PlannedQuery, ServerConfig,
};
use griffin_telemetry::Telemetry;
use griffin_workload::{build_list_index, ListIndexSpec, QueryLogSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn build_workload() -> (InvertedIndex, Vec<Vec<TermId>>) {
    let mut rng = StdRng::seed_from_u64(42);
    let spec = ListIndexSpec {
        num_terms: 24,
        num_docs: 400_000,
        max_list_len: 80_000,
        ..Default::default()
    };
    let (index, _) = build_list_index(&spec, &mut rng);
    let queries = QueryLogSpec {
        num_queries: 48,
        ..Default::default()
    }
    .generate(&index, &mut rng);
    (index, queries)
}

fn breaker_config() -> BreakerConfig {
    BreakerConfig {
        window: 8,
        failure_threshold: 0.5,
        min_samples: 4,
        cooldown: VirtualNanos::from_millis(10),
        canary_successes: 2,
    }
}

fn hybrid_requests(queries: &[Vec<TermId>]) -> Vec<QueryRequest> {
    queries
        .iter()
        .map(|q| QueryRequest::new(q.clone()).k(10).mode(ExecMode::Hybrid))
        .collect()
}

fn assert_topk_matches_cpu(
    engine: &Griffin<'_>,
    index: &InvertedIndex,
    requests: &[QueryRequest],
    planned: &[PlannedQuery],
) {
    for (req, p) in requests.iter().zip(planned) {
        let cpu = engine.run(index, &req.clone().mode(ExecMode::CpuOnly));
        let ids = |topk: &[(u32, f32)]| topk.iter().map(|&(d, _)| d).collect::<Vec<_>>();
        assert_eq!(
            ids(&p.topk),
            ids(&cpu.topk),
            "planned top-k must match the CPU-only baseline"
        );
    }
}

#[test]
fn faulty_window_trips_gpu_lane_and_recovers() {
    let (index, queries) = build_workload();
    let gpu = Gpu::new(DeviceConfig::test_tiny());
    let engine = Griffin::new(&gpu, index.meta(), index.block_len());

    let mut server = GriffinServer::new(ServerConfig::default());
    server.set_breaker(breaker_config());
    server.set_telemetry(Telemetry::enabled());

    // ---- Phase 1: a sick device. Half of all device ops fault. -------
    gpu.set_fault_plan(Some(FaultPlan::seeded(0xF417).with_fault_rate(0.5)));
    let requests = hybrid_requests(&queries[..24]);
    let planned = server.plan(&engine, &index, &requests);

    // Every faulting query still completed (the engine's recovery
    // layer), and once the window tripped, the rest were planned
    // CPU-only — degraded, never dropped.
    assert_eq!(planned.len(), requests.len(), "zero drops at planning");
    let stats = server.breaker_stats();
    assert!(stats.opens >= 1, "50% fault window must trip the breaker");
    assert!(stats.degraded >= 1, "open breaker must degrade queries");
    assert_eq!(server.breaker_state(), BreakerState::Open);
    let degraded: Vec<&PlannedQuery> = planned.iter().filter(|p| p.breaker_degraded).collect();
    assert_eq!(degraded.len() as u64, stats.degraded);
    for p in &degraded {
        assert!(
            p.stages.iter().all(|s| s.resource == Resource::Cpu),
            "degraded plans must not touch the GPU lane"
        );
    }
    // The answers never change, only where they were computed.
    assert_topk_matches_cpu(&engine, &index, &requests, &planned);

    // Replaying the degraded plans serves every query.
    let arrivals: Vec<VirtualNanos> = (0..planned.len())
        .map(|i| VirtualNanos::from_micros(50 * i as u64))
        .collect();
    let report = server.replay(&planned, &arrivals);
    assert_eq!(report.stats.shed, 0, "zero drops at replay");
    for q in &report.queries {
        assert_eq!(q.outcome, Outcome::Completed);
        assert!(q.latency.is_some());
    }

    // ---- Phase 2: the device heals. ----------------------------------
    gpu.set_fault_plan(None);
    gpu.advance(VirtualNanos::from_millis(11));
    let requests2 = hybrid_requests(&queries[24..]);
    let planned2 = server.plan(&engine, &index, &requests2);

    // Canary probes ran clean and closed the breaker; the GPU lane is
    // live again for the rest of the batch.
    assert_eq!(server.breaker_state(), BreakerState::Closed);
    let stats = server.breaker_stats();
    assert!(stats.half_opens >= 1, "cooldown must admit canaries");
    assert!(stats.closes >= 1, "clean canaries must close the breaker");
    assert!(
        planned2.iter().all(|p| !p.breaker_degraded),
        "no degradation after recovery"
    );
    assert!(
        planned2
            .last()
            .expect("non-empty batch")
            .stages
            .iter()
            .any(|s| s.resource == Resource::Gpu),
        "recovered lane must actually carry GPU stages"
    );
    assert_topk_matches_cpu(&engine, &index, &requests2, &planned2);

    // ---- Telemetry surface. ------------------------------------------
    let registry = &server.telemetry().recorder().expect("enabled").registry;
    assert!(registry.counter("griffin_fault_breaker_transitions_total{to=\"open\"}") >= 1);
    assert!(registry.counter("griffin_fault_breaker_transitions_total{to=\"half_open\"}") >= 1);
    assert!(registry.counter("griffin_fault_breaker_transitions_total{to=\"closed\"}") >= 1);
    assert_eq!(
        registry.counter("griffin_fault_breaker_degraded_total"),
        stats.degraded
    );
    assert_eq!(
        registry.gauge("griffin_fault_breaker_state"),
        Some(BreakerState::Closed.gauge_value())
    );
}

#[test]
fn healthy_device_never_trips() {
    let (index, queries) = build_workload();
    let gpu = Gpu::new(DeviceConfig::test_tiny());
    let engine = Griffin::new(&gpu, index.meta(), index.block_len());
    let mut server = GriffinServer::new(ServerConfig::default());
    server.set_breaker(breaker_config());

    let requests = hybrid_requests(&queries[..16]);
    let planned = server.plan(&engine, &index, &requests);
    assert_eq!(server.breaker_state(), BreakerState::Closed);
    let stats = server.breaker_stats();
    assert_eq!(stats.opens, 0);
    assert_eq!(stats.degraded, 0);
    assert!(planned.iter().all(|p| !p.breaker_degraded));
}

#[test]
fn cpu_only_requests_bypass_the_breaker() {
    let (index, queries) = build_workload();
    let gpu = Gpu::new(DeviceConfig::test_tiny());
    let engine = Griffin::new(&gpu, index.meta(), index.block_len());
    let mut server = GriffinServer::new(ServerConfig::default());
    server.set_breaker(breaker_config());

    // Even with a completely lost device, CPU-only requests plan fine
    // and never feed (or consult) the breaker.
    gpu.set_fault_plan(Some(FaultPlan::seeded(3).lose_device_at(0)));
    let requests: Vec<QueryRequest> = queries[..8]
        .iter()
        .map(|q| QueryRequest::new(q.clone()).k(10).mode(ExecMode::CpuOnly))
        .collect();
    let planned = server.plan(&engine, &index, &requests);
    assert_eq!(planned.len(), 8);
    assert_eq!(server.breaker_state(), BreakerState::Closed);
    assert_eq!(server.breaker_stats().degraded, 0);
    assert!(planned
        .iter()
        .all(|p| p.stages.iter().all(|s| s.resource == Resource::Cpu)));
}
