//! Real wall-clock benchmarks of the compression codecs (encode/decode
//! throughput of our implementations, as opposed to the virtual-time
//! experiment binaries).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use griffin_codec::{BlockedList, Codec, DEFAULT_BLOCK_LEN};
use griffin_workload::{gen_docid_list, GapProfile};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_encode(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let ids = gen_docid_list(&mut rng, 100_000, 4_000_000, GapProfile::HeavyTailed);
    let mut g = c.benchmark_group("encode");
    g.sample_size(20);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.throughput(Throughput::Elements(ids.len() as u64));
    for codec in [Codec::PforDelta, Codec::EliasFano, Codec::Varint] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{codec:?}")),
            &codec,
            |b, &codec| {
                b.iter(|| BlockedList::compress(&ids, codec, DEFAULT_BLOCK_LEN));
            },
        );
    }
    g.finish();
}

fn bench_decode(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let ids = gen_docid_list(&mut rng, 100_000, 4_000_000, GapProfile::HeavyTailed);
    let mut g = c.benchmark_group("decode");
    g.sample_size(20);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.throughput(Throughput::Elements(ids.len() as u64));
    for codec in [Codec::PforDelta, Codec::EliasFano, Codec::Varint] {
        let list = BlockedList::compress(&ids, codec, DEFAULT_BLOCK_LEN);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{codec:?}")),
            &list,
            |b, list| {
                b.iter(|| {
                    let out = list.decompress().expect("intact list");
                    assert_eq!(out.len(), ids.len());
                    out
                });
            },
        );
    }
    g.finish();
}

fn bench_block_decode(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let ids = gen_docid_list(&mut rng, 12_800, 500_000, GapProfile::HeavyTailed);
    let mut g = c.benchmark_group("single_block_decode");
    g.sample_size(20);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    for codec in [Codec::PforDelta, Codec::EliasFano] {
        let list = BlockedList::compress(&ids, codec, DEFAULT_BLOCK_LEN);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{codec:?}")),
            &list,
            |b, list| {
                let mut out = Vec::with_capacity(DEFAULT_BLOCK_LEN);
                b.iter(|| {
                    out.clear();
                    list.decode_block_into(50, &mut out).expect("intact block");
                    out.len()
                });
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_encode, bench_decode, bench_block_decode);
criterion_main!(benches);
