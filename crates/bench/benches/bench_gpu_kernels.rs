//! Real wall-clock benchmarks of the GPU-simulator kernels: how fast the
//! *simulator itself* executes Para-EF, MergePath and the supporting
//! kernels (functional execution + sampled tracing). This is the cost a
//! user of this reproduction pays, distinct from the modelled K20 times.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use griffin_bench::setup::k20;
use griffin_codec::{BlockedList, Codec, DEFAULT_BLOCK_LEN};
use griffin_gpu::mergepath::{self, MergePathConfig};
use griffin_gpu::transfer::DeviceEfList;
use griffin_gpu::{para_ef, scan};
use griffin_gpu_sim::Gpu;
use griffin_workload::{gen_docid_list, GapProfile};
use rand::rngs::StdRng;
use rand::SeedableRng;

const N: usize = 200_000;

fn bench_para_ef(c: &mut Criterion) {
    let gpu = Gpu::new(k20());
    let mut rng = StdRng::seed_from_u64(1);
    let ids = gen_docid_list(&mut rng, N, 8_000_000, GapProfile::HeavyTailed);
    let list = BlockedList::compress(&ids, Codec::EliasFano, DEFAULT_BLOCK_LEN);
    let dev = DeviceEfList::upload(&gpu, &list).expect("device op");
    let mut g = c.benchmark_group("simulator");
    g.throughput(Throughput::Elements(N as u64));
    g.sample_size(10);
    g.bench_function("para_ef_decompress", |b| {
        b.iter(|| {
            let out = para_ef::decompress(&gpu, &dev).expect("device op");
            gpu.free(out);
        })
    });
    g.finish();
}

fn bench_mergepath(c: &mut Criterion) {
    let gpu = Gpu::new(k20());
    let a: Vec<u32> = (0..N as u32).map(|i| i * 3).collect();
    let b_host: Vec<u32> = (0..N as u32).map(|i| i * 2 + 1).collect();
    let da = gpu.htod(&a).expect("device op");
    let db = gpu.htod(&b_host).expect("device op");
    let cfg = MergePathConfig::for_device(gpu.config());
    let mut g = c.benchmark_group("simulator");
    g.throughput(Throughput::Elements(2 * N as u64));
    g.sample_size(10);
    g.bench_function("mergepath_intersect", |b| {
        b.iter(|| {
            let m = mergepath::intersect(&gpu, &da, N, &db, N, &cfg).expect("device op");
            m.free(&gpu);
        })
    });
    g.finish();
}

fn bench_scan(c: &mut Criterion) {
    let gpu = Gpu::new(k20());
    let data: Vec<u32> = (0..N as u32).map(|i| i % 7).collect();
    let src = gpu.htod(&data).expect("device op");
    let mut g = c.benchmark_group("simulator");
    g.throughput(Throughput::Elements(N as u64));
    g.sample_size(10);
    g.bench_function("exclusive_scan", |b| {
        b.iter(|| {
            let (out, total) = scan::exclusive_scan(&gpu, &src, N).expect("device op");
            gpu.free(out);
            total
        })
    });
    g.finish();
}

criterion_group!(benches, bench_para_ef, bench_mergepath, bench_scan);
criterion_main!(benches);
