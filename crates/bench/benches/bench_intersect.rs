//! Real wall-clock benchmarks of the CPU intersection algorithms.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use griffin_codec::{BlockedList, Codec, DEFAULT_BLOCK_LEN};
use griffin_cpu::intersect::{binary_intersect_decoded, merge_intersect, skip_intersect};
use griffin_cpu::WorkCounters;
use griffin_workload::{gen_ratio_pair_opts, PairShape, RatioGroup};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_comparable_lengths(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let (short, long) = gen_ratio_pair_opts(
        &mut rng,
        RatioGroup { lo: 4, hi: 8 },
        200_000,
        0.3,
        8_000_000,
        PairShape::independent(),
    );
    let compressed = BlockedList::compress(&long, Codec::PforDelta, DEFAULT_BLOCK_LEN);
    let mut g = c.benchmark_group("intersect_ratio4-8");
    g.sample_size(20);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.throughput(Throughput::Elements((short.len() + long.len()) as u64));

    g.bench_function("merge", |b| {
        b.iter(|| {
            let mut w = WorkCounters::default();
            merge_intersect(&short, &long, &mut w).len()
        })
    });
    g.bench_function("binary", |b| {
        b.iter(|| {
            let mut w = WorkCounters::default();
            binary_intersect_decoded(&short, &long, &mut w).len()
        })
    });
    g.bench_function("skip_compressed", |b| {
        b.iter(|| {
            let mut w = WorkCounters::default();
            skip_intersect(&short, &compressed, &mut w).len()
        })
    });
    g.finish();
}

fn bench_high_ratio(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let (short, long) = gen_ratio_pair_opts(
        &mut rng,
        RatioGroup { lo: 256, hi: 512 },
        500_000,
        0.3,
        20_000_000,
        PairShape::intermediate(),
    );
    let compressed = BlockedList::compress(&long, Codec::PforDelta, DEFAULT_BLOCK_LEN);
    let mut g = c.benchmark_group("intersect_ratio256-512");
    g.sample_size(20);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));

    g.bench_function("skip_compressed", |b| {
        b.iter(|| {
            let mut w = WorkCounters::default();
            skip_intersect(&short, &compressed, &mut w).len()
        })
    });
    g.bench_function("merge_decompressed", |b| {
        b.iter(|| {
            let mut w = WorkCounters::default();
            merge_intersect(&short, &long, &mut w).len()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_comparable_lengths, bench_high_ratio);
criterion_main!(benches);
