//! Real wall-clock benchmarks of scoring and top-k selection.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use griffin_cpu::{topk, Bm25, WorkCounters};
use griffin_index::CorpusMeta;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_bm25(c: &mut Criterion) {
    let bm = Bm25::default();
    let meta = CorpusMeta::uniform(10_000_000, 300);
    let mut rng = StdRng::seed_from_u64(1);
    let tfs: Vec<u32> = (0..100_000).map(|_| rng.gen_range(1..50)).collect();
    let mut g = c.benchmark_group("rank");
    g.sample_size(20);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.throughput(Throughput::Elements(tfs.len() as u64));
    g.bench_function("bm25_contributions", |b| {
        let idf = bm.idf(meta.num_docs, 12_345);
        b.iter(|| {
            tfs.iter()
                .map(|&tf| bm.contribution(idf, tf, 300.0, meta.avg_doc_len))
                .sum::<f32>()
        })
    });
    g.finish();
}

fn bench_topk(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let mut g = c.benchmark_group("topk");
    g.sample_size(20);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    for n in [1_000usize, 100_000] {
        let docids: Vec<u32> = (0..n as u32).collect();
        let scores: Vec<f32> = (0..n).map(|_| rng.gen::<f32>() * 50.0).collect();
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("partial_sort_k10", n), &n, |b, _| {
            b.iter(|| {
                let mut w = WorkCounters::default();
                topk::top_k(&docids, &scores, 10, &mut w)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_bm25, bench_topk);
criterion_main!(benches);
