//! Real wall-clock benchmark of the full query pipeline (all three
//! execution modes over a small synthetic index). Measures our
//! implementation's host-side speed — the virtual-time figures come from
//! the `exp_*` binaries.

use criterion::{criterion_group, criterion_main, Criterion};
use griffin::{ExecMode, Griffin};
use griffin_bench::setup::k20;
use griffin_gpu_sim::Gpu;
use griffin_index::TermId;
use griffin_workload::{build_list_index, ListIndexSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_modes(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let spec = ListIndexSpec {
        num_terms: 12,
        num_docs: 500_000,
        max_list_len: 120_000,
        ..Default::default()
    };
    let (index, _) = build_list_index(&spec, &mut rng);
    let gpu = Gpu::new(k20());
    let griffin = Griffin::new(&gpu, index.meta(), index.block_len());
    // Three terms spanning the size spectrum.
    let mut by_df: Vec<u32> = (0..index.num_terms() as u32).collect();
    by_df.sort_by_key(|&t| index.doc_freq(TermId(t)));
    let q = vec![
        TermId(by_df[2]),
        TermId(by_df[by_df.len() / 2]),
        TermId(by_df[by_df.len() - 1]),
    ];

    let mut g = c.benchmark_group("end_to_end_query");
    g.sample_size(10);
    for mode in [ExecMode::CpuOnly, ExecMode::GpuOnly, ExecMode::Hybrid] {
        g.bench_function(format!("{mode:?}"), |b| {
            b.iter(|| griffin.process_query(&index, &q, 10, mode))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_modes);
criterion_main!(benches);
