//! Shared pairwise-intersection timing harness for the Fig. 8 and Fig. 13
//! experiments.
//!
//! A pair is (short list, long list). The short side plays the role of the
//! query's intermediate result (decompressed, host-resident at the start);
//! the long side is a compressed posting list — PforDelta for the CPU
//! engine, Elias–Fano for Griffin-GPU, matching what each system stores.

use griffin_codec::{BlockedList, Codec, DEFAULT_BLOCK_LEN};
use griffin_cpu::decode::decode_list;
use griffin_cpu::intersect::{binary_intersect_decoded, merge_intersect, skip_intersect};
use griffin_cpu::{CpuCostModel, WorkCounters};
use griffin_gpu::mergepath::MergePathConfig;
use griffin_gpu::transfer::DeviceEfList;
use griffin_gpu::{gpu_binary, mergepath, para_ef};
use griffin_gpu_sim::{Gpu, VirtualNanos};

/// Which algorithm to time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algo {
    CpuMerge,
    CpuBinary,
    CpuSkip,
    /// The CPU engine's production rule: merge below ratio 16, skip above.
    CpuAuto,
    GpuMerge,
    /// Griffin-GPU's skip-pointer binary search with selective block
    /// decompression (its high-ratio strategy).
    GpuBinary,
    /// The prior-work baseline: binary search over the fully decompressed
    /// long list (Fig. 13's "GPU binary" series).
    GpuFullBinary,
    /// Griffin-GPU's production rule: MergePath below ratio 128,
    /// parallel binary search above.
    GpuAuto,
    /// Pure-kernel variants: inputs already decompressed and resident
    /// (host memory for CPU, device memory for GPU). These isolate the
    /// intersection *algorithm* costs — the regime of the paper's Fig. 13
    /// microbenchmark (where GPU merge reaches 87× over CPU merge, which
    /// is impossible if every run re-pays transfer + decompression).
    CpuMergeResident,
    CpuBinaryResident,
    GpuMergeResident,
    GpuBinaryResident,
}

/// A compressed pair ready for timing.
pub struct Pair {
    pub short: Vec<u32>,
    pub long_pfor: BlockedList,
    pub long_ef: BlockedList,
    pub expected: usize,
}

impl Pair {
    pub fn new(short: Vec<u32>, long: &[u32]) -> Pair {
        let expected = short
            .iter()
            .filter(|v| long.binary_search(v).is_ok())
            .count();
        Pair {
            short,
            long_pfor: BlockedList::compress(long, Codec::PforDelta, DEFAULT_BLOCK_LEN),
            long_ef: BlockedList::compress(long, Codec::EliasFano, DEFAULT_BLOCK_LEN),
            expected,
        }
    }

    pub fn ratio(&self) -> f64 {
        self.long_pfor.len() as f64 / self.short.len().max(1) as f64
    }
}

/// Times one algorithm on one pair; panics if the result size is wrong
/// (every timing is also a correctness check).
pub fn time_algo(gpu: &Gpu, model: &CpuCostModel, pair: &Pair, algo: Algo) -> VirtualNanos {
    match algo {
        Algo::CpuMerge => {
            let mut w = WorkCounters::default();
            let long = decode_list(&pair.long_pfor, &mut w);
            let m = merge_intersect(&pair.short, &long, &mut w);
            assert_eq!(m.len(), pair.expected);
            model.time(&w)
        }
        Algo::CpuBinary => {
            let mut w = WorkCounters::default();
            let long = decode_list(&pair.long_pfor, &mut w);
            let m = binary_intersect_decoded(&pair.short, &long, &mut w);
            assert_eq!(m.len(), pair.expected);
            model.time(&w)
        }
        Algo::CpuSkip => {
            let mut w = WorkCounters::default();
            let m = skip_intersect(&pair.short, &pair.long_pfor, &mut w);
            assert_eq!(m.len(), pair.expected);
            model.time(&w)
        }
        Algo::CpuAuto => {
            let algo = if pair.ratio() >= 16.0 {
                Algo::CpuSkip
            } else {
                Algo::CpuMerge
            };
            time_algo(gpu, model, pair, algo)
        }
        Algo::GpuMerge => {
            let ((), t) = gpu.time(|g| {
                let d_short = g.htod(&pair.short).expect("device op");
                let d_long = DeviceEfList::upload(g, &pair.long_ef).expect("device op");
                let long_ids = para_ef::decompress(g, &d_long).expect("device op");
                let cfg = MergePathConfig::for_device(g.config());
                let m = mergepath::intersect(
                    g,
                    &d_short,
                    pair.short.len(),
                    &long_ids,
                    d_long.len,
                    &cfg,
                )
                .expect("device op");
                assert_eq!(m.len, pair.expected);
                m.free(g);
                g.free(long_ids);
                d_long.free(g);
                g.free(d_short);
            });
            t
        }
        Algo::GpuBinary => {
            let ((), t) = gpu.time(|g| {
                let d_short = g.htod(&pair.short).expect("device op");
                let d_long = DeviceEfList::upload(g, &pair.long_ef).expect("device op");
                let out = gpu_binary::intersect(
                    g,
                    &d_short,
                    pair.short.len(),
                    &d_long,
                    DEFAULT_BLOCK_LEN,
                )
                .expect("device op");
                assert_eq!(out.matches.len, pair.expected);
                out.matches.free(g);
                d_long.free(g);
                g.free(d_short);
            });
            t
        }
        Algo::GpuFullBinary => {
            let ((), t) = gpu.time(|g| {
                let d_short = g.htod(&pair.short).expect("device op");
                let d_long = DeviceEfList::upload(g, &pair.long_ef).expect("device op");
                let long_ids = para_ef::decompress(g, &d_long).expect("device op");
                let m = gpu_binary::intersect_decompressed(
                    g,
                    &d_short,
                    pair.short.len(),
                    &long_ids,
                    d_long.len,
                )
                .expect("device op");
                assert_eq!(m.len, pair.expected);
                m.free(g);
                g.free(long_ids);
                d_long.free(g);
                g.free(d_short);
            });
            t
        }
        Algo::GpuAuto => {
            let algo = if pair.ratio() >= 128.0 {
                Algo::GpuBinary
            } else {
                Algo::GpuMerge
            };
            time_algo(gpu, model, pair, algo)
        }
        Algo::CpuMergeResident => {
            let mut w0 = WorkCounters::default();
            let long = decode_list(&pair.long_pfor, &mut w0); // not charged
            let mut w = WorkCounters::default();
            let m = merge_intersect(&pair.short, &long, &mut w);
            assert_eq!(m.len(), pair.expected);
            model.time(&w)
        }
        Algo::CpuBinaryResident => {
            let mut w0 = WorkCounters::default();
            let long = decode_list(&pair.long_pfor, &mut w0); // not charged
            let mut w = WorkCounters::default();
            let m = binary_intersect_decoded(&pair.short, &long, &mut w);
            assert_eq!(m.len(), pair.expected);
            model.time(&w)
        }
        Algo::GpuMergeResident => {
            // Stage inputs outside the timed span.
            let d_short = gpu.htod(&pair.short).expect("device op");
            let d_long_c = DeviceEfList::upload(gpu, &pair.long_ef).expect("device op");
            let long_ids = para_ef::decompress(gpu, &d_long_c).expect("device op");
            let n = d_long_c.len;
            let ((), t) = gpu.time(|g| {
                let cfg = MergePathConfig::for_device(g.config());
                let m = mergepath::intersect(g, &d_short, pair.short.len(), &long_ids, n, &cfg)
                    .expect("device op");
                assert_eq!(m.len, pair.expected);
                m.free(g);
            });
            gpu.free(long_ids);
            d_long_c.free(gpu);
            gpu.free(d_short);
            t
        }
        Algo::GpuBinaryResident => {
            let d_short = gpu.htod(&pair.short).expect("device op");
            let d_long_c = DeviceEfList::upload(gpu, &pair.long_ef).expect("device op");
            let long_ids = para_ef::decompress(gpu, &d_long_c).expect("device op");
            let n = d_long_c.len;
            let ((), t) = gpu.time(|g| {
                let m =
                    gpu_binary::intersect_decompressed(g, &d_short, pair.short.len(), &long_ids, n)
                        .expect("device op");
                assert_eq!(m.len, pair.expected);
                m.free(g);
            });
            gpu.free(long_ids);
            d_long_c.free(gpu);
            gpu.free(d_short);
            t
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use griffin_gpu_sim::DeviceConfig;

    #[test]
    fn all_algorithms_agree_and_charge_time() {
        let short: Vec<u32> = (0..200u32).map(|i| i * 37).collect();
        let long: Vec<u32> = (0..10_000u32).map(|i| i * 2).collect();
        let pair = Pair::new(short, &long);
        let gpu = Gpu::new(DeviceConfig::test_tiny());
        let model = CpuCostModel::default();
        for algo in [
            Algo::CpuMerge,
            Algo::CpuBinary,
            Algo::CpuSkip,
            Algo::CpuAuto,
            Algo::GpuMerge,
            Algo::GpuBinary,
            Algo::GpuFullBinary,
            Algo::GpuAuto,
        ] {
            let t = time_algo(&gpu, &model, &pair, algo);
            assert!(t.as_nanos() > 0, "{algo:?} must cost time");
        }
        assert_eq!(gpu.mem_in_use(), 0, "harness must not leak device memory");
    }
}
