//! Wall-clock kernel measurement for cost-model calibration.
//!
//! Everything else in this crate reports *virtual* time — deterministic,
//! host-independent, computed from work counters. This module is the one
//! deliberate exception: it times the real CPU kernels with
//! `std::time::Instant` (warmup + median-of-runs over deterministic
//! workload inputs) so [`griffin::KernelMeasurements`] can replace the
//! hand-set CPU constants in [`griffin::CostModel`] with numbers measured
//! on the host actually running the engine. Wall-clock results are only
//! meaningful on the host that produced them, so snapshots carry a
//! [`host_fingerprint`] and live in a separate `BENCH_wallclock.json`,
//! never merged into the virtual-time `BENCH_v<N>.json`.

use std::collections::BTreeMap;
use std::time::Instant;

use griffin::KernelMeasurements;

use crate::snapshot::Snapshot;

/// Identity of the measuring host: CPU model, architecture, and which
/// SIMD features runtime detection found. Two wall-clock snapshots are
/// comparable only when these match.
pub fn host_fingerprint() -> BTreeMap<String, String> {
    let mut h = BTreeMap::new();
    h.insert("arch".into(), std::env::consts::ARCH.into());
    h.insert("cpu_model".into(), cpu_model());
    let mut features = Vec::new();
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            features.push("avx2");
        }
        if std::arch::is_x86_feature_detected!("sse4.2") {
            features.push("sse4.2");
        }
    }
    h.insert(
        "features".into(),
        if features.is_empty() {
            "none".into()
        } else {
            features.join("+")
        },
    );
    h
}

fn cpu_model() -> String {
    std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|text| {
            text.lines()
                .find(|l| l.starts_with("model name"))
                .and_then(|l| l.split(':').nth(1))
                .map(|m| m.trim().to_owned())
        })
        .unwrap_or_else(|| "unknown".into())
}

/// Times `op` with `warmup` discarded runs followed by `runs` measured
/// runs, returning the **median** wall-clock nanoseconds per run. The
/// median (not the mean) shrugs off scheduler hiccups and one-off cache
/// warm effects; `op`'s return value is folded into a black-box sink so
/// the optimizer cannot delete the work.
pub fn median_ns(warmup: usize, runs: usize, mut op: impl FnMut() -> u64) -> f64 {
    assert!(runs > 0);
    let mut sink = 0u64;
    for _ in 0..warmup {
        sink = sink.wrapping_add(op());
    }
    let mut samples = Vec::with_capacity(runs);
    for _ in 0..runs {
        let t0 = Instant::now();
        sink = sink.wrapping_add(op());
        samples.push(t0.elapsed().as_nanos() as u64);
    }
    std::hint::black_box(sink);
    samples.sort_unstable();
    let mid = samples.len() / 2;
    if samples.len() % 2 == 1 {
        samples[mid] as f64
    } else {
        (samples[mid - 1] + samples[mid]) as f64 / 2.0
    }
}

/// The experiment name wall-clock calibration metrics live under.
pub const CALIBRATION_EXP: &str = "calibration";

/// Records `m` into `snap` under the [`CALIBRATION_EXP`] experiment, so
/// the measured constants ride the same snapshot schema (and diff
/// tooling) as every other metric.
pub fn record_measurements(snap: &mut Snapshot, m: &KernelMeasurements) {
    let e = snap.experiments.entry(CALIBRATION_EXP.into()).or_default();
    e.insert("cpu_decode_ns_per_elem".into(), m.cpu_decode_ns_per_elem);
    e.insert("cpu_merge_ns_per_elem".into(), m.cpu_merge_ns_per_elem);
    e.insert("cpu_skip_ns_per_probe".into(), m.cpu_skip_ns_per_probe);
}

/// Reads the calibration constants back out of a wall-clock snapshot —
/// the inverse of [`record_measurements`], used to re-calibrate a
/// [`griffin::CostModel`] from a stored `BENCH_wallclock.json`.
pub fn measurements_from(snap: &Snapshot) -> Option<KernelMeasurements> {
    let e = snap.experiments.get(CALIBRATION_EXP)?;
    Some(KernelMeasurements {
        cpu_decode_ns_per_elem: *e.get("cpu_decode_ns_per_elem")?,
        cpu_merge_ns_per_elem: *e.get("cpu_merge_ns_per_elem")?,
        cpu_skip_ns_per_probe: *e.get("cpu_skip_ns_per_probe")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use griffin::CostModel;
    use griffin_gpu_sim::DeviceConfig;

    #[test]
    fn fingerprint_has_the_required_keys() {
        let h = host_fingerprint();
        assert!(h.contains_key("arch"));
        assert!(h.contains_key("cpu_model"));
        assert!(h.contains_key("features"));
    }

    #[test]
    fn median_is_robust_to_one_outlier() {
        let mut i = 0u64;
        // Not a timing assertion — just exercise the plumbing.
        let ns = median_ns(2, 5, || {
            i += 1;
            std::hint::black_box(i)
        });
        assert!(ns >= 0.0);
    }

    #[test]
    fn measurements_round_trip_through_wallclock_snapshot() {
        let m = KernelMeasurements {
            cpu_decode_ns_per_elem: 1.25,
            cpu_merge_ns_per_elem: 2.75,
            cpu_skip_ns_per_probe: 55.5,
        };
        let mut snap = Snapshot {
            version: 1,
            label: "wallclock".into(),
            scale: 1.0,
            smoke: true,
            host: host_fingerprint(),
            ..Snapshot::default()
        };
        record_measurements(&mut snap, &m);
        let back = Snapshot::from_json(&snap.to_json()).unwrap();
        let m2 = measurements_from(&back).unwrap();
        assert_eq!(m, m2);
        // The acceptance bar: a model calibrated from the read-back
        // measurements is identical to one calibrated pre-serialization.
        let cfg = DeviceConfig::tesla_k20();
        let a = CostModel::from_device(&cfg, true).calibrated_from(&m);
        let b = CostModel::from_device(&cfg, true).calibrated_from(&m2);
        assert_eq!(a, b);
    }

    #[test]
    fn incomplete_snapshot_yields_none() {
        let snap = Snapshot::default();
        assert!(measurements_from(&snap).is_none());
    }
}
