//! Perf snapshots (`BENCH_v<N>.json`) and the regression-diff logic
//! behind the `bench_diff` binary.
//!
//! Every experiment can dump its headline numbers as a small JSON
//! snapshot (`Artifacts::snapshot_metric` + `--snapshot <path>`);
//! `run_all` merges the per-experiment snapshots, the active cost-model
//! constants, and the run's scale into one `BENCH_v<N>.json` — the
//! cross-PR perf record the ROADMAP asks for. `bench_diff` compares two
//! snapshots metric-by-metric with a tolerance band and direction
//! awareness (a `_ns` metric regresses *up*, a `speedup` regresses
//! *down*), exiting nonzero on regression.
//!
//! The build has no crates.io access, so this module carries its own
//! minimal JSON parser — the write side reuses
//! [`griffin_telemetry::json`].

use std::collections::BTreeMap;

use griffin_telemetry::json;

/// A parsed JSON value (just enough for snapshot files).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<JsonValue>),
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parse a JSON document. Covers the full value grammar with the
/// escapes the telemetry writer emits; rejects trailing garbage.
pub fn parse_json(input: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b" \t\r\n".contains(b))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn eat_lit(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.eat_lit("true", JsonValue::Bool(true)),
            Some(b'f') => self.eat_lit("false", JsonValue::Bool(false)),
            Some(b'n') => self.eat_lit("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {:?} at byte {}", other, self.pos)),
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                other => return Err(format!("expected ',' or ']', found {other:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte safe).
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || b"+-.eE".contains(&b))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

/// One `BENCH_v<N>.json` perf snapshot.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Schema version (currently 1).
    pub version: u64,
    /// Free-form label, e.g. `"v001"`.
    pub label: String,
    /// The `GRIFFIN_SCALE` multiplier the run used.
    pub scale: f64,
    /// Whether the run was a `--smoke` run.
    pub smoke: bool,
    /// Active cost-model constants (informational in diffs).
    pub cost_model: BTreeMap<String, f64>,
    /// Host fingerprint for *wall-clock* snapshots (CPU model, detected
    /// SIMD features, …). Empty for virtual-time snapshots, whose
    /// numbers are host-independent by construction. `bench_diff`
    /// refuses to enforce wall-clock comparisons across differing
    /// fingerprints.
    pub host: BTreeMap<String, String>,
    /// experiment → metric → headline value.
    pub experiments: BTreeMap<String, BTreeMap<String, f64>>,
}

impl Snapshot {
    pub fn to_json(&self) -> String {
        let mut cm = json::Object::new();
        for (k, v) in &self.cost_model {
            cm.f64(k, *v);
        }
        let mut exps = json::Object::new();
        for (name, metrics) in &self.experiments {
            let mut m = json::Object::new();
            for (k, v) in metrics {
                m.f64(k, *v);
            }
            exps.raw(name, &m.finish());
        }
        let mut root = json::Object::new();
        root.u64("version", self.version)
            .str("label", &self.label)
            .f64("scale", self.scale)
            .bool("smoke", self.smoke)
            .raw("cost_model", &cm.finish());
        if !self.host.is_empty() {
            let mut h = json::Object::new();
            for (k, v) in &self.host {
                h.str(k, v);
            }
            root.raw("host", &h.finish());
        }
        root.raw("experiments", &exps.finish());
        root.finish()
    }

    pub fn from_json(text: &str) -> Result<Snapshot, String> {
        let v = parse_json(text)?;
        let num_map = |key: &str| -> BTreeMap<String, f64> {
            match v.get(key) {
                Some(JsonValue::Obj(fields)) => fields
                    .iter()
                    .filter_map(|(k, v)| v.as_f64().map(|v| (k.clone(), v)))
                    .collect(),
                _ => BTreeMap::new(),
            }
        };
        let mut experiments = BTreeMap::new();
        if let Some(JsonValue::Obj(exps)) = v.get("experiments") {
            for (name, metrics) in exps {
                let JsonValue::Obj(fields) = metrics else {
                    continue;
                };
                experiments.insert(
                    name.clone(),
                    fields
                        .iter()
                        .filter_map(|(k, m)| m.as_f64().map(|m| (k.clone(), m)))
                        .collect(),
                );
            }
        }
        let mut host = BTreeMap::new();
        if let Some(JsonValue::Obj(fields)) = v.get("host") {
            for (k, hv) in fields {
                if let Some(s) = hv.as_str() {
                    host.insert(k.clone(), s.to_owned());
                }
            }
        }
        Ok(Snapshot {
            version: v.get("version").and_then(JsonValue::as_f64).unwrap_or(1.0) as u64,
            label: v
                .get("label")
                .and_then(JsonValue::as_str)
                .unwrap_or_default()
                .to_owned(),
            scale: v.get("scale").and_then(JsonValue::as_f64).unwrap_or(1.0),
            smoke: v.get("smoke").and_then(JsonValue::as_bool).unwrap_or(false),
            cost_model: num_map("cost_model"),
            host,
            experiments,
        })
    }
}

/// Whether two snapshots' host fingerprints make their wall-clock
/// numbers comparable. Virtual-time snapshots (empty fingerprints on
/// both sides) always compare; snapshots recorded on different hosts —
/// or a wall-clock snapshot against a fingerprint-less baseline — do
/// not, and `bench_diff` reports them informationally instead of
/// enforcing the tolerance band.
pub fn hosts_comparable(a: &Snapshot, b: &Snapshot) -> bool {
    a.host == b.host
}

/// Which direction of change regresses a metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Latencies, durations, miss rates: regression is *up*.
    LowerIsBetter,
    /// Speedups, ratios, savings: regression is *down*.
    HigherIsBetter,
    /// No preferred direction: drift beyond band still fails (a perf
    /// constant silently changing is worth a red build).
    TwoSided,
}

/// Classify a metric name by suffix/keyword convention.
pub fn direction_of(metric: &str) -> Direction {
    const LOWER: [&str; 8] = [
        "_ns",
        "_ms",
        "latency",
        "miss",
        "waste",
        "dropped",
        "shed",
        "imbalance",
    ];
    const HIGHER: [&str; 7] = [
        "speedup",
        "ratio",
        "saved",
        "throughput",
        "skipped",
        "crossover",
        "qps",
    ];
    if LOWER.iter().any(|k| metric.contains(k)) {
        Direction::LowerIsBetter
    } else if HIGHER.iter().any(|k| metric.contains(k)) {
        Direction::HigherIsBetter
    } else {
        Direction::TwoSided
    }
}

/// One metric's comparison verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiffStatus {
    Ok,
    /// Changed in the *good* direction beyond the band.
    Improved,
    /// Changed in the *bad* direction (or drifted, for two-sided)
    /// beyond the band.
    Regressed,
    /// Present in only one snapshot.
    MissingInCandidate,
    NewInCandidate,
}

/// One row of a snapshot diff.
#[derive(Debug, Clone)]
pub struct DiffEntry {
    pub experiment: String,
    pub metric: String,
    pub baseline: Option<f64>,
    pub candidate: Option<f64>,
    /// Relative change in percent (`(cand − base) / |base| · 100`).
    pub delta_pct: Option<f64>,
    pub status: DiffStatus,
}

/// Compare `candidate` against `baseline` with a relative tolerance
/// band of `tolerance_pct` percent per metric. Cost-model constants are
/// compared informationally (never regress); experiment metrics are
/// enforced by direction.
pub fn diff(baseline: &Snapshot, candidate: &Snapshot, tolerance_pct: f64) -> Vec<DiffEntry> {
    let tol = tolerance_pct / 100.0;
    let mut out = Vec::new();
    for (exp, base_metrics) in &baseline.experiments {
        let cand_metrics = candidate.experiments.get(exp);
        for (metric, &base) in base_metrics {
            let cand = cand_metrics.and_then(|m| m.get(metric)).copied();
            out.push(compare_one(exp, metric, Some(base), cand, tol));
        }
        if let Some(cand_metrics) = cand_metrics {
            for (metric, &cand) in cand_metrics {
                if !base_metrics.contains_key(metric) {
                    out.push(compare_one(exp, metric, None, Some(cand), tol));
                }
            }
        }
    }
    for (exp, cand_metrics) in &candidate.experiments {
        if !baseline.experiments.contains_key(exp) {
            for (metric, &cand) in cand_metrics {
                out.push(compare_one(exp, metric, None, Some(cand), tol));
            }
        }
    }
    out
}

fn compare_one(
    experiment: &str,
    metric: &str,
    baseline: Option<f64>,
    candidate: Option<f64>,
    tol: f64,
) -> DiffEntry {
    let (status, delta_pct) = match (baseline, candidate) {
        (Some(base), Some(cand)) => {
            let denom = base.abs().max(f64::MIN_POSITIVE);
            let delta = (cand - base) / denom;
            let status = if delta.abs() <= tol {
                DiffStatus::Ok
            } else {
                match direction_of(metric) {
                    Direction::LowerIsBetter if delta > 0.0 => DiffStatus::Regressed,
                    Direction::HigherIsBetter if delta < 0.0 => DiffStatus::Regressed,
                    Direction::TwoSided => DiffStatus::Regressed,
                    _ => DiffStatus::Improved,
                }
            };
            (status, Some(delta * 100.0))
        }
        (Some(_), None) => (DiffStatus::MissingInCandidate, None),
        (None, Some(_)) => (DiffStatus::NewInCandidate, None),
        (None, None) => (DiffStatus::Ok, None),
    };
    DiffEntry {
        experiment: experiment.to_owned(),
        metric: metric.to_owned(),
        baseline,
        candidate,
        delta_pct,
        status,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(metrics: &[(&str, &str, f64)]) -> Snapshot {
        let mut s = Snapshot {
            version: 1,
            label: "test".into(),
            scale: 100.0,
            smoke: true,
            ..Snapshot::default()
        };
        for &(exp, m, v) in metrics {
            s.experiments
                .entry(exp.to_owned())
                .or_default()
                .insert(m.to_owned(), v);
        }
        s
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let mut s = snap(&[
            ("exp_fig12", "gpu_speedup_1m", 11.5),
            ("exp_fig12", "cpu_decode_ns", 120_000.0),
            ("exp_serving", "p99_latency_ns", 4.5e6),
        ]);
        s.cost_model.insert("gpu_ns_per_elem".into(), 0.15);
        let text = s.to_json();
        let back = Snapshot::from_json(&text).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn host_fingerprint_round_trips_and_gates_comparability() {
        let mut s = snap(&[("exp_kernels", "pfor_decode_ns_per_elem", 1.4)]);
        s.host.insert("cpu_model".into(), "TestCPU 9000".into());
        s.host.insert("features".into(), "avx2".into());
        let back = Snapshot::from_json(&s.to_json()).unwrap();
        assert_eq!(s, back);
        assert!(hosts_comparable(&s, &back));

        // Same metrics, different host: not comparable.
        let mut other = s.clone();
        other.host.insert("cpu_model".into(), "OtherCPU".into());
        assert!(!hosts_comparable(&s, &other));
        // A wall-clock snapshot against a fingerprint-less baseline: no.
        let virtual_snap = snap(&[("exp_kernels", "pfor_decode_ns_per_elem", 1.4)]);
        assert!(!hosts_comparable(&virtual_snap, &s));
        // Two virtual-time snapshots (no fingerprints): yes.
        assert!(hosts_comparable(&virtual_snap, &virtual_snap.clone()));
        // A host-less serialization has no "host" key at all.
        assert!(!virtual_snap.to_json().contains("\"host\""));
    }

    #[test]
    fn parser_handles_nesting_and_escapes() {
        let v = parse_json(r#"{"a":[1,2.5,-3e2],"s":"x\"\nA","b":true,"n":null}"#).unwrap();
        assert_eq!(v.get("s").and_then(JsonValue::as_str), Some("x\"\nA"));
        assert_eq!(v.get("b").and_then(JsonValue::as_bool), Some(true));
        match v.get("a") {
            Some(JsonValue::Arr(items)) => {
                assert_eq!(items[2].as_f64(), Some(-300.0));
            }
            other => panic!("expected array, got {other:?}"),
        }
        assert!(parse_json("{\"a\":1} garbage").is_err());
        assert!(parse_json("{\"a\":}").is_err());
    }

    #[test]
    fn identical_snapshots_pass() {
        let s = snap(&[("e", "x_ns", 100.0), ("e", "speedup", 2.0)]);
        let d = diff(&s, &s, 5.0);
        assert!(d.iter().all(|e| e.status == DiffStatus::Ok));
    }

    #[test]
    fn ten_percent_slowdown_is_flagged() {
        let base = snap(&[("e", "query_ns", 1_000.0)]);
        let cand = snap(&[("e", "query_ns", 1_100.0)]);
        let d = diff(&base, &cand, 5.0);
        assert_eq!(d[0].status, DiffStatus::Regressed);
        // A 10% *speedup* on a lower-is-better metric is an improvement.
        let faster = snap(&[("e", "query_ns", 900.0)]);
        assert_eq!(diff(&base, &faster, 5.0)[0].status, DiffStatus::Improved);
    }

    #[test]
    fn direction_awareness() {
        assert_eq!(direction_of("p99_latency_ns"), Direction::LowerIsBetter);
        assert_eq!(
            direction_of("hybrid_speedup_vs_cpu"),
            Direction::HigherIsBetter
        );
        assert_eq!(
            direction_of("ef_compression_ratio"),
            Direction::HigherIsBetter
        );
        assert_eq!(direction_of("num_lists"), Direction::TwoSided);
        // A speedup that *drops* regresses; one that rises improves.
        let base = snap(&[("e", "speedup", 10.0)]);
        assert_eq!(
            diff(&base, &snap(&[("e", "speedup", 8.0)]), 5.0)[0].status,
            DiffStatus::Regressed
        );
        assert_eq!(
            diff(&base, &snap(&[("e", "speedup", 12.0)]), 5.0)[0].status,
            DiffStatus::Improved
        );
    }

    #[test]
    fn missing_and_new_metrics_are_reported() {
        let base = snap(&[("e", "a_ns", 1.0), ("e", "b_ns", 2.0)]);
        let cand = snap(&[("e", "a_ns", 1.0), ("e", "c_ns", 3.0)]);
        let d = diff(&base, &cand, 5.0);
        let status = |m: &str| d.iter().find(|e| e.metric == m).map(|e| e.status).unwrap();
        assert_eq!(status("a_ns"), DiffStatus::Ok);
        assert_eq!(status("b_ns"), DiffStatus::MissingInCandidate);
        assert_eq!(status("c_ns"), DiffStatus::NewInCandidate);
    }
}
