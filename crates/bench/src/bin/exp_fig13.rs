//! **Fig. 13** — list intersection on comparable-length pairs: CPU merge,
//! CPU binary, GPU merge (MergePath), GPU binary (parallel binary search).
//!
//! Paper (pairs with ratio < 16, longer list 1K–10M): merge beats binary
//! on both processors at these ratios; GPU merge reaches up to 87× over
//! CPU merge and up to 2.29× over GPU binary; CPU binary is slowest.

use griffin_bench::intersect_harness::{time_algo, Algo, Pair};
use griffin_bench::report::{ms, Table};
use griffin_bench::setup::{k20, scaled, size_axis};
use griffin_bench::Artifacts;
use griffin_cpu::CpuCostModel;
use griffin_gpu_sim::{Gpu, VirtualNanos};
use griffin_workload::{gen_ratio_pair_opts, PairShape, RatioGroup};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let artifacts = Artifacts::from_args();
    let gpu = Gpu::new(k20());
    let telemetry = artifacts.observe_gpu(&gpu);
    let model = CpuCostModel::default();
    let mut rng = StdRng::seed_from_u64(13);
    let pairs_per_size = scaled(4);
    let group = RatioGroup { lo: 2, hi: 16 }; // comparable lengths

    let mut t = Table::new(
        "Fig. 13: List Intersection Comparison (avg virtual ms, ratio < 16)",
        &[
            "longer list",
            "CPU merge",
            "CPU binary",
            "GPU merge",
            "GPU binary",
        ],
    );

    for n in size_axis() {
        let mut totals = [VirtualNanos::ZERO; 4];
        for _ in 0..pairs_per_size {
            let (short, long) = gen_ratio_pair_opts(
                &mut rng,
                group,
                n,
                0.3,
                (n as u32).saturating_mul(30).max(10_000),
                PairShape::independent(),
            );
            let pair = Pair::new(short, &long);
            // Pure-kernel comparison: inputs decompressed and resident, as in
            // the paper's microbenchmark; "GPU binary" is the prior-work
            // baseline (binary search over the full decompressed list).
            for (i, algo) in [
                Algo::CpuMergeResident,
                Algo::CpuBinaryResident,
                Algo::GpuMergeResident,
                Algo::GpuBinaryResident,
            ]
            .into_iter()
            .enumerate()
            {
                totals[i] += time_algo(&gpu, &model, &pair, algo);
            }
        }
        let avg = |i: usize| totals[i] / pairs_per_size as u64;
        t.row(&[
            format!("{n}"),
            ms(avg(0)),
            ms(avg(1)),
            ms(avg(2)),
            ms(avg(3)),
        ]);
        // Latest wins: the snapshot keeps the largest-size row.
        artifacts.snapshot_duration("cpu_merge_ns", avg(0));
        artifacts.snapshot_duration("gpu_merge_ns", avg(2));
    }
    t.print();
    artifacts.write_table(&t);
    artifacts.write_snapshot("exp_fig13");
    artifacts.write_metrics(&telemetry);
    artifacts.write_trace(&telemetry);
    println!("\n(paper's shape at the large sizes: GPU merge fastest, then GPU");
    println!(" binary, then CPU merge; CPU binary slowest)");
}
