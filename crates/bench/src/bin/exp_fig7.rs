//! **Fig. 7** — ranking performance: CPU `partial_sort` vs GPU
//! bucketSelect vs GPU radix sort over result-list sizes 1K–10M.
//!
//! Paper: the CPU wins across the board; result lists are too small to
//! amortize GPU launch/allocation/transfer overheads. (Queries rarely
//! produce more than a few thousand matches, making the small sizes the
//! relevant ones.)

use griffin_bench::report::{ms, Table};
use griffin_bench::setup::{k20, size_axis};
use griffin_bench::Artifacts;
use griffin_cpu::{topk, CpuCostModel, WorkCounters};
use griffin_gpu::{bucket_select, radix_sort};
use griffin_gpu_sim::Gpu;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let artifacts = Artifacts::from_args();
    let gpu = Gpu::new(k20());
    let telemetry = artifacts.observe_gpu(&gpu);
    let model = CpuCostModel::default();
    let mut rng = StdRng::seed_from_u64(7);
    let k = 10;

    let mut t = Table::new(
        "Fig. 7: Ranking Performance Comparison (virtual ms, k=10)",
        &[
            "list size",
            "CPU partial_sort",
            "GPU bucketSelect",
            "GPU radixSort",
        ],
    );

    for n in size_axis() {
        let docids: Vec<u32> = (0..n as u32).collect();
        let scores: Vec<f32> = (0..n).map(|_| rng.gen::<f32>() * 100.0).collect();

        // CPU partial_sort.
        let mut w = WorkCounters::default();
        let cpu_top = topk::top_k(&docids, &scores, k, &mut w);
        let cpu_time = model.time(&w);

        // GPU rankers operate on device-resident results (as they would
        // inside Griffin-GPU); the clock includes their readbacks.
        let d_docids = gpu.htod(&docids).expect("device op");
        let d_scores = gpu.htod(&scores).expect("device op");

        let (bucket_top, bucket_time) = gpu.time(|g| {
            bucket_select::top_k_by_bucket_select(g, &d_docids, &d_scores, n, k).expect("device op")
        });
        let (radix_top, radix_time) = gpu
            .time(|g| radix_sort::top_k_by_sort(g, &d_docids, &d_scores, n, k).expect("device op"));
        gpu.free(d_docids);
        gpu.free(d_scores);

        // All three must agree on the winning scores.
        let s = |v: &[(u32, f32)]| v.iter().map(|&(_, s)| s).collect::<Vec<_>>();
        assert_eq!(
            s(&cpu_top),
            s(&bucket_top),
            "bucketSelect disagrees at n={n}"
        );
        assert_eq!(s(&cpu_top), s(&radix_top), "radixSort disagrees at n={n}");

        t.row(&[
            format!("{n}"),
            ms(cpu_time),
            ms(bucket_time),
            ms(radix_time),
        ]);
        // Latest wins: the snapshot keeps the largest-size row.
        artifacts.snapshot_duration("cpu_partial_sort_ns", cpu_time);
        artifacts.snapshot_duration("gpu_bucket_select_ns", bucket_time);
        artifacts.snapshot_duration("gpu_radix_sort_ns", radix_time);
    }
    t.print();
    artifacts.write_table(&t);
    artifacts.write_snapshot("exp_fig7");
    artifacts.write_metrics(&telemetry);
    artifacts.write_trace(&telemetry);
    println!("\n(paper's shape: CPU lowest at every size; GPU radix worst at scale)");
}
