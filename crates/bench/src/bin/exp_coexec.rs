//! **Co-execution** — range-partitioned CPU+GPU split intersection, the
//! intra-query parallelism the paper's title promises, measured as a
//! list-length-ratio × split-fraction sweep.
//!
//! Two views over the same cold term pairs (fresh lists per measurement,
//! so every GPU lane pays its real upload):
//!
//! 1. a **static grid** — every eligible intersection forced to split at
//!    a fixed GPU fraction (0 = all-CPU lane, 1 = all-GPU lane), which
//!    maps the cost surface and locates the empirical crossover ratio:
//!    the ratio whose degenerate *lanes* (not query totals, which share
//!    init and top-k) cost the same, judged by the log of the lane-time
//!    ratio so the comparison is scale-free;
//! 2. the **adaptive balancer** — the cost model solves the fraction so
//!    both lanes finish together, then per-engine feedback from measured
//!    lane imbalance refines it pair over pair.
//!
//! Asserted: at the empirical crossover the adaptive split beats the
//! best single-processor hybrid by >= 10% (both lanes contribute), and
//! at the ratio extremes — where one processor should simply own the
//! operation — co-execution costs at most 2% over the unsplit hybrid.
//!
//! `--smoke` trims the pair count; the list length stays at 2^20 in
//! both modes because the GPU's fixed per-step cost (kernel launches,
//! transfer latencies, and the serial tail of the tf-decode kernel)
//! only amortizes at full length — shorter lists have no crossover for
//! a split to win at. `GRIFFIN_SCALE` applies to the full-size run.

use griffin::{CostModel, ExecMode, Griffin, SplitConfig, StepOp};
use griffin_bench::report::{ms, Table};
use griffin_bench::setup::{k20, scaled};
use griffin_bench::Artifacts;
use griffin_codec::Codec;
use griffin_gpu_sim::{Gpu, VirtualNanos};
use griffin_index::{InvertedIndex, TermId};
use griffin_workload::gen_correlated_lists;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Long/short length ratios swept; the scheduler's crossover for these
/// configs sits near 16 (the benches' calibrated `ratio_threshold`).
const RATIOS: [usize; 5] = [4, 16, 64, 256, 1024];
const FRACTIONS: [f64; 5] = [0.0, 0.25, 0.5, 0.75, 1.0];

/// What one configuration's sweep produces: per-ratio totals, per-ratio
/// split-lane sums (for lane-based crossover detection), and every
/// query's top-k (for bit-exactness checks).
struct RunOut {
    totals: Vec<VirtualNanos>,
    lanes: Vec<(VirtualNanos, VirtualNanos)>,
    topks: Vec<Vec<(u32, f32)>>,
}

/// One engine per configuration, tuned like the other serving benches
/// (threshold 16, no hysteresis, 64K-element GPU floor).
enum Config {
    /// Co-execution disabled: the scheduler picks one processor.
    Unsplit,
    /// Every eligible intersection splits at exactly this GPU fraction.
    Forced(f64),
    /// Solver-chosen fraction + measured-imbalance feedback.
    Adaptive,
}

fn main() {
    let artifacts = Artifacts::from_args();
    let smoke = std::env::args().any(|a| a == "--smoke");
    let telemetry = artifacts.telemetry();

    let long_len: usize = 1 << 20;
    let pairs = if smoke { 2 } else { scaled(4).max(2) };

    // Fresh (short, long) term pairs per ratio: measurements stay cold.
    let mut rng = StdRng::seed_from_u64(23);
    let mut lens = Vec::new();
    for &r in &RATIOS {
        for _ in 0..pairs {
            lens.push((long_len / r).max(64));
            lens.push(long_len);
        }
    }
    let num_docs = (long_len as u32).saturating_mul(4);
    let lists = gen_correlated_lists(&mut rng, &lens, num_docs);
    let index = InvertedIndex::from_docid_lists(&lists, num_docs, Codec::EliasFano, 128);
    let terms_of = |ratio_idx: usize, pair: usize| -> [TermId; 2] {
        let base = ((ratio_idx * pairs + pair) * 2) as u32;
        [TermId(base), TermId(base + 1)]
    };

    // Per-ratio total time under one configuration (fresh device, so the
    // list cache and the balancer state start cold), plus the per-ratio
    // split-lane sums — the crossover is judged on the lanes, not the
    // totals, which share init and top-k — and the reference top-k to
    // pin bit-exactness across every configuration.
    let run = |config: &Config| -> RunOut {
        let gpu = Gpu::new(k20());
        let mut griffin = Griffin::new(&gpu, index.meta(), index.block_len());
        griffin.scheduler.min_gpu_work = 64 * 1024;
        griffin.scheduler.ratio_threshold = 16;
        griffin.scheduler.hysteresis = 1.0;
        match config {
            Config::Unsplit => griffin.set_coexec(false),
            Config::Forced(f) => {
                let model = CostModel::from_device(&k20(), true);
                griffin.scheduler.split = Some(SplitConfig::forced(model, *f));
            }
            Config::Adaptive => {
                griffin.set_telemetry(telemetry.clone());
            }
        }
        let mut totals = Vec::new();
        let mut lanes = Vec::new();
        let mut topks = Vec::new();
        for (i, _) in RATIOS.iter().enumerate() {
            let mut total = VirtualNanos::ZERO;
            let (mut cpu_lane_sum, mut gpu_lane_sum) = (VirtualNanos::ZERO, VirtualNanos::ZERO);
            for p in 0..pairs {
                let out = griffin.process_query(&index, &terms_of(i, p), 10, ExecMode::Hybrid);
                assert_eq!(out.gpu_faults, 0, "healthy device");
                total += out.time;
                for s in &out.steps {
                    if let StepOp::SplitIntersect {
                        cpu_lane, gpu_lane, ..
                    } = s.op
                    {
                        cpu_lane_sum += cpu_lane;
                        gpu_lane_sum += gpu_lane;
                    }
                }
                topks.push(out.topk);
            }
            totals.push(total);
            lanes.push((cpu_lane_sum, gpu_lane_sum));
        }
        griffin.gpu.shutdown();
        assert_eq!(gpu.mem_in_use(), 0, "co-execution must not leak");
        RunOut {
            totals,
            lanes,
            topks,
        }
    };

    // ---- 1. Static fraction grid. ------------------------------------
    let base = run(&Config::Unsplit);
    let (unsplit, reference) = (base.totals, base.topks);
    let mut grid: Vec<Vec<VirtualNanos>> = Vec::new(); // [fraction][ratio]
    let mut lane_grid = Vec::new(); // [fraction][ratio]
    for &f in &FRACTIONS {
        let forced = run(&Config::Forced(f));
        assert_eq!(forced.topks, reference, "fraction {f} changed results");
        grid.push(forced.totals);
        lane_grid.push(forced.lanes);
    }

    let mut t1 = Table::new(
        "Co-execution: forced split-fraction grid (total virtual ms per ratio group)",
        &[
            "long/short",
            "unsplit",
            "f=0.00",
            "f=0.25",
            "f=0.50",
            "f=0.75",
            "f=1.00",
            "best static",
        ],
    );
    for (i, &r) in RATIOS.iter().enumerate() {
        let best = (0..FRACTIONS.len()).map(|fi| grid[fi][i]).min().unwrap();
        let mut row = vec![format!("{r}x"), ms(unsplit[i])];
        row.extend((0..FRACTIONS.len()).map(|fi| ms(grid[fi][i])));
        row.push(ms(best));
        t1.row(&row);
    }
    t1.print();
    artifacts.write_table(&t1);

    // The empirical crossover: where the two degenerate lanes (the f=0
    // run's all-CPU lane vs the f=1 run's all-GPU lane) cost the same,
    // a split has the most to offer. Judged on the log of the lane-time
    // ratio — scale-free, so a 2x-off cheap ratio does not outweigh a
    // 1.5x-off expensive one the way an absolute difference would.
    let crossover = (0..RATIOS.len())
        .min_by(|&a, &b| {
            let imbalance = |i: usize| {
                let cpu = lane_grid[0][i].0.as_nanos().max(1) as f64;
                let gpu = lane_grid[FRACTIONS.len() - 1][i].1.as_nanos().max(1) as f64;
                (cpu / gpu).ln().abs()
            };
            imbalance(a).total_cmp(&imbalance(b))
        })
        .expect("non-empty grid");
    println!(
        "(empirical crossover at ratio {}x: the all-CPU and all-GPU lanes cost\n the same there, so that is where co-execution has the most to offer)",
        RATIOS[crossover]
    );

    // ---- 2. Adaptive balancer vs the single-processor bests. ---------
    let adaptive_out = run(&Config::Adaptive);
    assert_eq!(
        adaptive_out.topks, reference,
        "adaptive split changed results"
    );
    let adaptive = adaptive_out.totals;

    let mut t2 = Table::new(
        "Co-execution: adaptive balancer vs single-processor hybrid",
        &[
            "long/short",
            "unsplit",
            "best single lane",
            "adaptive split",
            "vs best single %",
        ],
    );
    for (i, &r) in RATIOS.iter().enumerate() {
        // The better of the two degenerate lanes — what a perfect
        // pick-one scheduler would cost on these cold pairs.
        let best_single = grid[0][i].min(grid[FRACTIONS.len() - 1][i]);
        let gain = (1.0 - adaptive[i].as_nanos() as f64 / best_single.as_nanos() as f64) * 100.0;
        t2.row(&[
            format!("{r}x"),
            ms(unsplit[i]),
            ms(best_single),
            ms(adaptive[i]),
            format!("{gain:+.1}"),
        ]);
    }
    t2.print();
    artifacts.write_table(&t2);

    // At the crossover both lanes carry real work, so the split must
    // clearly beat either processor alone.
    let best_single = grid[0][crossover].min(grid[FRACTIONS.len() - 1][crossover]);
    let gain = 1.0 - adaptive[crossover].as_nanos() as f64 / best_single.as_nanos() as f64;
    assert!(
        gain >= 0.10,
        "adaptive split must beat the best single-processor hybrid by >= 10% \
         at the crossover ratio {}x, got {:.1}%",
        RATIOS[crossover],
        gain * 100.0
    );
    // At the extremes one processor should own the operation outright;
    // the split machinery must get out of the way.
    for i in [0, RATIOS.len() - 1] {
        let slowdown = adaptive[i].as_nanos() as f64 / unsplit[i].as_nanos() as f64 - 1.0;
        assert!(
            slowdown <= 0.02,
            "adaptive split must cost <= 2% over unsplit at ratio {}x, got {:.1}%",
            RATIOS[i],
            slowdown * 100.0
        );
    }
    println!(
        "\n(bit-exact in every cell; {:.1}% over the best single lane at the\n crossover, and within 2% of unsplit at both extremes)",
        gain * 100.0
    );

    artifacts.snapshot_metric("crossover_saved_pct", gain * 100.0);
    artifacts.snapshot_duration("adaptive_at_crossover_ns", adaptive[crossover]);
    artifacts.write_snapshot("exp_coexec");
    artifacts.write_metrics(&telemetry);
    artifacts.write_trace(&telemetry);
}
