//! **Fig. 8** — the GPU/CPU crossover: intersection latency per
//! list-length-ratio group, Griffin-GPU vs the CPU implementation.
//!
//! Paper: with the longer list fixed to [1M, 2M] elements and 100 pairs
//! per group, Griffin-GPU wins below ratio ≈128 and the CPU wins above —
//! the constant Griffin's scheduler is built on, analytically tied to the
//! 128-element block size.

use griffin_bench::intersect_harness::{time_algo, Algo, Pair};
use griffin_bench::report::{ms, speedup, Table};
use griffin_bench::setup::{k20, scaled};
use griffin_bench::Artifacts;
use griffin_cpu::CpuCostModel;
use griffin_gpu_sim::{Gpu, VirtualNanos};
use griffin_workload::{gen_ratio_pair, RATIO_GROUPS};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let artifacts = Artifacts::from_args();
    let gpu = Gpu::new(k20());
    let telemetry = artifacts.observe_gpu(&gpu);
    let model = CpuCostModel::default();
    let mut rng = StdRng::seed_from_u64(8);
    let pairs_per_group = scaled(6);
    // Paper range [1M, 2M]; keep it (scale only affects the sample count).
    println!(
        "{pairs_per_group} pairs per ratio group, longer list in [1M, 2M] \
         (GRIFFIN_SCALE to adjust)"
    );

    let mut t = Table::new(
        "Fig. 8: GPU/CPU Cross Over Point (avg virtual ms per intersection)",
        &[
            "ratio group",
            "Griffin-GPU",
            "CPU impl",
            "GPU/CPU",
            "winner",
        ],
    );

    let mut crossover: Option<String> = None;
    let mut crossover_index = RATIO_GROUPS.len();
    for (gi, group) in RATIO_GROUPS.into_iter().enumerate() {
        let mut gpu_total = VirtualNanos::ZERO;
        let mut cpu_total = VirtualNanos::ZERO;
        for _ in 0..pairs_per_group {
            let long_len = rng.gen_range(1_000_000..2_000_000);
            let (short, long) = gen_ratio_pair(&mut rng, group, long_len, 0.3, 60_000_000);
            let pair = Pair::new(short, &long);
            // Fig. 8 is the experiment that *determines* the GPU/CPU
            // crossover, so the GPU side is Griffin-GPU's merge-based
            // intersection (its default below the crossover); the CPU side
            // is the production CPU engine.
            gpu_total += time_algo(&gpu, &model, &pair, Algo::GpuMerge);
            cpu_total += time_algo(&gpu, &model, &pair, Algo::CpuAuto);
        }
        let gpu_avg = gpu_total / pairs_per_group as u64;
        let cpu_avg = cpu_total / pairs_per_group as u64;
        let winner = if gpu_avg <= cpu_avg { "GPU" } else { "CPU" };
        if winner == "CPU" && crossover.is_none() {
            crossover = Some(group.label());
            crossover_index = gi;
        }
        // Latest wins: the snapshot keeps the highest-ratio group.
        artifacts.snapshot_duration("gpu_intersect_ns", gpu_avg);
        artifacts.snapshot_duration("cpu_intersect_ns", cpu_avg);
        t.row(&[
            group.label(),
            ms(gpu_avg),
            ms(cpu_avg),
            speedup(cpu_avg.as_nanos() as f64 / gpu_avg.as_nanos().max(1) as f64),
            winner.to_string(),
        ]);
    }
    t.print();
    artifacts.write_table(&t);
    artifacts.write_metrics(&telemetry);
    artifacts.write_trace(&telemetry);
    match crossover {
        Some(g) => println!("\nfirst CPU-winning group: {g} (paper: [128,256))"),
        None => println!("\nGPU won every group — crossover above [512,1024)"),
    }
    artifacts.snapshot_metric("crossover_group_index", crossover_index as f64);
    artifacts.write_snapshot("exp_fig8");
}
