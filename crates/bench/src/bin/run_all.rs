//! Runs every experiment binary in paper order. Equivalent to invoking
//! each `exp_*` binary; honours `GRIFFIN_SCALE` / `GRIFFIN_FULL`.
//!
//! ```text
//! cargo run -p griffin-bench --release --bin run_all
//! ```

use std::process::Command;

fn main() {
    let exps = [
        "exp_table1",
        "exp_fig7",
        "exp_fig8",
        "exp_fig9",
        "exp_fig10",
        "exp_fig11",
        "exp_fig12",
        "exp_fig13",
        "exp_fig14",
        "exp_fig15",
    ];
    // Experiment binaries live next to this one.
    let me = std::env::current_exe().expect("current_exe");
    let dir = me.parent().expect("binary directory");
    for exp in exps {
        println!("\n################ {exp} ################");
        let status = Command::new(dir.join(exp))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {exp}: {e}"));
        assert!(status.success(), "{exp} failed with {status}");
    }
    println!("\nall experiments completed");
}
