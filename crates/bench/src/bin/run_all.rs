//! Runs every experiment binary in paper order. Equivalent to invoking
//! each `exp_*` binary; honours `GRIFFIN_SCALE` / `GRIFFIN_FULL` /
//! `GRIFFIN_FAULT_SEED`.
//!
//! Experiments run **in parallel** across a worker pool (default: the
//! machine's available parallelism, override with `GRIFFIN_JOBS`) with
//! their output captured, then printed strictly in paper order — the
//! transcript is byte-identical to a serial run, only the wall clock
//! shrinks. The experiments themselves are virtual-time simulations, so
//! concurrent runs cannot perturb each other's results.
//!
//! Launch failures and nonzero exits don't abort the sweep: every
//! experiment runs, the summary reports which succeeded or failed, and
//! the process exits nonzero if any failed.
//!
//! ```text
//! cargo run -p griffin-bench --release --bin run_all -- \
//!     [--smoke] [--out-dir <dir>] [--snapshot <path>]
//! ```
//!
//! * `--smoke` — forwarded to every child: shrunken workloads for CI.
//! * `--out-dir <dir>` — per-experiment artifacts land in `<dir>`:
//!   `<exp>.metrics.json`, `<exp>.trace.json`, `<exp>.snapshot.json`.
//! * `--snapshot <path>` — merge the per-experiment headline numbers
//!   plus the active cost-model constants into one perf snapshot (the
//!   `BENCH_v<N>.json` format `bench_diff` compares). Implies
//!   per-child snapshot fragments (in `--out-dir` if given, else a
//!   temp directory).

use std::io::Write;
use std::path::PathBuf;
use std::process::{Command, Output};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::thread;

use griffin::CostModel;
use griffin_bench::setup::{k20, scale};
use griffin_bench::Snapshot;

fn main() {
    let exps = [
        "exp_table1",
        "exp_fig7",
        "exp_fig8",
        "exp_fig9",
        "exp_fig10",
        "exp_fig11",
        "exp_fig12",
        "exp_fig13",
        "exp_fig14",
        "exp_fig15",
        "exp_overlap",
        "exp_serving",
        "exp_faults",
        "exp_coexec",
        "exp_queries",
        "exp_profile",
        "exp_fleet",
        "exp_cache",
    ];
    let opts = Options::from_args();
    // Smoke runs shrink the sample counts too (children inherit the
    // env); an explicit GRIFFIN_SCALE always wins.
    if opts.smoke && std::env::var("GRIFFIN_SCALE").is_err() {
        std::env::set_var("GRIFFIN_SCALE", "0.1");
    }
    // Experiment binaries live next to this one.
    let me = std::env::current_exe().expect("current_exe");
    let dir = me.parent().expect("binary directory").to_path_buf();

    // Where per-experiment snapshot fragments go: the out dir when the
    // user asked for one, a scratch dir when only `--snapshot` is set.
    let frag_dir: Option<PathBuf> = match (&opts.out_dir, &opts.snapshot) {
        (Some(d), _) => Some(d.clone()),
        (None, Some(_)) => {
            Some(std::env::temp_dir().join(format!("griffin_run_all_{}", std::process::id())))
        }
        (None, None) => None,
    };
    if let Some(d) = &frag_dir {
        std::fs::create_dir_all(d).unwrap_or_else(|e| {
            eprintln!("error: cannot create artifact dir {}: {e}", d.display());
            std::process::exit(2);
        });
    }

    let workers = std::env::var("GRIFFIN_JOBS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
        .min(exps.len());
    eprintln!(
        "running {} experiments on {workers} workers{}",
        exps.len(),
        if opts.smoke { " (smoke)" } else { "" }
    );

    // Workers pull the next experiment index from a shared counter and
    // send back (index, captured output); the printer drains the channel
    // and emits transcripts in index order, streaming each as soon as
    // all earlier ones are out.
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, Result<Output, String>)>();
    let mut failures: Vec<(&str, String)> = Vec::new();
    thread::scope(|s| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let dir = &dir;
            let opts = &opts;
            let frag_dir = &frag_dir;
            s.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::SeqCst);
                if i >= exps.len() {
                    break;
                }
                let mut cmd = Command::new(dir.join(exps[i]));
                if opts.smoke {
                    cmd.arg("--smoke");
                }
                if let Some(d) = &opts.out_dir {
                    cmd.arg("--metrics-json")
                        .arg(d.join(format!("{}.metrics.json", exps[i])));
                    cmd.arg("--trace-json")
                        .arg(d.join(format!("{}.trace.json", exps[i])));
                }
                if let Some(d) = frag_dir {
                    cmd.arg("--snapshot")
                        .arg(d.join(format!("{}.snapshot.json", exps[i])));
                }
                let result = cmd.output().map_err(|e| format!("failed to launch: {e}"));
                if tx.send((i, result)).is_err() {
                    break;
                }
            });
        }
        drop(tx);

        let mut pending: Vec<Option<Result<Output, String>>> = exps.iter().map(|_| None).collect();
        let mut printed = 0;
        for (i, result) in rx {
            pending[i] = Some(result);
            while printed < exps.len() {
                let Some(result) = pending[printed].take() else {
                    break;
                };
                let exp = exps[printed];
                println!("\n################ {exp} ################");
                match result {
                    Ok(out) => {
                        // Progress went to the child's stderr, tables to
                        // its stdout; replay both on our streams.
                        std::io::stderr().write_all(&out.stderr).expect("stderr");
                        std::io::stdout().write_all(&out.stdout).expect("stdout");
                        if !out.status.success() {
                            failures.push((exp, format!("exited with {}", out.status)));
                        }
                    }
                    Err(why) => failures.push((exp, why)),
                }
                printed += 1;
            }
        }
    });

    if let Some(path) = &opts.snapshot {
        let frag_dir = frag_dir.as_ref().expect("snapshot implies fragment dir");
        let mut snap = merge_snapshot(&exps, frag_dir, opts.smoke);
        snap.label = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default();
        match std::fs::write(path, snap.to_json()) {
            Ok(()) => eprintln!(
                "wrote perf snapshot ({} experiments) to {}",
                snap.experiments.len(),
                path.display()
            ),
            Err(e) => {
                eprintln!("error: failed to write snapshot {}: {e}", path.display());
                std::process::exit(2);
            }
        }
        if opts.out_dir.is_none() {
            std::fs::remove_dir_all(frag_dir).ok();
        }
    }

    println!("\n################ summary ################");
    for exp in exps {
        match failures.iter().find(|(name, _)| *name == exp) {
            Some((_, why)) => println!("FAIL  {exp}: {why}"),
            None => println!("ok    {exp}"),
        }
    }
    if failures.is_empty() {
        println!("\nall {} experiments completed", exps.len());
    } else {
        println!("\n{} of {} experiments failed", failures.len(), exps.len());
        std::process::exit(1);
    }
}

#[derive(Default)]
struct Options {
    smoke: bool,
    out_dir: Option<PathBuf>,
    snapshot: Option<PathBuf>,
}

impl Options {
    fn from_args() -> Options {
        let mut opts = Options::default();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--smoke" => opts.smoke = true,
                "--out-dir" => match args.next() {
                    Some(v) => opts.out_dir = Some(PathBuf::from(v)),
                    None => usage("--out-dir requires a <dir> value"),
                },
                "--snapshot" => match args.next() {
                    Some(v) => opts.snapshot = Some(PathBuf::from(v)),
                    None => usage("--snapshot requires a <path> value"),
                },
                other => usage(&format!("unknown argument {other}")),
            }
        }
        opts
    }
}

fn usage(why: &str) -> ! {
    eprintln!("error: {why}");
    eprintln!("usage: run_all [--smoke] [--out-dir <dir>] [--snapshot <path>]");
    std::process::exit(2);
}

/// Collects the per-experiment snapshot fragments
/// (`{"experiment": ..., "metrics": {...}}`) into one [`Snapshot`]
/// stamped with the run's scale and the active cost-model constants.
/// Missing fragments (failed or artifact-less experiments) are skipped.
fn merge_snapshot(exps: &[&str], frag_dir: &std::path::Path, smoke: bool) -> Snapshot {
    use griffin_bench::snapshot::{parse_json, JsonValue};

    let mut snap = Snapshot {
        version: 1,
        label: String::new(),
        scale: scale(),
        smoke,
        host: Default::default(),
        cost_model: Default::default(),
        experiments: Default::default(),
    };
    let cm = CostModel::from_device(&k20(), true);
    snap.cost_model.insert("fixed_ns".into(), cm.fixed_ns);
    snap.cost_model
        .insert("serial_decode_ns".into(), cm.serial_decode_ns);
    snap.cost_model
        .insert("pcie_latency_ns".into(), cm.pcie_latency_ns);
    snap.cost_model
        .insert("pcie_ns_per_elem".into(), cm.pcie_ns_per_elem);
    snap.cost_model
        .insert("gpu_ns_per_elem".into(), cm.gpu_ns_per_elem);
    snap.cost_model
        .insert("cpu_ns_per_elem".into(), cm.cpu_ns_per_elem);
    snap.cost_model
        .insert("cpu_skip_ns_per_probe".into(), cm.cpu_skip_ns_per_probe);
    snap.cost_model
        .insert("cpu_decode_ns_per_elem".into(), cm.cpu_decode_ns_per_elem);

    for exp in exps {
        let path = frag_dir.join(format!("{exp}.snapshot.json"));
        let Ok(text) = std::fs::read_to_string(&path) else {
            eprintln!("note: no snapshot fragment for {exp} (skipped)");
            continue;
        };
        let v = match parse_json(&text) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("note: bad snapshot fragment for {exp}: {e} (skipped)");
                continue;
            }
        };
        let name = v
            .get("experiment")
            .and_then(JsonValue::as_str)
            .unwrap_or(exp)
            .to_owned();
        let mut metrics = std::collections::BTreeMap::new();
        if let Some(JsonValue::Obj(fields)) = v.get("metrics") {
            for (k, m) in fields {
                if let Some(m) = m.as_f64() {
                    metrics.insert(k.clone(), m);
                }
            }
        }
        snap.experiments.insert(name, metrics);
    }
    snap
}
