//! Runs every experiment binary in paper order. Equivalent to invoking
//! each `exp_*` binary; honours `GRIFFIN_SCALE` / `GRIFFIN_FULL`.
//!
//! Experiments run **in parallel** across a worker pool (default: the
//! machine's available parallelism, override with `GRIFFIN_JOBS`) with
//! their output captured, then printed strictly in paper order — the
//! transcript is byte-identical to a serial run, only the wall clock
//! shrinks. The experiments themselves are virtual-time simulations, so
//! concurrent runs cannot perturb each other's results.
//!
//! Launch failures and nonzero exits don't abort the sweep: every
//! experiment runs, the summary reports which succeeded or failed, and
//! the process exits nonzero if any failed.
//!
//! ```text
//! cargo run -p griffin-bench --release --bin run_all
//! ```

use std::io::Write;
use std::process::{Command, Output};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::thread;

fn main() {
    let exps = [
        "exp_table1",
        "exp_fig7",
        "exp_fig8",
        "exp_fig9",
        "exp_fig10",
        "exp_fig11",
        "exp_fig12",
        "exp_fig13",
        "exp_fig14",
        "exp_fig15",
        "exp_overlap",
        "exp_serving",
        "exp_faults",
        "exp_coexec",
    ];
    // Experiment binaries live next to this one.
    let me = std::env::current_exe().expect("current_exe");
    let dir = me.parent().expect("binary directory").to_path_buf();

    let workers = std::env::var("GRIFFIN_JOBS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
        .min(exps.len());
    eprintln!("running {} experiments on {workers} workers", exps.len());

    // Workers pull the next experiment index from a shared counter and
    // send back (index, captured output); the printer drains the channel
    // and emits transcripts in index order, streaming each as soon as
    // all earlier ones are out.
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, Result<Output, String>)>();
    let mut failures: Vec<(&str, String)> = Vec::new();
    thread::scope(|s| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let dir = &dir;
            s.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::SeqCst);
                if i >= exps.len() {
                    break;
                }
                let result = Command::new(dir.join(exps[i]))
                    .output()
                    .map_err(|e| format!("failed to launch: {e}"));
                if tx.send((i, result)).is_err() {
                    break;
                }
            });
        }
        drop(tx);

        let mut pending: Vec<Option<Result<Output, String>>> = exps.iter().map(|_| None).collect();
        let mut printed = 0;
        for (i, result) in rx {
            pending[i] = Some(result);
            while printed < exps.len() {
                let Some(result) = pending[printed].take() else {
                    break;
                };
                let exp = exps[printed];
                println!("\n################ {exp} ################");
                match result {
                    Ok(out) => {
                        // Progress went to the child's stderr, tables to
                        // its stdout; replay both on our streams.
                        std::io::stderr().write_all(&out.stderr).expect("stderr");
                        std::io::stdout().write_all(&out.stdout).expect("stdout");
                        if !out.status.success() {
                            failures.push((exp, format!("exited with {}", out.status)));
                        }
                    }
                    Err(why) => failures.push((exp, why)),
                }
                printed += 1;
            }
        }
    });

    println!("\n################ summary ################");
    for exp in exps {
        match failures.iter().find(|(name, _)| *name == exp) {
            Some((_, why)) => println!("FAIL  {exp}: {why}"),
            None => println!("ok    {exp}"),
        }
    }
    if failures.is_empty() {
        println!("\nall {} experiments completed", exps.len());
    } else {
        println!("\n{} of {} experiments failed", failures.len(), exps.len());
        std::process::exit(1);
    }
}
