//! Runs every experiment binary in paper order. Equivalent to invoking
//! each `exp_*` binary; honours `GRIFFIN_SCALE` / `GRIFFIN_FULL`.
//! Launch failures and nonzero exits don't abort the sweep: every
//! experiment runs, the summary reports which succeeded or failed, and
//! the process exits nonzero if any failed.
//!
//! ```text
//! cargo run -p griffin-bench --release --bin run_all
//! ```

use std::process::Command;

fn main() {
    let exps = [
        "exp_table1",
        "exp_fig7",
        "exp_fig8",
        "exp_fig9",
        "exp_fig10",
        "exp_fig11",
        "exp_fig12",
        "exp_fig13",
        "exp_fig14",
        "exp_fig15",
        "exp_serving",
        "exp_faults",
    ];
    // Experiment binaries live next to this one.
    let me = std::env::current_exe().expect("current_exe");
    let dir = me.parent().expect("binary directory");
    let mut failures: Vec<(&str, String)> = Vec::new();
    for exp in exps {
        println!("\n################ {exp} ################");
        match Command::new(dir.join(exp)).status() {
            Ok(status) if status.success() => {}
            Ok(status) => failures.push((exp, format!("exited with {status}"))),
            Err(e) => failures.push((exp, format!("failed to launch: {e}"))),
        }
    }
    println!("\n################ summary ################");
    for exp in exps {
        match failures.iter().find(|(name, _)| *name == exp) {
            Some((_, why)) => println!("FAIL  {exp}: {why}"),
            None => println!("ok    {exp}"),
        }
    }
    if failures.is_empty() {
        println!("\nall {} experiments completed", exps.len());
    } else {
        println!("\n{} of {} experiments failed", failures.len(), exps.len());
        std::process::exit(1);
    }
}
