//! **Profile** — latency-forensics demo: per-query attribution
//! profiles, the tail flight recorder, and SLO burn-rate monitoring
//! over the serving simulation.
//!
//! Plans a hybrid query stream with telemetry on, replays it at high
//! GPU utilization, then shows the forensics the serving layer
//! recorded along the way:
//!
//! 1. a folded-stack (flamegraph) profile of the slowest *unloaded*
//!    query — where its service time went (phase → processor → kernel);
//! 2. the aggregate phase attribution across the whole stream;
//! 3. the flight recorder's dominant-cause table for the tail queries
//!    under load (queueing vs. compute vs. PCIe vs. lane imbalance);
//! 4. the SLO monitor's burn rates.
//!
//! Every profile's self-times are asserted to sum exactly to the
//! engine-reported query time — the attribution invariant the
//! `profile_properties` suite pins down.
//!
//! `--smoke` shrinks the stream to CI size; `--snapshot` records the
//! headline numbers.

use std::collections::BTreeMap;

use griffin::{ExecMode, Griffin, QueryRequest};
use griffin_bench::report::{ms, Table};
use griffin_bench::setup::{k20, scaled};
use griffin_bench::Artifacts;
use griffin_gpu_sim::{Gpu, VirtualNanos};
use griffin_server::{AdmissionConfig, FlightConfig, GriffinServer, ServerConfig, SloConfig};
use griffin_telemetry::Telemetry;
use griffin_workload::{build_list_index, ListIndexSpec, QueryLogSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let artifacts = Artifacts::from_args();
    let smoke = std::env::args().any(|a| a == "--smoke");
    // Telemetry is the subject here, not an opt-in artifact: always on.
    let telemetry = Telemetry::enabled();
    let mut rng = StdRng::seed_from_u64(2024);
    let spec = ListIndexSpec {
        num_terms: 64,
        num_docs: if smoke { 1_000_000 } else { 8_000_000 },
        max_list_len: if smoke { 200_000 } else { 2_000_000 },
        ..Default::default()
    };
    eprintln!("building index...");
    let (index, _) = build_list_index(&spec, &mut rng);
    let queries = QueryLogSpec {
        num_queries: if smoke { 60 } else { scaled(400) },
        ..Default::default()
    }
    .generate(&index, &mut rng);

    let gpu = Gpu::new(k20());
    gpu.set_observer(telemetry.device_observer(gpu.config().warp_size));
    let mut griffin = Griffin::new(&gpu, index.meta(), index.block_len());
    griffin.set_telemetry(telemetry.clone());
    griffin.scheduler.min_gpu_work = 64 * 1024;
    griffin.scheduler.ratio_threshold = 16;

    // ---- Plan with telemetry: every query gets a trace id. -----------
    let mut server = GriffinServer::new(ServerConfig {
        cpu_workers: 4,
        admission: AdmissionConfig::default(),
        batching: None,
    });
    server.set_telemetry(telemetry.clone());
    server.set_flight_recorder(FlightConfig {
        capacity: 16,
        quantile: 0.9,
        min_samples: 32,
    });

    eprintln!("planning {} hybrid queries...", queries.len());
    let requests: Vec<QueryRequest> = queries
        .iter()
        .map(|q| QueryRequest::new(q.clone()).mode(ExecMode::Hybrid))
        .collect();
    let planned = server.plan(&griffin, &index, &requests);

    // ---- Attribution invariant + aggregate phase breakdown. ----------
    let profiles = telemetry.query_profiles();
    let mut by_phase: BTreeMap<String, VirtualNanos> = BTreeMap::new();
    let mut planned_total = VirtualNanos::ZERO;
    for p in &planned {
        let tq = p.trace_query.expect("telemetry was enabled");
        let prof = profiles
            .iter()
            .find(|pr| pr.query == tq)
            .expect("every planned query has a profile");
        assert_eq!(
            prof.attributed(),
            prof.total,
            "attribution tree must sum exactly (query {tq})"
        );
        assert_eq!(
            prof.total, p.service_time,
            "profile total must equal the engine's reported time (query {tq})"
        );
        planned_total += p.service_time;
        for phase in &prof.root.children {
            *by_phase.entry(phase.name.clone()).or_default() += phase.total;
        }
    }
    println!(
        "attribution check: {} profiles, self-times sum exactly to engine totals",
        planned.len()
    );

    let mut t = Table::new(
        "Aggregate latency attribution (all planned queries)",
        &["phase", "total", "share %"],
    );
    for (phase, total) in &by_phase {
        t.row(&[
            phase.clone(),
            ms(*total),
            format!(
                "{:.1}",
                100.0 * total.as_nanos() as f64 / planned_total.as_nanos().max(1) as f64
            ),
        ]);
    }
    t.print();
    artifacts.write_table(&t);

    // ---- Folded-stack profile of the slowest unloaded query. ---------
    let slowest = planned
        .iter()
        .enumerate()
        .max_by_key(|(_, p)| p.service_time)
        .expect("nonempty stream");
    let prof = profiles
        .iter()
        .find(|pr| Some(pr.query) == slowest.1.trace_query)
        .expect("profile exists");
    println!(
        "\nfolded-stack profile of the slowest unloaded query (#{} at {}):",
        slowest.0,
        ms(slowest.1.service_time)
    );
    print!("{}", prof.folded());
    println!(
        "(verdict: {})",
        prof.dominant_cause(VirtualNanos::ZERO).one_line()
    );

    // ---- Replay under load; flight recorder catches the tail. --------
    let mean_service = VirtualNanos::from_nanos(
        planned
            .iter()
            .map(|p| p.service_time.as_nanos())
            .sum::<u64>()
            / planned.len().max(1) as u64,
    );
    server.set_slo(SloConfig::with_windows(
        mean_service * 8,
        0.95,
        mean_service * 64,
    ));
    let mean_interarrival = mean_service.as_nanos() as f64 / 1.35; // overdriven
    let mut now = VirtualNanos::ZERO;
    let arrivals: Vec<VirtualNanos> = planned
        .iter()
        .map(|_| {
            now += VirtualNanos::from_nanos_f64(-mean_interarrival * (1.0 - rng.gen::<f64>()).ln());
            now
        })
        .collect();
    eprintln!("replaying at high load...");
    let report = server.replay(&planned, &arrivals);

    let flights = server.flight_records();
    let mut t2 = Table::new(
        "Flight recorder: dominant cause of the slowest queries",
        &["query", "latency", "queued", "service", "verdict"],
    );
    let mut slowest_flights = flights.clone();
    slowest_flights.sort_by_key(|f| std::cmp::Reverse(f.latency));
    for f in slowest_flights.iter().take(10) {
        t2.row(&[
            format!("#{}", f.query_index),
            ms(f.latency),
            ms(f.queue_wait),
            ms(f.service),
            f.verdict.one_line(),
        ]);
    }
    t2.print();
    artifacts.write_table(&t2);

    let p50 = report
        .latency_percentile(0.50)
        .unwrap_or(VirtualNanos::ZERO);
    let p99 = report
        .latency_percentile(0.99)
        .unwrap_or(VirtualNanos::ZERO);
    println!("\nload: p50 {} p99 {}", ms(p50), ms(p99));
    server.with_slo(|m| {
        let now = arrivals.last().copied().unwrap_or(VirtualNanos::ZERO) + p99;
        for w in &m.config().windows {
            println!(
                "SLO burn rate over {}: {:.2} (factor {})",
                ms(w.long),
                m.burn_rate(now, w.long),
                w.factor
            );
        }
        println!(
            "early warning: {}",
            if m.early_warning(now) {
                "FIRING"
            } else {
                "quiet"
            }
        );
    });

    // ---- Snapshot + artifacts. ---------------------------------------
    artifacts.snapshot_metric("queries", planned.len() as f64);
    artifacts.snapshot_duration("mean_service_ns", mean_service);
    artifacts.snapshot_duration("slowest_service_ns", slowest.1.service_time);
    artifacts.snapshot_duration("loaded_p50_ns", p50);
    artifacts.snapshot_duration("loaded_p99_ns", p99);
    artifacts.snapshot_metric("flights_retained", flights.len() as f64);
    for (phase, total) in &by_phase {
        artifacts.snapshot_metric(
            &format!("phase_share_{phase}_pct"),
            100.0 * total.as_nanos() as f64 / planned_total.as_nanos().max(1) as f64,
        );
    }
    artifacts.write_snapshot("exp_profile");
    artifacts.write_metrics(&telemetry);
    artifacts.write_trace(&telemetry);
}
