//! **Fig. 9** — the block-skipping argument behind the ratio-128 rule,
//! measured empirically.
//!
//! Paper §3.2: when λ = |S|/|R| exceeds the block size, the short list has
//! fewer elements than the long list has blocks, so skippable blocks are
//! *guaranteed*. This binary counts the blocks the CPU's skip search
//! actually decoded per ratio band — the fraction skipped should rise
//! through ~0 at λ ≈ block size toward ~1.

use griffin_bench::report::Table;
use griffin_bench::setup::scaled;
use griffin_bench::Artifacts;
use griffin_codec::{BlockedList, Codec, DEFAULT_BLOCK_LEN};
use griffin_cpu::intersect::skip_intersect;
use griffin_cpu::WorkCounters;
use griffin_workload::{gen_ratio_pair, RATIO_GROUPS};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let artifacts = Artifacts::from_args();
    let telemetry = artifacts.telemetry();
    let mut rng = StdRng::seed_from_u64(9);
    let pairs = scaled(4);
    let mut t = Table::new(
        "Fig. 9: Skippable Blocks by Ratio (skip search, 128-elt blocks)",
        &[
            "ratio group",
            "blocks total",
            "blocks decoded",
            "skipped %",
            "guaranteed?",
        ],
    );
    for group in RATIO_GROUPS {
        let mut total_blocks = 0u64;
        let mut decoded = 0u64;
        let mut short_len_sum = 0usize;
        for _ in 0..pairs {
            let (short, long) = gen_ratio_pair(&mut rng, group, 400_000, 0.3, 20_000_000);
            let compressed = BlockedList::compress(&long, Codec::PforDelta, DEFAULT_BLOCK_LEN);
            let mut w = WorkCounters::default();
            skip_intersect(&short, &compressed, &mut w);
            for (name, v) in w.named() {
                telemetry.counter_add(&format!("griffin_cpu_work_total{{counter=\"{name}\"}}"), v);
            }
            total_blocks += compressed.num_blocks() as u64;
            decoded += w.blocks_decoded;
            short_len_sum += short.len();
        }
        // The paper's guarantee: |R| < #blocks(S) forces skippable blocks.
        let guaranteed = (short_len_sum / pairs) < (total_blocks / pairs as u64) as usize;
        // Latest wins: the snapshot keeps the highest-ratio group.
        artifacts.snapshot_metric(
            "blocks_skipped_pct",
            100.0 * (1.0 - decoded as f64 / total_blocks as f64),
        );
        t.row(&[
            group.label(),
            (total_blocks / pairs as u64).to_string(),
            (decoded / pairs as u64).to_string(),
            format!(
                "{:.1}",
                100.0 * (1.0 - decoded as f64 / total_blocks as f64)
            ),
            if guaranteed {
                "yes (|R| < #blocks)"
            } else {
                "no"
            }
            .to_string(),
        ]);
    }
    t.print();
    artifacts.write_table(&t);
    artifacts.write_snapshot("exp_fig9");
    artifacts.write_metrics(&telemetry);
    artifacts.write_trace(&telemetry);
    println!("\n(§3.2: above λ = 128 skipping is guaranteed; below it, skipping");
    println!(" still happens on clustered data but is not guaranteed)");
}
