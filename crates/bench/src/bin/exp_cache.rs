//! **Cache** — the multi-tier cache hierarchy under a Zipf repeat-heavy
//! stream: result cache → host decoded-list cache → device LRU, plus the
//! cache-aware scheduler's "won by cache" placement flips.
//!
//! Four claims, each asserted internally (so `--smoke` in CI is a real
//! gate, not a plot generator):
//!
//! 1. **Off means off** — an engine with every tier explicitly zeroed is
//!    bit- *and virtual-time*-identical, query by query, to an engine
//!    that never heard of caches (the pre-caching baseline).
//! 2. **Warm caches pay** — replaying the same Zipf stream against warm
//!    tiers returns identical bits and cuts the mean virtual time by
//!    ≥ 25% (in practice far more: repeats collapse to a result-cache
//!    lookup).
//! 3. **Hit rate is monotone in capacity** — sweeping the result-cache
//!    entry bound over the same stream traces the hit-rate/latency
//!    curve, and LRU's stack property keeps the hit count nondecreasing.
//! 4. **Residency flips placements** — with a long list warm in the host
//!    decoded-list tier, the scheduler moves an operation the cold rule
//!    sent to the device, and the decision telemetry records the flip
//!    (`cache_flip` on the `SchedDecision` event, the
//!    `griffin_sched_cache_flips_total` counter) — without changing a
//!    single result bit.
//!
//! `GRIFFIN_SCALE` (or `--smoke`) scales the stream length.

use griffin::{Decision, ExecMode, Griffin, GriffinOutput, Proc, QueryRequest, Residency};
use griffin_bench::report::{ms, Table};
use griffin_bench::setup::{k20, scaled};
use griffin_bench::Artifacts;
use griffin_gpu_sim::{Gpu, VirtualNanos};
use griffin_index::TermId;
use griffin_telemetry::Telemetry;
use griffin_workload::{build_list_index, ListIndexSpec, QueryLogSpec, Zipf};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Distinct queries in the working set; the Zipf stream repeats them.
const DISTINCT: usize = 24;
/// Result-cache entry bounds swept for the hit-rate/latency curve.
const SWEEP: [usize; 4] = [4, 8, 16, 32];
/// Ample byte budgets so the sweep is bounded by *entries* alone.
const RESULT_BYTES: u64 = 16 << 20;
const HOST_BYTES: u64 = 64 << 20;
const DEVICE_BYTES: u64 = 64 << 20;

struct Tiers {
    result_entries: usize,
    host_bytes: u64,
    /// `None` leaves the device LRU at its construction default — the
    /// tier predates this hierarchy (it *is* the pre-hierarchy
    /// baseline), so "all new tiers off" must not perturb it.
    device_bytes: Option<u64>,
}

impl Tiers {
    const OFF: Tiers = Tiers {
        result_entries: 0,
        host_bytes: 0,
        device_bytes: None,
    };
    const ON: Tiers = Tiers {
        result_entries: 256,
        host_bytes: HOST_BYTES,
        device_bytes: Some(DEVICE_BYTES),
    };

    fn apply(&self, g: &Griffin<'_>) {
        g.set_result_cache(self.result_entries, RESULT_BYTES);
        g.cpu.set_host_cache_budget(self.host_bytes);
        if let Some(bytes) = self.device_bytes {
            g.gpu.set_cache_budget(bytes);
        }
    }
}

fn main() {
    // `run_all` forwards --smoke; honor it standalone too.
    if std::env::args().any(|a| a == "--smoke") && std::env::var("GRIFFIN_SCALE").is_err() {
        std::env::set_var("GRIFFIN_SCALE", "0.1");
    }
    let artifacts = Artifacts::from_args();
    let mut rng = StdRng::seed_from_u64(0xCAC4E);
    let spec = ListIndexSpec {
        num_terms: 48,
        num_docs: 2_000_000,
        max_list_len: 600_000,
        ..Default::default()
    };
    eprintln!("building index...");
    let (index, _) = build_list_index(&spec, &mut rng);

    // A small distinct working set repeated under Zipf: the repeat-heavy
    // head is what every tier of the hierarchy exists to absorb.
    let distinct = QueryLogSpec {
        num_queries: DISTINCT,
        ..Default::default()
    }
    .generate(&index, &mut rng);
    let zipf = Zipf::new(DISTINCT as u64, 1.1);
    let stream: Vec<QueryRequest> = (0..scaled(400))
        .map(|_| {
            let q = &distinct[zipf.sample(&mut rng) as usize - 1];
            QueryRequest::new(q.clone()).k(10).mode(ExecMode::Hybrid)
        })
        .collect();
    eprintln!(
        "replaying a {}-query Zipf stream over {} distinct queries",
        stream.len(),
        DISTINCT
    );

    let run_stream = |g: &Griffin<'_>| -> Vec<GriffinOutput> {
        stream.iter().map(|r| g.run(&index, r)).collect()
    };

    // ---- Claim 1: off means off (bit- and time-exact baseline). ------
    let gpu_bare = Gpu::new(k20());
    let bare = Griffin::new(&gpu_bare, index.meta(), index.block_len());
    let out_bare = run_stream(&bare);

    let gpu_off = Gpu::new(k20());
    let off = Griffin::new(&gpu_off, index.meta(), index.block_len());
    Tiers::OFF.apply(&off);
    let out_off = run_stream(&off);
    for (i, (a, b)) in out_bare.iter().zip(&out_off).enumerate() {
        assert_eq!(a.topk, b.topk, "caches-off changed bits at query {i}");
        assert_eq!(
            a.time, b.time,
            "caches-off changed virtual time at query {i}"
        );
    }
    eprintln!(
        "caches-off run is bit- and time-exact with the pre-hierarchy baseline \
         ({} queries)",
        out_bare.len()
    );

    // ---- Claim 2: warm tiers cut the mean by >= 25%, same bits. ------
    let telemetry = artifacts.telemetry();
    let gpu_warm = Gpu::new(k20());
    let mut warm = Griffin::new(&gpu_warm, index.meta(), index.block_len());
    warm.set_telemetry(telemetry.clone());
    Tiers::ON.apply(&warm);
    run_stream(&warm); // warming pass: every tier fills
    let out_warm = run_stream(&warm); // measured pass
    for (i, (a, b)) in out_bare.iter().zip(&out_warm).enumerate() {
        assert_eq!(a.topk, b.topk, "warm caches changed bits at query {i}");
    }
    let off_mean = mean(out_bare.iter().map(|o| o.time));
    let warm_mean = mean(out_warm.iter().map(|o| o.time));
    assert!(
        warm_mean.as_nanos() as f64 <= 0.75 * off_mean.as_nanos() as f64,
        "warm caches must cut the mean virtual time by >= 25% \
         (off {off_mean:?}, warm {warm_mean:?})"
    );
    let speedup = off_mean.as_nanos() as f64 / (warm_mean.as_nanos() as f64).max(1.0);
    let warm_stats = warm.result_cache_stats().expect("result tier is on");
    let warm_hits = out_warm.iter().filter(|o| o.result_cache_hit).count();
    warm.export_cache_metrics();

    let mut t = Table::new(
        "Cache: Zipf stream, all tiers off vs warm (virtual time)",
        &["config", "mean", "p-hit", "speedup"],
    );
    t.row(&["all off".into(), ms(off_mean), "-".into(), "1.00x".into()]);
    t.row(&[
        "all warm".into(),
        ms(warm_mean),
        format!("{:.2}", warm_hits as f64 / out_warm.len() as f64),
        format!("{speedup:.2}x"),
    ]);
    t.print();
    artifacts.write_table(&t);
    artifacts.snapshot_duration("cache_off_mean_ns", off_mean);
    artifacts.snapshot_duration("cache_warm_mean_ns", warm_mean);
    artifacts.snapshot_metric("cache_warm_speedup", speedup);
    artifacts.snapshot_metric(
        "cache_warm_hit_ratio",
        warm_stats.hits as f64 / (warm_stats.hits + warm_stats.misses).max(1) as f64,
    );

    // ---- Claim 3: the hit-rate/latency curve across cache sizes. -----
    let mut t2 = Table::new(
        "Cache: result-tier size sweep (cold start, one pass)",
        &["entries", "hit ratio", "mean", "evictions"],
    );
    let mut last_hits = 0u64;
    for entries in SWEEP {
        let gpu_s = Gpu::new(k20());
        let g = Griffin::new(&gpu_s, index.meta(), index.block_len());
        Tiers {
            result_entries: entries,
            ..Tiers::ON
        }
        .apply(&g);
        let outs = run_stream(&g);
        let stats = g.result_cache_stats().expect("result tier is on");
        let hit_ratio = stats.hits as f64 / (stats.hits + stats.misses).max(1) as f64;
        let m = mean(outs.iter().map(|o| o.time));
        // LRU is a stack algorithm: a bigger cache sees every hit a
        // smaller one did on the same trace.
        assert!(
            stats.hits >= last_hits,
            "hit count must be monotone in capacity ({entries} entries: \
             {} < {last_hits})",
            stats.hits
        );
        last_hits = stats.hits;
        t2.row(&[
            entries.to_string(),
            format!("{hit_ratio:.3}"),
            ms(m),
            stats.evictions.to_string(),
        ]);
        artifacts.snapshot_metric(&format!("cache_hit_ratio_e{entries}"), hit_ratio);
        artifacts.snapshot_duration(&format!("cache_mean_ns_e{entries}"), m);
    }
    assert!(last_hits > 0, "the largest cache never hit — sweep inert");
    t2.print();
    artifacts.write_table(&t2);

    // ---- Claim 4: a placement flip caused purely by residency. -------
    // Find a term pair the cold rule sends to the GPU but whose
    // host-resident cost undercuts the device step, using the engine's
    // own scheduler (so the probe matches the decision the run makes).
    let flip_t = Telemetry::enabled();
    let gpu_flip = Gpu::new(k20());
    let mut flip = Griffin::new(&gpu_flip, index.meta(), index.block_len());
    flip.set_telemetry(flip_t.clone());
    // Host tier only: the flip must come from host residency alone, with
    // the result tier off so the query actually executes and decides.
    Tiers {
        result_entries: 0,
        device_bytes: Some(0),
        ..Tiers::ON
    }
    .apply(&flip);
    let warm_host = Residency {
        host_cached: true,
        device_cached: false,
    };
    let mut pair = None;
    'scan: for s in 0..spec.num_terms {
        for l in 0..spec.num_terms {
            let (short_len, long_len) = (
                index.list(TermId(s as u32)).len(),
                index.list(TermId(l as u32)).len(),
            );
            if short_len >= long_len {
                continue;
            }
            let cold = flip.scheduler.decide_traced(short_len, long_len, Proc::Cpu);
            if cold.chosen != Decision::Gpu {
                continue;
            }
            let hot =
                flip.scheduler
                    .decide_traced_resident(short_len, long_len, Proc::Cpu, warm_host);
            if hot.cache_flip {
                pair = Some((TermId(s as u32), TermId(l as u32)));
                break 'scan;
            }
        }
    }
    let (short, long) = pair.expect("no residency-flippable term pair in the index");
    assert!(flip.cpu.warm_host_cache(&index, long));
    let req = QueryRequest::new(vec![short, long])
        .k(10)
        .mode(ExecMode::Hybrid);
    let flipped = flip.run(&index, &req);
    let flips: u32 = flip_t.query_profiles().iter().map(|p| p.cache_flips).sum();
    assert!(
        flips >= 1,
        "warm host residency must flip at least one scheduler decision"
    );
    let prom = flip_t.metrics_prometheus().expect("telemetry enabled");
    assert!(
        prom.contains("griffin_sched_cache_flips_total"),
        "the flip must reach the metrics registry"
    );
    // A flip moves work, never bits.
    let cold_ref = bare.run(&index, &req);
    assert_eq!(
        flipped.topk, cold_ref.topk,
        "a cache-flipped placement changed result bits"
    );
    println!(
        "\nresidency flip: terms ({},{}) moved Gpu→Cpu with the long list",
        short.0, long.0
    );
    println!("host-cached — {flips} decision(s) won by cache, same bits");
    artifacts.snapshot_metric("sched_cache_flips", flips as f64);

    artifacts.write_snapshot("exp_cache");
    artifacts.write_metrics(&telemetry);
    println!("\n(the shape: the repeat-heavy head of a Zipf stream collapses");
    println!(" into the result tier; what misses decodes once into the host");
    println!(" tier, and residency — not list length — picks the processor)");
}

fn mean(times: impl Iterator<Item = VirtualNanos>) -> VirtualNanos {
    let v: Vec<VirtualNanos> = times.collect();
    let sum: u64 = v.iter().map(|t| t.as_nanos()).sum();
    VirtualNanos::from_nanos(sum / v.len().max(1) as u64)
}
