//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. **Block size ↔ crossover** — §3.2's analysis ties the GPU/CPU
//!    crossover ratio to the compression block size; sweeping the block
//!    size should move the crossover with it.
//! 2. **Scheduler placement-awareness** — hysteresis + minimum-work floor
//!    vs the paper's bare ratio rule.
//! 3. **Device list cache** — our extension vs the paper-faithful
//!    per-query transfers.

use griffin::{ExecMode, Griffin, Scheduler};
use griffin_bench::intersect_harness::{time_algo, Algo, Pair};
use griffin_bench::report::{ms, Table};
use griffin_bench::setup::{k20, scaled};
use griffin_cpu::CpuCostModel;
use griffin_gpu_sim::{Gpu, VirtualNanos};
use griffin_workload::{build_list_index, gen_ratio_pair, ListIndexSpec, QueryLogSpec, RatioGroup};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Ablation 1: crossover vs block size. For each block size, find the
/// lowest ratio group where the CPU wins.
fn block_size_sweep() {
    let gpu = Gpu::new(k20());
    let model = CpuCostModel::default();
    let mut t = Table::new(
        "Ablation 1: crossover group vs compression block size",
        &["block size", "first CPU-winning ratio group"],
    );
    for block_len in [64usize, 128, 256] {
        let mut rng = StdRng::seed_from_u64(91);
        let mut first_cpu_win = "none (GPU always)".to_string();
        // Coarser groups for speed: geometric ratio points.
        for ratio in [8usize, 32, 128, 512, 2048] {
            let group = RatioGroup {
                lo: ratio,
                hi: ratio + 1,
            };
            let mut gpu_total = VirtualNanos::ZERO;
            let mut cpu_total = VirtualNanos::ZERO;
            for _ in 0..scaled(3) {
                let (short, long) = gen_ratio_pair(&mut rng, group, 600_000, 0.3, 30_000_000);
                let mut pair = Pair::new(short, &long);
                // Re-frame with the swept block size.
                pair.long_pfor = griffin_codec::BlockedList::compress(
                    &long,
                    griffin_codec::Codec::PforDelta,
                    block_len,
                );
                pair.long_ef = griffin_codec::BlockedList::compress(
                    &long,
                    griffin_codec::Codec::EliasFano,
                    block_len,
                );
                gpu_total += time_algo(&gpu, &model, &pair, Algo::GpuMerge);
                cpu_total += time_algo(&gpu, &model, &pair, Algo::CpuAuto);
            }
            if cpu_total < gpu_total {
                first_cpu_win = format!("ratio ~{ratio}");
                break;
            }
        }
        t.row(&[block_len.to_string(), first_cpu_win]);
    }
    t.print();
    println!("(§3.2 predicts the crossover tracks the block size)");
}

/// Ablations 2 & 3: scheduler variants and the device cache, on the same
/// query stream.
fn scheduler_and_cache() {
    let mut rng = StdRng::seed_from_u64(92);
    let spec = ListIndexSpec {
        num_terms: 40,
        num_docs: 3_000_000,
        max_list_len: 800_000,
        ..Default::default()
    };
    let (index, _) = build_list_index(&spec, &mut rng);
    let queries = QueryLogSpec {
        num_queries: scaled(60),
        ..Default::default()
    }
    .generate(&index, &mut rng);

    let mut t = Table::new(
        "Ablations 2-3: scheduler and cache variants (mean virtual ms/query)",
        &["variant", "mean latency"],
    );

    // Placement-aware (default) vs the paper's bare static rule.
    for (name, sched) in [
        (
            "placement-aware scheduler (default)",
            Scheduler::for_block_len(index.block_len()),
        ),
        (
            "paper-static ratio rule",
            Scheduler::paper_static(index.block_len()),
        ),
    ] {
        let gpu = Gpu::new(k20());
        let mut griffin = Griffin::new(&gpu, index.meta(), index.block_len());
        griffin.scheduler = sched;
        let mut total = VirtualNanos::ZERO;
        for q in &queries {
            total += griffin.process_query(&index, q, 10, ExecMode::Hybrid).time;
        }
        t.row(&[name.to_string(), ms(total / queries.len() as u64)]);
    }

    // Device cache on (default) vs off (paper-faithful transfers), under
    // GPU-only execution where transfers matter most.
    for (name, budget) in [
        ("GPU-only with device list cache", u64::MAX),
        ("GPU-only, per-query transfers (paper)", 0u64),
    ] {
        let gpu = Gpu::new(k20());
        let griffin = Griffin::new(&gpu, index.meta(), index.block_len());
        if budget == 0 {
            griffin.gpu.set_cache_budget(0);
        }
        let mut total = VirtualNanos::ZERO;
        for q in &queries {
            total += griffin.process_query(&index, q, 10, ExecMode::GpuOnly).time;
        }
        t.row(&[name.to_string(), ms(total / queries.len() as u64)]);
    }
    t.print();
}

/// Ablation 4: MergePath partition-size sweep (items per thread).
fn mergepath_partition_sweep() {
    let gpu = Gpu::new(k20());
    let mut rng = StdRng::seed_from_u64(93);
    let a: Vec<u32> = {
        let mut v: Vec<u32> = (0..400_000).map(|_| rng.gen_range(0..20_000_000)).collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    let b: Vec<u32> = {
        let mut v: Vec<u32> = (0..400_000).map(|_| rng.gen_range(0..20_000_000)).collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    let da = gpu.htod(&a).expect("device op");
    let db = gpu.htod(&b).expect("device op");

    let mut t = Table::new(
        "Ablation 4: MergePath items-per-partition sweep (virtual ms)",
        &["items/thread", "intersect time"],
    );
    // Larger partitions need a narrower block to fit K20 shared memory.
    for (ipp, block_dim) in [(8usize, 128u32), (16, 128), (32, 128), (64, 64)] {
        let cfg = griffin_gpu::mergepath::MergePathConfig {
            items_per_partition: ipp,
            block_dim,
        };
        let ((), time) = gpu.time(|g| {
            let m = griffin_gpu::mergepath::intersect(g, &da, a.len(), &db, b.len(), &cfg)
                .expect("device op");
            m.free(g);
        });
        t.row(&[ipp.to_string(), ms(time)]);
    }
    t.print();
}

fn main() {
    block_size_sweep();
    scheduler_and_cache();
    mergepath_partition_sweep();
}
