//! **Serving** — the end-to-end pipeline under open-loop load:
//! CpuOnly vs GpuOnly vs Hybrid vs Hybrid+batching across arrival rates,
//! plus the admission-policy comparison at the hottest rate.
//!
//! Every query is planned once through the engine (its measured step
//! trace bridged into serving stages), then the identical Poisson
//! arrival stream is replayed through `griffin-server`'s discrete-event
//! simulator for each configuration — so latency differences are pure
//! scheduling, never workload noise.
//!
//! The batching claim this experiment exists to demonstrate: at high
//! arrival rates, coalescing adjacent small GPU stages into one launch
//! amortizes the fixed kernel-launch/allocation overhead, drains the
//! device queue faster, and cuts tail latency versus launching each
//! stage individually.
//!
//! `--metrics-json <path>` dumps the serving metrics (queue depth, shed
//! and degraded counts, batch occupancy) plus the result tables as CSV;
//! `--trace-json <path>` exports the hottest Hybrid+batching replay as
//! Chrome trace-event JSON.

use griffin::{ExecMode, Griffin, QueryRequest};
use griffin_bench::report::{ms, Table};
use griffin_bench::setup::{k20, scaled};
use griffin_bench::Artifacts;
use griffin_gpu_sim::{Gpu, VirtualNanos};
use griffin_server::{
    resource_totals, stages_of, AdmissionConfig, BatchConfig, GriffinServer, Outcome,
    OverloadPolicy, PlannedQuery, ServerConfig,
};
use griffin_workload::{build_list_index, percentile, ListIndexSpec, QueryLogSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let artifacts = Artifacts::from_args();
    let telemetry = artifacts.telemetry();
    let mut rng = StdRng::seed_from_u64(42);
    let spec = ListIndexSpec {
        num_terms: 64,
        num_docs: 12_000_000,
        max_list_len: 4_000_000,
        ..Default::default()
    };
    eprintln!("building index...");
    let (index, _) = build_list_index(&spec, &mut rng);
    let queries = QueryLogSpec {
        num_queries: scaled(1000),
        ..Default::default()
    }
    .generate(&index, &mut rng);

    let gpu = Gpu::new(k20());
    let mut griffin = Griffin::new(&gpu, index.meta(), index.block_len());
    griffin.set_telemetry(telemetry.clone());
    // Serving-tuned scheduler (see exp_fig15): reserve the shared GPU for
    // heavy operations, use the in-query crossover.
    griffin.scheduler.min_gpu_work = 64 * 1024;
    griffin.scheduler.ratio_threshold = 16;
    griffin.scheduler.hysteresis = 1.0;

    // ---- Phase 1: plan every query once per execution mode. ----------
    eprintln!("planning {} queries x 3 modes...", queries.len());
    let mut plan_cpu = Vec::with_capacity(queries.len());
    let mut plan_gpu = Vec::with_capacity(queries.len());
    let mut plan_hyb = Vec::with_capacity(queries.len());
    let mut hyb_traces = Vec::with_capacity(queries.len());
    for q in &queries {
        let cpu = griffin.run(
            &index,
            &QueryRequest::new(q.clone()).mode(ExecMode::CpuOnly),
        );
        let gpu_only = griffin.run(
            &index,
            &QueryRequest::new(q.clone()).mode(ExecMode::GpuOnly),
        );
        let hyb = griffin.run(&index, &QueryRequest::new(q.clone()).mode(ExecMode::Hybrid));
        let planned = |out: &griffin::GriffinOutput, fallback: Option<VirtualNanos>| PlannedQuery {
            topk: out.topk.clone(),
            service_time: out.time,
            stages: stages_of(out),
            cpu_fallback: fallback,
            stale_available: None,
            coalesce_key: None,
            deadline: None,
            breaker_degraded: false,
            trace_query: None,
        };
        plan_gpu.push(planned(&gpu_only, Some(cpu.time)));
        plan_hyb.push(planned(&hyb, Some(cpu.time)));
        plan_cpu.push(planned(&cpu, None));
        hyb_traces.push(hyb.steps);
    }

    // Deadline: a generous multiple of the unloaded hybrid mean — misses
    // appear only through queueing.
    let mean_hyb = mean(plan_hyb.iter().map(|p| p.service_time));
    let deadline = mean_hyb * 8;
    for p in plan_cpu
        .iter_mut()
        .chain(&mut plan_gpu)
        .chain(&mut plan_hyb)
    {
        p.deadline = Some(deadline);
    }

    // ---- Arrival calibration. ----------------------------------------
    // The hybrid system's bottleneck is the single shared GPU; sweep its
    // offered utilization. The other systems face the same stream.
    let mean_gpu_stage = mean(plan_hyb.iter().map(|p| resource_totals(&p.stages).1));
    let gpu_stage_durations: Vec<VirtualNanos> = plan_hyb
        .iter()
        .flat_map(|p| p.stages.iter())
        .filter(|s| s.resource == griffin::Resource::Gpu)
        .map(|s| s.duration)
        .collect();
    // Tune the packer to the workload: stages up to the p90 duration are
    // batchable; the fixed per-stage overhead comes from the device model.
    // Copy fraction: prefer the workload's measured transfer share over
    // the device-derived default when the traces actually saw transfers.
    let measured_copy = griffin_server::gpu_copy_fraction(hyb_traces.iter().map(|s| s.as_slice()));
    let mut batching = BatchConfig {
        small_stage: percentile(&gpu_stage_durations, 90.0),
        ..BatchConfig::for_device(gpu.config())
    };
    if measured_copy > 0.0 {
        batching.copy_fraction = measured_copy;
    }
    eprintln!(
        "mean GPU time/query {}, batchable below {}, per-stage overhead {}, copy fraction {:.2}",
        ms(mean_gpu_stage),
        ms(batching.small_stage),
        ms(batching.per_stage_overhead),
        batching.copy_fraction,
    );

    let rates = [(0.5, "low"), (0.75, "medium"), (0.95, "high")];
    let arrival_streams: Vec<Vec<VirtualNanos>> = rates
        .iter()
        .map(|&(util, _)| {
            let mean_interarrival = mean_gpu_stage.as_nanos() as f64 / util;
            let mut now = VirtualNanos::ZERO;
            let mut arrivals = Vec::with_capacity(queries.len());
            for _ in &queries {
                now += VirtualNanos::from_nanos_f64(
                    -mean_interarrival * (1.0 - rng.gen::<f64>()).ln(),
                );
                arrivals.push(now);
            }
            arrivals
        })
        .collect();

    // ---- Phase 2: replay each configuration over each stream. --------
    let open = ServerConfig {
        cpu_workers: 4,
        admission: AdmissionConfig::default(),
        batching: None,
    };
    let server_plain = GriffinServer::new(open);
    let mut server_batch = GriffinServer::new(ServerConfig {
        batching: Some(batching),
        ..open
    });
    server_batch.set_telemetry(telemetry.clone());

    let mut t = Table::new(
        "Serving: latency under open-loop Poisson load (virtual ms)",
        &["GPU load", "system", "p50", "p99", "miss%", "batch occ"],
    );
    let mut last_batch_report = None;
    for ((_, label), arrivals) in rates.iter().zip(&arrival_streams) {
        let runs: [(&str, &GriffinServer, &[PlannedQuery]); 4] = [
            ("CpuOnly", &server_plain, &plan_cpu),
            ("GpuOnly", &server_plain, &plan_gpu),
            ("Hybrid", &server_plain, &plan_hyb),
            ("Hybrid+batch", &server_batch, &plan_hyb),
        ];
        for (name, server, planned) in runs {
            let report = server.replay(planned, arrivals);
            t.row(&[
                label.to_string(),
                name.to_string(),
                ms(report
                    .latency_percentile(0.50)
                    .unwrap_or(VirtualNanos::ZERO)),
                ms(report
                    .latency_percentile(0.99)
                    .unwrap_or(VirtualNanos::ZERO)),
                format!("{:.1}", report.deadline_miss_rate().unwrap_or(0.0) * 100.0),
                format!("{:.2}", report.stats.mean_batch_occupancy()),
            ]);
            if name == "Hybrid+batch" {
                // Latest wins: the snapshot keeps the hottest rate.
                let zero = VirtualNanos::ZERO;
                artifacts.snapshot_duration(
                    "batch_p50_ns",
                    report.latency_percentile(0.50).unwrap_or(zero),
                );
                artifacts.snapshot_duration(
                    "batch_p99_ns",
                    report.latency_percentile(0.99).unwrap_or(zero),
                );
                artifacts.snapshot_metric(
                    "batch_miss_ratio",
                    report.deadline_miss_rate().unwrap_or(0.0),
                );
                last_batch_report = Some(report);
            }
        }
    }
    t.print();
    artifacts.write_table(&t);
    artifacts.write_snapshot("exp_serving");
    println!("\n(the shape: batching matters once the GPU queue is deep —");
    println!(" coalesced launches amortize fixed overheads and drain the tail)");

    // ---- Admission policies at the hottest rate. ---------------------
    let hot = &arrival_streams[rates.len() - 1];
    let mut t2 = Table::new(
        "Serving: admission policies at high load (Hybrid+batch)",
        &[
            "policy",
            "completed",
            "degraded",
            "shed",
            "p99 served",
            "miss%",
        ],
    );
    let depth_threshold = 12;
    let policies = [
        ("open", AdmissionConfig::default()),
        (
            "shed",
            AdmissionConfig {
                capacity: 64,
                gpu_depth_threshold: depth_threshold,
                policy: OverloadPolicy::Shed,
                ..Default::default()
            },
        ),
        (
            "degrade",
            AdmissionConfig {
                capacity: 64,
                gpu_depth_threshold: depth_threshold,
                policy: OverloadPolicy::DegradeToCpuOnly,
                ..Default::default()
            },
        ),
    ];
    for (name, admission) in policies {
        let mut server = GriffinServer::new(ServerConfig {
            admission,
            batching: Some(batching),
            ..open
        });
        server.set_telemetry(telemetry.clone());
        let report = server.replay(&plan_hyb, hot);
        let count = |o: Outcome| report.queries.iter().filter(|q| q.outcome == o).count();
        t2.row(&[
            name.to_string(),
            count(Outcome::Completed).to_string(),
            count(Outcome::Degraded).to_string(),
            count(Outcome::Shed).to_string(),
            ms(report
                .latency_percentile(0.99)
                .unwrap_or(VirtualNanos::ZERO)),
            format!("{:.1}", report.deadline_miss_rate().unwrap_or(0.0) * 100.0),
        ]);
    }
    t2.print();
    artifacts.write_table(&t2);
    println!("\n(bounding the queue trades answered queries for tail latency;");
    println!(" degrading to CPU-only keeps answering while shielding the GPU)");

    artifacts.write_metrics(&telemetry);
    if let Some(report) = last_batch_report {
        artifacts.write_chrome_trace(&report.timeline);
    }
}

fn mean(times: impl Iterator<Item = VirtualNanos>) -> VirtualNanos {
    let v: Vec<VirtualNanos> = times.collect();
    let sum: u64 = v.iter().map(|t| t.as_nanos()).sum();
    VirtualNanos::from_nanos(sum / v.len().max(1) as u64)
}
