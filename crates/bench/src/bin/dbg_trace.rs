use griffin::{ExecMode, Griffin};
use griffin_bench::setup::k20;
use griffin_gpu_sim::Gpu;
use griffin_workload::{build_list_index, ListIndexSpec, QueryLogSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;
fn main() {
    let mut rng = StdRng::seed_from_u64(14);
    let spec = ListIndexSpec {
        num_terms: 56,
        num_docs: 4_000_000,
        max_list_len: 1_500_000,
        ..Default::default()
    };
    let (index, _) = build_list_index(&spec, &mut rng);
    let queries = QueryLogSpec {
        num_queries: 120,
        ..Default::default()
    }
    .generate(&index, &mut rng);
    let gpu = Gpu::new(k20());
    let griffin = Griffin::new(&gpu, index.meta(), index.block_len());
    // find a 4-term query where hybrid loses to gpu-only
    for q in queries.iter().filter(|q| q.len() == 4).take(6) {
        let lens: Vec<usize> = q.iter().map(|&t| index.doc_freq(t)).collect();
        let g = griffin.process_query(&index, q, 10, ExecMode::GpuOnly);
        let h = griffin.process_query(&index, q, 10, ExecMode::Hybrid);
        println!("\nlens {:?}: gpu {} hybrid {}", lens, g.time, h.time);
        for s in &h.steps {
            println!("  {:?} {:?} {} -> {}", s.op, s.proc, s.time, s.inter_len);
        }
    }
}
