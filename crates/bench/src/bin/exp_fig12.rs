//! **Fig. 12** — decompression speed: Para-EF (Griffin-GPU) vs CPU
//! PforDelta, grouped by list size.
//!
//! Paper: speedup < 2 at 1K–10K elements, growing to ~11–29.6× at 1M–10M.
//! Two effects drive the shape: longer lists saturate the GPU, and they
//! amortize the transfer + allocation overheads (which the GPU timing
//! includes here, as in the paper).

use griffin_bench::report::{ms, speedup, Table};
use griffin_bench::setup::{k20, scaled, size_axis};
use griffin_bench::Artifacts;
use griffin_codec::{BlockedList, Codec, DEFAULT_BLOCK_LEN};
use griffin_cpu::decode::decode_list;
use griffin_cpu::{CpuCostModel, WorkCounters};
use griffin_gpu::para_ef;
use griffin_gpu::transfer::DeviceEfList;
use griffin_gpu_sim::{Gpu, VirtualNanos};
use griffin_workload::{gen_docid_list, GapProfile};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let artifacts = Artifacts::from_args();
    let gpu = Gpu::new(k20());
    let telemetry = artifacts.observe_gpu(&gpu);
    let model = CpuCostModel::default();
    let mut rng = StdRng::seed_from_u64(12);
    let lists_per_size = scaled(5);

    let mut t = Table::new(
        "Fig. 12: Decompression Speed Comparison (avg virtual ms)",
        &["list size", "CPU PforDelta", "GPU Para-EF", "speedup"],
    );

    for n in size_axis() {
        let mut cpu_total = VirtualNanos::ZERO;
        let mut gpu_total = VirtualNanos::ZERO;
        for _ in 0..lists_per_size {
            let ids = gen_docid_list(
                &mut rng,
                n,
                (n as u32).saturating_mul(40).max(1000),
                GapProfile::HeavyTailed,
            );

            // CPU: decode the PforDelta form.
            let pfor = BlockedList::compress(&ids, Codec::PforDelta, DEFAULT_BLOCK_LEN);
            let mut w = WorkCounters::default();
            let decoded = decode_list(&pfor, &mut w);
            assert_eq!(decoded.len(), n);
            cpu_total += model.time(&w);

            // GPU: ship the EF form and run Para-EF (includes transfer +
            // allocation, which only large lists amortize).
            let ef = BlockedList::compress(&ids, Codec::EliasFano, DEFAULT_BLOCK_LEN);
            let ((), t_gpu) = gpu.time(|g| {
                let dev = DeviceEfList::upload(g, &ef).expect("device op");
                let out = para_ef::decompress(g, &dev).expect("device op");
                dev.free(g);
                g.free(out);
            });
            gpu_total += t_gpu;
        }
        let cpu_avg = cpu_total / lists_per_size as u64;
        let gpu_avg = gpu_total / lists_per_size as u64;
        t.row(&[
            format!("{n}"),
            ms(cpu_avg),
            ms(gpu_avg),
            speedup(gpu_avg.speedup_over(cpu_avg)),
        ]);
        // Latest wins: the snapshot keeps the largest-size row.
        artifacts.snapshot_duration("cpu_decode_ns", cpu_avg);
        artifacts.snapshot_duration("gpu_decode_ns", gpu_avg);
        artifacts.snapshot_metric("decode_speedup", gpu_avg.speedup_over(cpu_avg));
    }
    t.print();
    artifacts.write_table(&t);
    artifacts.write_snapshot("exp_fig12");
    artifacts.write_metrics(&telemetry);
    artifacts.write_trace(&telemetry);
    println!("\n(paper's shape: speedup <2x at 1K-10K, rising to ~11-29.6x at 1M-10M)");
}
