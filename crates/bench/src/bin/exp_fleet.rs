//! **Fleet** — the sharded scatter–gather coordinator under load and
//! faults.
//!
//! The Fig. 15 Zipf query mix arrives open-loop at ~1.2× the bottleneck
//! shard's capacity — in bounded 50-query bursts with drain pauses, so
//! the worst-case backlog a query faces is scale-invariant — while the
//! fleet (docID-range shards × replicas, one engine + breaker per
//! replica) absorbs four regimes:
//!
//! * **fault-free** — every answer must be bit-exact with the unsharded
//!   CPU ground truth at coverage 1.0;
//! * **1% device faults** — retries, failover, and the CPU-only
//!   degraded lane keep every query answered with mean coverage ≥ 99%;
//! * **sticky shard loss** — both replicas of shard 0 die mid-run: every
//!   query still gets an answer, with coverage accounting switching to
//!   (S−1)/S and zero silent drops;
//! * **straggler stalls** — rare device faults whose recovery backoff
//!   stalls a request for many milliseconds on an otherwise-healthy
//!   replica; the same trace runs with hedged requests on and off, and
//!   hedging must cut the served p99 (the trace is floored at 40
//!   queries even under `--smoke` so the comparison has a sample to
//!   stand on).
//!
//! `GRIFFIN_FAULT_SEED` (default 202) picks fault schedules;
//! `GRIFFIN_SCALE` (or `--smoke`) scales the query count.

use griffin::{ExecMode, Griffin, QueryRequest, ShardOutcome, ShardedIndex};
use griffin_bench::report::{ms, Table};
use griffin_bench::setup::{k20, scaled};
use griffin_bench::Artifacts;
use griffin_gpu_sim::{FaultPlan, Gpu, VirtualNanos};
use griffin_index::TermId;
use griffin_server::{
    ArrivingQuery, BreakerConfig, Fleet, FleetConfig, FleetDevices, FleetReport, HedgeConfig,
};
use griffin_workload::{build_list_index, percentile, ListIndexSpec, QueryLogSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SHARDS: usize = 4;
const REPLICAS: usize = 2;

fn fault_seed() -> u64 {
    std::env::var("GRIFFIN_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(202)
}

/// Per-replica scheduler tuning that keeps the (smaller) shard slices
/// on the device often enough to exercise the GPU lanes.
fn tune(fleet: &mut Fleet<'_>) {
    fleet.tune(|g| {
        g.scheduler.min_gpu_work = 32 * 1024;
        g.scheduler.ratio_threshold = 1024;
        g.scheduler.hysteresis = 1.0;
    });
}

fn fleet_config() -> FleetConfig {
    FleetConfig {
        // The breaker knobs ride through FleetConfig so regimes can
        // sweep them; a shorter cooldown than the serving default lets
        // canaries re-probe within a bench-sized run.
        breaker: BreakerConfig {
            cooldown: VirtualNanos::from_millis(2),
            canary_successes: 2,
            ..BreakerConfig::default()
        },
        hedge: HedgeConfig {
            min_samples: 16,
            ..HedgeConfig::default()
        },
        ..FleetConfig::default()
    }
}

fn requests(queries: &[Vec<TermId>], deadline: Option<VirtualNanos>) -> Vec<QueryRequest> {
    queries
        .iter()
        .map(|q| {
            let mut r = QueryRequest::new(q.clone()).k(10).mode(ExecMode::Hybrid);
            r.deadline = deadline;
            r
        })
        .collect()
}

/// Poisson arrivals with mean inter-arrival `mean_gap`.
fn arrivals(reqs: &[QueryRequest], mean_gap: VirtualNanos, rng: &mut StdRng) -> Vec<ArrivingQuery> {
    burst_arrivals(reqs, mean_gap, usize::MAX, VirtualNanos::ZERO, rng)
}

/// Poisson arrivals delivered in bursts of `wave` queries separated by
/// a `drain` pause. A queue offered sustained load above capacity has
/// no stationary backlog — its wait grows linearly with trace length,
/// so a fixed per-query deadline would fail at some scale no matter
/// where it is set. Bounded overload excursions keep the worst-case
/// backlog (and therefore the deadline-pressure a query can see)
/// independent of how many queries the bench replays.
fn burst_arrivals(
    reqs: &[QueryRequest],
    mean_gap: VirtualNanos,
    wave: usize,
    drain: VirtualNanos,
    rng: &mut StdRng,
) -> Vec<ArrivingQuery> {
    let mut t = 0.0f64;
    reqs.iter()
        .enumerate()
        .map(|(i, r)| {
            if i > 0 && i % wave == 0 {
                t += drain.as_nanos() as f64;
            }
            let u: f64 = rng.gen();
            t += -(1.0 - u).ln() * mean_gap.as_nanos() as f64;
            ArrivingQuery {
                request: r.clone(),
                arrival: VirtualNanos::from_nanos_f64(t),
            }
        })
        .collect()
}

/// Unloaded mean answer latency of the bottleneck shard, measured on a
/// throwaway fault-free fleet: the capacity unit the offered load is
/// calibrated against.
fn calibrate(sharded: &ShardedIndex, queries: &[Vec<TermId>]) -> VirtualNanos {
    let devices = FleetDevices::new(SHARDS, REPLICAS, &k20());
    let mut fleet = Fleet::new(&devices, sharded, fleet_config());
    tune(&mut fleet);
    let sample = queries.len().min(32);
    let mut per_shard = [0u64; SHARDS];
    for q in &queries[..sample] {
        let out = fleet.run_query(&QueryRequest::new(q.clone()).k(10).mode(ExecMode::Hybrid));
        for st in &out.fleet.expect("fleet answer").shards {
            per_shard[st.shard] += st.latency.as_nanos();
        }
    }
    fleet.shutdown();
    let bottleneck = per_shard.iter().max().copied().unwrap_or(1);
    VirtualNanos::from_nanos((bottleneck / sample as u64).max(1))
}

struct RegimeResult {
    name: &'static str,
    answered: usize,
    total: usize,
    exact: usize,
    coverage: f64,
    p50: VirtualNanos,
    p99: VirtualNanos,
    hedges: u64,
    hedge_wins: u64,
    degraded_cpu: u64,
    missing: u64,
    dropped: u64,
}

fn summarize(
    name: &'static str,
    report: &FleetReport,
    truth: &[Vec<u32>],
    fleet: &Fleet<'_>,
) -> RegimeResult {
    let exact = report
        .queries
        .iter()
        .zip(truth)
        .filter(|(q, t)| {
            q.output.topk.len() == t.len()
                && q.output
                    .topk
                    .iter()
                    .zip(t.iter())
                    .all(|(&(d, _), &e)| d == e)
        })
        .count();
    let times = report.sorted_latencies();
    let stats = fleet.stats();
    RegimeResult {
        name,
        answered: report.queries.len(),
        total: truth.len(),
        exact,
        coverage: report.mean_coverage(),
        p50: percentile(&times, 50.0),
        p99: percentile(&times, 99.0),
        hedges: stats.hedges,
        hedge_wins: stats.hedge_wins,
        degraded_cpu: stats.degraded_cpu,
        missing: stats.missing_shards,
        dropped: stats.dropped_shards,
    }
}

fn main() {
    // `run_all` forwards --smoke; honor it standalone too.
    if std::env::args().any(|a| a == "--smoke") && std::env::var("GRIFFIN_SCALE").is_err() {
        std::env::set_var("GRIFFIN_SCALE", "0.1");
    }
    let artifacts = Artifacts::from_args();
    let telemetry = artifacts.telemetry();
    let seed = fault_seed();
    let mut rng = StdRng::seed_from_u64(42);
    let spec = ListIndexSpec {
        num_terms: 48,
        num_docs: 2_000_000,
        max_list_len: 800_000,
        ..Default::default()
    };
    eprintln!("building index and {SHARDS}-way shard views...");
    let (index, _) = build_list_index(&spec, &mut rng);
    let sharded = ShardedIndex::build(&index, SHARDS);
    let queries = QueryLogSpec {
        num_queries: scaled(200),
        ..Default::default()
    }
    .generate(&index, &mut rng);

    // Fault-free CPU-only ground truth on the unsharded index.
    let gpu = Gpu::new(k20());
    let single = Griffin::new(&gpu, index.meta(), index.block_len());
    let truth: Vec<Vec<u32>> = queries
        .iter()
        .map(|q| {
            single
                .run(
                    &index,
                    &QueryRequest::new(q.clone()).k(10).mode(ExecMode::CpuOnly),
                )
                .topk
                .iter()
                .map(|&(d, _)| d)
                .collect()
        })
        .collect();

    let unit = calibrate(&sharded, &queries);
    // Offered load: bottleneck-shard utilization ≈ 1.2 (each query
    // occupies one of the shard's `REPLICAS` lanes for ~`unit`).
    let overload_gap =
        VirtualNanos::from_nanos_f64(unit.as_nanos() as f64 / (1.2 * REPLICAS as f64));
    let deadline = VirtualNanos::from_nanos(unit.as_nanos() * 50);
    let drain = VirtualNanos::from_nanos(unit.as_nanos() * 40);
    eprintln!(
        "running {} queries per regime (unit {}, fault seed {seed})...",
        queries.len(),
        ms(unit),
    );

    let reqs = requests(&queries, Some(deadline));
    let mut results: Vec<RegimeResult> = Vec::new();

    // ---- Regime 1: fault-free at 1.2× ------------------------------
    {
        let trace = burst_arrivals(
            &reqs,
            overload_gap,
            50,
            drain,
            &mut StdRng::seed_from_u64(7),
        );
        let devices = FleetDevices::new(SHARDS, REPLICAS, &k20());
        let mut fleet = Fleet::new(&devices, &sharded, fleet_config());
        tune(&mut fleet);
        let report = fleet.serve(&trace);
        let r = summarize("fault-free", &report, &truth, &fleet);
        assert_eq!(r.answered, r.total, "every query must get a response");
        assert_eq!(
            r.exact, r.total,
            "fault-free fleet answers must be bit-exact"
        );
        assert_eq!(r.missing, 0);
        fleet.shutdown();
        assert_eq!(devices.mem_in_use(), 0, "fleet leaked device memory");
        results.push(r);
    }

    // ---- Regime 2: 1% device faults at 1.2× ------------------------
    {
        let trace = burst_arrivals(
            &reqs,
            overload_gap,
            50,
            drain,
            &mut StdRng::seed_from_u64(7),
        );
        let devices = FleetDevices::new(SHARDS, REPLICAS, &k20());
        for (i, gpu) in devices.iter().enumerate() {
            gpu.set_fault_plan(Some(
                FaultPlan::seeded(seed.wrapping_add(i as u64)).with_fault_rate(0.01),
            ));
        }
        let mut fleet = Fleet::new(&devices, &sharded, fleet_config());
        tune(&mut fleet);
        let report = fleet.serve(&trace);
        let r = summarize("1% faults", &report, &truth, &fleet);
        assert_eq!(r.answered, r.total, "every query must get a response");
        assert!(
            r.coverage >= 0.99,
            "failover + CPU lane must hold coverage ≥ 99% (got {:.4})",
            r.coverage
        );
        fleet.shutdown();
        results.push(r);
    }

    // ---- Regime 3: sticky shard loss mid-run -----------------------
    {
        let trace = burst_arrivals(
            &reqs,
            overload_gap,
            50,
            drain,
            &mut StdRng::seed_from_u64(7),
        );
        let half = trace.len() / 2;
        let devices = FleetDevices::new(SHARDS, REPLICAS, &k20());
        let mut fleet = Fleet::new(&devices, &sharded, fleet_config());
        tune(&mut fleet);
        let before = fleet.serve(&trace[..half]);
        for r in 0..REPLICAS {
            fleet.kill_replica(0, r);
        }
        let after = fleet.serve(&trace[half..]);
        let lost = sharded.range(0);
        let expected_cov = (SHARDS - 1) as f64 / SHARDS as f64;
        for q in &after.queries {
            let info = q.output.fleet.as_ref().expect("fleet answer");
            assert_eq!(
                info.coverage, expected_cov,
                "lost-shard coverage accounting"
            );
            assert_eq!(info.shards[0].outcome, ShardOutcome::Missing);
            assert!(
                q.output.topk.iter().all(|&(d, _)| !lost.contains(&d)),
                "a lost shard's docs cannot appear"
            );
        }
        let mut report = before;
        report.queries.extend(after.queries);
        let r = summarize("shard loss", &report, &truth, &fleet);
        assert_eq!(r.answered, r.total, "shard loss must not drop responses");
        fleet.shutdown();
        results.push(r);
    }

    // ---- Regime 4: straggler stalls, hedging on vs off -------------
    // The tail-at-scale setting (Dean & Barroso): identical healthy
    // replicas, light load (~0.25 utilization), and rare per-op device
    // faults (2e-4) whose recovery backoff — 16 ms, roughly eight times
    // the ~2 ms request cost — stalls whichever lane they strike.
    // Post-dispatch stalls are exactly what hedging rescues: the twin's
    // FIFO lane is almost surely clean, so re-issuing the overdue
    // request bounds the damage near the hedge deadline. Permanent
    // slowness is deliberately absent (that is the breaker's job, and
    // duplicating against a *persistently* slow replica only doubles
    // load); the trace is homogeneous — three mid-band terms per query —
    // so query-cost variance cannot masquerade as straggling; and the
    // breaker is held open-proof (threshold > 1.0) to isolate hedging.
    let band: Vec<TermId> = (0..index.num_terms() as u32)
        .map(TermId)
        .filter(|&t| (100_000..500_000).contains(&index.doc_freq(t)))
        .collect();
    // The p99-vs-p99 comparison needs a minimum sample size to be
    // meaningful — at 20 queries the p99 *is* one query — so this
    // regime floors its trace at 40 queries even under --smoke.
    let mut mid_rng = StdRng::seed_from_u64(4242);
    let mid_queries: Vec<Vec<TermId>> = (0..queries.len().max(40))
        .map(|_| {
            let mut q = Vec::new();
            while q.len() < 3 {
                let t = band[mid_rng.gen_range(0..band.len())];
                if !q.contains(&t) {
                    q.push(t);
                }
            }
            q
        })
        .collect();
    let mid_truth: Vec<Vec<u32>> = mid_queries
        .iter()
        .map(|q| {
            single
                .run(
                    &index,
                    &QueryRequest::new(q.clone()).k(10).mode(ExecMode::CpuOnly),
                )
                .topk
                .iter()
                .map(|&(d, _)| d)
                .collect()
        })
        .collect();
    let mid_unit = calibrate(&sharded, &mid_queries);
    let mid_gap =
        VirtualNanos::from_nanos_f64(mid_unit.as_nanos() as f64 / (0.25 * REPLICAS as f64));
    let mid_reqs = requests(
        &mid_queries,
        Some(VirtualNanos::from_nanos(mid_unit.as_nanos() * 50)),
    );
    let straggler = |hedge: bool| -> (RegimeResult, f64) {
        let trace = arrivals(&mid_reqs, mid_gap, &mut StdRng::seed_from_u64(7));
        let devices = FleetDevices::new(SHARDS, REPLICAS, &k20());
        for (i, gpu) in devices.iter().enumerate() {
            gpu.set_fault_plan(Some(
                FaultPlan::seeded(seed.wrapping_add(i as u64)).with_fault_rate(2e-4),
            ));
        }
        let mut config = fleet_config();
        config.breaker.failure_threshold = 1.1;
        config.hedge = HedgeConfig {
            enabled: hedge,
            quantile: 0.9,
            multiplier: 1.0,
            min_samples: 16,
            ..HedgeConfig::default()
        };
        config.budget.per_query = SHARDS as u32;
        config.budget.burst = 16.0;
        config.budget.refill_per_query = 1.0;
        let mut fleet = Fleet::new(&devices, &sharded, config);
        tune(&mut fleet);
        fleet.tune(|g| {
            g.recovery.initial_backoff = VirtualNanos::from_micros(16_000);
        });
        let report = fleet.serve(&trace);
        let name = if hedge {
            "straggler+hedge"
        } else {
            "straggler"
        };
        let r = summarize(name, &report, &mid_truth, &fleet);
        assert_eq!(r.answered, r.total, "every query must get a response");
        let stats = *fleet.stats();
        assert_eq!(
            stats.busy_total,
            stats.service_total - stats.hedge_cancelled_saved,
            "hedge cancellation accounting diverged"
        );
        let win_rate = if stats.hedges == 0 {
            0.0
        } else {
            stats.hedge_wins as f64 / stats.hedges as f64
        };
        fleet.shutdown();
        (r, win_rate)
    };
    let (no_hedge, _) = straggler(false);
    let (with_hedge, win_rate) = straggler(true);
    assert!(
        with_hedge.hedges > 0,
        "straggler regime must trigger hedges"
    );
    assert!(
        with_hedge.p99 < no_hedge.p99,
        "hedging must cut the straggler p99 ({} vs {})",
        ms(with_hedge.p99),
        ms(no_hedge.p99)
    );

    let hedge_p99 = with_hedge.p99;
    let nohedge_p99 = no_hedge.p99;
    let fault_coverage = results[1].coverage;
    results.push(no_hedge);
    results.push(with_hedge);

    let mut t = Table::new(
        "Fleet: scatter–gather under overload, faults, loss, and stragglers (virtual ms)",
        &[
            "regime",
            "answered%",
            "exact",
            "coverage",
            "p50",
            "p99",
            "hedges",
            "wins",
            "cpu-lane",
            "missing",
            "dropped",
        ],
    );
    for r in &results {
        t.row(&[
            r.name.to_string(),
            format!("{:.1}", 100.0 * r.answered as f64 / r.total as f64),
            format!("{}/{}", r.exact, r.total),
            format!("{:.4}", r.coverage),
            ms(r.p50),
            ms(r.p99),
            r.hedges.to_string(),
            r.hedge_wins.to_string(),
            r.degraded_cpu.to_string(),
            r.missing.to_string(),
            r.dropped.to_string(),
        ]);
        telemetry.counter_add(
            &format!("griffin_fleet_exp_answered_total{{regime=\"{}\"}}", r.name),
            r.answered as u64,
        );
    }
    t.print();
    artifacts.write_table(&t);
    artifacts.snapshot_duration("fleet_hedge_p99_ns", hedge_p99);
    artifacts.snapshot_duration("fleet_nohedge_p99_ns", nohedge_p99);
    artifacts.snapshot_metric(
        "fleet_hedge_p99_speedup",
        nohedge_p99.as_nanos() as f64 / hedge_p99.as_nanos().max(1) as f64,
    );
    artifacts.snapshot_metric("fleet_hedge_win_rate", win_rate);
    artifacts.snapshot_metric("fleet_fault_coverage", fault_coverage);
    artifacts.write_snapshot("exp_fleet");
    println!("\n(the shape: sharding is invisible when healthy — bit-exact merges at");
    println!(" coverage 1.0; faults cost latency and an occasional dropped shard,");
    println!(" never a silent one; losing a whole shard degrades coverage exactly by");
    println!(" 1/S; and hedged requests claw back the straggler tail without");
    println!(" double-billing device time)");

    artifacts.write_metrics(&telemetry);
}
