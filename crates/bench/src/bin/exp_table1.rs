//! **Table 1** — compression-ratio comparison, PforDelta vs Elias–Fano.
//!
//! Paper: PforDelta 3.3, EF 4.6 (EF ≈1.4× better) averaged over all
//! inverted lists of their ClueWeb12 index. We measure both codecs over a
//! Fig. 10-shaped synthetic list population with heavy-tailed gaps.

use griffin_bench::report::Table;
use griffin_bench::setup::scaled;
use griffin_bench::Artifacts;
use griffin_codec::{BlockedList, Codec, CompressionStats, DEFAULT_BLOCK_LEN};
use griffin_workload::{gen_docid_list, sample_list_len, GapProfile};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let artifacts = Artifacts::from_args();
    let mut rng = StdRng::seed_from_u64(1);
    let num_lists = scaled(200);
    println!("measuring {num_lists} lists (Fig. 10-shaped lengths, heavy-tailed gaps)");

    let mut stats = [
        (Codec::PforDelta, CompressionStats::new()),
        (Codec::EliasFano, CompressionStats::new()),
        (Codec::Varint, CompressionStats::new()),
    ];
    for _ in 0..num_lists {
        let len = sample_list_len(&mut rng, 2_000_000);
        // Density varies per list: mean gap 4–400.
        let mean_gap = 4 + (sample_list_len(&mut rng, 400) % 400) as u32;
        let num_docs = (len as u64 * u64::from(mean_gap)).min(u32::MAX as u64 - 1) as u32;
        let ids = gen_docid_list(
            &mut rng,
            len,
            num_docs.max(len as u32 * 2),
            GapProfile::HeavyTailed,
        );
        for (codec, s) in &mut stats {
            s.add(&BlockedList::compress(&ids, *codec, DEFAULT_BLOCK_LEN));
        }
    }

    let mut t = Table::new(
        "Table 1: Compression Ratio Comparison",
        &["Scheme", "ratio (mean/list)", "ratio (overall)", "bits/int"],
    );
    let paper = [("PforDelta", 3.3), ("EF", 4.6), ("VByte", f64::NAN)];
    for ((codec, s), (name, paper_ratio)) in stats.iter().zip(paper) {
        let _ = codec;
        t.row(&[
            name.to_string(),
            format!("{:.2}", s.mean_list_ratio()),
            format!("{:.2}", s.overall_ratio()),
            format!("{:.2}", s.bits_per_int()),
        ]);
        if paper_ratio.is_finite() {
            println!("  paper reports {name}: {paper_ratio}");
        }
    }
    t.print();
    let telemetry = artifacts.telemetry();
    telemetry.counter_add("griffin_workload_lists_total", num_lists as u64);
    artifacts.write_table(&t);
    artifacts.write_metrics(&telemetry);
    artifacts.write_trace(&telemetry);

    let ef = stats[1].1.mean_list_ratio();
    let pf = stats[0].1.mean_list_ratio();
    println!(
        "\nEF / PforDelta = {:.2}x (paper: 1.4x) — shape holds iff > 1",
        ef / pf
    );
    artifacts.snapshot_metric("pfordelta_mean_ratio", pf);
    artifacts.snapshot_metric("ef_mean_ratio", ef);
    artifacts.snapshot_metric("ef_vs_pfordelta_ratio", ef / pf);
    artifacts.snapshot_metric("ef_bits_per_int", stats[1].1.bits_per_int());
    artifacts.write_snapshot("exp_table1");
}
