//! **Fig. 15** — tail-latency reduction under load: queries streamed
//! through 4 CPU cores + 1 GPU, CPU-only vs Griffin.
//!
//! Paper: Griffin speeds up p80/p90/p95/p99/p99.9 response times by
//! 6.6× / 8.3× / 10.4× / 16.1× / 26.8× — the win *grows* with the
//! percentile because Griffin offloads exactly the heavy queries that
//! cause head-of-line blocking on the CPU cores.
//!
//! With `--trace-json <path>` the hybrid serving replay exports its full
//! per-core schedule as Chrome trace-event JSON (open in Perfetto or
//! `chrome://tracing`); `--metrics-json <path>` dumps the profiling
//! phase's metrics registry and the result table as CSV.

use griffin::serving::{Job, Resource, ServingSim, StageReq};
use griffin::{ExecMode, Griffin};
use griffin_bench::report::{ms, speedup, Table};
use griffin_bench::setup::{k20, scaled};
use griffin_bench::Artifacts;
use griffin_gpu_sim::{Gpu, VirtualNanos};
use griffin_server::{resource_totals, stages_of};
use griffin_workload::{build_list_index, LatencyStats, ListIndexSpec, QueryLogSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let artifacts = Artifacts::from_args();
    let mut rng = StdRng::seed_from_u64(15);
    let spec = ListIndexSpec {
        num_terms: 64,
        num_docs: 12_000_000,
        max_list_len: 4_000_000,
        ..Default::default()
    };
    eprintln!("building index...");
    let (index, _) = build_list_index(&spec, &mut rng);
    let queries = QueryLogSpec {
        num_queries: scaled(600),
        ..Default::default()
    }
    .generate(&index, &mut rng);

    let gpu = Gpu::new(k20());
    let mut griffin = Griffin::new(&gpu, index.meta(), index.block_len());
    griffin.set_telemetry(artifacts.telemetry());
    // Serving configuration: with one GPU shared by every in-flight query,
    // medium operations are not worth their fixed kernel/transfer costs in
    // *throughput* terms even when they win on single-query latency.
    // Reserve the GPU for the heavy operations (the scheduler extension
    // the paper's §5 discussion anticipates).
    griffin.scheduler.min_gpu_work = 64 * 1024;
    // In-query intermediates are member-dense (far more clustered than
    // Fig. 8's mixed short lists), which pulls the effective GPU/CPU
    // crossover down: the CPU's one-block cache makes ratio-16..128 ops
    // cheap. Use the measured in-query crossover.
    griffin.scheduler.ratio_threshold = 16;
    griffin.scheduler.hysteresis = 1.0;

    eprintln!("profiling {} queries...", queries.len());
    // Arrival process: open-loop Poisson. The rate is set relative to the
    // mean CPU service time so the system runs hot (~70% utilization of 4
    // cores under CPU-only execution) — tails need queueing to show.
    let mut cpu_times = Vec::with_capacity(queries.len());
    let mut hybrid_stages = Vec::with_capacity(queries.len());
    for q in &queries {
        let cpu_out = griffin.process_query(&index, q, 10, ExecMode::CpuOnly);
        cpu_times.push(cpu_out.time);
        let hyb = griffin.process_query(&index, q, 10, ExecMode::Hybrid);
        // The trace → stage bridge from griffin-server: GPU kernels and
        // PCIe migrations occupy the GPU lane, the rest a CPU core.
        hybrid_stages.push(stages_of(&hyb));
    }
    // Calibrate the arrival rate to the *hybrid* system's bottleneck (the
    // single GPU) at ~75% utilization — the operating point a deployment
    // would choose. The CPU-only system faces the same arrival process and
    // simply has to cope (that asymmetry is the experiment).
    let mean_gpu_stage: u64 = hybrid_stages
        .iter()
        .map(|stages| resource_totals(stages).1.as_nanos())
        .sum::<u64>()
        / hybrid_stages.len().max(1) as u64;
    // Run the CPU-only system at the edge of stability (~97% of its four
    // cores): the mean stays near the service time but the tail explodes
    // through queueing — while Griffin, needing far less machine for the
    // same stream, keeps the GPU comfortably below saturation.
    let mean_cpu: u64 =
        cpu_times.iter().map(|t| t.as_nanos()).sum::<u64>() / cpu_times.len().max(1) as u64;
    let mean_interarrival = (mean_cpu as f64 / 4.0 / 0.99).max(mean_gpu_stage as f64 / 0.65);
    eprintln!(
        "utilization at this arrival rate: GPU (hybrid) ~{:.0}%, CPU-only cores ~{:.0}%",
        mean_gpu_stage as f64 / mean_interarrival * 100.0,
        mean_cpu as f64 / 4.0 / mean_interarrival * 100.0,
    );

    let mut arrivals = Vec::with_capacity(queries.len());
    let mut now = VirtualNanos::ZERO;
    for _ in &queries {
        now += VirtualNanos::from_nanos_f64(-mean_interarrival * (1.0 - rng.gen::<f64>()).ln());
        arrivals.push(now);
    }

    let cpu_jobs: Vec<Job> = arrivals
        .iter()
        .zip(&cpu_times)
        .map(|(&arrival, &t)| Job {
            arrival,
            stages: vec![StageReq::new(Resource::Cpu, t)],
        })
        .collect();
    let hybrid_jobs: Vec<Job> = arrivals
        .iter()
        .zip(&hybrid_stages)
        .map(|(&arrival, stages)| Job {
            arrival,
            stages: stages.clone(),
        })
        .collect();

    eprintln!("replaying through the serving simulator (4 cores + 1 GPU)...");
    let cpu_lat = ServingSim::new(4).run(&cpu_jobs);
    let (hyb_lat, timeline) = ServingSim::new(4).run_with_timeline(&hybrid_jobs);
    for u in timeline.utilization() {
        eprintln!(
            "  {}[{}]: {:.0}% busy",
            u.resource,
            u.lane,
            u.utilization * 100.0
        );
    }
    let mut cpu_stats = LatencyStats::new();
    let mut hyb_stats = LatencyStats::new();
    for (&c, &h) in cpu_lat.iter().zip(&hyb_lat) {
        cpu_stats.record(c);
        hyb_stats.record(h);
    }

    let mut t = Table::new(
        "Fig. 15: Tail Latency Reduction (virtual ms)",
        &["percentile", "CPU", "Griffin", "speedup", "paper"],
    );
    let paper = [6.6, 8.3, 10.4, 16.1, 26.8];
    for ((p, cpu_p), paper_s) in cpu_stats.tail_set().into_iter().zip(paper) {
        let hyb_p = hyb_stats.percentile(p);
        t.row(&[
            format!("{p}%"),
            ms(cpu_p),
            ms(hyb_p),
            speedup(hyb_p.speedup_over(cpu_p)),
            format!("{paper_s}x"),
        ]);
        // Latest wins: the snapshot keeps the highest percentile.
        artifacts.snapshot_duration("griffin_tail_ns", hyb_p);
        artifacts.snapshot_metric("tail_speedup", hyb_p.speedup_over(cpu_p));
    }
    t.print();
    artifacts.write_table(&t);
    artifacts.write_snapshot("exp_fig15");
    artifacts.write_metrics(griffin.telemetry());
    artifacts.write_chrome_trace(&timeline);
    println!("\n(the shape: speedup grows with percentile — Griffin unclogs the");
    println!(" heavy queries that block the CPU queue)");
}
