//! Perf-regression sentinel: compare two `BENCH_v<N>.json` snapshots.
//!
//! ```text
//! bench_diff <baseline.json> <candidate.json> [--tolerance-pct N]
//! ```
//!
//! Every experiment metric present in either snapshot is compared with
//! a relative tolerance band (default 5%), direction-aware: `_ns`-style
//! metrics regress *upward*, `speedup`/`ratio`-style metrics regress
//! *downward*, anything else fails on drift in either direction.
//! Metrics present in only one snapshot are *skipped with a note*, never
//! failed (experiments and metrics come and go across PRs, and new
//! wall-clock fields must not break old baselines); cost-model constants
//! are printed informationally when they change. Wall-clock snapshots
//! carry a host fingerprint, and when the two fingerprints differ the
//! numbers are not like-for-like: every metric comparison is skipped
//! informationally instead of enforced. Exits 1 when any metric
//! regressed beyond the band, 2 on usage/parse errors.

use griffin_bench::report::Table;
use griffin_bench::snapshot::{diff, hosts_comparable, DiffStatus, Snapshot};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut tolerance_pct = 5.0;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--tolerance-pct" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if v >= 0.0 => tolerance_pct = v,
                _ => usage("--tolerance-pct requires a non-negative number"),
            },
            p if !p.starts_with("--") => paths.push(p.to_owned()),
            other => usage(&format!("unknown flag {other}")),
        }
    }
    if paths.len() != 2 {
        usage("expected exactly two snapshot paths");
    }
    let baseline = load(&paths[0]);
    let candidate = load(&paths[1]);

    println!(
        "comparing {} (label {:?}, scale {}) vs {} (label {:?}, scale {}), tolerance ±{tolerance_pct}%",
        paths[0], baseline.label, baseline.scale, paths[1], candidate.label, candidate.scale,
    );
    if baseline.scale != candidate.scale || baseline.smoke != candidate.smoke {
        println!(
            "warning: snapshots ran at different scales (scale {} smoke {} vs scale {} smoke {}) — deltas may be meaningless",
            baseline.scale, baseline.smoke, candidate.scale, candidate.smoke
        );
    }

    // Cost-model constants: informational — a change means the perf
    // model itself moved and the baseline likely needs regenerating.
    for (k, &b) in &baseline.cost_model {
        let c = candidate.cost_model.get(k).copied();
        if c != Some(b) {
            println!(
                "note: cost-model constant {k} changed: {b} -> {}",
                c.map(|v| v.to_string()).unwrap_or_else(|| "absent".into())
            );
        }
    }

    // Wall-clock snapshots are only comparable on the host that produced
    // them; a fingerprint mismatch turns the whole diff informational.
    if !hosts_comparable(&baseline, &candidate) {
        let show = |s: &Snapshot| {
            if s.host.is_empty() {
                "(no fingerprint)".to_owned()
            } else {
                s.host
                    .iter()
                    .map(|(k, v)| format!("{k}={v}"))
                    .collect::<Vec<_>>()
                    .join(" ")
            }
        };
        println!(
            "note: host fingerprints differ — wall-clock numbers are not like-for-like; \
             skipping all metric enforcement\n  baseline:  {}\n  candidate: {}",
            show(&baseline),
            show(&candidate)
        );
        println!("no regression check performed (cross-host wall-clock diff)");
        return;
    }

    let entries = diff(&baseline, &candidate, tolerance_pct);
    let mut t = Table::new(
        "Perf snapshot diff",
        &[
            "experiment",
            "metric",
            "baseline",
            "candidate",
            "delta",
            "status",
        ],
    );
    let mut regressions = 0usize;
    let mut improvements = 0usize;
    let mut skipped = 0usize;
    for e in &entries {
        let fmt = |v: Option<f64>| v.map(|v| format!("{v:.4}")).unwrap_or_else(|| "-".into());
        let (label, interesting) = match e.status {
            DiffStatus::Ok => ("ok", false),
            DiffStatus::Improved => {
                improvements += 1;
                ("IMPROVED", true)
            }
            DiffStatus::Regressed => {
                regressions += 1;
                ("REGRESSED", true)
            }
            DiffStatus::MissingInCandidate => {
                skipped += 1;
                ("skipped (baseline only)", true)
            }
            DiffStatus::NewInCandidate => {
                skipped += 1;
                ("skipped (candidate only)", true)
            }
        };
        // Keep the table readable: print every non-ok row, skip the
        // (many) in-band rows.
        if interesting {
            t.row(&[
                e.experiment.clone(),
                e.metric.clone(),
                fmt(e.baseline),
                fmt(e.candidate),
                e.delta_pct
                    .map(|d| format!("{d:+.1}%"))
                    .unwrap_or_else(|| "-".into()),
                label.to_string(),
            ]);
        }
    }
    let in_band = entries
        .iter()
        .filter(|e| e.status == DiffStatus::Ok)
        .count();
    t.print();
    println!(
        "\n{} metrics compared: {in_band} in band, {improvements} improved, {regressions} regressed, \
         {skipped} skipped (present in only one snapshot — not a failure)",
        entries.len()
    );
    if regressions > 0 {
        println!("PERF REGRESSION detected (tolerance ±{tolerance_pct}%)");
        std::process::exit(1);
    }
    println!("no regression beyond ±{tolerance_pct}%");
}

fn load(path: &str) -> Snapshot {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: cannot read {path}: {e}");
        std::process::exit(2);
    });
    Snapshot::from_json(&text).unwrap_or_else(|e| {
        eprintln!("error: cannot parse {path}: {e}");
        std::process::exit(2);
    })
}

fn usage(why: &str) -> ! {
    eprintln!("error: {why}");
    eprintln!("usage: bench_diff <baseline.json> <candidate.json> [--tolerance-pct N]");
    std::process::exit(2);
}
