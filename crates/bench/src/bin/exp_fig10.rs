//! **Fig. 10** — inverted-list size distribution (workload validation).
//!
//! Paper: CDF over their ClueWeb12-derived lists — most lists between 1K
//! and 1M elements, maximum 26M. Our generator must reproduce this shape
//! for the other experiments to be representative.

use griffin_bench::report::Table;
use griffin_bench::setup::scaled;
use griffin_bench::Artifacts;
use griffin_workload::{sample_list_len, size_cdf};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let artifacts = Artifacts::from_args();
    let mut rng = StdRng::seed_from_u64(10);
    let n = scaled(20_000);
    let sizes: Vec<usize> = (0..n)
        .map(|_| sample_list_len(&mut rng, 26_000_000))
        .collect();

    let thresholds = [1_000, 10_000, 100_000, 1_000_000, 10_000_000, 26_000_000];
    let cdf = size_cdf(&sizes, &thresholds);

    let mut t = Table::new(
        "Fig. 10: Inverted List Size Distribution (CDF %)",
        &["list size", "generated", "paper (approx)"],
    );
    // Approximate CDF values read off the paper's Fig. 10.
    let paper = [5.0, 25.0, 55.0, 85.0, 99.0, 100.0];
    for ((&th, &c), &p) in thresholds.iter().zip(&cdf).zip(&paper) {
        t.row(&[
            format!("{th}"),
            format!("{:.1}", c * 100.0),
            format!("~{p:.0}"),
        ]);
    }
    t.print();
    let telemetry = artifacts.telemetry();
    telemetry.counter_add("griffin_workload_lists_total", n as u64);
    artifacts.write_table(&t);
    artifacts.write_metrics(&telemetry);
    artifacts.write_trace(&telemetry);
    println!("\nmax generated list: {}", sizes.iter().max().unwrap());
    // The CDF point the other experiments lean on hardest: how much of
    // the list mass sits at or below 1M elements.
    artifacts.snapshot_metric("cdf_at_1m_pct", cdf[3] * 100.0);
    artifacts.write_snapshot("exp_fig10");
}
