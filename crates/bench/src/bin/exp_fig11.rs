//! **Fig. 11** — query term-count distribution (workload validation).
//!
//! Paper: ~27% of TREC queries have 2 terms, 33% have 3, 24% have 4, with
//! a tail at 5, 6 and >6 — "multiple rounds of list intersections are
//! common, indicating that the query characteristics change often."

use griffin_bench::report::Table;
use griffin_bench::setup::scaled;
use griffin_bench::Artifacts;
use griffin_workload::QueryLogSpec;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let artifacts = Artifacts::from_args();
    let spec = QueryLogSpec::default();
    let mut rng = StdRng::seed_from_u64(11);
    let n = scaled(50_000);
    let mut hist = [0usize; 16];
    for _ in 0..n {
        let c = spec.sample_term_count(&mut rng).min(7);
        hist[c] += 1;
    }

    let mut t = Table::new(
        "Fig. 11: Number of Terms Distribution (%)",
        &["#terms", "generated", "paper"],
    );
    let paper = [
        (2, 27.0),
        (3, 33.0),
        (4, 24.0),
        (5, 9.0),
        (6, 4.0),
        (7, 3.0),
    ];
    for (terms, p) in paper {
        let label = if terms >= 7 {
            "> 6".to_string()
        } else {
            terms.to_string()
        };
        t.row(&[
            label,
            format!("{:.1}", hist[terms] as f64 / n as f64 * 100.0),
            format!("{p:.0}"),
        ]);
    }
    t.print();
    let telemetry = artifacts.telemetry();
    telemetry.counter_add("griffin_workload_queries_total", n as u64);
    artifacts.write_table(&t);
    artifacts.write_metrics(&telemetry);
    artifacts.write_trace(&telemetry);
    artifacts.snapshot_metric("pct_terms_2", hist[2] as f64 / n as f64 * 100.0);
    artifacts.snapshot_metric("pct_terms_3", hist[3] as f64 / n as f64 * 100.0);
    artifacts.write_snapshot("exp_fig11");
}
