//! **Overlap** — copy/compute overlap ablation (async streams + list
//! prefetch), the stream-pipelining analogue of the paper's Fig. 10/11
//! breakdowns.
//!
//! Three views, each comparing the identical workload with the pipeline
//! on and off (results are asserted bit-exact — overlap only reschedules
//! work, never changes it):
//!
//! 1. the cost model's per-step breakdown (transfer / compute / fixed)
//!    and the modeled pipelined gain across list sizes;
//! 2. a *cold* Griffin-GPU sweep over fresh term pairs (every list ships
//!    over PCIe, the transfer-bound regime where overlap pays most);
//! 3. an end-to-end Hybrid run over a Zipf query log with the device
//!    list cache live — the realistic mix of hits, misses and prefetches.
//!
//! `--smoke` shrinks everything to CI size; `GRIFFIN_SCALE` /
//! `GRIFFIN_FULL` apply as usual.

use griffin::{CostModel, ExecMode, Griffin, QueryRequest};
use griffin_bench::report::{ms, Table};
use griffin_bench::setup::{full_scale, k20, scaled};
use griffin_bench::Artifacts;
use griffin_codec::Codec;
use griffin_gpu::GpuEngine;
use griffin_gpu_sim::{Gpu, VirtualNanos};
use griffin_index::{InvertedIndex, TermId};
use griffin_workload::{build_list_index, gen_correlated_lists, ListIndexSpec, QueryLogSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let artifacts = Artifacts::from_args();
    let smoke = std::env::args().any(|a| a == "--smoke");
    let telemetry = artifacts.telemetry();

    // ---- 1. Modeled per-step breakdown. ------------------------------
    let model_serial = CostModel::from_device(&k20(), false);
    let model_pipe = CostModel::from_device(&k20(), true);
    let mut t1 = Table::new(
        "Overlap: modeled GPU intersect-step breakdown (Tesla K20, virtual ms)",
        &[
            "long len",
            "transfer",
            "compute",
            "fixed",
            "serial",
            "pipelined",
            "gain %",
        ],
    );
    for n in [16_384usize, 65_536, 262_144, 1_048_576, 4_194_304] {
        let transfer = model_serial.transfer_ns(n);
        let compute = model_serial.compute_ns(n);
        let serial = model_serial.gpu_step_serial_ns(n);
        let fixed = serial - transfer - compute;
        let pipe = model_pipe.gpu_step_pipelined_ns(n);
        let v = VirtualNanos::from_nanos_f64;
        t1.row(&[
            n.to_string(),
            ms(v(transfer)),
            ms(v(compute)),
            ms(v(fixed)),
            ms(v(serial)),
            ms(v(pipe)),
            format!("{:.1}", (1.0 - pipe / serial) * 100.0),
        ]);
    }
    t1.print();
    artifacts.write_table(&t1);
    println!("(the pipelined step hides min(transfer, compute) behind the other)");

    // ---- 2. Cold transfer-bound sweep (Griffin-GPU alone). -----------
    // Fresh term pairs per measurement: every list is a cache miss, so
    // the comparison isolates the stream pipeline itself.
    let mut sizes = if smoke {
        vec![65_536usize, 262_144]
    } else {
        vec![65_536, 262_144, 1_048_576]
    };
    if full_scale() {
        sizes.push(4_194_304);
    }
    let pairs = if smoke { 2 } else { scaled(4) };
    let mut rng = StdRng::seed_from_u64(16);
    let mut lens = Vec::new();
    for &n in &sizes {
        for _ in 0..pairs {
            lens.push(n / 16);
            lens.push(n);
        }
    }
    let num_docs = (*sizes.iter().max().unwrap() as u32).saturating_mul(4);
    let lists = gen_correlated_lists(&mut rng, &lens, num_docs);
    let index = InvertedIndex::from_docid_lists(&lists, num_docs, Codec::EliasFano, 128);

    let dev_serial = Gpu::new(k20());
    let dev_over = Gpu::new(k20());
    let eng_serial = GpuEngine::new(&dev_serial, index.meta());
    let eng_over = GpuEngine::new(&dev_over, index.meta());
    eng_serial.set_overlap(false);

    let mut t2 = Table::new(
        "Overlap: cold GPU-only queries, pipeline off vs on (virtual ms)",
        &["long len", "serial", "overlapped", "gain %"],
    );
    let mut term = 0u32;
    let mut worst_gain = f64::INFINITY;
    for &n in &sizes {
        let mut serial_total = VirtualNanos::ZERO;
        let mut over_total = VirtualNanos::ZERO;
        for _ in 0..pairs {
            let terms = [TermId(term), TermId(term + 1)];
            term += 2;
            let a = eng_serial
                .process_query(&index, &terms, 10)
                .expect("device op");
            let b = eng_over
                .process_query(&index, &terms, 10)
                .expect("device op");
            assert_eq!(a.topk, b.topk, "overlap changed results at n={n}");
            serial_total += a.time;
            over_total += b.time;
        }
        let gain = (1.0 - over_total.as_nanos() as f64 / serial_total.as_nanos() as f64) * 100.0;
        worst_gain = worst_gain.min(gain);
        t2.row(&[
            n.to_string(),
            ms(serial_total / pairs as u64),
            ms(over_total / pairs as u64),
            format!("{gain:.1}"),
        ]);
    }
    t2.print();
    artifacts.write_table(&t2);
    assert!(
        worst_gain >= 15.0,
        "overlap must save >= 15% on transfer-bound lists, got {worst_gain:.1}%"
    );
    println!("(bit-exact at every size; worst-case gain {worst_gain:.1}% >= 15%)");
    eng_serial.shutdown();
    eng_over.shutdown();

    // ---- 3. End-to-end Hybrid over a Zipf log, cache live. -----------
    let spec = ListIndexSpec {
        num_terms: 48,
        num_docs: if smoke { 1_000_000 } else { 8_000_000 },
        max_list_len: if smoke { 200_000 } else { 2_000_000 },
        ..Default::default()
    };
    let (zipf_index, _) = build_list_index(&spec, &mut rng);
    let queries = QueryLogSpec {
        num_queries: if smoke { 30 } else { scaled(150) },
        ..Default::default()
    }
    .generate(&zipf_index, &mut rng);

    // Separate devices so both passes see identical (cold) cache state.
    let dev_off = Gpu::new(k20());
    let dev_on = Gpu::new(k20());
    let mut g_off = Griffin::new(&dev_off, zipf_index.meta(), zipf_index.block_len());
    let mut g_on = Griffin::new(&dev_on, zipf_index.meta(), zipf_index.block_len());
    g_off.set_overlap(false);
    g_on.set_telemetry(telemetry.clone());
    let mut total_off = VirtualNanos::ZERO;
    let mut total_on = VirtualNanos::ZERO;
    for q in &queries {
        let req = QueryRequest::new(q.clone()).mode(ExecMode::Hybrid);
        let a = g_off.run(&zipf_index, &req);
        let b = g_on.run(&zipf_index, &req);
        assert_eq!(a.topk, b.topk, "overlap changed hybrid results");
        total_off += a.time;
        total_on += b.time;
    }
    let nq = queries.len() as u64;
    let gain = (1.0 - total_on.as_nanos() as f64 / total_off.as_nanos() as f64) * 100.0;
    let stats = g_on.gpu.cache_stats();
    let prefetch_use = if stats.prefetch_issued == 0 {
        0.0
    } else {
        stats.prefetch_consumed as f64 / stats.prefetch_issued as f64 * 100.0
    };
    let mut t3 = Table::new(
        "Overlap: end-to-end Hybrid over a Zipf query log",
        &[
            "queries",
            "mean off",
            "mean on",
            "gain %",
            "cache hit %",
            "prefetch used %",
        ],
    );
    t3.row(&[
        nq.to_string(),
        ms(total_off / nq),
        ms(total_on / nq),
        format!("{gain:.1}"),
        format!("{:.1}", stats.hit_rate() * 100.0),
        format!("{prefetch_use:.1}"),
    ]);
    t3.print();
    artifacts.write_table(&t3);
    println!("\n(cache hits shrink the transfer share, so end-to-end gains sit");
    println!(" below the cold sweep's; the pipeline still wins, never loses)");

    artifacts.snapshot_duration("hybrid_mean_on_ns", total_on / nq);
    artifacts.snapshot_metric("overlap_saved_pct", gain);
    artifacts.snapshot_metric("cache_hit_ratio", stats.hit_rate());
    artifacts.write_snapshot("exp_overlap");
    artifacts.write_metrics(&telemetry);
    artifacts.write_trace(&telemetry);
}
