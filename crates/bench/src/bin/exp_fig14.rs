//! **Fig. 14** — end-to-end query latency by number of terms: CPU-only vs
//! GPU-only (Griffin-GPU alone) vs Griffin (hybrid).
//!
//! Paper: Griffin consistently beats both, averaging ~10× over the CPU
//! implementation and ~1.5× over Griffin-GPU — because early (low-ratio)
//! intersections belong on the GPU and late (high-ratio) ones on the CPU,
//! and only Griffin runs each where it wins.
//!
//! With `--metrics-json <path>` / `--trace-json <path>` the run leaves
//! machine-readable telemetry artifacts: scheduler decisions per `Proc`,
//! per-step latency histograms, GPU kernel aggregates, and the full
//! structured query trace.

use std::collections::BTreeMap;

use griffin::{ExecMode, Griffin};
use griffin_bench::report::{ms, speedup, Table};
use griffin_bench::setup::{k20, scaled};
use griffin_bench::Artifacts;
use griffin_gpu_sim::Gpu;
use griffin_workload::{build_list_index, LatencyStats, ListIndexSpec, QueryLogSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let artifacts = Artifacts::from_args();
    let mut rng = StdRng::seed_from_u64(14);
    let spec = ListIndexSpec {
        num_terms: 64,
        num_docs: 12_000_000,
        max_list_len: 4_000_000,
        ..Default::default()
    };
    eprintln!("building index ({} terms)...", spec.num_terms);
    let (index, _) = build_list_index(&spec, &mut rng);
    let queries = QueryLogSpec {
        num_queries: scaled(100),
        ..Default::default()
    }
    .generate(&index, &mut rng);
    eprintln!("running {} queries x 3 modes...", queries.len());

    let gpu = Gpu::new(k20());
    let mut griffin = Griffin::new(&gpu, index.meta(), index.block_len());
    griffin.set_telemetry(artifacts.telemetry());

    let mut by_terms: BTreeMap<usize, [LatencyStats; 3]> = BTreeMap::new();
    for q in &queries {
        let bucket = by_terms.entry(q.len().min(7)).or_default();
        for (i, mode) in [ExecMode::CpuOnly, ExecMode::GpuOnly, ExecMode::Hybrid]
            .into_iter()
            .enumerate()
        {
            let out = griffin.process_query(&index, q, 10, mode);
            bucket[i].record(out.time);
        }
    }

    let mut t = Table::new(
        "Fig. 14: End-to-End Query Latency (avg virtual ms by #terms)",
        &[
            "#terms", "n", "CPU only", "GPU only", "Griffin", "vs CPU", "vs GPU",
        ],
    );
    let mut overall = [0.0f64; 3];
    let mut total_n = 0usize;
    for (terms, stats) in &by_terms {
        let cpu = stats[0].mean();
        let gpu_t = stats[1].mean();
        let hyb = stats[2].mean();
        overall[0] += cpu.as_nanos() as f64 * stats[0].len() as f64;
        overall[1] += gpu_t.as_nanos() as f64 * stats[1].len() as f64;
        overall[2] += hyb.as_nanos() as f64 * stats[2].len() as f64;
        total_n += stats[0].len();
        t.row(&[
            if *terms >= 7 {
                "> 6".into()
            } else {
                terms.to_string()
            },
            stats[0].len().to_string(),
            ms(cpu),
            ms(gpu_t),
            ms(hyb),
            speedup(hyb.speedup_over(cpu)),
            speedup(hyb.speedup_over(gpu_t)),
        ]);
    }
    t.print();
    artifacts.write_table(&t);
    artifacts.write_metrics(griffin.telemetry());
    artifacts.write_trace(griffin.telemetry());
    println!(
        "\noverall: Griffin vs CPU-only = {}, Griffin vs GPU-only = {} (paper: ~10x, ~1.5x)",
        speedup(overall[0] / overall[2]),
        speedup(overall[1] / overall[2]),
    );
    artifacts.snapshot_metric("hybrid_mean_ns", overall[2] / total_n as f64);
    artifacts.snapshot_metric("vs_cpu_speedup", overall[0] / overall[2]);
    artifacts.snapshot_metric("vs_gpu_speedup", overall[1] / overall[2]);
    artifacts.write_snapshot("exp_fig14");
}
