//! **Faults** — graceful degradation under deterministic device faults.
//!
//! The Fig. 15 query mix runs through the hybrid engine behind the
//! serving layer's GPU health breaker while the simulated device
//! misbehaves on a seeded schedule: transient fault rates from 0.1% to
//! 1% per operation, and a sticky device loss mid-stream. For every
//! regime the experiment reports:
//!
//! * **completion rate** — fraction of queries whose top-k is *exactly*
//!   the fault-free CPU answer. The robustness contract says this is
//!   100% in every regime: faults cost time, never answers.
//! * **p99 inflation** — served p99 latency relative to the fault-free
//!   run (retry backoff, wasted attempts, and CPU re-materialization
//!   all land in the measured times).
//! * **fault/recovery/breaker counters** — device faults observed,
//!   in-place retries, CPU migrations, and the breaker's trips and
//!   degraded-query count.
//!
//! `GRIFFIN_FAULT_SEED` (default 202) picks the fault schedule;
//! `GRIFFIN_SCALE` scales the query count. `--metrics-json <path>`
//! dumps the full registry including the `griffin_fault_*` series.

use griffin::{ExecMode, Griffin, QueryRequest};
use griffin_bench::report::{ms, Table};
use griffin_bench::setup::{k20, scaled};
use griffin_bench::Artifacts;
use griffin_gpu_sim::{FaultPlan, Gpu, VirtualNanos};
use griffin_index::{InvertedIndex, TermId};
use griffin_server::{BreakerConfig, GriffinServer, ServerConfig};
use griffin_telemetry::Telemetry;
use griffin_workload::{build_list_index, percentile, ListIndexSpec, QueryLogSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn fault_seed() -> u64 {
    std::env::var("GRIFFIN_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(202)
}

struct RegimeResult {
    name: &'static str,
    completed: usize,
    total: usize,
    p50: VirtualNanos,
    p99: VirtualNanos,
    faults: u64,
    retries: u64,
    migrations: u64,
    breaker_opens: u64,
    breaker_degraded: u64,
}

fn run_regime(
    name: &'static str,
    plan: Option<FaultPlan>,
    index: &InvertedIndex,
    queries: &[Vec<TermId>],
    truth: &[Vec<u32>],
) -> RegimeResult {
    let gpu = Gpu::new(k20());
    gpu.set_fault_plan(plan);
    let telemetry = Telemetry::enabled();
    let mut griffin = Griffin::new(&gpu, index.meta(), index.block_len());
    griffin.set_telemetry(telemetry.clone());
    griffin.scheduler.min_gpu_work = 64 * 1024;
    griffin.scheduler.ratio_threshold = 16;
    griffin.scheduler.hysteresis = 1.0;

    let mut server = GriffinServer::new(ServerConfig::default());
    server.set_breaker(BreakerConfig::default());
    let requests: Vec<QueryRequest> = queries
        .iter()
        .map(|q| QueryRequest::new(q.clone()).k(10).mode(ExecMode::Hybrid))
        .collect();
    let planned = server.plan(&griffin, index, &requests);

    let completed = planned
        .iter()
        .zip(truth)
        .filter(|(p, t)| {
            p.topk.len() == t.len() && p.topk.iter().zip(t.iter()).all(|(&(d, _), &e)| d == e)
        })
        .count();
    let mut times: Vec<VirtualNanos> = planned.iter().map(|p| p.service_time).collect();
    times.sort_unstable();

    let registry = &telemetry.recorder().expect("enabled").registry;
    let faults = [
        "kernel_launch_failed",
        "transfer_error",
        "device_oom",
        "device_lost",
        "corrupt_list",
    ]
    .iter()
    .map(|kind| {
        registry.counter(&format!(
            "griffin_fault_gpu_errors_total{{kind=\"{kind}\"}}"
        ))
    })
    .sum();
    let stats = server.breaker_stats();
    let result = RegimeResult {
        name,
        completed,
        total: queries.len(),
        p50: percentile(&times, 50.0),
        p99: percentile(&times, 99.0),
        faults,
        retries: registry.counter("griffin_fault_retries_total"),
        migrations: registry.counter("griffin_fault_migrations_total"),
        breaker_opens: stats.opens,
        breaker_degraded: stats.degraded,
    };
    griffin.gpu.shutdown();
    assert_eq!(gpu.mem_in_use(), 0, "regime {name} leaked device memory");
    result
}

fn main() {
    let artifacts = Artifacts::from_args();
    let telemetry = artifacts.telemetry();
    let seed = fault_seed();
    let mut rng = StdRng::seed_from_u64(42);
    let spec = ListIndexSpec {
        num_terms: 48,
        num_docs: 4_000_000,
        max_list_len: 1_500_000,
        ..Default::default()
    };
    eprintln!("building index...");
    let (index, _) = build_list_index(&spec, &mut rng);
    let queries = QueryLogSpec {
        num_queries: scaled(200),
        ..Default::default()
    }
    .generate(&index, &mut rng);
    eprintln!(
        "running {} queries per fault regime (fault seed {seed})...",
        queries.len()
    );

    // Fault-free CPU-only ground truth.
    let gpu = Gpu::new(k20());
    let griffin = Griffin::new(&gpu, index.meta(), index.block_len());
    let truth: Vec<Vec<u32>> = queries
        .iter()
        .map(|q| {
            griffin
                .run(
                    &index,
                    &QueryRequest::new(q.clone()).k(10).mode(ExecMode::CpuOnly),
                )
                .topk
                .iter()
                .map(|&(d, _)| d)
                .collect()
        })
        .collect();

    let regimes: Vec<(&'static str, Option<FaultPlan>)> = vec![
        ("fault-free", None),
        ("0.1%", Some(FaultPlan::seeded(seed).with_fault_rate(0.001))),
        ("1%", Some(FaultPlan::seeded(seed).with_fault_rate(0.01))),
        (
            "sticky loss",
            Some(FaultPlan::seeded(seed).lose_device_at(200)),
        ),
    ];

    let results: Vec<RegimeResult> = regimes
        .into_iter()
        .map(|(name, plan)| run_regime(name, plan, &index, &queries, &truth))
        .collect();
    let clean_p99 = results[0].p99;

    let mut t = Table::new(
        "Faults: Fig. 15 mix under deterministic device faults (virtual ms)",
        &[
            "regime",
            "complete%",
            "p50",
            "p99",
            "p99 infl",
            "faults",
            "retries",
            "migrations",
            "brk opens",
            "brk degraded",
        ],
    );
    for r in &results {
        assert_eq!(
            r.completed, r.total,
            "regime {} failed queries — the robustness contract is broken",
            r.name
        );
        t.row(&[
            r.name.to_string(),
            format!("{:.1}", 100.0 * r.completed as f64 / r.total as f64),
            ms(r.p50),
            ms(r.p99),
            format!(
                "{:.2}x",
                r.p99.as_nanos() as f64 / clean_p99.as_nanos().max(1) as f64
            ),
            r.faults.to_string(),
            r.retries.to_string(),
            r.migrations.to_string(),
            r.breaker_opens.to_string(),
            r.breaker_degraded.to_string(),
        ]);
        telemetry.counter_add(
            &format!("griffin_fault_exp_faults_total{{regime=\"{}\"}}", r.name),
            r.faults,
        );
    }
    t.print();
    artifacts.write_table(&t);
    artifacts.snapshot_duration("clean_p99_ns", clean_p99);
    let worst_inflation = results
        .iter()
        .map(|r| r.p99.as_nanos() as f64 / clean_p99.as_nanos().max(1) as f64)
        .fold(0.0f64, f64::max);
    artifacts.snapshot_metric("worst_p99_latency_inflation", worst_inflation);
    artifacts.write_snapshot("exp_faults");
    println!("\n(the shape: every regime completes 100% of queries with exact answers;");
    println!(" faults only inflate the tail — retries absorb transients, migration");
    println!(" absorbs exhaustion, and the breaker caps the damage of a lost device)");

    artifacts.write_metrics(&telemetry);
}
