//! **Query language + block-max pruning** — the planner study.
//!
//! Two workloads over one Zipf text corpus:
//!
//! 1. a **mixed-operator log** (conjunctions, `OR` arms, negations,
//!    quoted phrases, from [`MixedQuerySpec`]) parsed from query
//!    *strings* and executed under all three modes. Asserted: every
//!    mode returns the identical top-k, scores bit-for-bit — the
//!    planner's fold-order contract (see `griffin::plan`) holds on the
//!    hybrid per-step machinery too;
//! 2. a **conjunctive Zipf top-10 log** run unpruned vs block-max
//!    pruned in every mode. Asserted: pruning never changes a single
//!    docID or score, skips >= 30% of the tf-block decodes the
//!    unpruned scorer would pay, and is no slower in total virtual
//!    time. The GPU lane's saving is counted in *resident blocks*:
//!    the candidate-hull restriction uploads only the block range that
//!    can intersect.
//!
//! `--smoke` shrinks the corpus and the query counts; `GRIFFIN_SCALE`
//! scales the full run.

use griffin::{ExecMode, Griffin, QueryRequest};
use griffin_bench::report::{ms, Table};
use griffin_bench::setup::{k20, scaled};
use griffin_bench::Artifacts;
use griffin_cpu::PruneStats;
use griffin_gpu_sim::{Gpu, VirtualNanos};
use griffin_workload::{build_text_index, CorpusSpec, MixedQuerySpec, QueryLogSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

const MODES: [(ExecMode, &str); 3] = [
    (ExecMode::CpuOnly, "cpu-only"),
    (ExecMode::GpuOnly, "gpu-only"),
    (ExecMode::Hybrid, "hybrid"),
];

fn shape_of(q: &str) -> &'static str {
    if q.contains('"') {
        "phrase"
    } else if q.contains(" OR ") {
        "or"
    } else if q.contains(" -") {
        "not"
    } else {
        "and"
    }
}

fn main() {
    let artifacts = Artifacts::from_args();
    let smoke = std::env::args().any(|a| a == "--smoke");
    let telemetry = artifacts.telemetry();

    let spec = CorpusSpec {
        num_docs: if smoke { 3_000 } else { scaled(20_000) },
        vocab_size: if smoke { 1_500 } else { 4_000 },
        avg_doc_len: 120,
        // Real text is bursty (within-document tf has a heavy tail) and
        // real indexes assign docIDs in URL order, clustering similar
        // documents — both are what give block-max bounds their spread.
        burstiness: 0.2,
        length_skew: 1.0,
        // Fine-grained blocks: block-max pruning trades a bigger skip
        // table for tighter bounds (the BMW papers use 32-64, not the
        // decode-friendly 128).
        block_len: 32,
        ..Default::default()
    };
    let mut rng = StdRng::seed_from_u64(61);
    let index = build_text_index(&spec, &mut rng);

    let gpu = Gpu::new(k20());
    let mut griffin = Griffin::new(&gpu, index.meta(), index.block_len());
    griffin.set_telemetry(telemetry.clone());

    // ---- 1. Mixed-operator workload through the parser + planner. ----
    let mixed = MixedQuerySpec {
        num_queries: if smoke { 60 } else { scaled(300) },
        ..Default::default()
    }
    .generate(&index, &mut rng);

    // shape -> (count, per-mode total time)
    let mut by_shape: std::collections::BTreeMap<&str, (usize, [VirtualNanos; 3])> =
        Default::default();
    for q in &mixed {
        let outs: Vec<_> = MODES
            .iter()
            .map(|&(mode, _)| {
                griffin
                    .query(&index, q)
                    .k(10)
                    .mode(mode)
                    .run()
                    .unwrap_or_else(|e| panic!("generated query {q:?} failed to parse: {e}"))
            })
            .collect();
        for out in &outs[1..] {
            assert_eq!(
                out.topk, outs[0].topk,
                "modes disagree on {q:?}: the plan fold-order contract is broken"
            );
        }
        let entry = by_shape
            .entry(shape_of(q))
            .or_insert((0, [VirtualNanos::ZERO; 3]));
        entry.0 += 1;
        for (slot, out) in entry.1.iter_mut().zip(&outs) {
            *slot += out.time;
        }
    }

    let mut t1 = Table::new(
        "Query language: mixed-operator workload, mean virtual ms per query (bit-exact across modes)",
        &["shape", "queries", "cpu-only", "gpu-only", "hybrid"],
    );
    for (shape, (n, totals)) in &by_shape {
        let mut row = vec![shape.to_string(), n.to_string()];
        row.extend(totals.iter().map(|&t| ms(t / *n as u64)));
        t1.row(&row);
    }
    t1.print();
    artifacts.write_table(&t1);

    // ---- 2. Block-max pruning on a conjunctive Zipf top-10 log. ------
    let conj = QueryLogSpec {
        num_queries: if smoke { 80 } else { scaled(400) },
        ..Default::default()
    }
    .generate(&index, &mut rng);

    // Each (mode, pruned?) configuration runs the whole log on a fresh
    // engine: cache warm-up and balancer state are self-consistent
    // within a run, never inherited from the other configuration.
    let run_log = |mode: ExecMode, pruned: bool| {
        let gpu = Gpu::new(k20());
        let mut engine = Griffin::new(&gpu, index.meta(), index.block_len());
        engine.set_telemetry(telemetry.clone());
        let mut total = VirtualNanos::ZERO;
        let mut stats = PruneStats::default();
        let mut topks = Vec::with_capacity(conj.len());
        for q in &conj {
            let req = QueryRequest::new(q.clone()).k(10).mode(mode).pruned(pruned);
            let out = engine.run(&index, &req);
            assert_eq!(out.gpu_faults, 0, "healthy device");
            total += out.time;
            if pruned {
                stats.add(out.pruning.as_ref().expect("pruned run reports stats"));
            }
            topks.push(out.topk);
        }
        engine.gpu.shutdown();
        assert_eq!(gpu.mem_in_use(), 0, "pruned uploads must not leak");
        (total, stats, topks)
    };

    let mut t2 = Table::new(
        "Block-max pruning: conjunctive Zipf log, k=10 (bit-exact vs unpruned)",
        &["mode", "unpruned", "pruned", "saved %", "blocks skipped %"],
    );
    let mut cpu_stats = PruneStats::default();
    let mut gpu_stats = PruneStats::default();
    let mut headline_skip = 0.0;
    let mut headline_saved = 0.0;
    for &(mode, label) in &MODES {
        let (t_plain, _, reference) = run_log(mode, false);
        let (t_pruned, stats, topks) = run_log(mode, true);
        assert_eq!(topks, reference, "pruning changed the top-k under {label}");
        assert!(
            t_pruned <= t_plain,
            "pruned path slower than unpruned under {label}: {t_pruned:?} > {t_plain:?}"
        );
        let saved = (1.0 - t_pruned.as_nanos() as f64 / t_plain.as_nanos().max(1) as f64) * 100.0;
        let skipped = stats.blocks_skipped_fraction() * 100.0;
        t2.row(&[
            label.to_string(),
            ms(t_plain),
            ms(t_pruned),
            format!("{saved:+.1}"),
            format!("{skipped:.1}"),
        ]);
        match mode {
            ExecMode::CpuOnly => {
                cpu_stats = stats;
                headline_skip = stats.blocks_skipped_fraction();
                headline_saved = saved;
            }
            ExecMode::GpuOnly => gpu_stats = stats,
            ExecMode::Hybrid => {}
        }
    }
    t2.print();
    artifacts.write_table(&t2);

    // The acceptance bar: on a Zipf top-10 workload the floor rises fast
    // enough that most candidates' tf blocks never decode.
    assert!(
        headline_skip >= 0.30,
        "expected >= 30% of tf blocks skipped on the Zipf top-10 log, got {:.1}%",
        headline_skip * 100.0
    );
    println!(
        "\n(pruning skipped {:.1}% of CPU tf-block decodes and kept {:.1}% of GPU\n block uploads resident, bit-exact in every mode)",
        cpu_stats.blocks_skipped_fraction() * 100.0,
        (1.0 - gpu_stats.blocks_skipped_fraction()) * 100.0
    );

    griffin.gpu.shutdown();
    assert_eq!(gpu.mem_in_use(), 0, "pruned uploads must not leak");

    artifacts.snapshot_metric("blocks_skipped_fraction", headline_skip);
    artifacts.snapshot_metric("pruned_saved_pct", headline_saved);
    artifacts.snapshot_metric(
        "gpu_blocks_skipped_fraction",
        gpu_stats.blocks_skipped_fraction(),
    );
    artifacts.write_snapshot("exp_queries");
    artifacts.write_metrics(&telemetry);
    artifacts.write_trace(&telemetry);
}
