//! `exp_kernels` — wall-clock CPU kernel microbench + cost-model
//! calibration (the one experiment that measures *real* time).
//!
//! ```text
//! cargo run -p griffin-bench --release --bin exp_kernels [--smoke] [--out BENCH_wallclock.json]
//! ```
//!
//! Times the SIMD-dispatched CPU kernels (PforDelta/Elias–Fano block
//! decode, skip intersection, linear merge, block-max bound fold) on
//! deterministic workload-crate inputs, scalar path vs SIMD path
//! (warmup + median-of-runs), and:
//!
//! * prints ns/elem / ns/probe per kernel with scalar÷SIMD speedups;
//! * on an AVX2 host, **asserts** at least one kernel clears a 1.5×
//!   SIMD speedup (auto-skipped with a note when AVX2 is absent);
//! * verifies both paths produce bit-identical outputs on the bench
//!   workload;
//! * calibrates [`KernelMeasurements`] from the measured numbers and
//!   writes `BENCH_wallclock.json` (versioned snapshot schema + host
//!   fingerprint), then re-reads the file and checks the calibrated
//!   [`CostModel`] round-trips exactly;
//! * reports how the measured numbers move the CPU/GPU profitable-work
//!   crossover relative to the hand-set defaults.
//!
//! Wall-clock numbers are host-specific, so this experiment is *not*
//! part of `run_all`'s virtual-time snapshot; `bench_diff` refuses to
//! enforce tolerance across differing host fingerprints.

use griffin::{CostModel, KernelMeasurements};
use griffin_bench::kernels::{host_fingerprint, measurements_from, median_ns, record_measurements};
use griffin_bench::snapshot::Snapshot;
use griffin_bench::{k20, scale, Table};
use griffin_codec::{BlockedList, Codec, DEFAULT_BLOCK_LEN};
use griffin_cpu::simd::{self, ForceMode, KernelPath};
use griffin_cpu::{decode, intersect, set_info_counters, QueryScratch, WorkCounters};
use griffin_workload::{gen_docid_list, GapProfile};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct KernelRow {
    name: &'static str,
    unit: &'static str,
    scalar: f64,
    simd: f64,
}

impl KernelRow {
    fn speedup(&self) -> f64 {
        self.scalar / self.simd.max(f64::MIN_POSITIVE)
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let out_path = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--out")
            .and_then(|i| args.get(i + 1).cloned())
            .unwrap_or_else(|| "BENCH_wallclock.json".into())
    };
    // The kernels under test must carry zero informational-bookkeeping
    // overhead; priced counters are never gated and stay on.
    set_info_counters(false);

    let (long_len, warmup, runs) = if smoke {
        (200_000usize, 2usize, 5usize)
    } else {
        (2_000_000usize, 3usize, 15usize)
    };
    let short_len = long_len / 128; // the paper's crossover ratio
    let num_docs = (long_len * 4) as u32;
    let mut rng = StdRng::seed_from_u64(42);
    let long = gen_docid_list(&mut rng, long_len, num_docs, GapProfile::Uniform);
    let mid = gen_docid_list(&mut rng, long_len / 2, num_docs, GapProfile::Uniform);
    let short = gen_docid_list(&mut rng, short_len, num_docs, GapProfile::Clustered);
    let pfor = BlockedList::compress(&long, Codec::PforDelta, DEFAULT_BLOCK_LEN);
    let ef = BlockedList::compress(&long, Codec::EliasFano, DEFAULT_BLOCK_LEN);

    let host = host_fingerprint();
    let simd_available = {
        simd::set_forced(ForceMode::Simd);
        let p = simd::active_path();
        simd::set_forced(ForceMode::Auto);
        p == KernelPath::Avx2
    };
    println!(
        "host: {} [{}] — SIMD path: {}",
        host.get("cpu_model").map(String::as_str).unwrap_or("?"),
        host.get("features").map(String::as_str).unwrap_or("?"),
        if simd_available {
            "avx2"
        } else {
            "unavailable (scalar only)"
        }
    );

    // Both paths must produce bit-identical outputs on the bench inputs.
    for (name, list) in [("pfor", &pfor), ("ef", &ef)] {
        assert_eq!(
            decode_all(list, ForceMode::Scalar),
            decode_all(list, ForceMode::Simd),
            "{name}: scalar and SIMD decodes diverged"
        );
    }

    let per_path = |mode: ForceMode, op: &mut dyn FnMut() -> u64| -> f64 {
        simd::set_forced(mode);
        let ns = median_ns(warmup, runs, op);
        simd::set_forced(ForceMode::Auto);
        ns
    };

    let mut rows = Vec::new();

    // Block decode, ns per element.
    for (name, list) in [("pfor_decode", &pfor), ("ef_decode", &ef)] {
        let mut buf: Vec<u32> = Vec::with_capacity(DEFAULT_BLOCK_LEN);
        let mut bench = || {
            let mut w = WorkCounters::default();
            let mut sink = 0u64;
            for i in 0..list.num_blocks() {
                buf.clear();
                decode::decode_block(list, i, &mut buf, &mut w);
                sink = sink.wrapping_add(u64::from(*buf.last().unwrap()));
            }
            sink
        };
        rows.push(KernelRow {
            name: if name == "pfor_decode" {
                "pfor_decode"
            } else {
                "ef_decode"
            },
            unit: "ns/elem",
            scalar: per_path(ForceMode::Scalar, &mut bench) / long_len as f64,
            simd: per_path(ForceMode::Simd, &mut bench) / long_len as f64,
        });
    }

    // Skip intersection (gallop + block decode + in-block search), ns
    // per short-list probe — the model's `cpu_skip_ns_per_probe` regime.
    {
        let mut scratch = QueryScratch::default();
        let mut bench = || {
            let mut w = WorkCounters::default();
            let m = intersect::skip_intersect_range_with(
                &short,
                &pfor,
                0,
                pfor.num_blocks(),
                &mut w,
                &mut scratch,
            );
            m.len() as u64
        };
        rows.push(KernelRow {
            name: "skip_intersect",
            unit: "ns/probe",
            scalar: per_path(ForceMode::Scalar, &mut bench) / short_len as f64,
            simd: per_path(ForceMode::Simd, &mut bench) / short_len as f64,
        });
    }

    // Linear merge over decoded lists, ns per long-list element — the
    // model's `cpu_ns_per_elem` merge regime (minus decode, added below).
    let merge_ns_per_elem = {
        let mut bench = || {
            let mut w = WorkCounters::default();
            intersect::merge_intersect(&mid, &long, &mut w).len() as u64
        };
        let ns = median_ns(warmup, runs, &mut bench);
        ns / long_len as f64
    };
    rows.push(KernelRow {
        name: "merge",
        unit: "ns/elem",
        scalar: merge_ns_per_elem,
        simd: merge_ns_per_elem, // scalar by design: comparable-length lists merge best linearly
    });

    // Block-max bound fold, ns per candidate·term.
    {
        let n = short_len.max(1024);
        let nblocks = long_len / DEFAULT_BLOCK_LEN;
        let block_ubs: Vec<f32> = (0..nblocks).map(|_| rng.gen_range(0.0f32..8.0)).collect();
        let elem_idx: Vec<u32> = (0..n)
            .map(|_| rng.gen_range(0..(nblocks * DEFAULT_BLOCK_LEN) as u32))
            .collect();
        let mut ubs = vec![0.0f32; n];
        let mut bench = || {
            simd::fold_term_bounds(&mut ubs, &elem_idx, DEFAULT_BLOCK_LEN, &block_ubs, true);
            simd::fold_term_bounds(&mut ubs, &elem_idx, DEFAULT_BLOCK_LEN, &block_ubs, false);
            ubs[0].to_bits() as u64
        };
        rows.push(KernelRow {
            name: "bound_fold",
            unit: "ns/cand·term",
            scalar: per_path(ForceMode::Scalar, &mut bench) / (2 * n) as f64,
            simd: per_path(ForceMode::Simd, &mut bench) / (2 * n) as f64,
        });
    }

    let mut t = Table::new(
        "Wall-clock kernel costs (median of runs)",
        &["kernel", "unit", "scalar", "simd", "speedup"],
    );
    for r in &rows {
        t.row(&[
            r.name.to_string(),
            r.unit.to_string(),
            format!("{:.3}", r.scalar),
            format!("{:.3}", r.simd),
            format!("{:.2}x", r.speedup()),
        ]);
    }
    t.print();

    let best = rows
        .iter()
        .max_by(|a, b| a.speedup().total_cmp(&b.speedup()))
        .expect("rows nonempty");
    if simd_available {
        assert!(
            best.speedup() >= 1.5,
            "AVX2 host but best SIMD speedup is only {:.2}x ({}); expected >= 1.5x",
            best.speedup(),
            best.name
        );
        println!(
            "SIMD speedup check: best {:.2}x on {} (>= 1.5x required) — ok",
            best.speedup(),
            best.name
        );
    } else {
        println!("SIMD speedup check: skipped — AVX2 not available on this host");
    }

    // Calibrate from the path the engine will actually run (auto).
    let decode_row = rows.iter().find(|r| r.name == "pfor_decode").unwrap();
    let skip_row = rows.iter().find(|r| r.name == "skip_intersect").unwrap();
    let auto = |r: &KernelRow| if simd_available { r.simd } else { r.scalar };
    let m = KernelMeasurements {
        cpu_decode_ns_per_elem: auto(decode_row),
        cpu_merge_ns_per_elem: merge_ns_per_elem,
        cpu_skip_ns_per_probe: auto(skip_row),
    };

    let mut snap = Snapshot {
        version: 1,
        label: "wallclock".into(),
        scale: scale(),
        smoke,
        host,
        ..Snapshot::default()
    };
    record_measurements(&mut snap, &m);
    let e = snap.experiments.entry("exp_kernels".into()).or_default();
    for r in &rows {
        e.insert(format!("{}_scalar_{}", r.name, unit_key(r.unit)), r.scalar);
        e.insert(format!("{}_simd_{}", r.name, unit_key(r.unit)), r.simd);
        e.insert(format!("{}_speedup", r.name), r.speedup());
    }
    std::fs::write(&out_path, snap.to_json()).unwrap_or_else(|err| {
        eprintln!("error: cannot write {out_path}: {err}");
        std::process::exit(1);
    });
    println!("wrote wall-clock snapshot to {out_path}");

    // Round-trip: calibrating from the re-read file must yield exactly
    // the model calibrated from the in-memory measurements.
    let text = std::fs::read_to_string(&out_path).expect("just wrote it");
    let back = Snapshot::from_json(&text).expect("own snapshot parses");
    let m2 = measurements_from(&back).expect("calibration metrics present");
    let device = k20();
    let calibrated = CostModel::from_device(&device, true).calibrated_from(&m2);
    assert_eq!(
        calibrated,
        CostModel::from_device(&device, true).calibrated_from(&m),
        "calibration must round-trip through {out_path}"
    );
    println!("calibration round-trip through {out_path}: ok");

    let default_model = CostModel::from_device(&device, true);
    println!(
        "profitable-work crossover: {} elems (hand-set defaults) -> {} elems (calibrated: \
         decode {:.2} + merge {:.2} ns/elem, skip {:.1} ns/probe)",
        default_model.min_profitable_long_len(),
        calibrated.min_profitable_long_len(),
        m.cpu_decode_ns_per_elem,
        m.cpu_merge_ns_per_elem,
        m.cpu_skip_ns_per_probe,
    );
    set_info_counters(true);
}

fn decode_all(list: &BlockedList, mode: ForceMode) -> Vec<u32> {
    simd::set_forced(mode);
    let mut w = WorkCounters::default();
    let out = decode::decode_list(list, &mut w);
    simd::set_forced(ForceMode::Auto);
    out
}

fn unit_key(unit: &str) -> &'static str {
    match unit {
        "ns/probe" => "ns_per_probe",
        "ns/cand·term" => "ns_per_cand_term",
        _ => "ns_per_elem",
    }
}
