//! # griffin-bench — experiment harness
//!
//! One binary per table/figure of the paper's evaluation (run with
//! `cargo run -p griffin-bench --release --bin exp_<id>`), plus Criterion
//! benches measuring the real wall-clock speed of the implementations.
//!
//! Experiment binaries print *virtual-time* results from the calibrated
//! device/CPU models — deterministic and host-independent; see
//! EXPERIMENTS.md for the paper-vs-measured record.
//!
//! Scale: every experiment accepts `GRIFFIN_SCALE` (float, default 1.0)
//! to grow/shrink sample counts, and `GRIFFIN_FULL=1` to include the
//! largest (10M-element) size points.

pub mod artifacts;
pub mod intersect_harness;
pub mod kernels;
pub mod report;
pub mod setup;
pub mod snapshot;

pub use artifacts::Artifacts;
pub use report::Table;
pub use setup::{full_scale, k20, scale};
pub use snapshot::Snapshot;
