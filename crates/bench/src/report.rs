//! Plain-text table rendering for the experiment binaries.

/// A right-aligned text table with a title, printed in the style of the
/// paper's figures/tables.
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: &str, header: &[&str]) -> Table {
        Table {
            title: title.to_owned(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width must match header"
        );
        self.rows.push(cells.to_vec());
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n=== {} ===\n", self.title));
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&line(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row, &widths));
            out.push('\n');
        }
        out
    }

    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Renders the table as RFC 4180 CSV (header row, then data rows) —
    /// the machine-readable counterpart of [`Table::render`], written
    /// next to the metrics artifact when `--metrics-json` is set.
    pub fn to_csv(&self) -> String {
        fn field(cell: &str) -> String {
            if cell.contains([',', '"', '\n', '\r']) {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_owned()
            }
        }
        let line = |cells: &[String]| -> String {
            cells.iter().map(|c| field(c)).collect::<Vec<_>>().join(",")
        };
        let mut out = line(&self.header);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row));
            out.push('\n');
        }
        out
    }
}

/// Formats a speedup like the paper quotes them ("10.4x").
pub fn speedup(x: f64) -> String {
    if x.is_nan() || x.is_infinite() {
        "-".to_string()
    } else {
        format!("{x:.1}x")
    }
}

/// Formats virtual time in ms with three decimals.
pub fn ms(t: griffin_gpu_sim::VirtualNanos) -> String {
    format!("{:.3}", t.as_millis_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = Table::new("Demo", &["size", "time"]);
        t.row(&["1K".into(), "0.5".into()]);
        t.row(&["1000K".into(), "12.25".into()]);
        let s = t.render();
        assert!(s.contains("=== Demo ==="));
        assert!(s.contains("size"));
        let lines: Vec<&str> = s.lines().collect();
        // All data lines equal width.
        assert_eq!(lines[4].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_mismatched_rows() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn speedup_formatting() {
        assert_eq!(speedup(10.44), "10.4x");
        assert_eq!(speedup(f64::NAN), "-");
    }

    #[test]
    fn csv_roundtrips_and_escapes() {
        let mut t = Table::new("Demo", &["size", "time"]);
        t.row(&["1K".into(), "0.5".into()]);
        t.row(&["a,b".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "size,time");
        assert_eq!(lines[1], "1K,0.5");
        assert_eq!(lines[2], "\"a,b\",\"say \"\"hi\"\"\"");
    }
}
