//! Shared experiment configuration: scaling knobs and the device profile.

use griffin_gpu_sim::DeviceConfig;

/// `GRIFFIN_SCALE` multiplies sample counts (default 1.0). The paper runs
/// e.g. 100 pairs per ratio group and 10 000 queries; the defaults here
/// are sized to finish in minutes on a laptop while preserving shapes.
pub fn scale() -> f64 {
    std::env::var("GRIFFIN_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&v: &f64| v > 0.0)
        .unwrap_or(1.0)
}

/// `GRIFFIN_FULL=1` includes the largest (10M-element) size points, which
/// take substantially longer to simulate.
pub fn full_scale() -> bool {
    std::env::var("GRIFFIN_FULL")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Applies the scale factor to a sample count, with a floor of 1.
pub fn scaled(base: usize) -> usize {
    ((base as f64 * scale()) as usize).max(1)
}

/// The experiment device: a Tesla K20 with performance tracing sampled at
/// one warp in 16 (functional execution stays exact; only the counter
/// extrapolation is sampled — plenty for multi-million-thread launches).
pub fn k20() -> DeviceConfig {
    DeviceConfig {
        trace_sample_stride: 16,
        ..DeviceConfig::tesla_k20()
    }
}

/// The size axis used by Figs. 7, 12 and 13 (1K → 10M); the 10M point only
/// with [`full_scale`].
pub fn size_axis() -> Vec<usize> {
    let mut sizes = vec![1_000, 10_000, 100_000, 1_000_000];
    if full_scale() {
        sizes.push(10_000_000);
    }
    sizes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        // Tests run without the env vars set.
        if std::env::var("GRIFFIN_SCALE").is_err() {
            assert_eq!(scale(), 1.0);
            assert_eq!(scaled(8), 8);
        }
        assert!(size_axis().len() >= 4);
        assert_eq!(k20().trace_sample_stride, 16);
    }
}
