//! `--metrics-json <path>` / `--trace-json <path>` flag handling shared
//! by the experiment binaries.
//!
//! Every `exp_*` binary accepts the flag pair; when either is present the
//! run enables telemetry and leaves machine-readable artifacts next to
//! its pretty-printed tables:
//!
//! * `--metrics-json out.json` — the metrics-registry dump (counters,
//!   gauges, histograms with quantiles), plus a `<out>.csv` sibling for
//!   each table the experiment prints;
//! * `--trace-json out.json` — the structured query trace, or (for the
//!   serving experiments) a Chrome trace-event file loadable in Perfetto.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use griffin_telemetry::{json, Telemetry, Timeline};

use crate::report::Table;

/// Parsed artifact flags for an experiment run.
#[derive(Debug, Default, Clone)]
pub struct Artifacts {
    pub metrics_json: Option<PathBuf>,
    pub trace_json: Option<PathBuf>,
    /// `--snapshot <path>`: where to dump the experiment's headline
    /// numbers as a perf snapshot fragment (see [`crate::snapshot`]).
    pub snapshot: Option<PathBuf>,
    tables_written: std::cell::Cell<usize>,
    snapshot_metrics: RefCell<BTreeMap<String, f64>>,
}

impl Artifacts {
    /// Parses `--metrics-json <path>` / `--trace-json <path>` /
    /// `--snapshot <path>` from the process arguments. Unknown arguments
    /// are ignored (the experiment binaries are otherwise configured via
    /// `GRIFFIN_*` env vars); a flag missing its value is a usage error.
    pub fn from_args() -> Artifacts {
        Self::parse(std::env::args().skip(1)).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            eprintln!("usage: [--metrics-json <path>] [--trace-json <path>] [--snapshot <path>]");
            std::process::exit(2);
        })
    }

    fn parse(args: impl Iterator<Item = String>) -> Result<Artifacts, String> {
        let mut out = Artifacts::default();
        let mut args = args.peekable();
        while let Some(arg) = args.next() {
            let slot = match arg.as_str() {
                "--metrics-json" => &mut out.metrics_json,
                "--trace-json" => &mut out.trace_json,
                "--snapshot" => &mut out.snapshot,
                _ => continue,
            };
            match args.next() {
                Some(v) => *slot = Some(PathBuf::from(v)),
                None => return Err(format!("{arg} requires a <path> value")),
            }
        }
        Ok(out)
    }

    /// Whether any artifact was requested (and telemetry should be on).
    pub fn requested(&self) -> bool {
        self.metrics_json.is_some() || self.trace_json.is_some()
    }

    /// A telemetry handle matching the flags: live when any artifact was
    /// requested, the free no-op handle otherwise.
    pub fn telemetry(&self) -> Telemetry {
        if self.requested() {
            Telemetry::enabled()
        } else {
            Telemetry::disabled()
        }
    }

    /// Like [`Artifacts::telemetry`], additionally hooking the device
    /// observer onto `gpu` so kernel launches and PCIe transfers feed
    /// the metrics registry even in experiments that drive the device
    /// directly (no [`griffin::Griffin`] engine in the loop).
    pub fn observe_gpu(&self, gpu: &griffin_gpu_sim::Gpu) -> Telemetry {
        let t = self.telemetry();
        gpu.set_observer(t.device_observer(gpu.config().warp_size));
        t
    }

    /// Writes the metrics-registry JSON to the `--metrics-json` path.
    pub fn write_metrics(&self, telemetry: &Telemetry) {
        if let (Some(path), Some(json)) = (&self.metrics_json, telemetry.metrics_json()) {
            write_artifact(path, &json, "metrics JSON");
        }
    }

    /// Writes the structured query trace to the `--trace-json` path.
    pub fn write_trace(&self, telemetry: &Telemetry) {
        if let (Some(path), Some(json)) = (&self.trace_json, telemetry.trace_json()) {
            write_artifact(path, &json, "query-trace JSON");
        }
    }

    /// Writes a serving-sim timeline as Chrome trace-event JSON to the
    /// `--trace-json` path (open in Perfetto / `chrome://tracing`).
    pub fn write_chrome_trace(&self, timeline: &Timeline) {
        if let Some(path) = &self.trace_json {
            write_artifact(path, &timeline.to_chrome_trace(), "Chrome trace JSON");
        }
    }

    /// Record one headline number for the perf snapshot. Values
    /// accumulate regardless of flags (recording is cheap); they are
    /// only written out when `--snapshot` was given. Recording the same
    /// name twice keeps the latest value.
    pub fn snapshot_metric(&self, name: &str, value: f64) {
        self.snapshot_metrics
            .borrow_mut()
            .insert(name.to_owned(), value);
    }

    /// Record a virtual duration (as nanoseconds) for the snapshot.
    pub fn snapshot_duration(&self, name: &str, d: griffin_gpu_sim::VirtualNanos) {
        self.snapshot_metric(name, d.as_nanos() as f64);
    }

    /// Writes the accumulated snapshot metrics to the `--snapshot` path
    /// as a fragment `{"experiment": ..., "metrics": {...}}` that
    /// `run_all` merges into `BENCH_v<N>.json`.
    pub fn write_snapshot(&self, experiment: &str) {
        let Some(path) = &self.snapshot else {
            return;
        };
        let metrics = self.snapshot_metrics.borrow();
        let mut m = json::Object::new();
        for (k, v) in metrics.iter() {
            m.f64(k, *v);
        }
        let mut root = json::Object::new();
        root.str("experiment", experiment)
            .raw("metrics", &m.finish());
        write_artifact(path, &root.finish(), "perf snapshot");
    }

    /// When `--metrics-json` is set, writes `table` as CSV next to the
    /// metrics artifact (`<stem>.csv`, then `<stem>.2.csv`, … for the
    /// second and later tables of one experiment).
    pub fn write_table(&self, table: &Table) {
        let Some(path) = &self.metrics_json else {
            return;
        };
        let n = self.tables_written.get() + 1;
        self.tables_written.set(n);
        let ext = if n == 1 {
            "csv".to_owned()
        } else {
            format!("{n}.csv")
        };
        write_artifact(&path.with_extension(ext), &table.to_csv(), "table CSV");
    }
}

fn write_artifact(path: &Path, contents: &str, what: &str) {
    match std::fs::write(path, contents) {
        Ok(()) => eprintln!("wrote {what} to {}", path.display()),
        Err(e) => {
            eprintln!("error: failed to write {what} to {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Artifacts, String> {
        Artifacts::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn no_flags_means_disabled() {
        let a = parse(&[]).unwrap();
        assert!(!a.requested());
        assert!(!a.telemetry().is_enabled());
    }

    #[test]
    fn both_flags_parse() {
        let a = parse(&["--metrics-json", "m.json", "--trace-json", "t.json"]).unwrap();
        assert_eq!(a.metrics_json.as_deref(), Some(Path::new("m.json")));
        assert_eq!(a.trace_json.as_deref(), Some(Path::new("t.json")));
        assert!(a.telemetry().is_enabled());
    }

    #[test]
    fn unknown_args_ignored() {
        let a = parse(&["--weird", "--trace-json", "t.json"]).unwrap();
        assert!(a.metrics_json.is_none());
        assert!(a.trace_json.is_some());
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(parse(&["--metrics-json"]).is_err());
        assert!(parse(&["--snapshot"]).is_err());
    }

    #[test]
    fn snapshot_flag_does_not_enable_telemetry() {
        let a = parse(&["--snapshot", "s.json"]).unwrap();
        assert_eq!(a.snapshot.as_deref(), Some(Path::new("s.json")));
        assert!(!a.requested());
        assert!(!a.telemetry().is_enabled());
    }

    #[test]
    fn snapshot_metrics_round_trip_to_fragment() {
        let dir = std::env::temp_dir().join("griffin_artifacts_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("frag.json");
        let a = parse(&["--snapshot", path.to_str().unwrap()]).unwrap();
        a.snapshot_metric("x_ns", 123.0);
        a.snapshot_metric("x_ns", 456.0); // latest wins
        a.snapshot_metric("speedup", 2.5);
        a.write_snapshot("exp_test");
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"experiment\":\"exp_test\""));
        assert!(text.contains("\"x_ns\":456.0"));
        assert!(text.contains("\"speedup\":2.5"));
        std::fs::remove_file(&path).ok();
    }
}
