//! Structured query tracing.
//!
//! A [`Recorder`] accumulates [`TraceEvent`]s — one per engine step,
//! scheduler decision, kernel launch, and PCIe transfer — all stamped
//! with device virtual time. The engine tags events with a query id
//! handed out by [`Recorder::begin_query`]; device-level events (which
//! fire from inside the GPU simulator and know nothing about queries)
//! pick up the current query id automatically.
//!
//! Everything here lives behind the [`crate::Telemetry`] handle: when
//! telemetry is disabled no recorder exists and recording callsites
//! reduce to a single branch on an `Option`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use griffin_gpu_sim::VirtualNanos;

use crate::json;
use crate::metrics::Registry;

/// One structured trace record. Times are device virtual nanoseconds.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A query entered the engine.
    QueryStart { query: u64, terms: usize },
    /// One `Scheduler::decide` call, with every input that shaped it.
    SchedDecision {
        query: u64,
        short_len: usize,
        long_len: usize,
        /// `long_len / short_len` (0 when the intermediate is empty).
        ratio: f64,
        /// The threshold actually compared against (after hysteresis).
        effective_threshold: f64,
        /// Whether placement-aware hysteresis inflated the threshold.
        hysteresis_applied: bool,
        /// "cpu", "gpu", or "split" (co-execution on both).
        chosen: &'static str,
        /// The long operand's decoded docIDs sit in the host cache.
        host_cached: bool,
        /// The long operand is device-resident (LRU or prefetch).
        device_cached: bool,
        /// The cache-aware override changed the baseline decision —
        /// this operation was "won by cache".
        cache_flip: bool,
    },
    /// One engine step (Init / Intersect / Migrate / TopK).
    Step {
        query: u64,
        /// "init", "intersect", "split_intersect", "migrate", or "topk".
        op: &'static str,
        /// For "intersect": the planned term index; otherwise 0.
        arg: usize,
        /// "cpu" or "gpu".
        proc: &'static str,
        duration: VirtualNanos,
        /// Intermediate length after the step.
        inter_len: usize,
        /// Busy time of the host lane for "split_intersect" steps
        /// (zero for every other op). Carried on the step itself so the
        /// profiler can attribute the two concurrent lanes exactly,
        /// without reassembling them from neighbouring events.
        cpu_lane: VirtualNanos,
        /// Busy time of the device lane for "split_intersect" steps
        /// (zero for every other op).
        gpu_lane: VirtualNanos,
    },
    /// A GPU kernel launch retired (from the device observer).
    KernelLaunch {
        query: u64,
        name: &'static str,
        start: VirtualNanos,
        duration: VirtualNanos,
        total_warps: u64,
        divergence_rate: f64,
        coalescing_factor: f64,
        gmem_transactions: u64,
    },
    /// A PCIe transfer completed (from the device observer).
    PcieTransfer {
        query: u64,
        /// "htod" or "dtoh".
        direction: &'static str,
        bytes: u64,
        start: VirtualNanos,
        duration: VirtualNanos,
    },
    /// A CPU lane of a co-executed split ran concurrently with device
    /// work (the engine records it; the device observer cannot see host
    /// execution). `start` is in device virtual time, so the lane lines
    /// up with the kernels and transfers it overlapped.
    CpuLane {
        query: u64,
        /// The operation the lane belonged to (e.g. "split_intersect").
        op: &'static str,
        start: VirtualNanos,
        duration: VirtualNanos,
    },
    /// The query finished.
    QueryEnd {
        query: u64,
        total: VirtualNanos,
        results: usize,
    },
}

impl TraceEvent {
    /// Render one event as a JSON object with a `"type"` discriminant.
    pub fn to_json(&self) -> String {
        let mut o = json::Object::new();
        match self {
            TraceEvent::QueryStart { query, terms } => {
                o.str("type", "query_start")
                    .u64("query", *query)
                    .usize("terms", *terms);
            }
            TraceEvent::SchedDecision {
                query,
                short_len,
                long_len,
                ratio,
                effective_threshold,
                hysteresis_applied,
                chosen,
                host_cached,
                device_cached,
                cache_flip,
            } => {
                o.str("type", "sched_decision")
                    .u64("query", *query)
                    .usize("short_len", *short_len)
                    .usize("long_len", *long_len)
                    .f64("ratio", *ratio)
                    .f64("effective_threshold", *effective_threshold)
                    .bool("hysteresis_applied", *hysteresis_applied)
                    .str("chosen", chosen)
                    .bool("host_cached", *host_cached)
                    .bool("device_cached", *device_cached)
                    .bool("cache_flip", *cache_flip);
            }
            TraceEvent::Step {
                query,
                op,
                arg,
                proc,
                duration,
                inter_len,
                cpu_lane,
                gpu_lane,
            } => {
                o.str("type", "step")
                    .u64("query", *query)
                    .str("op", op)
                    .usize("arg", *arg)
                    .str("proc", proc)
                    .u64("duration_ns", duration.as_nanos())
                    .usize("inter_len", *inter_len);
                if *op == "split_intersect" {
                    o.u64("cpu_lane_ns", cpu_lane.as_nanos())
                        .u64("gpu_lane_ns", gpu_lane.as_nanos());
                }
            }
            TraceEvent::KernelLaunch {
                query,
                name,
                start,
                duration,
                total_warps,
                divergence_rate,
                coalescing_factor,
                gmem_transactions,
            } => {
                o.str("type", "kernel_launch")
                    .u64("query", *query)
                    .str("kernel", name)
                    .u64("start_ns", start.as_nanos())
                    .u64("duration_ns", duration.as_nanos())
                    .u64("total_warps", *total_warps)
                    .f64("divergence_rate", *divergence_rate)
                    .f64("coalescing_factor", *coalescing_factor)
                    .u64("gmem_transactions", *gmem_transactions);
            }
            TraceEvent::PcieTransfer {
                query,
                direction,
                bytes,
                start,
                duration,
            } => {
                o.str("type", "pcie_transfer")
                    .u64("query", *query)
                    .str("direction", direction)
                    .u64("bytes", *bytes)
                    .u64("start_ns", start.as_nanos())
                    .u64("duration_ns", duration.as_nanos());
            }
            TraceEvent::CpuLane {
                query,
                op,
                start,
                duration,
            } => {
                o.str("type", "cpu_lane")
                    .u64("query", *query)
                    .str("op", op)
                    .u64("start_ns", start.as_nanos())
                    .u64("duration_ns", duration.as_nanos());
            }
            TraceEvent::QueryEnd {
                query,
                total,
                results,
            } => {
                o.str("type", "query_end")
                    .u64("query", *query)
                    .u64("total_ns", total.as_nanos())
                    .usize("results", *results);
            }
        }
        o.finish()
    }
}

/// Accumulates metrics and trace events for one telemetry session.
#[derive(Default)]
pub struct Recorder {
    /// The metrics registry fed alongside the event stream.
    pub registry: Registry,
    events: Mutex<Vec<TraceEvent>>,
    next_query: AtomicU64,
    current_query: AtomicU64,
}

impl Recorder {
    pub fn new() -> Recorder {
        Recorder::default()
    }

    /// Allocate the next query id and make it current (device events
    /// recorded until the next `begin_query` are tagged with it).
    pub fn begin_query(&self) -> u64 {
        let id = self.next_query.fetch_add(1, Ordering::Relaxed);
        self.current_query.store(id, Ordering::Relaxed);
        id
    }

    /// The query id device-level events are currently attributed to.
    pub fn current_query(&self) -> u64 {
        self.current_query.load(Ordering::Relaxed)
    }

    /// Append one event to the trace.
    pub fn push(&self, event: TraceEvent) {
        self.events.lock().expect("trace event lock").push(event);
    }

    /// Snapshot of the event stream so far.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().expect("trace event lock").clone()
    }

    pub fn event_count(&self) -> usize {
        self.events.lock().expect("trace event lock").len()
    }

    /// The whole trace as a JSON array of event objects.
    pub fn events_to_json(&self) -> String {
        let events = self.events.lock().expect("trace event lock");
        let mut arr = json::Array::new();
        for e in events.iter() {
            arr.raw(&e.to_json());
        }
        arr.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_ids_are_sequential_and_current() {
        let r = Recorder::new();
        assert_eq!(r.begin_query(), 0);
        assert_eq!(r.begin_query(), 1);
        assert_eq!(r.current_query(), 1);
    }

    #[test]
    fn events_round_trip_to_json() {
        let r = Recorder::new();
        let q = r.begin_query();
        r.push(TraceEvent::QueryStart { query: q, terms: 3 });
        r.push(TraceEvent::SchedDecision {
            query: q,
            short_len: 100,
            long_len: 5_000,
            ratio: 50.0,
            effective_threshold: 128.0,
            hysteresis_applied: false,
            chosen: "gpu",
            host_cached: false,
            device_cached: true,
            cache_flip: true,
        });
        r.push(TraceEvent::QueryEnd {
            query: q,
            total: VirtualNanos::from_nanos(1234),
            results: 10,
        });
        let js = r.events_to_json();
        assert!(js.starts_with('[') && js.ends_with(']'));
        assert!(js.contains("\"type\":\"sched_decision\""));
        assert!(js.contains("\"chosen\":\"gpu\""));
        assert!(js.contains("\"total_ns\":1234"));
        assert_eq!(r.event_count(), 3);
    }
}
