//! Serving-simulation timelines.
//!
//! The serving simulator optionally emits one [`SpanEvent`] per executed
//! stage: which resource lane ran it, when the stage became ready, when
//! it actually started (the gap is queue wait), and when it finished.
//! From those spans this module derives per-resource utilization and a
//! queue-depth curve, and renders the whole schedule in the Chrome
//! trace-event format so it can be opened directly in Perfetto or
//! `chrome://tracing`.

use griffin_gpu_sim::VirtualNanos;

use crate::json;

/// One executed stage on one resource lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// Resource kind, e.g. "cpu" or "gpu".
    pub resource: &'static str,
    /// Lane within the resource (CPU core index; 0 for the single GPU).
    pub lane: usize,
    /// Index of the job (query) this stage belongs to.
    pub job: usize,
    /// Index of the stage within its job.
    pub stage: usize,
    /// When the stage became runnable (arrival or previous stage's end).
    pub ready: VirtualNanos,
    /// When the lane actually started it (`start - ready` = queue wait).
    pub start: VirtualNanos,
    pub end: VirtualNanos,
}

impl SpanEvent {
    pub fn queue_wait(&self) -> VirtualNanos {
        self.start - self.ready
    }

    pub fn duration(&self) -> VirtualNanos {
        self.end - self.start
    }
}

/// Busy fraction of one resource lane over the simulated horizon.
#[derive(Debug, Clone, PartialEq)]
pub struct LaneUtilization {
    pub resource: &'static str,
    pub lane: usize,
    pub busy: VirtualNanos,
    pub utilization: f64,
}

/// The complete schedule of a serving-simulation run.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    pub spans: Vec<SpanEvent>,
}

impl Timeline {
    pub fn push(&mut self, span: SpanEvent) {
        self.spans.push(span);
    }

    /// The end of the latest span (the simulation makespan).
    pub fn horizon(&self) -> VirtualNanos {
        self.spans
            .iter()
            .map(|s| s.end)
            .max()
            .unwrap_or(VirtualNanos::ZERO)
    }

    /// Busy time and busy fraction per resource lane, sorted by
    /// (resource, lane). Utilization is relative to the makespan.
    pub fn utilization(&self) -> Vec<LaneUtilization> {
        let horizon = self.horizon().as_nanos();
        let mut lanes: Vec<(&'static str, usize, u64)> = Vec::new();
        for s in &self.spans {
            match lanes
                .iter_mut()
                .find(|(r, l, _)| *r == s.resource && *l == s.lane)
            {
                Some((_, _, busy)) => *busy += s.duration().as_nanos(),
                None => lanes.push((s.resource, s.lane, s.duration().as_nanos())),
            }
        }
        lanes.sort_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)));
        lanes
            .into_iter()
            .map(|(resource, lane, busy)| LaneUtilization {
                resource,
                lane,
                busy: VirtualNanos::from_nanos(busy),
                utilization: if horizon == 0 {
                    0.0
                } else {
                    busy as f64 / horizon as f64
                },
            })
            .collect()
    }

    /// Number of stages waiting (ready but not yet started) as a step
    /// function over time: `(t, depth)` points at every change.
    pub fn queue_depth_curve(&self) -> Vec<(VirtualNanos, usize)> {
        let mut deltas: Vec<(u64, i64)> = Vec::with_capacity(self.spans.len() * 2);
        for s in &self.spans {
            if s.start > s.ready {
                deltas.push((s.ready.as_nanos(), 1));
                deltas.push((s.start.as_nanos(), -1));
            }
        }
        deltas.sort_unstable();
        let mut curve = Vec::new();
        let mut depth = 0i64;
        for (t, d) in deltas {
            depth += d;
            match curve.last_mut() {
                Some((last_t, last_d)) if *last_t == VirtualNanos::from_nanos(t) => {
                    *last_d = depth as usize;
                }
                _ => curve.push((VirtualNanos::from_nanos(t), depth as usize)),
            }
        }
        curve
    }

    /// Mean queue wait across all spans.
    pub fn mean_queue_wait(&self) -> VirtualNanos {
        if self.spans.is_empty() {
            return VirtualNanos::ZERO;
        }
        let sum: u64 = self.spans.iter().map(|s| s.queue_wait().as_nanos()).sum();
        VirtualNanos::from_nanos(sum / self.spans.len() as u64)
    }

    /// Render the schedule as a Chrome trace-event JSON document
    /// (loadable in Perfetto / `chrome://tracing`). Each resource lane
    /// becomes a thread; each stage a complete ("X") event; timestamps
    /// are microseconds of virtual time.
    pub fn to_chrome_trace(&self) -> String {
        let mut events = json::Array::new();

        // Stable lane → tid mapping, plus thread-name metadata records.
        let mut lanes: Vec<(&'static str, usize)> = Vec::new();
        for s in &self.spans {
            if !lanes.contains(&(s.resource, s.lane)) {
                lanes.push((s.resource, s.lane));
            }
        }
        lanes.sort_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)));
        for (tid, (resource, lane)) in lanes.iter().enumerate() {
            let mut args = json::Object::new();
            args.str("name", &format!("{resource}{lane}"));
            let mut m = json::Object::new();
            m.str("ph", "M")
                .str("name", "thread_name")
                .usize("pid", 1)
                .usize("tid", tid)
                .raw("args", &args.finish());
            events.raw(&m.finish());
        }

        let tid_of = |resource: &'static str, lane: usize| -> usize {
            lanes
                .iter()
                .position(|&(r, l)| r == resource && l == lane)
                .expect("lane registered above")
        };

        for s in &self.spans {
            let mut args = json::Object::new();
            args.usize("job", s.job)
                .usize("stage", s.stage)
                .f64("queue_wait_us", s.queue_wait().as_nanos() as f64 / 1e3);
            let mut e = json::Object::new();
            e.str("name", &format!("job{}.s{}", s.job, s.stage))
                .str("cat", s.resource)
                .str("ph", "X")
                .f64("ts", s.start.as_nanos() as f64 / 1e3)
                .f64("dur", s.duration().as_nanos() as f64 / 1e3)
                .usize("pid", 1)
                .usize("tid", tid_of(s.resource, s.lane))
                .raw("args", &args.finish());
            events.raw(&e.finish());
        }

        let mut root = json::Object::new();
        root.raw("traceEvents", &events.finish())
            .str("displayTimeUnit", "ms");
        root.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(v: u64) -> VirtualNanos {
        VirtualNanos::from_nanos(v)
    }

    fn span(lane: usize, job: usize, ready: u64, start: u64, end: u64) -> SpanEvent {
        SpanEvent {
            resource: "cpu",
            lane,
            job,
            stage: 0,
            ready: ns(ready),
            start: ns(start),
            end: ns(end),
        }
    }

    #[test]
    fn utilization_and_horizon() {
        let mut tl = Timeline::default();
        tl.push(span(0, 0, 0, 0, 100));
        tl.push(span(0, 1, 0, 100, 200));
        tl.push(span(1, 2, 0, 0, 50));
        assert_eq!(tl.horizon(), ns(200));
        let u = tl.utilization();
        assert_eq!(u.len(), 2);
        assert_eq!(u[0].lane, 0);
        assert!((u[0].utilization - 1.0).abs() < 1e-9);
        assert!((u[1].utilization - 0.25).abs() < 1e-9);
    }

    #[test]
    fn queue_depth_counts_waiting_stages() {
        let mut tl = Timeline::default();
        // Two stages ready at t=0; one starts immediately, the other
        // waits until t=100.
        tl.push(span(0, 0, 0, 0, 100));
        tl.push(span(0, 1, 0, 100, 200));
        let curve = tl.queue_depth_curve();
        assert_eq!(curve, vec![(ns(0), 1), (ns(100), 0)]);
        assert_eq!(tl.mean_queue_wait(), ns(50));
    }

    #[test]
    fn chrome_trace_shape() {
        let mut tl = Timeline::default();
        tl.push(span(0, 0, 0, 0, 1000));
        tl.push(SpanEvent {
            resource: "gpu",
            lane: 0,
            job: 0,
            stage: 1,
            ready: ns(1000),
            start: ns(1500),
            end: ns(2000),
        });
        let js = tl.to_chrome_trace();
        assert!(js.contains("\"traceEvents\""));
        assert!(js.contains("\"ph\":\"M\""), "thread metadata present");
        assert!(js.contains("\"ph\":\"X\""), "complete events present");
        assert!(js.contains("\"name\":\"cpu0\""));
        assert!(js.contains("\"name\":\"gpu0\""));
        assert!(js.contains("\"queue_wait_us\":0.5"));
    }
}
