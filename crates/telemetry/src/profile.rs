//! Hierarchical span profiler: exact latency attribution per query.
//!
//! [`QueryProfile::from_trace`] folds one query's slice of the recorded
//! event stream into an attribution tree:
//!
//! ```text
//! query
//! ├── decode            (init steps)
//! │   └── cpu | gpu
//! ├── intersect
//! │   └── gpu
//! │       ├── kernel:…  (device kernels retired inside the step)
//! │       └── pcie:htod (transfers overlapping the step — busy-only)
//! ├── split             (co-executed split intersections)
//! │   ├── cpu-lane
//! │   └── gpu-lane
//! ├── transfer          (migrate steps)
//! ├── setop             (plan operators: union, difference, phrase check)
//! ├── rank              (top-k)
//! └── recovery          (fault recovery)
//! ```
//!
//! Every node carries two durations:
//!
//! * `total` — virtual time *exactly attributed* to the node. Sibling
//!   totals never exceed their parent's total, and the phase totals sum
//!   exactly to the query total, so `Σ self_time` over the whole tree
//!   equals `GriffinOutput::time` to the nanosecond (property-tested in
//!   `tests/profile_properties.rs`). Where two lanes run concurrently
//!   (split intersections, overlapped transfers) the *critical path*
//!   owns the wall time: the dominant lane's total is the step duration
//!   and the hidden lane's total is zero.
//! * `busy` — observed busy time, which may overlap other nodes. The
//!   hidden lane of a split and a copy-engine transfer underneath a
//!   kernel both show their real busy time here even though their
//!   attributed total is zero.
//!
//! The tree exports as folded-stack text ([`QueryProfile::folded`], one
//! `a;b;c value` line per node — feed to any flamegraph renderer) and
//! as JSON ([`QueryProfile::to_json`]). [`QueryProfile::dominant_cause`]
//! reduces the tree to a one-line verdict naming the bucket that owns
//! the largest share of the latency — the flight recorder attaches it
//! to every retained tail query.

use griffin_gpu_sim::VirtualNanos;

use crate::json;
use crate::trace::TraceEvent;

/// One node of the attribution tree.
#[derive(Debug, Clone, Default)]
pub struct ProfileNode {
    /// Frame name: a phase (`"intersect"`), a processor (`"gpu"`,
    /// `"cpu-lane"`), or a device child (`"kernel:gpu_merge_path"`,
    /// `"pcie:htod"`).
    pub name: String,
    /// Wall time exactly attributed to this node (children included).
    pub total: VirtualNanos,
    /// Observed busy time; may overlap sibling nodes.
    pub busy: VirtualNanos,
    pub children: Vec<ProfileNode>,
}

impl ProfileNode {
    fn new(name: &str) -> ProfileNode {
        ProfileNode {
            name: name.to_owned(),
            ..ProfileNode::default()
        }
    }

    /// Attributed time not covered by any child (`total − Σ children`).
    pub fn self_time(&self) -> VirtualNanos {
        let children: VirtualNanos = self.children.iter().map(|c| c.total).sum();
        self.total.saturating_sub(children)
    }

    /// Find or append a child named `name`.
    fn child(&mut self, name: &str) -> &mut ProfileNode {
        if let Some(i) = self.children.iter().position(|c| c.name == name) {
            return &mut self.children[i];
        }
        self.children.push(ProfileNode::new(name));
        self.children.last_mut().expect("just pushed")
    }

    /// Sum of `self_time` over this subtree; equals `total` by
    /// construction (the invariant the property tests pin down).
    pub fn self_sum(&self) -> VirtualNanos {
        self.children
            .iter()
            .map(|c| c.self_sum())
            .fold(self.self_time(), |a, b| a + b)
    }

    fn to_json_obj(&self) -> String {
        let mut o = json::Object::new();
        o.str("name", &self.name)
            .u64("total_ns", self.total.as_nanos())
            .u64("self_ns", self.self_time().as_nanos())
            .u64("busy_ns", self.busy.as_nanos());
        if !self.children.is_empty() {
            let mut arr = json::Array::new();
            for c in &self.children {
                arr.raw(&c.to_json_obj());
            }
            o.raw("children", &arr.finish());
        }
        o.finish()
    }

    fn fold_into(&self, stack: &mut Vec<String>, out: &mut String) {
        stack.push(self.name.clone());
        let own = self.self_time();
        if !own.is_zero() {
            out.push_str(&stack.join(";"));
            out.push(' ');
            out.push_str(&own.as_nanos().to_string());
            out.push('\n');
        }
        for c in &self.children {
            c.fold_into(stack, out);
        }
        stack.pop();
    }
}

/// The latency bucket a verdict blames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cause {
    /// Time between arrival and service start (serving layer only).
    Queueing,
    /// Device kernel execution.
    GpuCompute,
    /// Host-side execution (decode, CPU intersect, ranking).
    CpuCompute,
    /// PCIe transfers (migrations plus attributed copy time).
    Pcie,
    /// Fault recovery (salvage, rematerialisation, re-run lanes).
    Recovery,
    /// Wall time lost to unequal lanes in split intersections.
    LaneImbalance,
}

impl Cause {
    pub fn label(self) -> &'static str {
        match self {
            Cause::Queueing => "queueing",
            Cause::GpuCompute => "gpu-compute",
            Cause::CpuCompute => "cpu-compute",
            Cause::Pcie => "pcie",
            Cause::Recovery => "fault-recovery",
            Cause::LaneImbalance => "lane-imbalance",
        }
    }
}

/// One-line dominant-cause verdict for a slow query.
#[derive(Debug, Clone)]
pub struct Verdict {
    pub cause: Cause,
    /// Virtual time in the winning bucket.
    pub dominant: VirtualNanos,
    /// The latency being explained (service + queueing).
    pub total: VirtualNanos,
    /// Operations whose placement the cache-aware scheduler flipped
    /// (host- or device-resident operands changing the baseline
    /// decision) — the query was partly "won by cache".
    pub cache_flips: u32,
}

impl Verdict {
    /// E.g. `"pcie (62% of 1.84ms)"`, with a `", won-by-cache×2"`
    /// suffix when cache residency flipped placements.
    pub fn one_line(&self) -> String {
        let pct = if self.total.is_zero() {
            0.0
        } else {
            100.0 * self.dominant.as_nanos() as f64 / self.total.as_nanos() as f64
        };
        let cache = if self.cache_flips > 0 {
            format!(", won-by-cache×{}", self.cache_flips)
        } else {
            String::new()
        };
        format!(
            "{} ({pct:.0}% of {:.2}ms{cache})",
            self.cause.label(),
            self.total.as_millis_f64()
        )
    }
}

/// The attribution tree for one query.
#[derive(Debug, Clone)]
pub struct QueryProfile {
    pub query: u64,
    /// `GriffinOutput::time` as recorded by the `QueryEnd` event.
    pub total: VirtualNanos,
    /// Root node, named `"query"`; `root.total == total`.
    pub root: ProfileNode,
    /// Σ over split steps of `step − min(cpu_lane, gpu_lane)`: wall time
    /// that a perfectly balanced split would not have spent.
    pub lane_waste: VirtualNanos,
    /// Scheduler decisions for this query that the cache-aware override
    /// flipped away from the cold baseline (operand residency in the
    /// host or device tier made the other processor cheaper).
    pub cache_flips: u32,
}

/// Map an engine step op to its phase frame.
fn phase_of(op: &str) -> &'static str {
    match op {
        "init" => "decode",
        "intersect" => "intersect",
        "split_intersect" => "split",
        "migrate" => "transfer",
        "topk" => "rank",
        "exec" => "exec",
        "fault_recovery" => "recovery",
        // Host-side plan operators (OR unions, NOT differences, mixed-AND
        // set intersections, phrase adjacency checks) share one frame.
        "union" | "difference" | "intersect_sets" | "phrase_check" => "setop",
        _ => "other",
    }
}

/// Device events pending attribution to the next engine step. The
/// observer fires *during* a step — before the engine pushes the
/// `Step` event — so device events between two `Step` events belong to
/// the later one.
#[derive(Default)]
struct Pending {
    /// `(frame name, duration)` in retirement order.
    spans: Vec<(String, VirtualNanos)>,
}

impl Pending {
    /// Attach the pending device spans under `node`, attributing exact
    /// time against `budget` (the wall time `node` owns for this step)
    /// in retirement order; whatever exceeds the budget — overlapped
    /// copies, the wasted lane of a failed split — stays busy-only.
    fn drain_into(&mut self, node: &mut ProfileNode, mut budget: VirtualNanos) {
        for (name, duration) in self.spans.drain(..) {
            let exact = duration.min(budget);
            budget = budget.saturating_sub(exact);
            let child = node.child(&name);
            child.total += exact;
            child.busy += duration;
        }
    }
}

impl QueryProfile {
    /// Fold `events` into the attribution tree for query `query`.
    /// Returns `None` when the trace holds no `QueryEnd` for it.
    pub fn from_trace(query: u64, events: &[TraceEvent]) -> Option<QueryProfile> {
        let mut root = ProfileNode::new("query");
        let mut pending = Pending::default();
        let mut lane_waste = VirtualNanos::ZERO;
        let mut cache_flips = 0u32;
        let mut total = None;
        for event in events {
            match event {
                TraceEvent::SchedDecision {
                    query: q,
                    cache_flip: true,
                    ..
                } if *q == query => {
                    cache_flips += 1;
                }
                TraceEvent::KernelLaunch {
                    query: q,
                    name,
                    duration,
                    ..
                } if *q == query => {
                    pending.spans.push((format!("kernel:{name}"), *duration));
                }
                TraceEvent::PcieTransfer {
                    query: q,
                    direction,
                    duration,
                    ..
                } if *q == query => {
                    pending.spans.push((format!("pcie:{direction}"), *duration));
                }
                TraceEvent::Step {
                    query: q,
                    op,
                    proc,
                    duration,
                    cpu_lane,
                    gpu_lane,
                    ..
                } if *q == query => {
                    let phase = root.child(phase_of(op));
                    phase.total += *duration;
                    phase.busy += *duration;
                    if *op == "split_intersect" {
                        // Critical-path attribution: the dominant lane
                        // owns the wall time, the hidden lane is busy-
                        // only. `duration == max(cpu_lane, gpu_lane)`.
                        let gpu_dominant = gpu_lane >= cpu_lane;
                        lane_waste += duration.saturating_sub((*cpu_lane).min(*gpu_lane));
                        let (gpu_total, cpu_total) = if gpu_dominant {
                            (*duration, VirtualNanos::ZERO)
                        } else {
                            (VirtualNanos::ZERO, *duration)
                        };
                        let cpu = phase.child("cpu-lane");
                        cpu.total += cpu_total;
                        cpu.busy += *cpu_lane;
                        let gpu = phase.child("gpu-lane");
                        gpu.total += gpu_total;
                        gpu.busy += *gpu_lane;
                        pending.drain_into(gpu, gpu_total);
                    } else {
                        let lane = phase.child(proc);
                        lane.total += *duration;
                        lane.busy += *duration;
                        if *proc == "gpu" {
                            pending.drain_into(lane, *duration);
                        } else if !pending.spans.is_empty() {
                            // Device work retired while a CPU step was
                            // recorded (e.g. the wasted device lane of a
                            // failed split): keep it visible, busy-only.
                            let gpu = phase.child("gpu");
                            pending.drain_into(gpu, VirtualNanos::ZERO);
                        }
                    }
                }
                TraceEvent::QueryEnd {
                    query: q, total: t, ..
                } if *q == query => {
                    total = Some(*t);
                    break;
                }
                _ => {}
            }
        }
        let total = total?;
        // Device events after the last step (none today; defensive):
        // keep them visible without breaking the exact sum.
        if !pending.spans.is_empty() {
            let tail = root.child("unattributed");
            pending.drain_into(tail, VirtualNanos::ZERO);
        }
        root.total = total;
        root.busy = total;
        Some(QueryProfile {
            query,
            total,
            root,
            lane_waste,
            cache_flips,
        })
    }

    /// Profiles for every query that completed in `events`, in id order.
    pub fn all_from_trace(events: &[TraceEvent]) -> Vec<QueryProfile> {
        let mut ids: Vec<u64> = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::QueryEnd { query, .. } => Some(*query),
                _ => None,
            })
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids.iter()
            .filter_map(|&q| QueryProfile::from_trace(q, events))
            .collect()
    }

    /// Σ `self_time` over the tree; equals [`QueryProfile::total`] by
    /// construction.
    pub fn attributed(&self) -> VirtualNanos {
        self.root.self_sum()
    }

    /// Folded-stack (flamegraph collapsed) text: one
    /// `query;phase;proc;frame <self_ns>` line per node with nonzero
    /// self time.
    pub fn folded(&self) -> String {
        let mut out = String::new();
        self.root.fold_into(&mut Vec::new(), &mut out);
        out
    }

    /// The tree as a JSON document.
    pub fn to_json(&self) -> String {
        let mut o = json::Object::new();
        o.u64("query", self.query)
            .u64("total_ns", self.total.as_nanos())
            .u64("lane_waste_ns", self.lane_waste.as_nanos())
            .u64("cache_flips", self.cache_flips as u64)
            .raw("tree", &self.root.to_json_obj());
        o.finish()
    }

    /// Total attributed to one top-level phase (zero if absent).
    pub fn phase_total(&self, phase: &str) -> VirtualNanos {
        self.root
            .children
            .iter()
            .find(|c| c.name == phase)
            .map(|c| c.total)
            .unwrap_or(VirtualNanos::ZERO)
    }

    /// Exact time attributed to device frames with the given prefix
    /// (`"kernel:"` or `"pcie:"`) anywhere in the tree.
    fn device_total(node: &ProfileNode, prefix: &str) -> VirtualNanos {
        let own = if node.name.starts_with(prefix) {
            node.total
        } else {
            VirtualNanos::ZERO
        };
        node.children
            .iter()
            .map(|c| Self::device_total(c, prefix))
            .fold(own, |a, b| a + b)
    }

    /// Reduce the tree to the bucket owning the largest share of
    /// `queue_wait + total`. `queue_wait` is the serving-layer wait
    /// before service began (pass [`VirtualNanos::ZERO`] for bare
    /// engine runs). Ties break toward the earlier bucket in the fixed
    /// order queueing, recovery, lane-imbalance, pcie, gpu-compute,
    /// cpu-compute — rarer causes first, so a tie surfaces the more
    /// actionable signal.
    pub fn dominant_cause(&self, queue_wait: VirtualNanos) -> Verdict {
        let recovery = self.phase_total("recovery");
        let kernels = Self::device_total(&self.root, "kernel:");
        let pcie = self.phase_total("transfer") + Self::device_total(&self.root, "pcie:");
        // Device compute: exact kernel time plus the split gpu-lane
        // remainder, excluding the transfer phase counted as PCIe.
        let gpu_lane_total = self
            .root
            .children
            .iter()
            .flat_map(|p| p.children.iter())
            .filter(|n| n.name == "gpu" || n.name == "gpu-lane")
            .map(|n| n.total)
            .fold(VirtualNanos::ZERO, |a, b| a + b);
        let gpu_compute = kernels.max(gpu_lane_total.saturating_sub(pcie));
        let cpu_compute = self
            .root
            .children
            .iter()
            .filter(|p| p.name != "recovery")
            .flat_map(|p| p.children.iter())
            .filter(|n| n.name == "cpu" || n.name == "cpu-lane")
            .map(|n| n.total)
            .fold(VirtualNanos::ZERO, |a, b| a + b);
        let buckets = [
            (Cause::Queueing, queue_wait),
            (Cause::Recovery, recovery),
            (Cause::LaneImbalance, self.lane_waste),
            (Cause::Pcie, pcie),
            (Cause::GpuCompute, gpu_compute),
            (Cause::CpuCompute, cpu_compute),
        ];
        let (cause, dominant) = buckets
            .iter()
            .copied()
            .max_by_key(|&(_, v)| v)
            .expect("buckets nonempty");
        // max_by_key returns the *last* max; prefer the first.
        let (cause, dominant) = buckets
            .iter()
            .copied()
            .find(|&(_, v)| v == dominant)
            .unwrap_or((cause, dominant));
        Verdict {
            cause,
            dominant,
            total: self.total + queue_wait,
            cache_flips: self.cache_flips,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(v: u64) -> VirtualNanos {
        VirtualNanos::from_nanos(v)
    }

    fn step(op: &'static str, proc: &'static str, d: u64) -> TraceEvent {
        TraceEvent::Step {
            query: 0,
            op,
            arg: 0,
            proc,
            duration: ns(d),
            inter_len: 0,
            cpu_lane: VirtualNanos::ZERO,
            gpu_lane: VirtualNanos::ZERO,
        }
    }

    fn kernel(name: &'static str, d: u64) -> TraceEvent {
        TraceEvent::KernelLaunch {
            query: 0,
            name,
            start: VirtualNanos::ZERO,
            duration: ns(d),
            total_warps: 1,
            divergence_rate: 0.0,
            coalescing_factor: 1.0,
            gmem_transactions: 0,
        }
    }

    #[test]
    fn attribution_sums_to_query_total() {
        let events = vec![
            TraceEvent::QueryStart { query: 0, terms: 3 },
            step("init", "cpu", 100),
            kernel("gpu_merge_path", 70),
            step("intersect", "gpu", 90),
            step("migrate", "gpu", 40),
            step("topk", "cpu", 30),
            TraceEvent::QueryEnd {
                query: 0,
                total: ns(260),
                results: 5,
            },
        ];
        let p = QueryProfile::from_trace(0, &events).unwrap();
        assert_eq!(p.total, ns(260));
        assert_eq!(p.attributed(), ns(260));
        assert_eq!(p.phase_total("decode"), ns(100));
        assert_eq!(p.phase_total("intersect"), ns(90));
        let folded = p.folded();
        assert!(folded.contains("query;intersect;gpu;kernel:gpu_merge_path 70"));
        assert!(folded.contains("query;decode;cpu 100"));
        // The 20ns the intersect step spent outside the kernel stays on
        // the gpu frame's self time.
        assert!(folded.contains("query;intersect;gpu 20"));
        assert!(p.to_json().contains("\"total_ns\":260"));
    }

    #[test]
    fn split_lanes_use_critical_path() {
        let events = vec![
            TraceEvent::QueryStart { query: 0, terms: 2 },
            kernel("gpu_merge_path", 55),
            TraceEvent::Step {
                query: 0,
                op: "split_intersect",
                arg: 1,
                proc: "gpu",
                duration: ns(80),
                inter_len: 9,
                cpu_lane: ns(80),
                gpu_lane: ns(60),
            },
            TraceEvent::QueryEnd {
                query: 0,
                total: ns(80),
                results: 9,
            },
        ];
        let p = QueryProfile::from_trace(0, &events).unwrap();
        assert_eq!(p.attributed(), ns(80));
        assert_eq!(p.lane_waste, ns(20));
        let split = &p.root.children[0];
        assert_eq!(split.name, "split");
        let cpu = split
            .children
            .iter()
            .find(|c| c.name == "cpu-lane")
            .unwrap();
        let gpu = split
            .children
            .iter()
            .find(|c| c.name == "gpu-lane")
            .unwrap();
        // CPU lane dominates: it owns the wall time; the device lane
        // (and its kernel) stay busy-only.
        assert_eq!(cpu.total, ns(80));
        assert_eq!(gpu.total, VirtualNanos::ZERO);
        assert_eq!(gpu.busy, ns(60));
        assert_eq!(gpu.children[0].busy, ns(55));
        assert_eq!(gpu.children[0].total, VirtualNanos::ZERO);
        let v = p.dominant_cause(VirtualNanos::ZERO);
        assert_eq!(v.cause, Cause::CpuCompute);
    }

    #[test]
    fn queueing_dominates_when_wait_exceeds_service() {
        let events = vec![
            TraceEvent::QueryStart { query: 3, terms: 2 },
            step("init", "cpu", 10),
            TraceEvent::QueryEnd {
                query: 3,
                total: ns(10),
                results: 0,
            },
        ];
        let p = QueryProfile::from_trace(3, &events).unwrap();
        let v = p.dominant_cause(ns(500));
        assert_eq!(v.cause, Cause::Queueing);
        assert_eq!(v.total, ns(510));
        assert!(v.one_line().starts_with("queueing (98% of"));
    }

    #[test]
    fn cache_flips_reach_the_verdict() {
        let events = vec![
            TraceEvent::QueryStart { query: 0, terms: 2 },
            TraceEvent::SchedDecision {
                query: 0,
                short_len: 100,
                long_len: 5_000,
                ratio: 50.0,
                effective_threshold: 128.0,
                hysteresis_applied: false,
                chosen: "cpu",
                host_cached: true,
                device_cached: false,
                cache_flip: true,
            },
            step("intersect", "cpu", 40),
            TraceEvent::QueryEnd {
                query: 0,
                total: ns(40),
                results: 1,
            },
        ];
        let p = QueryProfile::from_trace(0, &events).unwrap();
        assert_eq!(p.cache_flips, 1);
        assert!(p.to_json().contains("\"cache_flips\":1"));
        let v = p.dominant_cause(VirtualNanos::ZERO);
        assert_eq!(v.cache_flips, 1);
        assert!(v.one_line().contains("won-by-cache×1"));
    }

    #[test]
    fn missing_query_yields_none() {
        assert!(QueryProfile::from_trace(9, &[]).is_none());
        let only_start = vec![TraceEvent::QueryStart { query: 9, terms: 1 }];
        assert!(QueryProfile::from_trace(9, &only_start).is_none());
    }
}
