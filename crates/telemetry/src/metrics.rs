//! Metrics registry: counters, gauges, and log-bucketed histograms.
//!
//! The registry is a flat map from metric name (labels embedded in the
//! name, Prometheus-style: `griffin_sched_decisions_total{proc="gpu"}`)
//! to a counter, gauge, or histogram. Histograms bucket values on a
//! logarithmic grid — four sub-buckets per power of two, so quantile
//! estimates carry at most ~25 % relative error while the histogram
//! itself stays a fixed 257-slot array regardless of the value range.
//!
//! All values are plain integers/floats; durations are recorded as
//! nanoseconds of virtual time ([`VirtualNanos`]).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Mutex;

use griffin_gpu_sim::VirtualNanos;

use crate::json;

/// Buckets: one zero bucket plus 4 sub-buckets per power of two of u64.
const BUCKETS: usize = 1 + 64 * 4;

/// A log-bucketed histogram over `u64` samples (typically nanoseconds).
#[derive(Clone)]
pub struct Histogram {
    counts: Box<[u64; BUCKETS]>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: Box::new([0; BUCKETS]),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

/// Index of the bucket holding `v`: bucket 0 is exactly zero; above
/// that, each power of two splits into 4 sub-buckets keyed by the two
/// bits below the leading one.
fn bucket_index(v: u64) -> usize {
    if v == 0 {
        return 0;
    }
    let exp = 63 - v.leading_zeros() as usize;
    let sub = if exp >= 2 {
        ((v >> (exp - 2)) & 0b11) as usize
    } else {
        // exp 0 or 1: fewer than 4 distinct values, spread them so the
        // index stays monotone in v.
        ((v << (2 - exp)) & 0b11) as usize
    };
    1 + exp * 4 + sub
}

/// Largest value that falls into bucket `idx` (the quantile estimate
/// reported for samples in that bucket).
fn bucket_upper(idx: usize) -> u64 {
    if idx == 0 {
        return 0;
    }
    let i = idx - 1;
    let exp = i / 4;
    let sub = (i % 4) as u64;
    if exp >= 2 {
        let hi = (u128::from(4 + sub + 1) << (exp - 2)) - 1;
        u64::try_from(hi).unwrap_or(u64::MAX)
    } else {
        // Small buckets are exact: idx→value is the inverse of
        // `bucket_index` for v in {1, 2, 3}.
        ((4 + sub) >> (2 - exp)).max(1)
    }
}

impl Histogram {
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }

    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    pub fn max(&self) -> u64 {
        self.max
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimate the `q`-quantile (`0.0 ..= 1.0`). Returns the upper
    /// bound of the bucket holding the rank-`ceil(q·n)` sample, clamped
    /// to the observed max, so the estimate never exceeds any real
    /// sample by more than one bucket width (≤ ~25 % relative error).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(idx).min(self.max);
            }
        }
        self.max
    }
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

/// Thread-safe registry of named metrics.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

impl Registry {
    pub fn new() -> Self {
        Registry::default()
    }

    /// Add `v` to the counter `name`, creating it at zero if absent.
    pub fn counter_add(&self, name: &str, v: u64) {
        let mut inner = self.inner.lock().expect("metrics registry lock");
        *inner.counters.entry(name.to_owned()).or_insert(0) += v;
    }

    pub fn counter(&self, name: &str) -> u64 {
        let inner = self.inner.lock().expect("metrics registry lock");
        inner.counters.get(name).copied().unwrap_or(0)
    }

    /// Set the gauge `name` to `v`.
    pub fn gauge_set(&self, name: &str, v: f64) {
        let mut inner = self.inner.lock().expect("metrics registry lock");
        inner.gauges.insert(name.to_owned(), v);
    }

    pub fn gauge(&self, name: &str) -> Option<f64> {
        let inner = self.inner.lock().expect("metrics registry lock");
        inner.gauges.get(name).copied()
    }

    /// Record one sample into the histogram `name`.
    pub fn observe(&self, name: &str, v: u64) {
        let mut inner = self.inner.lock().expect("metrics registry lock");
        inner
            .histograms
            .entry(name.to_owned())
            .or_default()
            .record(v);
    }

    /// Record a virtual-time duration (nanoseconds) into `name`.
    pub fn observe_duration(&self, name: &str, d: VirtualNanos) {
        self.observe(name, d.as_nanos());
    }

    /// Snapshot of one histogram (None if never observed).
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        let inner = self.inner.lock().expect("metrics registry lock");
        inner.histograms.get(name).cloned()
    }

    /// Quantiles reported by both exporters.
    const QUANTILES: [(f64, &'static str); 4] = [
        (0.5, "0.5"),
        (0.95, "0.95"),
        (0.99, "0.99"),
        (0.999, "0.999"),
    ];

    /// Render the registry in the Prometheus text exposition format.
    /// Histograms are exposed as quantile summaries plus `_sum`/`_count`.
    pub fn to_prometheus(&self) -> String {
        let inner = self.inner.lock().expect("metrics registry lock");
        let mut out = String::new();
        for (name, v) in &inner.counters {
            let _ = writeln!(out, "# TYPE {} counter", base_name(name));
            let _ = writeln!(out, "{name} {v}");
        }
        for (name, v) in &inner.gauges {
            let _ = writeln!(out, "# TYPE {} gauge", base_name(name));
            let _ = writeln!(out, "{name} {v}");
        }
        for (name, h) in &inner.histograms {
            let _ = writeln!(out, "# TYPE {} summary", base_name(name));
            for (q, label) in Self::QUANTILES {
                let _ = writeln!(
                    out,
                    "{} {}",
                    with_label(name, "quantile", label),
                    h.quantile(q)
                );
            }
            let _ = writeln!(out, "{}_sum {}", name, h.sum());
            let _ = writeln!(out, "{}_count {}", name, h.count());
        }
        out
    }

    /// Render the registry as a JSON document:
    /// `{"counters": {...}, "gauges": {...}, "histograms": {...}}`.
    pub fn to_json(&self) -> String {
        let inner = self.inner.lock().expect("metrics registry lock");
        let mut counters = json::Object::new();
        for (name, v) in &inner.counters {
            counters.u64(name, *v);
        }
        let mut gauges = json::Object::new();
        for (name, v) in &inner.gauges {
            gauges.f64(name, *v);
        }
        let mut hists = json::Object::new();
        for (name, h) in &inner.histograms {
            let mut o = json::Object::new();
            o.u64("count", h.count())
                .u64("sum", h.sum())
                .u64("min", h.min())
                .u64("max", h.max())
                .f64("mean", h.mean())
                .u64("p50", h.quantile(0.5))
                .u64("p95", h.quantile(0.95))
                .u64("p99", h.quantile(0.99))
                .u64("p999", h.quantile(0.999));
            hists.raw(name, &o.finish());
        }
        let mut root = json::Object::new();
        root.raw("counters", &counters.finish())
            .raw("gauges", &gauges.finish())
            .raw("histograms", &hists.finish());
        root.finish()
    }
}

/// Strip a `{label="..."}` suffix for `# TYPE` lines.
fn base_name(name: &str) -> &str {
    name.split('{').next().unwrap_or(name)
}

/// Append a label to a metric name, merging with any existing label set.
fn with_label(name: &str, key: &str, value: &str) -> String {
    match name.strip_suffix('}') {
        Some(prefix) => format!("{prefix},{key}=\"{value}\"}}"),
        None => format!("{name}{{{key}=\"{value}\"}}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_upper_bound_holds() {
        let mut prev = 0;
        for v in 0..10_000u64 {
            let idx = bucket_index(v);
            assert!(idx >= prev, "bucket index must be monotone at {v}");
            prev = idx;
            assert!(
                bucket_upper(idx) >= v,
                "upper({idx}) = {} < {v}",
                bucket_upper(idx)
            );
        }
        for shift in 0..64 {
            let v = 1u64 << shift;
            assert!(bucket_upper(bucket_index(v)) >= v);
            assert!(bucket_upper(bucket_index(v.saturating_sub(1))) >= v - 1);
        }
        assert!(bucket_upper(bucket_index(u64::MAX)) == u64::MAX);
    }

    #[test]
    fn quantiles_within_bucket_error() {
        let mut h = Histogram::default();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        for (q, exact) in [(0.5, 5_000.0), (0.95, 9_500.0), (0.99, 9_900.0)] {
            let est = h.quantile(q) as f64;
            assert!(
                est >= exact * 0.99 && est <= exact * 1.26,
                "q={q}: estimate {est} vs exact {exact}"
            );
        }
        assert_eq!(h.count(), 10_000);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 10_000);
    }

    #[test]
    fn registry_counters_gauges() {
        let r = Registry::new();
        r.counter_add("hits", 2);
        r.counter_add("hits", 3);
        r.gauge_set("depth", 1.5);
        assert_eq!(r.counter("hits"), 5);
        assert_eq!(r.gauge("depth"), Some(1.5));
        assert_eq!(r.counter("misses"), 0);
    }

    #[test]
    fn exports_contain_everything() {
        let r = Registry::new();
        r.counter_add("griffin_queries_total{proc=\"gpu\"}", 7);
        r.gauge_set("griffin_queue_depth", 2.0);
        r.observe("griffin_step_ns", 1000);
        r.observe("griffin_step_ns", 2000);
        let prom = r.to_prometheus();
        assert!(prom.contains("griffin_queries_total{proc=\"gpu\"} 7"));
        assert!(prom.contains("# TYPE griffin_queries_total counter"));
        assert!(prom.contains("griffin_step_ns{quantile=\"0.5\"}"));
        assert!(prom.contains("griffin_step_ns_count 2"));
        let js = r.to_json();
        assert!(js.contains("\"counters\""));
        assert!(js.contains("\"griffin_step_ns\""));
        assert!(js.contains("\"count\":2"));
    }
}
