//! Metrics registry: counters, gauges, and log-bucketed histograms.
//!
//! The registry is a flat map from metric name (labels embedded in the
//! name, Prometheus-style: `griffin_sched_decisions_total{proc="gpu"}`)
//! to a counter, gauge, or histogram. Histograms bucket values on a
//! logarithmic grid — four sub-buckets per power of two, so quantile
//! estimates carry at most ~25 % relative error while the histogram
//! itself stays a fixed 257-slot array regardless of the value range.
//!
//! All values are plain integers/floats; durations are recorded as
//! nanoseconds of virtual time ([`VirtualNanos`]).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Mutex;

use griffin_gpu_sim::VirtualNanos;

use crate::json;

/// Buckets: one zero bucket plus 4 sub-buckets per power of two of u64.
const BUCKETS: usize = 1 + 64 * 4;

/// A log-bucketed histogram over `u64` samples (typically nanoseconds).
#[derive(Clone)]
pub struct Histogram {
    counts: Box<[u64; BUCKETS]>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: Box::new([0; BUCKETS]),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

/// Index of the bucket holding `v`: bucket 0 is exactly zero; above
/// that, each power of two splits into 4 sub-buckets keyed by the two
/// bits below the leading one.
fn bucket_index(v: u64) -> usize {
    if v == 0 {
        return 0;
    }
    let exp = 63 - v.leading_zeros() as usize;
    let sub = if exp >= 2 {
        ((v >> (exp - 2)) & 0b11) as usize
    } else {
        // exp 0 or 1: fewer than 4 distinct values, spread them so the
        // index stays monotone in v.
        ((v << (2 - exp)) & 0b11) as usize
    };
    1 + exp * 4 + sub
}

/// Largest value that falls into bucket `idx` (the quantile estimate
/// reported for samples in that bucket).
fn bucket_upper(idx: usize) -> u64 {
    if idx == 0 {
        return 0;
    }
    let i = idx - 1;
    let exp = i / 4;
    let sub = (i % 4) as u64;
    if exp >= 2 {
        let hi = (u128::from(4 + sub + 1) << (exp - 2)) - 1;
        u64::try_from(hi).unwrap_or(u64::MAX)
    } else {
        // Small buckets are exact: idx→value is the inverse of
        // `bucket_index` for v in {1, 2, 3}.
        ((4 + sub) >> (2 - exp)).max(1)
    }
}

impl Histogram {
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }

    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    pub fn max(&self) -> u64 {
        self.max
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimate the `q`-quantile (`0.0 ..= 1.0`). Returns the upper
    /// bound of the bucket holding the rank-`ceil(q·n)` sample, clamped
    /// to the observed max, so the estimate never exceeds any real
    /// sample by more than one bucket width (≤ ~25 % relative error).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(idx).min(self.max);
            }
        }
        self.max
    }
}

/// Default cap on distinct label sets (series) per metric base name.
/// Unbounded label values (e.g. a per-query label minted by a buggy
/// callsite) would otherwise grow the registry without limit; excess
/// series are dropped and counted in
/// `griffin_telemetry_dropped_series_total`.
const DEFAULT_SERIES_LIMIT: usize = 256;

/// Counter tracking series discarded by the cardinality guard.
pub const DROPPED_SERIES_COUNTER: &str = "griffin_telemetry_dropped_series_total";

struct Inner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
    series_limit: usize,
    dropped_series: u64,
}

impl Default for Inner {
    fn default() -> Self {
        Inner {
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
            series_limit: DEFAULT_SERIES_LIMIT,
            dropped_series: 0,
        }
    }
}

/// Does `map` accept a new series named `name`? Existing series always
/// update; a new label set is admitted only while the metric's base
/// name has fewer than `limit` series.
fn admit<V>(map: &BTreeMap<String, V>, name: &str, limit: usize) -> bool {
    if map.contains_key(name) {
        return true;
    }
    let base = base_name(name);
    map.range(base.to_owned()..)
        .take_while(|(k, _)| base_name(k) == base)
        .count()
        < limit
}

/// Thread-safe registry of named metrics.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

impl Registry {
    pub fn new() -> Self {
        Registry::default()
    }

    /// Lower (or raise) the per-metric series cap. Existing series are
    /// kept; only admission of *new* label sets is affected.
    pub fn set_series_limit(&self, limit: usize) {
        let mut inner = self.inner.lock().expect("metrics registry lock");
        inner.series_limit = limit.max(1);
    }

    /// Series discarded by the cardinality guard so far.
    pub fn dropped_series(&self) -> u64 {
        let inner = self.inner.lock().expect("metrics registry lock");
        inner.dropped_series
    }

    /// Add `v` to the counter `name`, creating it at zero if absent.
    pub fn counter_add(&self, name: &str, v: u64) {
        let mut inner = self.inner.lock().expect("metrics registry lock");
        if !admit(&inner.counters, name, inner.series_limit) {
            inner.dropped_series += 1;
            return;
        }
        *inner.counters.entry(name.to_owned()).or_insert(0) += v;
    }

    pub fn counter(&self, name: &str) -> u64 {
        let inner = self.inner.lock().expect("metrics registry lock");
        if name == DROPPED_SERIES_COUNTER {
            return inner.dropped_series;
        }
        inner.counters.get(name).copied().unwrap_or(0)
    }

    /// Set the gauge `name` to `v`.
    pub fn gauge_set(&self, name: &str, v: f64) {
        let mut inner = self.inner.lock().expect("metrics registry lock");
        if !admit(&inner.gauges, name, inner.series_limit) {
            inner.dropped_series += 1;
            return;
        }
        inner.gauges.insert(name.to_owned(), v);
    }

    pub fn gauge(&self, name: &str) -> Option<f64> {
        let inner = self.inner.lock().expect("metrics registry lock");
        inner.gauges.get(name).copied()
    }

    /// Record one sample into the histogram `name`.
    pub fn observe(&self, name: &str, v: u64) {
        let mut inner = self.inner.lock().expect("metrics registry lock");
        if !admit(&inner.histograms, name, inner.series_limit) {
            inner.dropped_series += 1;
            return;
        }
        inner
            .histograms
            .entry(name.to_owned())
            .or_default()
            .record(v);
    }

    /// Record a virtual-time duration (nanoseconds) into `name`.
    pub fn observe_duration(&self, name: &str, d: VirtualNanos) {
        self.observe(name, d.as_nanos());
    }

    /// Snapshot of one histogram (None if never observed).
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        let inner = self.inner.lock().expect("metrics registry lock");
        inner.histograms.get(name).cloned()
    }

    /// Quantiles reported by both exporters.
    const QUANTILES: [(f64, &'static str); 4] = [
        (0.5, "0.5"),
        (0.95, "0.95"),
        (0.99, "0.99"),
        (0.999, "0.999"),
    ];

    /// Render the registry in the Prometheus text exposition format.
    /// Histograms are exposed as quantile summaries plus `_sum`/`_count`;
    /// empty histograms are skipped entirely (a p99 of 0 over no samples
    /// is noise, not data). Metric and label names are sanitized to the
    /// Prometheus charset and label values are escaped, so a hostile or
    /// buggy label value cannot corrupt the exposition.
    pub fn to_prometheus(&self) -> String {
        let inner = self.inner.lock().expect("metrics registry lock");
        let mut out = String::new();
        for (name, v) in &inner.counters {
            let name = sanitize_metric(name);
            let _ = writeln!(out, "# TYPE {} counter", base_name(&name));
            let _ = writeln!(out, "{name} {v}");
        }
        if inner.dropped_series > 0 {
            let _ = writeln!(out, "# TYPE {DROPPED_SERIES_COUNTER} counter");
            let _ = writeln!(out, "{DROPPED_SERIES_COUNTER} {}", inner.dropped_series);
        }
        for (name, v) in &inner.gauges {
            let name = sanitize_metric(name);
            let _ = writeln!(out, "# TYPE {} gauge", base_name(&name));
            let _ = writeln!(out, "{name} {v}");
        }
        for (name, h) in &inner.histograms {
            if h.count() == 0 {
                continue;
            }
            let name = sanitize_metric(name);
            let _ = writeln!(out, "# TYPE {} summary", base_name(&name));
            for (q, label) in Self::QUANTILES {
                let _ = writeln!(
                    out,
                    "{} {}",
                    with_label(&name, "quantile", label),
                    h.quantile(q)
                );
            }
            let _ = writeln!(out, "{} {}", suffixed(&name, "_sum"), h.sum());
            let _ = writeln!(out, "{} {}", suffixed(&name, "_count"), h.count());
        }
        out
    }

    /// Render the registry as a JSON document:
    /// `{"counters": {...}, "gauges": {...}, "histograms": {...}}`.
    /// Histograms with no samples are skipped.
    pub fn to_json(&self) -> String {
        let inner = self.inner.lock().expect("metrics registry lock");
        let mut counters = json::Object::new();
        for (name, v) in &inner.counters {
            counters.u64(name, *v);
        }
        if inner.dropped_series > 0 {
            counters.u64(DROPPED_SERIES_COUNTER, inner.dropped_series);
        }
        let mut gauges = json::Object::new();
        for (name, v) in &inner.gauges {
            gauges.f64(name, *v);
        }
        let mut hists = json::Object::new();
        for (name, h) in &inner.histograms {
            if h.count() == 0 {
                continue;
            }
            let mut o = json::Object::new();
            o.u64("count", h.count())
                .u64("sum", h.sum())
                .u64("min", h.min())
                .u64("max", h.max())
                .f64("mean", h.mean())
                .u64("p50", h.quantile(0.5))
                .u64("p95", h.quantile(0.95))
                .u64("p99", h.quantile(0.99))
                .u64("p999", h.quantile(0.999));
            hists.raw(name, &o.finish());
        }
        let mut root = json::Object::new();
        root.raw("counters", &counters.finish())
            .raw("gauges", &gauges.finish())
            .raw("histograms", &hists.finish());
        root.finish()
    }
}

/// Strip a `{label="..."}` suffix for `# TYPE` lines.
fn base_name(name: &str) -> &str {
    name.split('{').next().unwrap_or(name)
}

/// Append `suffix` to a metric's base name, keeping its label set
/// (`x{a="b"}` + `_sum` → `x_sum{a="b"}`).
fn suffixed(name: &str, suffix: &str) -> String {
    match name.split_once('{') {
        Some((base, rest)) => format!("{base}{suffix}{{{rest}"),
        None => format!("{name}{suffix}"),
    }
}

/// Append a label to a metric name, merging with any existing label set.
fn with_label(name: &str, key: &str, value: &str) -> String {
    match name.strip_suffix('}') {
        Some(prefix) => format!("{prefix},{key}=\"{value}\"}}"),
        None => format!("{name}{{{key}=\"{value}\"}}"),
    }
}

/// Clamp an identifier to the Prometheus charset `[a-zA-Z0-9_:]`
/// (labels additionally forbid `:` — pass `allow_colon: false`).
/// Invalid characters become `_`; a leading digit gets a `_` prefix.
fn sanitize_ident(s: &str, allow_colon: bool) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        let ok = c.is_ascii_alphanumeric() || c == '_' || (allow_colon && c == ':');
        out.push(if ok { c } else { '_' });
    }
    if out.is_empty() || out.as_bytes()[0].is_ascii_digit() {
        out.insert(0, '_');
    }
    out
}

/// Escape a label value for the exposition format (`\\`, `\"`, `\n`).
fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Normalize one `name{k="v",…}` series for the exposition format:
/// sanitize the base name and label keys, re-quote and escape label
/// values. A name with no (or malformed) label section is sanitized
/// whole.
fn sanitize_metric(name: &str) -> String {
    let Some((base, rest)) = name.split_once('{') else {
        return sanitize_ident(name, true);
    };
    let Some(labels) = rest.strip_suffix('}') else {
        return sanitize_ident(name, true);
    };
    let mut out = sanitize_ident(base, true);
    out.push('{');
    let mut any = false;
    // Split on top-level commas (quotes may hold commas).
    let mut depth_quote = false;
    let mut start = 0usize;
    let bytes = labels.as_bytes();
    let mut parts: Vec<&str> = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if depth_quote => i += 1,
            b'"' => depth_quote = !depth_quote,
            b',' if !depth_quote => {
                parts.push(&labels[start..i]);
                start = i + 1;
            }
            _ => {}
        }
        i += 1;
    }
    parts.push(&labels[start..]);
    for part in parts {
        let (k, v) = part.split_once('=').unwrap_or((part, ""));
        let v = v.trim_matches('"');
        if any {
            out.push(',');
        }
        any = true;
        out.push_str(&sanitize_ident(k, false));
        out.push_str("=\"");
        out.push_str(&escape_label_value(v));
        out.push('"');
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_upper_bound_holds() {
        let mut prev = 0;
        for v in 0..10_000u64 {
            let idx = bucket_index(v);
            assert!(idx >= prev, "bucket index must be monotone at {v}");
            prev = idx;
            assert!(
                bucket_upper(idx) >= v,
                "upper({idx}) = {} < {v}",
                bucket_upper(idx)
            );
        }
        for shift in 0..64 {
            let v = 1u64 << shift;
            assert!(bucket_upper(bucket_index(v)) >= v);
            assert!(bucket_upper(bucket_index(v.saturating_sub(1))) >= v - 1);
        }
        assert!(bucket_upper(bucket_index(u64::MAX)) == u64::MAX);
    }

    #[test]
    fn quantiles_within_bucket_error() {
        let mut h = Histogram::default();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        for (q, exact) in [(0.5, 5_000.0), (0.95, 9_500.0), (0.99, 9_900.0)] {
            let est = h.quantile(q) as f64;
            assert!(
                est >= exact * 0.99 && est <= exact * 1.26,
                "q={q}: estimate {est} vs exact {exact}"
            );
        }
        assert_eq!(h.count(), 10_000);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 10_000);
    }

    #[test]
    fn registry_counters_gauges() {
        let r = Registry::new();
        r.counter_add("hits", 2);
        r.counter_add("hits", 3);
        r.gauge_set("depth", 1.5);
        assert_eq!(r.counter("hits"), 5);
        assert_eq!(r.gauge("depth"), Some(1.5));
        assert_eq!(r.counter("misses"), 0);
    }

    #[test]
    fn empty_histogram_quantile_is_zero_and_export_skips_it() {
        let h = Histogram::default();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.quantile(0.999), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.mean(), 0.0);
        // A histogram entry can exist with zero samples only via clone
        // manipulation; simulate by registering and checking absence of
        // a zero-count export path: a registry that never observed a
        // sample emits no summary lines at all.
        let r = Registry::new();
        r.counter_add("c", 1);
        let prom = r.to_prometheus();
        assert!(!prom.contains("summary"));
        assert!(!r.to_json().contains("\"p50\""));
    }

    #[test]
    fn prometheus_output_is_sanitized() {
        let r = Registry::new();
        r.counter_add("bad-name{kernel=\"a\"b\nc\"}", 3);
        r.gauge_set("1digit", 1.0);
        let prom = r.to_prometheus();
        assert!(prom.contains("bad_name{kernel=\"a\\\"b\\nc\"} 3"));
        assert!(prom.contains("# TYPE bad_name counter"));
        assert!(prom.contains("_1digit 1"));
        r.observe("griffin_x_ns{op=\"a,b\"}", 10);
        let prom = r.to_prometheus();
        assert!(prom.contains("griffin_x_ns{op=\"a,b\",quantile=\"0.5\"} 10"));
        assert!(prom.contains("griffin_x_ns_sum{op=\"a,b\"} 10"));
        assert!(prom.contains("griffin_x_ns_count{op=\"a,b\"} 1"));
    }

    #[test]
    fn cardinality_guard_drops_excess_series() {
        let r = Registry::new();
        r.set_series_limit(4);
        for i in 0..10 {
            r.counter_add(&format!("griffin_hot{{q=\"{i}\"}}"), 1);
        }
        // Updates to admitted series still land; new ones are dropped.
        r.counter_add("griffin_hot{q=\"0\"}", 1);
        assert_eq!(r.counter("griffin_hot{q=\"0\"}"), 2);
        assert_eq!(r.counter("griffin_hot{q=\"9\"}"), 0);
        assert_eq!(r.dropped_series(), 6);
        assert_eq!(r.counter(DROPPED_SERIES_COUNTER), 6);
        let prom = r.to_prometheus();
        assert!(prom.contains("griffin_telemetry_dropped_series_total 6"));
        assert!(r
            .to_json()
            .contains("\"griffin_telemetry_dropped_series_total\":6"));
        // Other metrics are unaffected by the hot metric's exhaustion.
        r.gauge_set("griffin_ok", 5.0);
        assert_eq!(r.gauge("griffin_ok"), Some(5.0));
    }

    #[test]
    fn exports_contain_everything() {
        let r = Registry::new();
        r.counter_add("griffin_queries_total{proc=\"gpu\"}", 7);
        r.gauge_set("griffin_queue_depth", 2.0);
        r.observe("griffin_step_ns", 1000);
        r.observe("griffin_step_ns", 2000);
        let prom = r.to_prometheus();
        assert!(prom.contains("griffin_queries_total{proc=\"gpu\"} 7"));
        assert!(prom.contains("# TYPE griffin_queries_total counter"));
        assert!(prom.contains("griffin_step_ns{quantile=\"0.5\"}"));
        assert!(prom.contains("griffin_step_ns_count 2"));
        let js = r.to_json();
        assert!(js.contains("\"counters\""));
        assert!(js.contains("\"griffin_step_ns\""));
        assert!(js.contains("\"count\":2"));
    }
}
