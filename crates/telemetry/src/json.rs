//! A tiny hand-rolled JSON writer.
//!
//! The build environment has no crates.io access, so instead of `serde`
//! the telemetry exporters assemble JSON through this module. It only
//! *writes* JSON (no parsing) and covers exactly what the exporters
//! need: objects, arrays, strings with escaping, integers, and finite
//! floats (non-finite values are emitted as `null`, as JSON requires).

use std::fmt::Write as _;

/// Escape and quote a string per RFC 8259.
pub fn string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Render a float, mapping NaN/±inf to `null`.
pub fn float(v: f64) -> String {
    if v.is_finite() {
        // `{:?}` keeps enough digits to round-trip.
        format!("{v:?}")
    } else {
        "null".to_owned()
    }
}

/// Incremental writer for a JSON object.
#[derive(Default)]
pub struct Object {
    buf: String,
    any: bool,
}

impl Object {
    pub fn new() -> Self {
        Object {
            buf: String::from("{"),
            any: false,
        }
    }

    /// Add a key with an already-rendered JSON value.
    pub fn raw(&mut self, key: &str, value: &str) -> &mut Self {
        if self.any {
            self.buf.push(',');
        }
        self.any = true;
        self.buf.push_str(&string(key));
        self.buf.push(':');
        self.buf.push_str(value);
        self
    }

    pub fn str(&mut self, key: &str, value: &str) -> &mut Self {
        let v = string(value);
        self.raw(key, &v)
    }

    pub fn u64(&mut self, key: &str, value: u64) -> &mut Self {
        self.raw(key, &value.to_string())
    }

    pub fn usize(&mut self, key: &str, value: usize) -> &mut Self {
        self.raw(key, &value.to_string())
    }

    pub fn f64(&mut self, key: &str, value: f64) -> &mut Self {
        let v = float(value);
        self.raw(key, &v)
    }

    pub fn bool(&mut self, key: &str, value: bool) -> &mut Self {
        self.raw(key, if value { "true" } else { "false" })
    }

    pub fn finish(self) -> String {
        let mut buf = self.buf;
        buf.push('}');
        buf
    }
}

/// Incremental writer for a JSON array.
#[derive(Default)]
pub struct Array {
    buf: String,
    any: bool,
}

impl Array {
    pub fn new() -> Self {
        Array {
            buf: String::from("["),
            any: false,
        }
    }

    pub fn raw(&mut self, value: &str) -> &mut Self {
        if self.any {
            self.buf.push(',');
        }
        self.any = true;
        self.buf.push_str(value);
        self
    }

    pub fn finish(self) -> String {
        let mut buf = self.buf;
        buf.push(']');
        buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_strings() {
        assert_eq!(string("a\"b\\c\n"), r#""a\"b\\c\n""#);
        assert_eq!(string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn floats_round_trip_and_nan_is_null() {
        assert_eq!(float(1.5), "1.5");
        assert_eq!(float(f64::NAN), "null");
        assert_eq!(float(f64::INFINITY), "null");
    }

    #[test]
    fn object_and_array_compose() {
        let mut inner = Object::new();
        inner.u64("n", 3).str("s", "x");
        let inner = inner.finish();
        let mut arr = Array::new();
        arr.raw(&inner).raw("true");
        let mut outer = Object::new();
        outer.raw("items", &arr.finish()).bool("ok", false);
        assert_eq!(
            outer.finish(),
            r#"{"items":[{"n":3,"s":"x"},true],"ok":false}"#
        );
    }
}
