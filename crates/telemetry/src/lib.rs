//! # griffin-telemetry — unified observability for the Griffin stack
//!
//! One crate collects everything the reproduction can observe about
//! itself, in three layers:
//!
//! * [`metrics`] — a zero-dependency metrics registry: counters, gauges,
//!   and log-bucketed histograms (p50/p95/p99/p99.9 over virtual
//!   nanoseconds), exported as Prometheus text or JSON;
//! * [`trace`] — a structured per-query trace: every engine step, every
//!   scheduler decision with its inputs, every GPU kernel launch and
//!   PCIe transfer, stamped with device virtual time;
//! * [`timeline`] — per-stage spans from the serving simulation, with
//!   per-resource utilization, queue-depth curves, and Chrome
//!   trace-event export (loadable in Perfetto);
//! * [`profile`] — a hierarchical span profiler that folds one query's
//!   trace into an exact attribution tree (query → phase → processor →
//!   kernel) whose self-times sum to the query's total latency, with
//!   folded-stack/JSON export and a dominant-cause verdict.
//!
//! The entry point is the [`Telemetry`] handle. It is a cheap-clone
//! `Option<Arc<Recorder>>`: [`Telemetry::disabled`] (the default) makes
//! every recording call a single branch, so instrumented code pays
//! nothing when observability is off — and because recording is
//! strictly passive, enabling it never changes query results or virtual
//! timings (the engine test suite proves this).

pub mod json;
pub mod metrics;
pub mod profile;
pub mod timeline;
pub mod trace;

use std::sync::Arc;

use griffin_gpu_sim::observe::{DeviceEvent, DeviceObserver};
use griffin_gpu_sim::{StreamKind, VirtualNanos};

pub use metrics::{Histogram, Registry};
pub use profile::{Cause, ProfileNode, QueryProfile, Verdict};
pub use timeline::{LaneUtilization, SpanEvent, Timeline};
pub use trace::{Recorder, TraceEvent};

/// Opt-in handle to a telemetry session.
///
/// Cloning shares the underlying [`Recorder`]; the disabled handle
/// carries no recorder at all.
#[derive(Clone, Default)]
pub struct Telemetry {
    recorder: Option<Arc<Recorder>>,
}

impl Telemetry {
    /// The no-op handle: all recording calls return immediately.
    pub fn disabled() -> Telemetry {
        Telemetry::default()
    }

    /// A live handle with a fresh recorder.
    pub fn enabled() -> Telemetry {
        Telemetry {
            recorder: Some(Arc::new(Recorder::new())),
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.recorder.is_some()
    }

    /// The shared recorder, if enabled.
    pub fn recorder(&self) -> Option<&Arc<Recorder>> {
        self.recorder.as_ref()
    }

    /// Record a trace event. The closure only runs when telemetry is
    /// enabled, so argument construction costs nothing when disabled.
    pub fn record(&self, make: impl FnOnce(&Recorder) -> TraceEvent) {
        if let Some(r) = &self.recorder {
            r.push(make(r));
        }
    }

    /// Run `f` against the recorder when enabled (registry updates,
    /// query bookkeeping).
    pub fn with(&self, f: impl FnOnce(&Recorder)) {
        if let Some(r) = &self.recorder {
            f(r);
        }
    }

    pub fn counter_add(&self, name: &str, v: u64) {
        if let Some(r) = &self.recorder {
            r.registry.counter_add(name, v);
        }
    }

    pub fn gauge_set(&self, name: &str, v: f64) {
        if let Some(r) = &self.recorder {
            r.registry.gauge_set(name, v);
        }
    }

    pub fn observe_duration(&self, name: &str, d: VirtualNanos) {
        if let Some(r) = &self.recorder {
            r.registry.observe_duration(name, d);
        }
    }

    /// Metrics registry as JSON (None when disabled).
    pub fn metrics_json(&self) -> Option<String> {
        self.recorder.as_ref().map(|r| r.registry.to_json())
    }

    /// Metrics registry in Prometheus text format (None when disabled).
    pub fn metrics_prometheus(&self) -> Option<String> {
        self.recorder.as_ref().map(|r| r.registry.to_prometheus())
    }

    /// The structured trace as a JSON array (None when disabled).
    pub fn trace_json(&self) -> Option<String> {
        self.recorder.as_ref().map(|r| r.events_to_json())
    }

    /// Latency-attribution trees ([`QueryProfile`]) for every query
    /// that completed in the trace, in query-id order (empty when
    /// disabled).
    pub fn query_profiles(&self) -> Vec<QueryProfile> {
        self.recorder
            .as_ref()
            .map(|r| QueryProfile::all_from_trace(&r.events()))
            .unwrap_or_default()
    }

    /// Rebuilds the device's two engine timelines from the recorded
    /// kernel-launch and PCIe-transfer events: one `"gpu-compute"` lane
    /// for kernels, one `"gpu-copy"` lane for transfers (the lane names
    /// are [`StreamKind::as_str`], tying the export to the simulator's
    /// stream model). Copy spans further split into one sub-lane per DMA
    /// direction — lane 0 for host-to-device, lane 1 for device-to-host —
    /// matching the per-direction copy engines of the modeled device.
    /// The CPU lanes of co-executed split intersections appear as a
    /// third `"cpu-lane"` resource (recorded by the engine — the device
    /// observer cannot see host execution), so a split renders as host
    /// and device work running side by side.
    /// Under overlap-enabled execution the copy lane's
    /// spans visibly run underneath the compute lane's; feed the result
    /// to [`Timeline::to_chrome_trace`] to inspect the pipeline in
    /// Perfetto. Spans carry the owning query as their job id and an
    /// issue-order stage index. `None` when telemetry is disabled.
    pub fn device_timeline(&self) -> Option<Timeline> {
        let recorder = self.recorder.as_ref()?;
        let mut timeline = Timeline::default();
        let mut stage_counters: Vec<(u64, usize)> = Vec::new();
        let mut next_stage = |query: u64| -> usize {
            match stage_counters.iter_mut().find(|(q, _)| *q == query) {
                Some((_, n)) => {
                    *n += 1;
                    *n - 1
                }
                None => {
                    stage_counters.push((query, 1));
                    0
                }
            }
        };
        for event in recorder.events() {
            let (query, resource, lane, start, duration) = match event {
                TraceEvent::KernelLaunch {
                    query,
                    start,
                    duration,
                    ..
                } => (query, StreamKind::Compute.as_str(), 0, start, duration),
                TraceEvent::PcieTransfer {
                    query,
                    direction,
                    start,
                    duration,
                    ..
                } => {
                    let lane = usize::from(direction == "dtoh");
                    (query, StreamKind::Copy.as_str(), lane, start, duration)
                }
                // The host lane of a co-executed split: rendered as its
                // own resource so Perfetto shows CPU work running under
                // the device's compute/copy lanes.
                TraceEvent::CpuLane {
                    query,
                    start,
                    duration,
                    ..
                } => (query, "cpu-lane", 0, start, duration),
                _ => continue,
            };
            timeline.push(SpanEvent {
                resource,
                lane,
                job: query as usize,
                stage: next_stage(query),
                ready: start,
                start,
                end: start + duration,
            });
        }
        Some(timeline)
    }

    /// Build the device-side observer bridging
    /// [`griffin_gpu_sim::Gpu::set_observer`] into this telemetry
    /// session: kernel launches and PCIe transfers become trace events
    /// tagged with the current query, and feed per-kernel aggregate
    /// metrics (launch counts, duration histograms, warp totals,
    /// divergence and coalescing inputs, global-memory transactions).
    ///
    /// `warp_size` is the device's warp width (for the coalescing
    /// factor). Returns `None` when telemetry is disabled — pass the
    /// result straight to `set_observer`.
    pub fn device_observer(&self, warp_size: u32) -> Option<Arc<DeviceObserver>> {
        let recorder = self.recorder.clone()?;
        Some(Arc::new(move |event: &DeviceEvent<'_>| match *event {
            DeviceEvent::KernelLaunch {
                name,
                start,
                report,
            } => {
                let reg = &recorder.registry;
                let c = &report.counters;
                reg.counter_add(
                    &format!("griffin_gpu_kernel_launches_total{{kernel=\"{name}\"}}"),
                    1,
                );
                reg.observe_duration(
                    &format!("griffin_gpu_kernel_ns{{kernel=\"{name}\"}}"),
                    report.time,
                );
                reg.counter_add(
                    &format!("griffin_gpu_kernel_warps_total{{kernel=\"{name}\"}}"),
                    c.total_warps,
                );
                reg.counter_add(
                    &format!("griffin_gpu_gmem_transactions_total{{kernel=\"{name}\"}}"),
                    c.gmem_transactions,
                );
                reg.counter_add(
                    &format!("griffin_gpu_gmem_accesses_total{{kernel=\"{name}\"}}"),
                    c.gmem_accesses,
                );
                reg.counter_add(
                    &format!("griffin_gpu_branch_sites_total{{kernel=\"{name}\"}}"),
                    c.branch_sites,
                );
                reg.counter_add(
                    &format!("griffin_gpu_divergent_sites_total{{kernel=\"{name}\"}}"),
                    c.divergent_sites,
                );
                recorder.push(TraceEvent::KernelLaunch {
                    query: recorder.current_query(),
                    name,
                    start,
                    duration: report.time,
                    total_warps: c.total_warps,
                    divergence_rate: c.divergence_rate(),
                    coalescing_factor: c.coalescing_factor(warp_size),
                    gmem_transactions: c.gmem_transactions,
                });
            }
            DeviceEvent::Transfer {
                direction,
                bytes,
                start,
                duration,
            } => {
                let dir = direction.as_str();
                let reg = &recorder.registry;
                reg.counter_add(&format!("griffin_pcie_transfers_total{{dir=\"{dir}\"}}"), 1);
                reg.counter_add(&format!("griffin_pcie_bytes_total{{dir=\"{dir}\"}}"), bytes);
                reg.observe_duration(
                    &format!("griffin_pcie_transfer_ns{{dir=\"{dir}\"}}"),
                    duration,
                );
                recorder.push(TraceEvent::PcieTransfer {
                    query: recorder.current_query(),
                    direction: dir,
                    bytes,
                    start,
                    duration,
                });
            }
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        t.counter_add("x", 1);
        t.observe_duration("y", VirtualNanos::from_nanos(5));
        let mut ran = false;
        t.record(|_| {
            ran = true;
            TraceEvent::QueryStart { query: 0, terms: 0 }
        });
        assert!(!ran, "record closure must not run when disabled");
        assert!(t.metrics_json().is_none());
        assert!(t.trace_json().is_none());
        assert!(t.device_observer(32).is_none());
    }

    #[test]
    fn device_timeline_splits_streams_into_lanes() {
        let t = Telemetry::enabled();
        assert!(Telemetry::disabled().device_timeline().is_none());
        let ns = VirtualNanos::from_nanos;
        t.record(|_| TraceEvent::PcieTransfer {
            query: 1,
            direction: "htod",
            bytes: 4096,
            start: ns(0),
            duration: ns(500),
        });
        t.record(|_| TraceEvent::KernelLaunch {
            query: 1,
            name: "k",
            start: ns(100),
            duration: ns(300),
            total_warps: 1,
            divergence_rate: 0.0,
            coalescing_factor: 1.0,
            gmem_transactions: 0,
        });
        let tl = t.device_timeline().unwrap();
        assert_eq!(tl.spans.len(), 2);
        assert_eq!(tl.spans[0].resource, "gpu-copy");
        assert_eq!(tl.spans[1].resource, "gpu-compute");
        // Copy span [0,500) overlaps compute span [100,400): both lanes
        // appear independently in the export.
        assert_eq!(tl.spans[0].end, ns(500));
        assert_eq!(tl.spans[1].start, ns(100));
        assert_eq!(tl.spans[0].stage, 0);
        assert_eq!(tl.spans[1].stage, 1);
        let js = tl.to_chrome_trace();
        assert!(js.contains("\"name\":\"gpu-compute0\""));
        assert!(js.contains("\"name\":\"gpu-copy0\""));
    }

    #[test]
    fn enabled_handle_records_and_shares() {
        let t = Telemetry::enabled();
        let t2 = t.clone();
        t.counter_add("hits", 1);
        t2.counter_add("hits", 2);
        let r = t.recorder().unwrap();
        assert_eq!(r.registry.counter("hits"), 3);
        t.record(|r| TraceEvent::QueryStart {
            query: r.begin_query(),
            terms: 2,
        });
        assert_eq!(r.event_count(), 1);
        assert!(t.metrics_json().unwrap().contains("\"hits\":3"));
    }
}
