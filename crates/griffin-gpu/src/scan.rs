//! Device-wide exclusive prefix sum.
//!
//! The classic multi-kernel scan: each block scans a tile in shared memory
//! (Hillis–Steele, ping-pong buffers, one barrier per step), block sums are
//! scanned recursively, then a uniform-add kernel folds the scanned sums
//! back in. Para-EF's "synchronization point" (paper Algorithm 1, line 3)
//! is exactly this scan.

use griffin_gpu_sim::{DeviceBuffer, DeviceError, Gpu, Kernel, LaunchConfig, ThreadCtx};

/// Tile width == block_dim; one element per thread.
const BLOCK_DIM: u32 = 256;

/// Block-local exclusive scan of a tile, emitting per-block totals.
struct TileScanKernel {
    src: DeviceBuffer<u32>,
    dst: DeviceBuffer<u32>,
    block_sums: DeviceBuffer<u32>,
    n: usize,
}

#[derive(Default)]
struct TileState {
    value: u32,
}

impl Kernel for TileScanKernel {
    fn name(&self) -> &'static str {
        "scan.tile_scan"
    }

    type State = TileState;

    fn phases(&self) -> usize {
        // load, log2(BLOCK_DIM) scan steps, write-out
        2 + BLOCK_DIM.ilog2() as usize
    }

    fn shared_mem_words(&self, block_dim: u32) -> usize {
        2 * block_dim as usize // ping-pong buffers
    }

    fn run_phase(&self, phase: usize, t: &mut ThreadCtx<'_>, s: &mut TileState) {
        let tid = t.thread_idx as usize;
        let gid = t.global_thread_idx();
        let bd = t.block_dim as usize;
        let steps = BLOCK_DIM.ilog2() as usize;

        if phase == 0 {
            // Load one element (0 beyond the end) into ping buffer.
            let v = if t.branch(gid < self.n) {
                t.ld(&self.src, gid)
            } else {
                0
            };
            s.value = v;
            t.st_shared(tid, v);
            return;
        }
        if phase <= steps {
            // Hillis–Steele inclusive step: read from previous buffer,
            // write to the other.
            let step = phase - 1;
            let offset = 1usize << step;
            let from = (step % 2) * bd;
            let to = ((step + 1) % 2) * bd;
            let mut v = t.ld_shared(from + tid);
            if t.branch(tid >= offset) {
                v = v.wrapping_add(t.ld_shared(from + tid - offset));
                t.alu(1);
            }
            t.st_shared(to + tid, v);
            return;
        }
        // Write-out phase: convert inclusive to exclusive.
        let from = (steps % 2) * bd;
        let inclusive = t.ld_shared(from + tid);
        let exclusive = inclusive.wrapping_sub(s.value);
        t.alu(1);
        if t.branch(gid < self.n) {
            t.st(&self.dst, gid, exclusive);
        }
        if t.branch(tid == bd - 1) {
            t.st(&self.block_sums, t.block_idx as usize, inclusive);
        }
    }
}

/// Adds the scanned block sums back into each tile.
struct UniformAddKernel {
    dst: DeviceBuffer<u32>,
    scanned_sums: DeviceBuffer<u32>,
    n: usize,
}

impl Kernel for UniformAddKernel {
    fn name(&self) -> &'static str {
        "scan.uniform_add"
    }

    type State = ();

    fn run_phase(&self, _phase: usize, t: &mut ThreadCtx<'_>, _s: &mut ()) {
        let gid = t.global_thread_idx();
        if t.branch(gid < self.n) {
            let add = t.ld(&self.scanned_sums, t.block_idx as usize);
            let v = t.ld(&self.dst, gid);
            t.alu(1);
            t.st(&self.dst, gid, v.wrapping_add(add));
        }
    }
}

/// Exclusive scan of `src[..n]` into a fresh buffer. Also returns the total
/// sum (read back with a 4-byte transfer, as a real implementation must to
/// size downstream allocations).
pub fn exclusive_scan(
    gpu: &Gpu,
    src: &DeviceBuffer<u32>,
    n: usize,
) -> Result<(DeviceBuffer<u32>, u32), DeviceError> {
    let dst = gpu.alloc::<u32>(n.max(1))?;
    if n == 0 {
        return Ok((dst, 0));
    }
    let inner = || -> Result<u32, DeviceError> {
        let num_blocks = n.div_ceil(BLOCK_DIM as usize);
        let block_sums = gpu.alloc::<u32>(num_blocks)?;
        let step = || -> Result<u32, DeviceError> {
            gpu.launch(
                &TileScanKernel {
                    src: src.clone(),
                    dst: dst.clone(),
                    block_sums: block_sums.clone(),
                    n,
                },
                LaunchConfig::new(num_blocks as u32, BLOCK_DIM),
            )?;
            if num_blocks == 1 {
                Ok(gpu.dtoh_prefix(&block_sums, 1)?[0])
            } else {
                // Recursively scan the block sums, then fold them back in.
                let (scanned, total) = exclusive_scan(gpu, &block_sums, num_blocks)?;
                let folded = gpu.launch(
                    &UniformAddKernel {
                        dst: dst.clone(),
                        scanned_sums: scanned.clone(),
                        n,
                    },
                    LaunchConfig::new(num_blocks as u32, BLOCK_DIM),
                );
                gpu.free(scanned);
                folded?;
                Ok(total)
            }
        };
        let total = step();
        gpu.free(block_sums);
        total
    };
    match inner() {
        Ok(total) => Ok((dst, total)),
        Err(e) => {
            gpu.free(dst);
            Err(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use griffin_gpu_sim::DeviceConfig;

    fn check_scan(input: Vec<u32>) {
        let gpu = Gpu::new(DeviceConfig::test_tiny());
        let src = gpu.htod(&input).unwrap();
        let (dst, total) = exclusive_scan(&gpu, &src, input.len()).unwrap();
        let got = gpu.dtoh(&dst).unwrap();
        let mut acc = 0u32;
        for (i, &v) in input.iter().enumerate() {
            assert_eq!(got[i], acc, "position {i}");
            acc = acc.wrapping_add(v);
        }
        assert_eq!(total, acc, "total");
    }

    #[test]
    fn single_tile() {
        check_scan((1..=100).collect());
    }

    #[test]
    fn exactly_one_block() {
        check_scan(vec![3; 256]);
    }

    #[test]
    fn multi_block() {
        check_scan((0..5000).map(|i| i % 7).collect());
    }

    #[test]
    fn multi_level_recursion() {
        // > 256 * 256 elements forces two recursion levels.
        check_scan((0..70_000).map(|i| (i % 3) as u32).collect());
    }

    #[test]
    fn empty_and_single() {
        check_scan(vec![]);
        check_scan(vec![42]);
    }

    #[test]
    fn scan_charges_time() {
        let gpu = Gpu::new(DeviceConfig::test_tiny());
        let src = gpu.htod(&vec![1u32; 10_000]).unwrap();
        let t0 = gpu.now();
        let _ = exclusive_scan(&gpu, &src, 10_000);
        assert!(gpu.now() > t0);
    }
}
