//! GPU LSD radix sort — the brute-force ranking baseline of the paper's
//! Fig. 7 study ("sorts all values in the list, and we pick the first K").
//!
//! Classic four-pass (8 bits per digit) least-significant-digit sort with
//! key/payload pairs:
//! per-block shared-memory histograms → device-wide scan of the
//! digit-major histogram → stable per-block scatter. Float scores are
//! pre-mapped to order-preserving u32 keys.

use griffin_gpu_sim::{DeviceBuffer, DeviceError, Gpu, Kernel, LaunchConfig, ThreadCtx};

use crate::scan::exclusive_scan;

const BLOCK_DIM: u32 = 256;
const RADIX: usize = 256;

/// Order-preserving map from f32 to u32 (IEEE-754 total order).
#[inline]
pub fn float_to_sortable(bits: u32) -> u32 {
    if bits & 0x8000_0000 != 0 {
        !bits
    } else {
        bits ^ 0x8000_0000
    }
}

/// Inverse of [`float_to_sortable`].
#[inline]
pub fn sortable_to_float(key: u32) -> u32 {
    if key & 0x8000_0000 != 0 {
        key ^ 0x8000_0000
    } else {
        !key
    }
}

/// Maps raw f32 bit patterns to sortable keys and copies the payloads
/// (the sort must not mutate the caller's buffers).
struct PrepKernel {
    scores: DeviceBuffer<f32>,
    docids: DeviceBuffer<u32>,
    keys: DeviceBuffer<u32>,
    vals: DeviceBuffer<u32>,
    n: usize,
}

impl Kernel for PrepKernel {
    fn name(&self) -> &'static str {
        "radix_sort.prep"
    }

    type State = ();
    fn run_phase(&self, _p: usize, t: &mut ThreadCtx<'_>, _s: &mut ()) {
        let i = t.global_thread_idx();
        if t.branch(i < self.n) {
            let bits = t.ld(&self.scores.cast::<u32>(), i);
            let d = t.ld(&self.docids, i);
            t.alu(2);
            // Complemented key: ascending sort ⇒ descending score, so the
            // top k land in the prefix and only k pairs cross PCIe back.
            t.st(&self.keys, i, !float_to_sortable(bits));
            t.st(&self.vals, i, d);
        }
    }
}

/// Per-block digit histogram, written digit-major
/// (`hist[digit * num_blocks + block]`) so one scan yields scatter bases.
/// Three phases: zero the shared counters, accumulate, emit.
struct Hist3Kernel {
    keys: DeviceBuffer<u32>,
    hist: DeviceBuffer<u32>,
    n: usize,
    shift: u32,
    num_blocks: usize,
}

impl Kernel for Hist3Kernel {
    fn name(&self) -> &'static str {
        "radix_sort.hist3"
    }

    type State = ();

    fn phases(&self) -> usize {
        3
    }

    fn shared_mem_words(&self, _bd: u32) -> usize {
        RADIX
    }

    fn run_phase(&self, phase: usize, t: &mut ThreadCtx<'_>, _s: &mut ()) {
        let tid = t.thread_idx as usize;
        match phase {
            0 => {
                if tid < RADIX {
                    t.st_shared(tid, 0);
                }
            }
            1 => {
                let i = t.global_thread_idx();
                if t.branch(i < self.n) {
                    let key = t.ld(&self.keys, i);
                    let digit = ((key >> self.shift) & 0xFF) as usize;
                    t.alu(2);
                    t.atomic_add_shared(digit, 1);
                }
            }
            _ => {
                if tid < RADIX {
                    let count = t.ld_shared(tid);
                    t.st(
                        &self.hist,
                        tid * self.num_blocks + t.block_idx as usize,
                        count,
                    );
                }
            }
        }
    }
}

/// Stable scatter: threads compute their element's rank among equal digits
/// in the block (shared-memory cursor per digit, lane order = thread order
/// gives stability), then write to `base + rank`.
struct ScatterKernel {
    keys_in: DeviceBuffer<u32>,
    vals_in: DeviceBuffer<u32>,
    keys_out: DeviceBuffer<u32>,
    vals_out: DeviceBuffer<u32>,
    bases: DeviceBuffer<u32>, // scanned digit-major histogram
    n: usize,
    shift: u32,
    num_blocks: usize,
}

impl Kernel for ScatterKernel {
    fn name(&self) -> &'static str {
        "radix_sort.scatter"
    }

    type State = ();

    fn phases(&self) -> usize {
        2
    }

    fn shared_mem_words(&self, _bd: u32) -> usize {
        RADIX
    }

    fn run_phase(&self, phase: usize, t: &mut ThreadCtx<'_>, _s: &mut ()) {
        let tid = t.thread_idx as usize;
        if phase == 0 {
            if tid < RADIX {
                t.st_shared(tid, 0);
            }
            return;
        }
        let i = t.global_thread_idx();
        if t.branch(i < self.n) {
            let key = t.ld(&self.keys_in, i);
            let val = t.ld(&self.vals_in, i);
            let digit = ((key >> self.shift) & 0xFF) as usize;
            t.alu(2);
            let rank = t.atomic_add_shared(digit, 1);
            let base = t.ld(&self.bases, digit * self.num_blocks + t.block_idx as usize);
            let dst = (base + rank) as usize;
            t.st(&self.keys_out, dst, key);
            t.st(&self.vals_out, dst, val);
        }
    }
}

/// Sorts `(keys, vals)` ascending by key; returns new buffers (inputs are
/// freed).
pub fn sort_pairs(
    gpu: &Gpu,
    mut keys: DeviceBuffer<u32>,
    mut vals: DeviceBuffer<u32>,
    n: usize,
) -> Result<(DeviceBuffer<u32>, DeviceBuffer<u32>), DeviceError> {
    if n == 0 {
        return Ok((keys, vals));
    }
    let num_blocks = n.div_ceil(BLOCK_DIM as usize);
    let keys_alt_r = gpu.alloc::<u32>(n);
    let mut keys_alt = match keys_alt_r {
        Ok(b) => b,
        Err(e) => {
            gpu.free(keys);
            gpu.free(vals);
            return Err(e);
        }
    };
    let vals_alt_r = gpu.alloc::<u32>(n);
    let mut vals_alt = match vals_alt_r {
        Ok(b) => b,
        Err(e) => {
            gpu.free(keys);
            gpu.free(vals);
            gpu.free(keys_alt);
            return Err(e);
        }
    };
    let mut passes = || -> Result<(), DeviceError> {
        for pass in 0..4u32 {
            let shift = pass * 8;
            let hist = gpu.alloc::<u32>(RADIX * num_blocks)?;
            let step = || -> Result<(), DeviceError> {
                gpu.launch(
                    &Hist3Kernel {
                        keys: keys.clone(),
                        hist: hist.clone(),
                        n,
                        shift,
                        num_blocks,
                    },
                    LaunchConfig::new(num_blocks as u32, BLOCK_DIM),
                )?;
                let (bases, _total) = exclusive_scan(gpu, &hist, RADIX * num_blocks)?;
                let scattered = gpu.launch(
                    &ScatterKernel {
                        keys_in: keys.clone(),
                        vals_in: vals.clone(),
                        keys_out: keys_alt.clone(),
                        vals_out: vals_alt.clone(),
                        bases: bases.clone(),
                        n,
                        shift,
                        num_blocks,
                    },
                    LaunchConfig::new(num_blocks as u32, BLOCK_DIM),
                );
                gpu.free(bases);
                scattered.map(|_| ())
            };
            let result = step();
            gpu.free(hist);
            result?;
            std::mem::swap(&mut keys, &mut keys_alt);
            std::mem::swap(&mut vals, &mut vals_alt);
        }
        Ok(())
    };
    let result = passes();
    gpu.free(keys_alt);
    gpu.free(vals_alt);
    match result {
        Ok(()) => Ok((keys, vals)),
        Err(e) => {
            gpu.free(keys);
            gpu.free(vals);
            Err(e)
        }
    }
}

/// Fig. 7's "GPU radix sort" ranker: sorts the full result list by score
/// and returns the top `k` (docid, score) pairs, best first.
pub fn top_k_by_sort(
    gpu: &Gpu,
    docids: &DeviceBuffer<u32>,
    scores: &DeviceBuffer<f32>,
    n: usize,
    k: usize,
) -> Result<Vec<(u32, f32)>, DeviceError> {
    if n == 0 || k == 0 {
        return Ok(Vec::new());
    }
    let keys = gpu.alloc::<u32>(n)?;
    let vals = match gpu.alloc::<u32>(n) {
        Ok(b) => b,
        Err(e) => {
            gpu.free(keys);
            return Err(e);
        }
    };
    let prepped = gpu.launch(
        &PrepKernel {
            scores: scores.clone(),
            docids: docids.clone(),
            keys: keys.clone(),
            vals: vals.clone(),
            n,
        },
        LaunchConfig::cover(n, BLOCK_DIM),
    );
    if let Err(e) = prepped {
        gpu.free(keys);
        gpu.free(vals);
        return Err(e);
    }
    let (sorted_keys, sorted_vals) = sort_pairs(gpu, keys, vals, n)?;
    // Only the winning prefix crosses PCIe back.
    let k = k.min(n);
    let transferred = gpu
        .dtoh_prefix(&sorted_keys, k)
        .and_then(|kh| gpu.dtoh_prefix(&sorted_vals, k).map(|vh| (kh, vh)));
    gpu.free(sorted_keys);
    gpu.free(sorted_vals);
    let (keys_host, vals_host) = transferred?;
    Ok(keys_host
        .into_iter()
        .zip(vals_host)
        .map(|(key, docid)| (docid, f32::from_bits(sortable_to_float(!key))))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use griffin_gpu_sim::DeviceConfig;

    #[test]
    fn sortable_mapping_preserves_order() {
        let vals = [-1000.0f32, -1.5, -0.0, 0.0, 0.25, 3.0, 1e30];
        let keys: Vec<u32> = vals
            .iter()
            .map(|v| float_to_sortable(v.to_bits()))
            .collect();
        for w in keys.windows(2) {
            assert!(w[0] <= w[1]);
        }
        for (&v, &k) in vals.iter().zip(&keys) {
            let back = f32::from_bits(sortable_to_float(k));
            assert_eq!(back.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn sorts_random_keys() {
        let gpu = Gpu::new(DeviceConfig::test_tiny());
        let mut state = 3u64;
        let keys_host: Vec<u32> = (0..5000)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 32) as u32
            })
            .collect();
        let vals_host: Vec<u32> = (0..5000).collect();
        let keys = gpu.htod(&keys_host).unwrap();
        let vals = gpu.htod(&vals_host).unwrap();
        let (sk, sv) = sort_pairs(&gpu, keys, vals, 5000).unwrap();
        let got_keys = gpu.dtoh(&sk).unwrap();
        let got_vals = gpu.dtoh(&sv).unwrap();
        let mut expect = keys_host.clone();
        expect.sort_unstable();
        assert_eq!(got_keys, expect);
        // Payloads must follow their keys.
        for (k, v) in got_keys.iter().zip(&got_vals) {
            assert_eq!(keys_host[*v as usize], *k);
        }
    }

    #[test]
    fn top_k_matches_host_ranking() {
        let gpu = Gpu::new(DeviceConfig::test_tiny());
        let n = 3000;
        let docids_host: Vec<u32> = (0..n as u32).collect();
        let scores_host: Vec<f32> = (0..n).map(|i| ((i * 37) % 501) as f32 * 0.25).collect();
        let docids = gpu.htod(&docids_host).unwrap();
        let scores = gpu.htod(&scores_host).unwrap();
        let top = top_k_by_sort(&gpu, &docids, &scores, n, 10).unwrap();
        assert_eq!(top.len(), 10);
        let mut expect: Vec<(u32, f32)> = docids_host
            .iter()
            .copied()
            .zip(scores_host.iter().copied())
            .collect();
        expect.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        for i in 0..10 {
            assert_eq!(top[i].1, expect[i].1, "score rank {i}");
        }
    }

    #[test]
    fn sort_empty() {
        let gpu = Gpu::new(DeviceConfig::test_tiny());
        let keys = gpu.alloc::<u32>(0).unwrap();
        let vals = gpu.alloc::<u32>(0).unwrap();
        let (k, v) = sort_pairs(&gpu, keys, vals, 0).unwrap();
        assert_eq!(k.len(), 0);
        assert_eq!(v.len(), 0);
    }
}
