//! Device-resident layouts of compressed posting lists, and the transfers
//! that put them there.
//!
//! A [`DeviceEfList`] is the GPU image of an Elias–Fano [`BlockedList`]:
//! the concatenated high-bits and low-bits words, per-block metadata
//! (Para-EF needs to know which block owns each word), and the skip table
//! (first/last docID per block) for the parallel binary-search path.
//! Everything is shipped in a single packed DMA.

use griffin_codec::{BlockedList, Codec, CodecError, EfBlock};
use griffin_gpu_sim::{DeviceBuffer, Gpu};
use griffin_index::CompressedPostingList;

use crate::error::GpuError;

/// GPU image of one EF-compressed docID list.
#[derive(Debug)]
pub struct DeviceEfList {
    /// Total elements.
    pub len: usize,
    pub num_blocks: usize,
    /// Concatenated high-bits words of all blocks.
    pub hb: DeviceBuffer<u32>,
    /// Concatenated low-bits words of all blocks.
    pub lb: DeviceBuffer<u32>,
    /// Per block: index of its first word in `hb`.
    pub block_hb_start: DeviceBuffer<u32>,
    /// Per block: index of its first word in `lb`.
    pub block_lb_start: DeviceBuffer<u32>,
    /// Per block: index of its first element in the list.
    pub block_elem_start: DeviceBuffer<u32>,
    /// Per block: low-bit width `b`.
    pub block_b: DeviceBuffer<u32>,
    /// Per block: decode base (docID preceding the block).
    pub block_base: DeviceBuffer<u32>,
    /// Per `hb` word: the block that owns it.
    pub word_block: DeviceBuffer<u32>,
    /// Skip table: per block first docID.
    pub skip_first: DeviceBuffer<u32>,
    /// Skip table: per block last docID.
    pub skip_last: DeviceBuffer<u32>,
    /// Total `hb` words (the quantity Para-EF's popcount phase covers).
    pub hb_words: usize,
    /// Largest per-block high-bits word count (sizes the block-local
    /// decoder's shared memory).
    pub max_block_hb_words: usize,
    /// Bytes shipped over PCIe for this list.
    pub bytes_shipped: u64,
}

/// Host-side staging of the flattened arrays (kept separate so tests can
/// inspect the layout without a device).
pub struct EfListImage {
    pub hb: Vec<u32>,
    pub lb: Vec<u32>,
    pub block_hb_start: Vec<u32>,
    pub block_lb_start: Vec<u32>,
    pub block_elem_start: Vec<u32>,
    pub block_b: Vec<u32>,
    pub block_base: Vec<u32>,
    pub word_block: Vec<u32>,
    pub skip_first: Vec<u32>,
    pub skip_last: Vec<u32>,
    pub len: usize,
}

impl EfListImage {
    /// Flattens an EF [`BlockedList`] into the device layout.
    ///
    /// Returns `Err` if any block fails validation (truncated or
    /// malformed words) — corrupt data must not reach the device.
    /// Passing a non-EF list is a programming error and panics.
    pub fn build(list: &BlockedList) -> Result<EfListImage, CodecError> {
        assert!(
            matches!(list.codec, Codec::EliasFano),
            "device lists must be Elias–Fano compressed (got {:?})",
            list.codec
        );
        let nb = list.num_blocks();
        let mut img = EfListImage {
            hb: Vec::new(),
            lb: Vec::new(),
            block_hb_start: Vec::with_capacity(nb),
            block_lb_start: Vec::with_capacity(nb),
            block_elem_start: Vec::with_capacity(nb),
            block_b: Vec::with_capacity(nb),
            block_base: Vec::with_capacity(nb),
            word_block: Vec::new(),
            skip_first: Vec::with_capacity(nb),
            skip_last: Vec::with_capacity(nb),
            len: list.len(),
        };
        for (i, skip) in list.skips.iter().enumerate() {
            let words =
                &list.words[skip.word_start as usize..(skip.word_start + skip.word_len) as usize];
            let blk = EfBlock::from_words(words)?;
            img.block_hb_start.push(img.hb.len() as u32);
            img.block_lb_start.push(img.lb.len() as u32);
            img.block_elem_start.push(skip.elem_start);
            img.block_b.push(blk.b);
            img.block_base.push(list.block_base(i));
            for _ in 0..blk.hb_words.len() {
                img.word_block.push(i as u32);
            }
            img.hb.extend_from_slice(&blk.hb_words);
            img.lb.extend_from_slice(&blk.lb_words);
            img.skip_first.push(skip.first_docid);
            img.skip_last.push(skip.last_docid);
        }
        Ok(img)
    }
}

impl DeviceEfList {
    /// Ships the list to the device in one packed transfer.
    ///
    /// Fails on corrupt list data (validated host-side before the DMA)
    /// and on device faults during the transfer.
    pub fn upload(gpu: &Gpu, list: &BlockedList) -> Result<DeviceEfList, GpuError> {
        let img = EfListImage::build(list)?;
        let hb_words = img.hb.len();
        let max_block_hb_words = img
            .block_hb_start
            .windows(2)
            .map(|w| (w[1] - w[0]) as usize)
            .chain(
                img.block_hb_start
                    .last()
                    .map(|&s| img.hb.len() - s as usize),
            )
            .max()
            .unwrap_or(0);
        let bytes_shipped: u64 = [
            img.hb.len(),
            img.lb.len(),
            img.block_hb_start.len() * 5, // the five per-block arrays
            img.word_block.len(),
            img.skip_first.len() * 2,
        ]
        .iter()
        .map(|&w| w as u64 * 4)
        .sum();
        // The staging arrays are moved into the device pool (no per-part
        // copy): they were built for this upload and die here anyway.
        let EfListImage {
            hb,
            lb,
            block_hb_start,
            block_lb_start,
            block_elem_start,
            block_b,
            block_base,
            word_block,
            skip_first,
            skip_last,
            len,
        } = img;
        let [hb, lb, block_hb_start, block_lb_start, block_elem_start, block_b, block_base, word_block, skip_first, skip_last] =
            gpu.htod_packed_owned([
                hb,
                lb,
                block_hb_start,
                block_lb_start,
                block_elem_start,
                block_b,
                block_base,
                word_block,
                skip_first,
                skip_last,
            ])?;
        Ok(DeviceEfList {
            len,
            num_blocks: list.num_blocks(),
            hb,
            lb,
            block_hb_start,
            block_lb_start,
            block_elem_start,
            block_b,
            block_base,
            word_block,
            skip_first,
            skip_last,
            hb_words,
            max_block_hb_words,
            bytes_shipped,
        })
    }

    /// Releases all device memory of this list.
    pub fn free(self, gpu: &Gpu) {
        gpu.free(self.hb);
        gpu.free(self.lb);
        gpu.free(self.block_hb_start);
        gpu.free(self.block_lb_start);
        gpu.free(self.block_elem_start);
        gpu.free(self.block_b);
        gpu.free(self.block_base);
        gpu.free(self.word_block);
        gpu.free(self.skip_first);
        gpu.free(self.skip_last);
    }
}

/// GPU image of a full posting list: EF docIDs plus the VByte term
/// frequencies (packed bytes + per-block offsets) for on-device scoring.
#[derive(Debug)]
pub struct DevicePostings {
    pub docs: DeviceEfList,
    /// VByte tf stream packed into words (4 bytes per word, LE).
    pub tf_words: DeviceBuffer<u32>,
    /// Per block: byte offset of its tf run (num_blocks + 1 entries).
    pub tf_offsets: DeviceBuffer<u32>,
}

impl DevicePostings {
    /// Ships docIDs and term frequencies to the device; a fault during
    /// the tf transfer releases the already-resident docID image.
    pub fn upload(gpu: &Gpu, list: &CompressedPostingList) -> Result<DevicePostings, GpuError> {
        let docs = DeviceEfList::upload(gpu, &list.docs)?;
        let (tf_bytes, tf_offsets) = list.tf_raw();
        let mut tf_words = Vec::with_capacity(tf_bytes.len().div_ceil(4));
        for chunk in tf_bytes.chunks(4) {
            let mut w = 0u32;
            for (i, &b) in chunk.iter().enumerate() {
                w |= u32::from(b) << (8 * i);
            }
            tf_words.push(w);
        }
        // `tf_words` was packed for this upload: move it into the pool.
        // The (tiny, `num_blocks + 1`-entry) offsets are borrowed from the
        // index and must be copied either way.
        let [tf_words, tf_offsets] = match gpu.htod_packed_owned([tf_words, tf_offsets.to_vec()]) {
            Ok(bufs) => bufs,
            Err(e) => {
                docs.free(gpu);
                return Err(e.into());
            }
        };
        Ok(DevicePostings {
            docs,
            tf_words,
            tf_offsets,
        })
    }

    pub fn len(&self) -> usize {
        self.docs.len
    }

    pub fn is_empty(&self) -> bool {
        self.docs.len == 0
    }

    pub fn free(self, gpu: &Gpu) {
        self.docs.free(gpu);
        gpu.free(self.tf_words);
        gpu.free(self.tf_offsets);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use griffin_codec::DEFAULT_BLOCK_LEN;
    use griffin_gpu_sim::DeviceConfig;

    fn docids(n: u32) -> Vec<u32> {
        (0..n).map(|i| i * 6 + 3).collect()
    }

    #[test]
    fn image_layout_is_consistent() {
        let ids = docids(500);
        let list = BlockedList::compress(&ids, Codec::EliasFano, DEFAULT_BLOCK_LEN);
        let img = EfListImage::build(&list).unwrap();
        assert_eq!(img.len, 500);
        assert_eq!(img.block_hb_start.len(), 4);
        assert_eq!(img.word_block.len(), img.hb.len());
        // word_block must be non-decreasing and match block starts.
        for (b, &start) in img.block_hb_start.iter().enumerate() {
            assert_eq!(img.word_block[start as usize], b as u32);
        }
        assert_eq!(img.skip_first[0], ids[0]);
        assert_eq!(*img.skip_last.last().unwrap(), *ids.last().unwrap());
    }

    #[test]
    #[should_panic(expected = "Elias–Fano")]
    fn rejects_non_ef_lists() {
        let list = BlockedList::compress(&docids(10), Codec::PforDelta, 128);
        let _ = EfListImage::build(&list);
    }

    #[test]
    fn corrupt_list_is_rejected_before_the_dma() {
        let ids = docids(500);
        let mut list = BlockedList::compress(&ids, Codec::EliasFano, DEFAULT_BLOCK_LEN);
        list.words.truncate(list.words.len() - 1);
        list.skips.last_mut().unwrap().word_len -= 1;
        assert!(EfListImage::build(&list).is_err());
        let gpu = Gpu::new(DeviceConfig::test_tiny());
        let err = DeviceEfList::upload(&gpu, &list).unwrap_err();
        assert!(matches!(err, GpuError::Corrupt(_)));
        assert_eq!(gpu.mem_in_use(), 0, "nothing may reach the device");
    }

    #[test]
    fn faulted_upload_leaves_no_device_memory() {
        use griffin_gpu_sim::{FaultKind, FaultPlan, TransferDir};
        let ids = docids(2000);
        let list = CompressedPostingList::from_docids(&ids, Codec::EliasFano, DEFAULT_BLOCK_LEN);
        // Fail the second packed DMA (op 1: the tf upload).
        let mut cfg = DeviceConfig::test_tiny();
        cfg.fault_plan = Some(FaultPlan::seeded(0).fail_at(
            1,
            FaultKind::TransferError {
                dir: TransferDir::HtoD,
            },
        ));
        let gpu = Gpu::new(cfg);
        let err = DevicePostings::upload(&gpu, &list).unwrap_err();
        assert!(matches!(err, GpuError::Device(_)));
        assert_eq!(
            gpu.mem_in_use(),
            0,
            "the docID image must be released when the tf DMA faults"
        );
    }

    #[test]
    fn upload_charges_transfer_and_allocates() {
        let gpu = Gpu::new(DeviceConfig::test_tiny());
        let list = BlockedList::compress(&docids(1000), Codec::EliasFano, 128);
        let t0 = gpu.now();
        let dev = DeviceEfList::upload(&gpu, &list).unwrap();
        assert!(gpu.now() > t0);
        assert!(dev.bytes_shipped > 0);
        assert!(gpu.mem_in_use() > 0);
        dev.free(&gpu);
        assert_eq!(gpu.mem_in_use(), 0);
    }
}
