//! Device-resident layouts of compressed posting lists, and the transfers
//! that put them there.
//!
//! A [`DeviceEfList`] is the GPU image of an Elias–Fano [`BlockedList`]:
//! the concatenated high-bits and low-bits words, per-block metadata
//! (Para-EF needs to know which block owns each word), and the skip table
//! (first/last docID per block) for the parallel binary-search path.
//! Everything is shipped in a single packed DMA.

use griffin_codec::{BlockedList, Codec, CodecError, EfBlock};
use griffin_gpu_sim::{DeviceBuffer, Gpu};
use griffin_index::CompressedPostingList;

use crate::error::GpuError;

/// GPU image of one EF-compressed docID list.
#[derive(Debug)]
pub struct DeviceEfList {
    /// Total elements.
    pub len: usize,
    pub num_blocks: usize,
    /// Concatenated high-bits words of all blocks.
    pub hb: DeviceBuffer<u32>,
    /// Concatenated low-bits words of all blocks.
    pub lb: DeviceBuffer<u32>,
    /// Per block: index of its first word in `hb`.
    pub block_hb_start: DeviceBuffer<u32>,
    /// Per block: index of its first word in `lb`.
    pub block_lb_start: DeviceBuffer<u32>,
    /// Per block: index of its first element in the list.
    pub block_elem_start: DeviceBuffer<u32>,
    /// Per block: low-bit width `b`.
    pub block_b: DeviceBuffer<u32>,
    /// Per block: decode base (docID preceding the block).
    pub block_base: DeviceBuffer<u32>,
    /// Per `hb` word: the block that owns it.
    pub word_block: DeviceBuffer<u32>,
    /// Skip table: per block first docID.
    pub skip_first: DeviceBuffer<u32>,
    /// Skip table: per block last docID.
    pub skip_last: DeviceBuffer<u32>,
    /// Total `hb` words (the quantity Para-EF's popcount phase covers).
    pub hb_words: usize,
    /// Largest per-block high-bits word count (sizes the block-local
    /// decoder's shared memory).
    pub max_block_hb_words: usize,
    /// Bytes shipped over PCIe for this list.
    pub bytes_shipped: u64,
}

/// Host-side staging of the flattened arrays (kept separate so tests can
/// inspect the layout without a device).
pub struct EfListImage {
    pub hb: Vec<u32>,
    pub lb: Vec<u32>,
    pub block_hb_start: Vec<u32>,
    pub block_lb_start: Vec<u32>,
    pub block_elem_start: Vec<u32>,
    pub block_b: Vec<u32>,
    pub block_base: Vec<u32>,
    pub word_block: Vec<u32>,
    pub skip_first: Vec<u32>,
    pub skip_last: Vec<u32>,
    pub len: usize,
}

impl EfListImage {
    /// Flattens an EF [`BlockedList`] into the device layout.
    ///
    /// Returns `Err` if any block fails validation (truncated or
    /// malformed words) — corrupt data must not reach the device.
    /// Passing a non-EF list is a programming error and panics.
    pub fn build(list: &BlockedList) -> Result<EfListImage, CodecError> {
        EfListImage::build_range(list, 0, list.num_blocks())
    }

    /// Flattens blocks `[lo_block, hi_block)` of an EF [`BlockedList`]
    /// into a self-contained device layout — the GPU lane of a
    /// co-executed split ships only its slice's blocks over PCIe.
    ///
    /// All intra-image indices (`block_elem_start`, `word_block`) are
    /// rebased to the range, so every kernel operates on the image exactly
    /// as if it were a complete list; only `block_base` stays global,
    /// because decode needs the true docID preceding each block. Element
    /// positions produced by kernels are therefore range-local.
    pub fn build_range(
        list: &BlockedList,
        lo_block: usize,
        hi_block: usize,
    ) -> Result<EfListImage, CodecError> {
        assert!(
            matches!(list.codec, Codec::EliasFano),
            "device lists must be Elias–Fano compressed (got {:?})",
            list.codec
        );
        assert!(
            lo_block <= hi_block && hi_block <= list.num_blocks(),
            "block range {lo_block}..{hi_block} out of bounds ({} blocks)",
            list.num_blocks()
        );
        let nb = hi_block - lo_block;
        let elem_base = list
            .skips
            .get(lo_block)
            .map(|s| s.elem_start)
            .unwrap_or(list.len() as u32);
        let elem_end = if hi_block < list.num_blocks() {
            list.skips[hi_block].elem_start
        } else {
            list.len() as u32
        };
        let mut img = EfListImage {
            hb: Vec::new(),
            lb: Vec::new(),
            block_hb_start: Vec::with_capacity(nb),
            block_lb_start: Vec::with_capacity(nb),
            block_elem_start: Vec::with_capacity(nb),
            block_b: Vec::with_capacity(nb),
            block_base: Vec::with_capacity(nb),
            word_block: Vec::new(),
            skip_first: Vec::with_capacity(nb),
            skip_last: Vec::with_capacity(nb),
            len: (elem_end - elem_base) as usize,
        };
        for (local, (i, skip)) in list
            .skips
            .iter()
            .enumerate()
            .take(hi_block)
            .skip(lo_block)
            .enumerate()
        {
            let words =
                &list.words[skip.word_start as usize..(skip.word_start + skip.word_len) as usize];
            let blk = EfBlock::from_words(words)?;
            img.block_hb_start.push(img.hb.len() as u32);
            img.block_lb_start.push(img.lb.len() as u32);
            img.block_elem_start.push(skip.elem_start - elem_base);
            img.block_b.push(blk.b);
            img.block_base.push(list.block_base(i));
            for _ in 0..blk.hb_words.len() {
                img.word_block.push(local as u32);
            }
            img.hb.extend_from_slice(&blk.hb_words);
            img.lb.extend_from_slice(&blk.lb_words);
            img.skip_first.push(skip.first_docid);
            img.skip_last.push(skip.last_docid);
        }
        Ok(img)
    }
}

impl DeviceEfList {
    /// Ships the list to the device in one packed transfer.
    ///
    /// Fails on corrupt list data (validated host-side before the DMA)
    /// and on device faults during the transfer.
    pub fn upload(gpu: &Gpu, list: &BlockedList) -> Result<DeviceEfList, GpuError> {
        DeviceEfList::upload_image(gpu, EfListImage::build(list)?)
    }

    /// Ships only blocks `[lo_block, hi_block)` — the GPU slice of a
    /// range-partitioned co-executed intersection.
    pub fn upload_range(
        gpu: &Gpu,
        list: &BlockedList,
        lo_block: usize,
        hi_block: usize,
    ) -> Result<DeviceEfList, GpuError> {
        DeviceEfList::upload_image(gpu, EfListImage::build_range(list, lo_block, hi_block)?)
    }

    fn upload_image(gpu: &Gpu, img: EfListImage) -> Result<DeviceEfList, GpuError> {
        let num_blocks = img.block_hb_start.len();
        let hb_words = img.hb.len();
        let max_block_hb_words = img
            .block_hb_start
            .windows(2)
            .map(|w| (w[1] - w[0]) as usize)
            .chain(
                img.block_hb_start
                    .last()
                    .map(|&s| img.hb.len() - s as usize),
            )
            .max()
            .unwrap_or(0);
        let bytes_shipped: u64 = [
            img.hb.len(),
            img.lb.len(),
            img.block_hb_start.len() * 5, // the five per-block arrays
            img.word_block.len(),
            img.skip_first.len() * 2,
        ]
        .iter()
        .map(|&w| w as u64 * 4)
        .sum();
        // The staging arrays are moved into the device pool (no per-part
        // copy): they were built for this upload and die here anyway.
        let EfListImage {
            hb,
            lb,
            block_hb_start,
            block_lb_start,
            block_elem_start,
            block_b,
            block_base,
            word_block,
            skip_first,
            skip_last,
            len,
        } = img;
        let [hb, lb, block_hb_start, block_lb_start, block_elem_start, block_b, block_base, word_block, skip_first, skip_last] =
            gpu.htod_packed_owned([
                hb,
                lb,
                block_hb_start,
                block_lb_start,
                block_elem_start,
                block_b,
                block_base,
                word_block,
                skip_first,
                skip_last,
            ])?;
        Ok(DeviceEfList {
            len,
            num_blocks,
            hb,
            lb,
            block_hb_start,
            block_lb_start,
            block_elem_start,
            block_b,
            block_base,
            word_block,
            skip_first,
            skip_last,
            hb_words,
            max_block_hb_words,
            bytes_shipped,
        })
    }

    /// Releases all device memory of this list.
    pub fn free(self, gpu: &Gpu) {
        gpu.free(self.hb);
        gpu.free(self.lb);
        gpu.free(self.block_hb_start);
        gpu.free(self.block_lb_start);
        gpu.free(self.block_elem_start);
        gpu.free(self.block_b);
        gpu.free(self.block_base);
        gpu.free(self.word_block);
        gpu.free(self.skip_first);
        gpu.free(self.skip_last);
    }
}

/// GPU image of a full posting list: EF docIDs plus the VByte term
/// frequencies (packed bytes + per-block offsets) for on-device scoring.
#[derive(Debug)]
pub struct DevicePostings {
    pub docs: DeviceEfList,
    /// VByte tf stream packed into words (4 bytes per word, LE).
    pub tf_words: DeviceBuffer<u32>,
    /// Per block: byte offset of its tf run (num_blocks + 1 entries).
    pub tf_offsets: DeviceBuffer<u32>,
    /// Document frequency BM25 scores this list with — the *full* list's
    /// df even when only a block range is resident (idf must not depend
    /// on where a co-execution split landed), and the whole-corpus df
    /// when the list belongs to a shard view (idf must not depend on
    /// where the shard boundary landed either).
    pub df: u32,
}

impl DevicePostings {
    /// Ships docIDs and term frequencies to the device; a fault during
    /// the tf transfer releases the already-resident docID image. `df`
    /// is the document frequency the scorer must use — pass the index's
    /// scoring df, which differs from `list.len()` on shard views.
    pub fn upload(
        gpu: &Gpu,
        list: &CompressedPostingList,
        df: u32,
    ) -> Result<DevicePostings, GpuError> {
        DevicePostings::upload_range(gpu, list, 0, list.docs.num_blocks(), df)
    }

    /// Ships only blocks `[lo_block, hi_block)`: the EF docID slice plus
    /// the matching window of the VByte tf stream (offsets rebased to the
    /// slice). `df` still reports the scoring df of the whole list.
    pub fn upload_range(
        gpu: &Gpu,
        list: &CompressedPostingList,
        lo_block: usize,
        hi_block: usize,
        df: u32,
    ) -> Result<DevicePostings, GpuError> {
        let docs = DeviceEfList::upload_range(gpu, &list.docs, lo_block, hi_block)?;
        let (tf_bytes, tf_offsets) = list.tf_raw();
        let byte_lo = tf_offsets[lo_block] as usize;
        let byte_hi = tf_offsets[hi_block] as usize;
        let tf_bytes = &tf_bytes[byte_lo..byte_hi];
        let local_offsets: Vec<u32> = tf_offsets[lo_block..=hi_block]
            .iter()
            .map(|&o| o - byte_lo as u32)
            .collect();
        let mut tf_words = Vec::with_capacity(tf_bytes.len().div_ceil(4));
        for chunk in tf_bytes.chunks(4) {
            let mut w = 0u32;
            for (i, &b) in chunk.iter().enumerate() {
                w |= u32::from(b) << (8 * i);
            }
            tf_words.push(w);
        }
        // Both staging arrays were built for this upload: move them into
        // the device pool rather than copying.
        let [tf_words, tf_offsets] = match gpu.htod_packed_owned([tf_words, local_offsets]) {
            Ok(bufs) => bufs,
            Err(e) => {
                docs.free(gpu);
                return Err(e.into());
            }
        };
        Ok(DevicePostings {
            docs,
            tf_words,
            tf_offsets,
            df,
        })
    }

    pub fn len(&self) -> usize {
        self.docs.len
    }

    pub fn is_empty(&self) -> bool {
        self.docs.len == 0
    }

    pub fn free(self, gpu: &Gpu) {
        self.docs.free(gpu);
        gpu.free(self.tf_words);
        gpu.free(self.tf_offsets);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use griffin_codec::DEFAULT_BLOCK_LEN;
    use griffin_gpu_sim::DeviceConfig;

    fn docids(n: u32) -> Vec<u32> {
        (0..n).map(|i| i * 6 + 3).collect()
    }

    #[test]
    fn image_layout_is_consistent() {
        let ids = docids(500);
        let list = BlockedList::compress(&ids, Codec::EliasFano, DEFAULT_BLOCK_LEN);
        let img = EfListImage::build(&list).unwrap();
        assert_eq!(img.len, 500);
        assert_eq!(img.block_hb_start.len(), 4);
        assert_eq!(img.word_block.len(), img.hb.len());
        // word_block must be non-decreasing and match block starts.
        for (b, &start) in img.block_hb_start.iter().enumerate() {
            assert_eq!(img.word_block[start as usize], b as u32);
        }
        assert_eq!(img.skip_first[0], ids[0]);
        assert_eq!(*img.skip_last.last().unwrap(), *ids.last().unwrap());
    }

    #[test]
    fn range_image_is_a_rebased_slice_of_the_full_image() {
        let ids = docids(500); // 4 blocks at the default block length
        let list = BlockedList::compress(&ids, Codec::EliasFano, DEFAULT_BLOCK_LEN);
        let full = EfListImage::build(&list).unwrap();
        let (lo, hi) = (1, 3);
        let img = EfListImage::build_range(&list, lo, hi).unwrap();
        let elem_base = list.skips[lo].elem_start;
        assert_eq!(img.len, (list.skips[hi].elem_start - elem_base) as usize);
        assert_eq!(img.block_hb_start.len(), hi - lo);
        // Rebased: element starts and word ownership are range-local…
        assert_eq!(img.block_elem_start[0], 0);
        for (b, &start) in img.block_hb_start.iter().enumerate() {
            assert_eq!(img.word_block[start as usize], b as u32);
        }
        // …while per-block payloads and the global decode bases match the
        // corresponding window of the full image.
        assert_eq!(img.block_base[..], full.block_base[lo..hi]);
        assert_eq!(img.block_b[..], full.block_b[lo..hi]);
        assert_eq!(img.skip_first[..], full.skip_first[lo..hi]);
        assert_eq!(img.skip_last[..], full.skip_last[lo..hi]);
        // An empty range is valid and carries nothing.
        let empty = EfListImage::build_range(&list, 2, 2).unwrap();
        assert_eq!(empty.len, 0);
        assert!(empty.hb.is_empty() && empty.block_base.is_empty());
    }

    #[test]
    fn range_upload_ships_fewer_bytes_and_keeps_full_df() {
        let ids = docids(2000);
        let list = CompressedPostingList::from_docids(&ids, Codec::EliasFano, DEFAULT_BLOCK_LEN);
        let gpu = Gpu::new(DeviceConfig::test_tiny());
        let full = DevicePostings::upload(&gpu, &list, list.len() as u32).unwrap();
        let full_bytes = full.docs.bytes_shipped;
        full.free(&gpu);
        let nb = list.docs.num_blocks();
        let part =
            DevicePostings::upload_range(&gpu, &list, nb / 2, nb, list.len() as u32).unwrap();
        assert!(part.docs.bytes_shipped < full_bytes);
        assert_eq!(part.df, list.len() as u32, "idf must see the whole list");
        assert_eq!(part.docs.num_blocks, nb - nb / 2);
        part.free(&gpu);
        assert_eq!(gpu.mem_in_use(), 0);
    }

    #[test]
    #[should_panic(expected = "Elias–Fano")]
    fn rejects_non_ef_lists() {
        let list = BlockedList::compress(&docids(10), Codec::PforDelta, 128);
        let _ = EfListImage::build(&list);
    }

    #[test]
    fn corrupt_list_is_rejected_before_the_dma() {
        let ids = docids(500);
        let mut list = BlockedList::compress(&ids, Codec::EliasFano, DEFAULT_BLOCK_LEN);
        list.words.truncate(list.words.len() - 1);
        list.skips.last_mut().unwrap().word_len -= 1;
        assert!(EfListImage::build(&list).is_err());
        let gpu = Gpu::new(DeviceConfig::test_tiny());
        let err = DeviceEfList::upload(&gpu, &list).unwrap_err();
        assert!(matches!(err, GpuError::Corrupt(_)));
        assert_eq!(gpu.mem_in_use(), 0, "nothing may reach the device");
    }

    #[test]
    fn faulted_upload_leaves_no_device_memory() {
        use griffin_gpu_sim::{FaultKind, FaultPlan, TransferDir};
        let ids = docids(2000);
        let list = CompressedPostingList::from_docids(&ids, Codec::EliasFano, DEFAULT_BLOCK_LEN);
        // Fail the second packed DMA (op 1: the tf upload).
        let mut cfg = DeviceConfig::test_tiny();
        cfg.fault_plan = Some(FaultPlan::seeded(0).fail_at(
            1,
            FaultKind::TransferError {
                dir: TransferDir::HtoD,
            },
        ));
        let gpu = Gpu::new(cfg);
        let err = DevicePostings::upload(&gpu, &list, list.len() as u32).unwrap_err();
        assert!(matches!(err, GpuError::Device(_)));
        assert_eq!(
            gpu.mem_in_use(),
            0,
            "the docID image must be released when the tf DMA faults"
        );
    }

    #[test]
    fn upload_charges_transfer_and_allocates() {
        let gpu = Gpu::new(DeviceConfig::test_tiny());
        let list = BlockedList::compress(&docids(1000), Codec::EliasFano, 128);
        let t0 = gpu.now();
        let dev = DeviceEfList::upload(&gpu, &list).unwrap();
        assert!(gpu.now() > t0);
        assert!(dev.bytes_shipped > 0);
        assert!(gpu.mem_in_use() > 0);
        dev.free(&gpu);
        assert_eq!(gpu.mem_in_use(), 0);
    }
}
