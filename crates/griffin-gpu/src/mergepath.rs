//! GPU MergePath list intersection (paper §3.1.2, Figs. 5–6; after Green,
//! McColl & Bader's GPU Merge Path).
//!
//! Merging two sorted lists A and B is a monotone path through the
//! |A|×|B| grid; drawing `p` equally spaced cross-diagonals and binary
//! searching *along each diagonal* for its crossing with the merge path
//! yields `p` perfectly even partitions (the load-balancing property
//! previous GPU IR systems lacked). Each partition is then intersected
//! serially by one thread, with both sub-lists staged in shared memory by
//! coalesced cooperative loads — no synchronization during the merge.
//!
//! Because docID lists are duplicate-free *sets*, we add the classic
//! boundary adjustment: when a diagonal lands between an equal pair
//! `A[a-1] == B[b]`, the B element is pulled into the earlier partition so
//! the match cannot straddle the boundary.
//!
//! Pipeline: partition kernel → merge kernel (matches to per-partition
//! slabs) → scan of per-partition counts → compaction kernel.

use griffin_gpu_sim::{
    DeviceBuffer, DeviceConfig, DeviceError, Gpu, Kernel, LaunchConfig, ThreadCtx,
};

use crate::scan::exclusive_scan;

/// Geometry of a MergePath launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MergePathConfig {
    /// Combined elements (from A and B) per partition / per thread.
    pub items_per_partition: usize,
    /// Threads per block; a block stages `block_dim * items_per_partition`
    /// elements in shared memory.
    pub block_dim: u32,
}

impl Default for MergePathConfig {
    fn default() -> Self {
        MergePathConfig {
            items_per_partition: 32,
            block_dim: 128,
        }
    }
}

impl MergePathConfig {
    /// Largest default-shaped config whose staging fits the device's
    /// shared memory.
    pub fn for_device(cfg: &DeviceConfig) -> Self {
        let mut c = MergePathConfig::default();
        while c.shared_words_needed() > cfg.shared_mem_words_per_block && c.block_dim > 32 {
            c.block_dim /= 2;
        }
        while c.shared_words_needed() > cfg.shared_mem_words_per_block && c.items_per_partition > 8
        {
            c.items_per_partition /= 2;
        }
        assert!(
            c.shared_words_needed() <= cfg.shared_mem_words_per_block,
            "device shared memory too small for MergePath staging"
        );
        c
    }

    /// Worst-case staged elements per block (+2 boundary-adjustment slack).
    fn shared_words_needed(&self) -> usize {
        2 * self.block_dim as usize * self.items_per_partition + 2
    }

    /// Max matches one partition can produce.
    fn partition_capacity(&self) -> usize {
        self.items_per_partition / 2 + 1
    }
}

/// Intersection output, resident on the device.
pub struct DeviceMatches {
    /// Common docIDs, ascending.
    pub docids: DeviceBuffer<u32>,
    /// Position of each match in A.
    pub a_idx: DeviceBuffer<u32>,
    /// Position of each match in B.
    pub b_idx: DeviceBuffer<u32>,
    pub len: usize,
}

impl DeviceMatches {
    pub fn free(self, gpu: &Gpu) {
        gpu.free(self.docids);
        gpu.free(self.a_idx);
        gpu.free(self.b_idx);
    }

    pub(crate) fn empty(gpu: &Gpu) -> Result<DeviceMatches, DeviceError> {
        Ok(DeviceMatches {
            docids: gpu.alloc(0)?,
            a_idx: gpu.alloc(0)?,
            b_idx: gpu.alloc(0)?,
            len: 0,
        })
    }
}

/// Finds the *block-level* partition boundaries: one thread per block
/// diagonal (spaced `block_dim * items_per_partition` elements apart).
/// Thread-level partitioning happens later, in shared memory — this
/// two-level scheme is what keeps the diagonal searches off global memory
/// (the moderngpu design the paper builds on).
struct PartitionKernel {
    a: DeviceBuffer<u32>,
    b: DeviceBuffer<u32>,
    a_bounds: DeviceBuffer<u32>,
    b_bounds: DeviceBuffer<u32>,
    m: usize,
    n: usize,
    ipp: usize,
    num_bounds: usize, // p + 1
}

impl Kernel for PartitionKernel {
    fn name(&self) -> &'static str {
        "mergepath.partition"
    }

    type State = ();
    fn run_phase(&self, _p: usize, t: &mut ThreadCtx<'_>, _s: &mut ()) {
        let i = t.global_thread_idx();
        if !t.branch(i < self.num_bounds) {
            return;
        }
        let d = (i * self.ipp).min(self.m + self.n);
        // Binary search along the cross diagonal: smallest a in
        // [max(0, d-n), min(d, m)] with A[a] > B[d-a-1]
        // (out-of-range B reads as +inf: advancing a is forced).
        let mut lo = d.saturating_sub(self.n);
        let mut hi = d.min(self.m);
        while t.branch(lo < hi) {
            let mid = lo + (hi - lo) / 2;
            let bj = d - mid - 1;
            let av = t.ld(&self.a, mid);
            let bv = if t.branch(bj < self.n) {
                t.ld(&self.b, bj)
            } else {
                u32::MAX
            };
            t.alu(2);
            if t.branch(av <= bv) {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        let a = lo;
        let mut b = d - a;
        // Set-intersection boundary adjustment: keep an equal pair on the
        // same side of the cut.
        if t.branch(a > 0 && b < self.n) {
            let last_a = t.ld(&self.a, a - 1);
            let first_b = t.ld(&self.b, b);
            if t.branch(last_a == first_b) {
                b += 1;
            }
        }
        t.st(&self.a_bounds, i, a as u32);
        t.st(&self.b_bounds, i, b as u32);
    }
}

/// Stages each block's A/B ranges in shared memory, finds thread-level
/// partition boundaries by diagonal binary search *in shared memory*, then
/// each thread serially intersects its partition, writing matches to a
/// per-partition slab and its match count to `counts`.
///
/// Shared layout: `[A staged | B staged | a_cuts (bd+1) | b_cuts (bd+1)]`.
struct MergeKernel {
    a: DeviceBuffer<u32>,
    b: DeviceBuffer<u32>,
    a_bounds: DeviceBuffer<u32>,
    b_bounds: DeviceBuffer<u32>,
    temp_docid: DeviceBuffer<u32>,
    temp_aidx: DeviceBuffer<u32>,
    temp_bidx: DeviceBuffer<u32>,
    counts: DeviceBuffer<u32>,
    num_blocks: usize,
    n: usize,
    cfg: MergePathConfig,
}

#[derive(Default)]
struct MergeState {
    // Block-range info computed in phase 0 (register-resident in a real
    // kernel).
    a_start: u32,
    b_start: u32,
    a_len: u32,
    b_len: u32,
}

impl Kernel for MergeKernel {
    fn name(&self) -> &'static str {
        "mergepath.merge"
    }

    type State = MergeState;

    fn phases(&self) -> usize {
        3
    }

    fn shared_mem_words(&self, block_dim: u32) -> usize {
        self.cfg.shared_words_needed() + 2 * (block_dim as usize + 1)
    }

    fn run_phase(&self, phase: usize, t: &mut ThreadCtx<'_>, s: &mut MergeState) {
        let bd = t.block_dim as usize;
        let blk = t.block_idx as usize;
        if blk >= self.num_blocks {
            return;
        }
        let ipp = self.cfg.items_per_partition;
        let cuts_base = self.cfg.shared_words_needed();

        if phase == 0 {
            // Every thread reads the block's range bounds (broadcast loads),
            // then the block cooperatively stages A and B.
            let a_start = t.ld(&self.a_bounds, blk);
            let a_end = t.ld(&self.a_bounds, blk + 1);
            let b_start = t.ld(&self.b_bounds, blk);
            // Stage one extra B element: a thread-level boundary adjusted
            // for an equal pair may reach one past the block's raw bound.
            let b_end = (t.ld(&self.b_bounds, blk + 1) + 1)
                .min(self.n as u32)
                .max(b_start);
            s.a_start = a_start;
            s.b_start = b_start;
            s.a_len = a_end - a_start;
            s.b_len = b_end - b_start;
            let a_len = s.a_len as usize;
            let b_len = s.b_len as usize;
            let tid = t.thread_idx as usize;
            // Strided, coalesced cooperative loads.
            let mut i = tid;
            while t.branch(i < a_len) {
                let v = t.ld(&self.a, a_start as usize + i);
                t.st_shared(i, v);
                i += bd;
            }
            let mut j = tid;
            while t.branch(j < b_len) {
                let v = t.ld(&self.b, b_start as usize + j);
                t.st_shared(a_len + j, v);
                j += bd;
            }
            return;
        }

        let a_len = s.a_len as usize;
        // The raw block B range (without the +1 slack) bounds the diagonal
        // search; the slack element is only readable by adjusted cuts.
        let b_raw = {
            // Recover the unslacked length: the diagonal space covers
            // exactly the elements this block owns.
            let total = bd * ipp;
            (s.b_len as usize).min(total)
        };

        if phase == 1 {
            // Thread-level diagonal binary search, entirely in shared
            // memory. Thread tid finds the cut for diagonal tid * ipp.
            let tid = t.thread_idx as usize;
            let d = (tid * ipp).min(a_len + b_raw);
            let mut lo = d.saturating_sub(b_raw);
            let mut hi = d.min(a_len);
            while t.branch(lo < hi) {
                let mid = lo + (hi - lo) / 2;
                let bj = d - mid - 1;
                let av = t.ld_shared(mid);
                let bv = if t.branch(bj < b_raw) {
                    t.ld_shared(a_len + bj)
                } else {
                    u32::MAX
                };
                t.alu(2);
                if t.branch(av <= bv) {
                    lo = mid + 1;
                } else {
                    hi = mid;
                }
            }
            let a_cut = lo;
            let mut b_cut = d - lo;
            // Set-intersection boundary adjustment (local).
            if t.branch(a_cut > 0 && b_cut < s.b_len as usize) {
                let last_a = t.ld_shared(a_cut - 1);
                let first_b = t.ld_shared(a_len + b_cut);
                if t.branch(last_a == first_b) {
                    b_cut += 1;
                }
            }
            t.st_shared(cuts_base + tid, a_cut as u32);
            t.st_shared(cuts_base + bd + 1 + tid, b_cut as u32);
            if t.branch(tid == bd - 1) {
                // Sentinel cut: the end of the block's staged data.
                t.st_shared(cuts_base + bd, a_len as u32);
                t.st_shared(cuts_base + bd + 1 + bd, s.b_len);
            }
            return;
        }

        // Phase 2: serial intersection of this thread's partition.
        let tid = t.thread_idx as usize;
        let pi = blk * bd + tid;
        let a_lo = t.ld_shared(cuts_base + tid) as usize;
        let a_hi = t.ld_shared(cuts_base + tid + 1) as usize;
        let b_lo = t.ld_shared(cuts_base + bd + 1 + tid) as usize;
        let b_hi = (t.ld_shared(cuts_base + bd + 1 + tid + 1) as usize).max(b_lo);
        let cap = self.cfg.partition_capacity();
        let slab = pi * cap;

        let mut ai = a_lo;
        let mut bi = b_lo;
        let mut out = 0usize;
        while t.branch(ai < a_hi && bi < b_hi) {
            let av = t.ld_shared(ai);
            let bv = t.ld_shared(a_len + bi);
            t.alu(2);
            if t.branch(av == bv) {
                t.st(&self.temp_docid, slab + out, av);
                t.st(&self.temp_aidx, slab + out, s.a_start + ai as u32);
                t.st(&self.temp_bidx, slab + out, s.b_start + bi as u32);
                out += 1;
                ai += 1;
                bi += 1;
            } else if t.branch(av < bv) {
                ai += 1;
            } else {
                bi += 1;
            }
        }
        t.st(&self.counts, pi, out as u32);
    }
}

/// Copies each partition's matches to its final, scan-assigned position.
struct CompactKernel {
    temp_docid: DeviceBuffer<u32>,
    temp_aidx: DeviceBuffer<u32>,
    temp_bidx: DeviceBuffer<u32>,
    counts: DeviceBuffer<u32>,
    offsets: DeviceBuffer<u32>,
    out_docid: DeviceBuffer<u32>,
    out_aidx: DeviceBuffer<u32>,
    out_bidx: DeviceBuffer<u32>,
    num_partitions: usize,
    cap: usize,
}

impl Kernel for CompactKernel {
    fn name(&self) -> &'static str {
        "mergepath.compact"
    }

    type State = ();
    fn run_phase(&self, _p: usize, t: &mut ThreadCtx<'_>, _s: &mut ()) {
        let pi = t.global_thread_idx();
        if !t.branch(pi < self.num_partitions) {
            return;
        }
        let count = t.ld(&self.counts, pi) as usize;
        let dst = t.ld(&self.offsets, pi) as usize;
        let slab = pi * self.cap;
        let mut k = 0usize;
        while t.branch(k < count) {
            let d = t.ld(&self.temp_docid, slab + k);
            let a = t.ld(&self.temp_aidx, slab + k);
            let b = t.ld(&self.temp_bidx, slab + k);
            t.st(&self.out_docid, dst + k, d);
            t.st(&self.out_aidx, dst + k, a);
            t.st(&self.out_bidx, dst + k, b);
            k += 1;
        }
    }
}

/// Intersects two decompressed, device-resident sorted docID lists.
///
/// Scratch buffers are freed on both the success and the fault path, so
/// a faulted intersection leaves no device memory behind.
pub fn intersect(
    gpu: &Gpu,
    a: &DeviceBuffer<u32>,
    m: usize,
    b: &DeviceBuffer<u32>,
    n: usize,
    cfg: &MergePathConfig,
) -> Result<DeviceMatches, DeviceError> {
    if m == 0 || n == 0 {
        return DeviceMatches::empty(gpu);
    }
    let bd = cfg.block_dim as usize;
    // Two-level partitioning: the global kernel cuts block-sized diagonals;
    // threads refine within shared memory.
    let ipp_block = cfg.items_per_partition * bd;
    let p_blocks = (m + n).div_ceil(ipp_block);
    let num_bounds = p_blocks + 1;
    // Thread-level partitions (one per thread across all blocks).
    let p = p_blocks * bd;

    let mut scratch: Vec<DeviceBuffer<u32>> = Vec::new();
    let mut inner = || -> Result<DeviceMatches, DeviceError> {
        let a_bounds = gpu.alloc::<u32>(num_bounds)?;
        scratch.push(a_bounds.clone());
        let b_bounds = gpu.alloc::<u32>(num_bounds)?;
        scratch.push(b_bounds.clone());
        gpu.launch(
            &PartitionKernel {
                a: a.clone(),
                b: b.clone(),
                a_bounds: a_bounds.clone(),
                b_bounds: b_bounds.clone(),
                m,
                n,
                ipp: ipp_block,
                num_bounds,
            },
            LaunchConfig::cover(num_bounds, cfg.block_dim),
        )?;

        let cap = cfg.partition_capacity();
        let temp_docid = gpu.alloc::<u32>(p * cap)?;
        scratch.push(temp_docid.clone());
        let temp_aidx = gpu.alloc::<u32>(p * cap)?;
        scratch.push(temp_aidx.clone());
        let temp_bidx = gpu.alloc::<u32>(p * cap)?;
        scratch.push(temp_bidx.clone());
        let counts = gpu.alloc::<u32>(p)?;
        scratch.push(counts.clone());
        gpu.launch(
            &MergeKernel {
                a: a.clone(),
                b: b.clone(),
                a_bounds: a_bounds.clone(),
                b_bounds: b_bounds.clone(),
                temp_docid: temp_docid.clone(),
                temp_aidx: temp_aidx.clone(),
                temp_bidx: temp_bidx.clone(),
                counts: counts.clone(),
                num_blocks: p_blocks,
                n,
                cfg: *cfg,
            },
            LaunchConfig::new(p_blocks as u32, cfg.block_dim),
        )?;

        let (offsets, total) = exclusive_scan(gpu, &counts, p)?;
        scratch.push(offsets.clone());
        let total = total as usize;
        let out_docid = gpu.alloc::<u32>(total)?;
        scratch.push(out_docid.clone());
        let out_aidx = gpu.alloc::<u32>(total)?;
        scratch.push(out_aidx.clone());
        let out_bidx = gpu.alloc::<u32>(total)?;
        scratch.push(out_bidx.clone());
        if total > 0 {
            gpu.launch(
                &CompactKernel {
                    temp_docid: temp_docid.clone(),
                    temp_aidx: temp_aidx.clone(),
                    temp_bidx: temp_bidx.clone(),
                    counts: counts.clone(),
                    offsets: offsets.clone(),
                    out_docid: out_docid.clone(),
                    out_aidx: out_aidx.clone(),
                    out_bidx: out_bidx.clone(),
                    num_partitions: p,
                    cap,
                },
                LaunchConfig::cover(p, cfg.block_dim),
            )?;
        }
        // The three output buffers graduate out of the scratch set.
        scratch.truncate(scratch.len() - 3);
        Ok(DeviceMatches {
            docids: out_docid,
            a_idx: out_aidx,
            b_idx: out_bidx,
            len: total,
        })
    };
    let result = inner();
    for buf in scratch {
        gpu.free(buf);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use griffin_gpu_sim::DeviceConfig;

    fn host_intersect(a: &[u32], b: &[u32]) -> Vec<u32> {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out
    }

    fn check(a: Vec<u32>, b: Vec<u32>) {
        let gpu = Gpu::new(DeviceConfig::test_tiny());
        let cfg = MergePathConfig::for_device(gpu.config());
        let da = gpu.htod(&a).unwrap();
        let db = gpu.htod(&b).unwrap();
        let matches = intersect(&gpu, &da, a.len(), &db, b.len(), &cfg).unwrap();
        let got = gpu.dtoh_prefix(&matches.docids, matches.len).unwrap();
        let expect = host_intersect(&a, &b);
        assert_eq!(got, expect);
        // Provenance indices must point at the right elements.
        let a_idx = gpu.dtoh_prefix(&matches.a_idx, matches.len).unwrap();
        let b_idx = gpu.dtoh_prefix(&matches.b_idx, matches.len).unwrap();
        for (k, &d) in got.iter().enumerate() {
            assert_eq!(a[a_idx[k] as usize], d);
            assert_eq!(b[b_idx[k] as usize], d);
        }
    }

    #[test]
    fn paper_fig6_example() {
        // A = (1,3,4,6,7,9,15,25,31), B = (1,3,7,10,18,25,31) ->
        // intersection (1,3,7,25,31).
        check(
            vec![1, 3, 4, 6, 7, 9, 15, 25, 31],
            vec![1, 3, 7, 10, 18, 25, 31],
        );
    }

    #[test]
    fn disjoint_lists() {
        check(
            (0..500).map(|i| i * 2).collect(),
            (0..500).map(|i| i * 2 + 1).collect(),
        );
    }

    #[test]
    fn identical_lists() {
        let v: Vec<u32> = (0..1000).map(|i| i * 3 + 1).collect();
        check(v.clone(), v);
    }

    #[test]
    fn matches_on_partition_boundaries() {
        // Dense overlap so equal pairs land on many diagonal boundaries.
        let a: Vec<u32> = (0..4096).collect();
        let b: Vec<u32> = (0..4096).filter(|i| i % 3 != 1).collect();
        check(a, b);
    }

    #[test]
    fn very_different_lengths() {
        let a: Vec<u32> = (0..32).map(|i| i * 997).collect();
        let b: Vec<u32> = (0..20_000).collect();
        check(a, b);
    }

    #[test]
    fn empty_sides() {
        check(vec![], vec![1, 2, 3]);
        check(vec![1, 2, 3], vec![]);
    }

    #[test]
    fn pseudo_random_lists() {
        let mut state = 7u64;
        let mut next = |max: u32| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32 % max
        };
        for trial in 0..5u32 {
            let mut a: Vec<u32> = (0..2000 + trial * 100).map(|_| next(50_000)).collect();
            let mut b: Vec<u32> = (0..1500).map(|_| next(50_000)).collect();
            a.sort_unstable();
            a.dedup();
            b.sort_unstable();
            b.dedup();
            check(a, b);
        }
    }

    #[test]
    fn temp_memory_is_released() {
        let gpu = Gpu::new(DeviceConfig::test_tiny());
        let cfg = MergePathConfig::for_device(gpu.config());
        let a: Vec<u32> = (0..3000).map(|i| i * 2).collect();
        let b: Vec<u32> = (0..3000).map(|i| i * 3).collect();
        let da = gpu.htod(&a).unwrap();
        let db = gpu.htod(&b).unwrap();
        let before = gpu.mem_in_use();
        let matches = intersect(&gpu, &da, a.len(), &db, b.len(), &cfg).unwrap();
        let expect_extra = matches.docids.size_bytes() * 3;
        assert_eq!(gpu.mem_in_use(), before + expect_extra);
    }
}
