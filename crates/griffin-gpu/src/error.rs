//! Typed errors for the GPU engine.
//!
//! Two failure classes reach the engine: device faults surfaced by the
//! simulator ([`DeviceError`]: injected faults, device loss, memory
//! exhaustion) and corrupt compressed input discovered while staging a
//! list for the device ([`CodecError`]). Both are recoverable by the
//! Griffin scheduler — it retries transient device faults and migrates
//! the query step to the CPU engine otherwise — so neither may panic.

use griffin_codec::CodecError;
use griffin_gpu_sim::DeviceError;

/// Any error a [`crate::GpuEngine`] operation can produce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GpuError {
    /// The device failed (injected fault, OOM, or device loss).
    Device(DeviceError),
    /// Compressed posting-list data failed validation while being
    /// flattened into the device layout.
    Corrupt(CodecError),
}

impl GpuError {
    /// Whether retrying the same operation can succeed: true for
    /// transient device faults, false for device loss and corrupt data.
    pub fn is_transient(&self) -> bool {
        match self {
            GpuError::Device(e) => e.is_transient(),
            GpuError::Corrupt(_) => false,
        }
    }

    /// Short stable label for metrics (`griffin_fault_*` label values).
    pub fn kind_label(&self) -> &'static str {
        match self {
            GpuError::Device(e) => e.kind_label(),
            GpuError::Corrupt(_) => "corrupt_list",
        }
    }
}

impl From<DeviceError> for GpuError {
    fn from(e: DeviceError) -> Self {
        GpuError::Device(e)
    }
}

impl From<CodecError> for GpuError {
    fn from(e: CodecError) -> Self {
        GpuError::Corrupt(e)
    }
}

impl std::fmt::Display for GpuError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GpuError::Device(e) => write!(f, "device error: {e}"),
            GpuError::Corrupt(e) => write!(f, "corrupt posting list: {e}"),
        }
    }
}

impl std::error::Error for GpuError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GpuError::Device(e) => Some(e),
            GpuError::Corrupt(e) => Some(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transience_follows_the_inner_error() {
        assert!(GpuError::Device(DeviceError::KernelLaunchFailed { op_index: 3 }).is_transient());
        assert!(!GpuError::Device(DeviceError::DeviceLost { op_index: 3 }).is_transient());
        assert!(!GpuError::Corrupt(CodecError::Truncated).is_transient());
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(
            GpuError::Device(DeviceError::DeviceLost { op_index: 0 }).kind_label(),
            "device_lost"
        );
        assert_eq!(
            GpuError::Corrupt(CodecError::Truncated).kind_label(),
            "corrupt_list"
        );
    }
}
