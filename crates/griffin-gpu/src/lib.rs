//! # griffin-gpu — the Griffin-GPU search engine (paper §3.1)
//!
//! The GPU side of Griffin, running on the [`griffin_gpu_sim`] device. Two
//! key algorithms:
//!
//! * **Para-EF decompression** ([`para_ef`], paper Algorithm 1): popcount
//!   over the Elias–Fano high-bits words, a device-wide prefix sum, a
//!   scatter phase that assigns one thread per decompressed element, and a
//!   recover phase that reconstructs each value independently.
//! * **MergePath intersection** ([`mergepath`], paper Figs. 5–6, after
//!   Green et al.): diagonal binary searches find perfectly load-balanced
//!   partitions of the two lists; each partition is merged serially in
//!   shared memory, with no inter-thread synchronization.
//!
//! Plus the supporting cast: parallel binary search over skip pointers with
//! selective block decompression ([`gpu_binary`]), device-wide scan
//! ([`scan`]), GPU bucket-select and radix-sort rankers for the Fig. 7
//! study ([`bucket_select`], [`radix_sort`]), device list layouts and
//! transfers ([`transfer`]), and the query-step engine ([`engine`]).

pub mod bucket_select;
pub mod engine;
pub mod error;
pub mod gpu_binary;
pub mod mergepath;
pub mod para_ef;
pub mod radix_sort;
pub mod scan;
pub mod transfer;

pub use engine::{
    CacheStats, DeviceIntermediate, GpuEngine, GpuPrunedOutput, GpuQueryOutput, GpuStrategy,
};
pub use error::GpuError;
pub use transfer::{DeviceEfList, DevicePostings};
