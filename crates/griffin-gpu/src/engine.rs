//! The Griffin-GPU query engine: composes transfers, Para-EF, MergePath /
//! parallel binary search, and on-device BM25 accumulation into query
//! steps, mirroring the CPU engine's step API so Griffin's scheduler can
//! mix them freely.
//!
//! Like the paper's prototype, final ranking runs on the CPU
//! (`partial_sort` won the Fig. 7 study); the engine ships back only the
//! surviving (docid, score) pairs.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

use griffin_cpu::cost::WorkCounters;
use griffin_cpu::rank::Bm25;
use griffin_cpu::{topk, Intermediate};
use griffin_gpu_sim::{
    DeviceBuffer, Gpu, Kernel, LaunchConfig, Op, StreamEvent, StreamKind, ThreadCtx, VirtualNanos,
};
use griffin_index::{CorpusMeta, InvertedIndex, TermId};

use crate::error::GpuError;
use crate::gpu_binary;
use crate::mergepath::{self, MergePathConfig};
use crate::para_ef;
use crate::transfer::DevicePostings;

const BLOCK_DIM: u32 = 256;

/// Which intersection kernel to use for a pairwise step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GpuStrategy {
    /// Load-balanced MergePath over fully decompressed lists.
    MergePath,
    /// Parallel binary search over skip pointers with selective block
    /// decompression.
    BinarySearch,
    /// Pick by length ratio (Griffin-GPU's §3.1.2 behaviour).
    Auto,
}

/// The query's running state on the device: surviving docIDs and their
/// accumulated partial BM25 scores.
pub struct DeviceIntermediate {
    pub docids: DeviceBuffer<u32>,
    pub scores: DeviceBuffer<f32>,
    pub len: usize,
}

impl DeviceIntermediate {
    pub fn free(self, gpu: &Gpu) {
        gpu.free(self.docids);
        gpu.free(self.scores);
    }
}

/// Result of a full GPU-only query ([`GpuEngine::process_query`]).
#[derive(Debug, Clone)]
pub struct GpuQueryOutput {
    /// Top-k (docid, score), best first.
    pub topk: Vec<(u32, f32)>,
    /// Virtual time spent on the device (transfers + kernels).
    pub time: VirtualNanos,
    /// CPU work counters of the final ranking step, for the caller's
    /// cost model (ranking runs on the host, per the Fig. 7 finding).
    pub rank_work: WorkCounters,
}

/// Result of a hull-pruned GPU query ([`GpuEngine::process_query_pruned`]):
/// the ordinary output plus the block-granularity pruning ledger.
#[derive(Debug, Clone)]
pub struct GpuPrunedOutput {
    pub out: GpuQueryOutput,
    /// Blocks across every processed list (the unpruned upload volume).
    pub blocks_total: u64,
    /// Blocks that actually shipped (inside the candidate hull).
    pub blocks_resident: u64,
}

/// A device list obtained for one pruned-chain step: either the full
/// list under the LRU cache's custody, or a hull slice this query owns
/// (see [`GpuEngine::upload_hull`] for the choice).
enum HullUpload {
    Cached(Rc<DevicePostings>),
    Slice(Box<DevicePostings>),
}

impl HullUpload {
    fn postings(&self) -> &DevicePostings {
        match self {
            HullUpload::Cached(p) => p,
            HullUpload::Slice(p) => p,
        }
    }
}

/// BM25 parameters in kernel-friendly form.
#[derive(Clone, Copy)]
struct ScoreParams {
    idf: f32,
    k1: f32,
    b: f32,
    avg_doc_len: f32,
}

/// Initial scoring: `scores[i] = contribution(tf[i], doc_len(docids[i]))`.
struct ScoreInitKernel {
    docids: DeviceBuffer<u32>,
    tfs: DeviceBuffer<u32>,
    scores: DeviceBuffer<f32>,
    doc_lens: Option<DeviceBuffer<u32>>,
    p: ScoreParams,
    n: usize,
}

/// The BM25 term contribution, in exactly the operation order of
/// `griffin_cpu::rank::Bm25::contribution` so CPU and GPU scores are
/// bit-identical.
#[inline]
fn contribution(t: &mut ThreadCtx<'_>, p: ScoreParams, tf: u32, doc_len: f32) -> f32 {
    let tf = tf as f32;
    let norm = if p.avg_doc_len > 0.0 {
        p.k1 * (1.0 - p.b + p.b * doc_len / p.avg_doc_len)
    } else {
        p.k1
    };
    t.op(Op::Mul, 6);
    p.idf * (tf * (p.k1 + 1.0)) / (tf + norm)
}

#[inline]
fn doc_len_of(
    t: &mut ThreadCtx<'_>,
    doc_lens: &Option<DeviceBuffer<u32>>,
    docid: u32,
    avg: f32,
) -> f32 {
    match doc_lens {
        Some(buf) if (docid as usize) < buf.len() => t.ld(buf, docid as usize) as f32,
        _ => avg,
    }
}

impl Kernel for ScoreInitKernel {
    fn name(&self) -> &'static str {
        "engine.score_init"
    }

    type State = ();
    fn run_phase(&self, _p: usize, t: &mut ThreadCtx<'_>, _s: &mut ()) {
        let i = t.global_thread_idx();
        if t.branch(i < self.n) {
            let d = t.ld(&self.docids, i);
            let tf = t.ld(&self.tfs, i);
            let dl = doc_len_of(t, &self.doc_lens, d, self.p.avg_doc_len);
            let s = contribution(t, self.p, tf, dl);
            t.st(&self.scores, i, s);
        }
    }
}

/// Score accumulation after an intersection:
/// `out[i] = old[a_idx[i]] + contribution(tf[b_idx[i]], doc_len)`.
struct ScoreAccumKernel {
    docids: DeviceBuffer<u32>,
    old_scores: DeviceBuffer<f32>,
    a_idx: DeviceBuffer<u32>,
    tfs: DeviceBuffer<u32>, // indexed by b_idx (full) or by match (gathered)
    b_idx: Option<DeviceBuffer<u32>>, // None => tfs already match-aligned
    out_scores: DeviceBuffer<f32>,
    doc_lens: Option<DeviceBuffer<u32>>,
    p: ScoreParams,
    n: usize,
}

impl Kernel for ScoreAccumKernel {
    fn name(&self) -> &'static str {
        "engine.score_accum"
    }

    type State = ();
    fn run_phase(&self, _p: usize, t: &mut ThreadCtx<'_>, _s: &mut ()) {
        let i = t.global_thread_idx();
        if t.branch(i < self.n) {
            let d = t.ld(&self.docids, i);
            let ai = t.ld(&self.a_idx, i) as usize;
            let old = t.ld(&self.old_scores, ai);
            let tf = match &self.b_idx {
                Some(bidx) => {
                    let bi = t.ld(bidx, i) as usize;
                    t.ld(&self.tfs, bi)
                }
                None => t.ld(&self.tfs, i),
            };
            let dl = doc_len_of(t, &self.doc_lens, d, self.p.avg_doc_len);
            let s = old + contribution(t, self.p, tf, dl);
            t.alu(1);
            t.st(&self.out_scores, i, s);
        }
    }
}

/// Gathers the tf of each match by decoding its block's VByte run up to
/// the match position (used on the binary-search path, where only a few
/// blocks were touched and a full tf decode would be wasted work).
struct TfGatherKernel {
    tf_words: DeviceBuffer<u32>,
    tf_offsets: DeviceBuffer<u32>,
    b_idx: DeviceBuffer<u32>,
    out: DeviceBuffer<u32>,
    block_len: usize,
    n: usize,
}

impl Kernel for TfGatherKernel {
    fn name(&self) -> &'static str {
        "engine.tf_gather"
    }

    type State = ();
    fn run_phase(&self, _p: usize, t: &mut ThreadCtx<'_>, _s: &mut ()) {
        let i = t.global_thread_idx();
        if !t.branch(i < self.n) {
            return;
        }
        let gi = t.ld(&self.b_idx, i) as usize;
        let blk = gi / self.block_len;
        let within = gi - blk * self.block_len;
        let mut byte = t.ld(&self.tf_offsets, blk) as usize;
        let mut value = 0u32;
        for _ in 0..=within {
            value = 0;
            let mut shift = 0u32;
            loop {
                let w = t.ld(&self.tf_words, byte / 4);
                let bv = (w >> (8 * (byte % 4))) & 0xFF;
                byte += 1;
                value |= (bv & 0x7F) << shift;
                t.alu(3);
                if !t.branch(bv & 0x80 != 0) {
                    break;
                }
                shift += 7;
            }
        }
        t.st(&self.out, i, value);
    }
}

/// The Griffin-GPU engine.
pub struct GpuEngine<'g> {
    pub gpu: &'g Gpu,
    pub bm25: Bm25,
    pub mp_config: MergePathConfig,
    /// `Auto` switches MergePath → binary search at this long/short ratio
    /// (the paper ties it to the 128-element block size; see §3.2).
    pub binary_ratio_threshold: usize,
    doc_lens: Option<DeviceBuffer<u32>>,
    avg_doc_len: f32,
    num_docs: u32,
    cache: RefCell<ListCache>,
    /// Whether [`GpuEngine::process_query`] runs with copy/compute
    /// overlap (async streams + list prefetch). On by default; results
    /// are bit-exact either way, only the modeled latency changes.
    overlap: Cell<bool>,
    /// Lists whose upload has been issued on the copy stream but not yet
    /// consumed by an intersection. The LRU cache is the landing buffer
    /// (a prefetched list is cached like any other upload); this slot
    /// additionally holds the upload's completion event and — crucially —
    /// any *fault* the in-flight transfer hit, so the error surfaces at
    /// the operation that consumes the data.
    prefetched: RefCell<Vec<Prefetched>>,
}

/// One in-flight prefetch; see [`GpuEngine::prefetch`].
struct Prefetched {
    term: TermId,
    result: Result<Rc<DevicePostings>, GpuError>,
    uploaded: StreamEvent,
}

/// Device list-cache and prefetch counters (reset never; snapshot with
/// [`GpuEngine::cache_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Uploads answered from the device-resident LRU cache.
    pub hits: u64,
    /// Uploads that went over PCIe.
    pub misses: u64,
    /// Prefetches issued on the copy stream.
    pub prefetch_issued: u64,
    /// Prefetches consumed by a later operation (the rest were wasted).
    pub prefetch_consumed: u64,
    /// Resident lists displaced to fit newer ones within the budget.
    pub evictions: u64,
    /// Device bytes currently held by cached lists.
    pub bytes_resident: u64,
}

impl CacheStats {
    /// Fraction of uploads served from the device cache.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// LRU cache of device-resident posting lists.
///
/// The paper's prototype re-ships lists per query; its related-work
/// section criticizes caching *everything* on the 5 GB device as
/// unscalable, and its future work calls for "more advanced scheduling
/// and data transfer management". This bounded LRU is that extension: hot
/// lists (Zipf-distributed query terms hit few lists) stay resident, cold
/// lists are evicted. Disable with [`GpuEngine::set_cache_budget`] (0) for
/// the paper-faithful per-query-transfer behaviour (the ablation bench
/// measures both).
struct ListCache {
    map: HashMap<TermId, CacheEntry>,
    clock: u64,
    bytes: u64,
    budget: u64,
    stats: CacheStats,
}

struct CacheEntry {
    postings: Rc<DevicePostings>,
    last_used: u64,
    bytes: u64,
}

impl ListCache {
    fn evict_to_fit(&mut self, gpu: &Gpu) {
        while self.bytes > self.budget {
            // Oldest entry not currently borrowed by a query step.
            let victim = self
                .map
                .iter()
                .filter(|(_, e)| Rc::strong_count(&e.postings) == 1)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(&t, _)| t);
            let Some(t) = victim else { break };
            let e = self.map.remove(&t).expect("victim exists");
            self.bytes -= e.bytes;
            self.stats.evictions += 1;
            let postings = Rc::try_unwrap(e.postings).expect("count was 1");
            postings.free(gpu);
        }
    }
}

impl<'g> GpuEngine<'g> {
    /// Creates an engine for a uniform-length corpus (synthetic workloads).
    ///
    /// Setup-time transfers are outside the per-query fault-recovery
    /// policy: install fault plans (via [`Gpu::set_fault_plan`]) *after*
    /// constructing the engine. A fault injected into this one-off upload
    /// panics rather than limping along without the doc-length table.
    pub fn new(gpu: &'g Gpu, meta: &CorpusMeta) -> GpuEngine<'g> {
        let doc_lens = if meta.doc_lens.is_empty() {
            None
        } else {
            Some(
                gpu.htod(&meta.doc_lens)
                    .expect("doc-length table upload at engine setup"),
            )
        };
        GpuEngine {
            gpu,
            bm25: Bm25::default(),
            mp_config: MergePathConfig::for_device(gpu.config()),
            binary_ratio_threshold: 128,
            doc_lens,
            avg_doc_len: meta.avg_doc_len,
            num_docs: meta.num_docs,
            cache: RefCell::new(ListCache {
                map: HashMap::new(),
                clock: 0,
                bytes: 0,
                budget: gpu.config().global_mem_bytes * 3 / 4,
                stats: CacheStats::default(),
            }),
            overlap: Cell::new(true),
            prefetched: RefCell::new(Vec::new()),
        }
    }

    /// Enables or disables copy/compute overlap in
    /// [`GpuEngine::process_query`] (and prefetch acceptance). Results
    /// are identical either way; see [`griffin_gpu_sim::stream`].
    pub fn set_overlap(&self, on: bool) {
        self.overlap.set(on);
    }

    /// Whether overlapped execution is enabled.
    pub fn overlap_enabled(&self) -> bool {
        self.overlap.get()
    }

    /// Snapshot of the list-cache and prefetch counters. `bytes_resident`
    /// reflects the cache's custody at snapshot time.
    pub fn cache_stats(&self) -> CacheStats {
        let cache = self.cache.borrow();
        let mut s = cache.stats;
        s.bytes_resident = cache.bytes;
        s
    }

    /// Non-counting residency probe for the cache-aware scheduler: does
    /// this term's full list sit in the device cache right now? Does not
    /// bump LRU order or touch the hit/miss ledger. An unconsumed
    /// prefetch counts — the list is (or will be) device-resident before
    /// any kernel the current decision schedules.
    pub fn is_resident(&self, term: TermId) -> bool {
        self.cache.borrow().map.contains_key(&term)
            || self
                .prefetched
                .borrow()
                .iter()
                .any(|p| p.term == term && p.result.is_ok())
    }

    /// Sets the device-cache budget in bytes (0 disables caching and
    /// restores the paper's per-query transfer behaviour).
    pub fn set_cache_budget(&self, bytes: u64) {
        let mut cache = self.cache.borrow_mut();
        cache.budget = bytes;
        cache.evict_to_fit(self.gpu);
    }

    fn params(&self, doc_freq: u32) -> ScoreParams {
        ScoreParams {
            idf: self.bm25.idf(self.num_docs, doc_freq),
            k1: self.bm25.k1,
            b: self.bm25.b,
            avg_doc_len: self.avg_doc_len,
        }
    }

    /// Returns the term's device-resident posting list, shipping it over
    /// PCIe on a cache miss (and possibly evicting cold lists).
    ///
    /// On a faulted transfer nothing is cached and no device memory is
    /// left behind (the partial upload is rolled back by
    /// [`DevicePostings::upload`]).
    pub fn upload(
        &self,
        index: &InvertedIndex,
        term: TermId,
    ) -> Result<Rc<DevicePostings>, GpuError> {
        let slot = {
            let prefetched = self.prefetched.borrow();
            prefetched.iter().position(|p| p.term == term)
        };
        if let Some(pos) = slot {
            let p = self.prefetched.borrow_mut().remove(pos);
            // A fault that hit the in-flight transfer surfaces here, at
            // the operation that consumes the list.
            let postings = p.result?;
            self.gpu.stream_wait(StreamKind::Compute, p.uploaded);
            self.cache.borrow_mut().stats.prefetch_consumed += 1;
            return Ok(postings);
        }
        let (postings, uploaded) = self.upload_nowait(index, term)?;
        // Kernels issued after this point see the list as resident.
        self.gpu.stream_wait(StreamKind::Compute, uploaded);
        Ok(postings)
    }

    /// Ships only blocks `[lo_block, hi_block)` of `term`'s list — the GPU
    /// slice of a co-executed split intersection. Range uploads bypass the
    /// LRU cache (a slice is useless to any other query); the caller owns
    /// the result and must free it with [`DevicePostings::free`].
    pub fn upload_range(
        &self,
        index: &InvertedIndex,
        term: TermId,
        lo_block: usize,
        hi_block: usize,
    ) -> Result<DevicePostings, GpuError> {
        let postings = DevicePostings::upload_range(
            self.gpu,
            index.list(term),
            lo_block,
            hi_block,
            index.scoring_df(term) as u32,
        )?;
        let uploaded = self.gpu.record_event(StreamKind::Copy);
        self.gpu.stream_wait(StreamKind::Compute, uploaded);
        Ok(postings)
    }

    /// Issues the upload without ordering it before subsequent compute:
    /// the returned event marks when the copy-stream transfer retires.
    fn upload_nowait(
        &self,
        index: &InvertedIndex,
        term: TermId,
    ) -> Result<(Rc<DevicePostings>, StreamEvent), GpuError> {
        let mut cache = self.cache.borrow_mut();
        cache.clock += 1;
        let clock = cache.clock;
        if let Some(e) = cache.map.get_mut(&term) {
            e.last_used = clock;
            let postings = Rc::clone(&e.postings);
            cache.stats.hits += 1;
            // Resident data: any earlier upload of this list was already
            // ordered before compute when it was first consumed.
            return Ok((postings, StreamEvent::READY));
        }
        cache.stats.misses += 1;
        drop(cache);
        let postings = Rc::new(DevicePostings::upload(
            self.gpu,
            index.list(term),
            index.scoring_df(term) as u32,
        )?);
        let uploaded = self.gpu.record_event(StreamKind::Copy);
        let bytes = postings.docs.bytes_shipped
            + postings.tf_words.size_bytes()
            + postings.tf_offsets.size_bytes();
        let mut cache = self.cache.borrow_mut();
        if bytes <= cache.budget {
            cache.bytes += bytes;
            cache.map.insert(
                term,
                CacheEntry {
                    postings: Rc::clone(&postings),
                    last_used: clock,
                    bytes,
                },
            );
            cache.evict_to_fit(self.gpu);
        }
        Ok((postings, uploaded))
    }

    /// Starts shipping `term`'s list on the copy stream so it lands on
    /// the device while earlier kernels run on the compute stream. The
    /// LRU cache is the landing buffer; a later [`GpuEngine::upload`] of
    /// the same term consumes the slot and waits on the transfer event
    /// instead of the whole device. A fault on the in-flight transfer is
    /// held in the slot and charged to the consuming operation.
    ///
    /// No-op when the device is executing serially.
    pub fn prefetch(&self, index: &InvertedIndex, term: TermId) {
        if !self.gpu.async_enabled() {
            return;
        }
        if self.prefetched.borrow().iter().any(|p| p.term == term) {
            return;
        }
        let (result, uploaded) = match self.upload_nowait(index, term) {
            Ok((postings, ev)) => (Ok(postings), ev),
            Err(e) => (Err(e), StreamEvent::READY),
        };
        self.cache.borrow_mut().stats.prefetch_issued += 1;
        self.prefetched.borrow_mut().push(Prefetched {
            term,
            result,
            uploaded,
        });
    }

    /// Drops every unconsumed prefetch, returning its list to the cache's
    /// custody (or freeing it if over budget). Pending transfer faults
    /// are discarded with the slot. Called on every query exit path.
    pub fn drain_prefetch(&self) {
        let drained: Vec<Prefetched> = self.prefetched.borrow_mut().drain(..).collect();
        for p in drained {
            if let Ok(postings) = p.result {
                self.release(postings);
            }
        }
    }

    /// Releases a list obtained from [`GpuEngine::upload`]: cached lists
    /// stay resident; uncached (over-budget) ones are freed immediately.
    pub fn release(&self, postings: Rc<DevicePostings>) {
        if let Ok(p) = Rc::try_unwrap(postings) {
            p.free(self.gpu);
        }
    }

    /// Decompresses the first (shortest) list and scores it.
    ///
    /// A device fault leaves no intermediate buffers allocated.
    pub fn init_intermediate(
        &self,
        postings: &DevicePostings,
    ) -> Result<DeviceIntermediate, GpuError> {
        let gpu = self.gpu;
        let n = postings.len();
        let docids = para_ef::decompress(gpu, &postings.docs)?;
        let tfs = match para_ef::decode_tfs(gpu, postings) {
            Ok(t) => t,
            Err(e) => {
                gpu.free(docids);
                return Err(e.into());
            }
        };
        let scores = match gpu.alloc::<f32>(n) {
            Ok(s) => s,
            Err(e) => {
                gpu.free(docids);
                gpu.free(tfs);
                return Err(e.into());
            }
        };
        if n > 0 {
            if let Err(e) = gpu.launch(
                &ScoreInitKernel {
                    docids: docids.clone(),
                    tfs: tfs.clone(),
                    scores: scores.clone(),
                    doc_lens: self.doc_lens.clone(),
                    p: self.params(postings.df),
                    n,
                },
                LaunchConfig::cover(n, BLOCK_DIM),
            ) {
                gpu.free(docids);
                gpu.free(tfs);
                gpu.free(scores);
                return Err(e.into());
            }
        }
        gpu.free(tfs);
        Ok(DeviceIntermediate {
            docids,
            scores,
            len: n,
        })
    }

    /// One pairwise intersection step. Borrows the old intermediate so a
    /// fault mid-step leaves it intact (the caller can re-materialize it
    /// on the CPU); on success the caller frees the old intermediate.
    pub fn intersect_step(
        &self,
        inter: &DeviceIntermediate,
        postings: &DevicePostings,
        block_len: usize,
        strategy: GpuStrategy,
    ) -> Result<DeviceIntermediate, GpuError> {
        let gpu = self.gpu;
        let long_len = postings.len();
        let ratio = long_len.checked_div(inter.len).unwrap_or(usize::MAX);
        let strategy = match strategy {
            GpuStrategy::Auto => {
                if ratio >= self.binary_ratio_threshold {
                    GpuStrategy::BinarySearch
                } else {
                    GpuStrategy::MergePath
                }
            }
            s => s,
        };
        if inter.len == 0 || long_len == 0 {
            let docids = gpu.alloc(0)?;
            let scores = match gpu.alloc(0) {
                Ok(s) => s,
                Err(e) => {
                    gpu.free(docids);
                    return Err(e.into());
                }
            };
            return Ok(DeviceIntermediate {
                docids,
                scores,
                len: 0,
            });
        }
        // idf from the list's document frequency — `postings.df`, not the
        // resident element count, which is smaller for a range upload.
        let p = self.params(postings.df);

        match strategy {
            GpuStrategy::MergePath => {
                // Comparable lengths: every block is needed anyway, so
                // decompress both sides fully (docids and tfs).
                let long_docids = para_ef::decompress(gpu, &postings.docs)?;
                let long_tfs = match para_ef::decode_tfs(gpu, postings) {
                    Ok(t) => t,
                    Err(e) => {
                        gpu.free(long_docids);
                        return Err(e.into());
                    }
                };
                let matches = match mergepath::intersect(
                    gpu,
                    &inter.docids,
                    inter.len,
                    &long_docids,
                    long_len,
                    &self.mp_config,
                ) {
                    Ok(m) => m,
                    Err(e) => {
                        gpu.free(long_docids);
                        gpu.free(long_tfs);
                        return Err(e.into());
                    }
                };
                let scored = gpu
                    .alloc::<f32>(matches.len)
                    .map_err(GpuError::from)
                    .and_then(|scores| {
                        if matches.len > 0 {
                            if let Err(e) = gpu.launch(
                                &ScoreAccumKernel {
                                    docids: matches.docids.clone(),
                                    old_scores: inter.scores.clone(),
                                    a_idx: matches.a_idx.clone(),
                                    tfs: long_tfs.clone(),
                                    b_idx: Some(matches.b_idx.clone()),
                                    out_scores: scores.clone(),
                                    doc_lens: self.doc_lens.clone(),
                                    p,
                                    n: matches.len,
                                },
                                LaunchConfig::cover(matches.len, BLOCK_DIM),
                            ) {
                                gpu.free(scores);
                                return Err(e.into());
                            }
                        }
                        Ok(scores)
                    });
                gpu.free(long_docids);
                gpu.free(long_tfs);
                match scored {
                    Ok(scores) => {
                        let out = DeviceIntermediate {
                            len: matches.len,
                            docids: matches.docids,
                            scores,
                        };
                        gpu.free(matches.a_idx);
                        gpu.free(matches.b_idx);
                        Ok(out)
                    }
                    Err(e) => {
                        matches.free(gpu);
                        Err(e)
                    }
                }
            }
            GpuStrategy::BinarySearch => {
                let result = gpu_binary::intersect(
                    gpu,
                    &inter.docids,
                    inter.len,
                    &postings.docs,
                    block_len,
                )?;
                let matches = result.matches;
                let scored = gpu
                    .alloc::<f32>(matches.len)
                    .map_err(GpuError::from)
                    .and_then(|scores| {
                        let step = || -> Result<(), GpuError> {
                            if matches.len > 0 {
                                // Gather only the matched tfs (their
                                // blocks are few).
                                let tfs = gpu.alloc::<u32>(matches.len)?;
                                let launched = gpu
                                    .launch(
                                        &TfGatherKernel {
                                            tf_words: postings.tf_words.clone(),
                                            tf_offsets: postings.tf_offsets.clone(),
                                            b_idx: matches.b_idx.clone(),
                                            out: tfs.clone(),
                                            block_len,
                                            n: matches.len,
                                        },
                                        LaunchConfig::cover(matches.len, BLOCK_DIM),
                                    )
                                    .and_then(|_| {
                                        gpu.launch(
                                            &ScoreAccumKernel {
                                                docids: matches.docids.clone(),
                                                old_scores: inter.scores.clone(),
                                                a_idx: matches.a_idx.clone(),
                                                tfs: tfs.clone(),
                                                b_idx: None,
                                                out_scores: scores.clone(),
                                                doc_lens: self.doc_lens.clone(),
                                                p,
                                                n: matches.len,
                                            },
                                            LaunchConfig::cover(matches.len, BLOCK_DIM),
                                        )
                                    });
                                gpu.free(tfs);
                                launched?;
                            }
                            Ok(())
                        };
                        match step() {
                            Ok(()) => Ok(scores),
                            Err(e) => {
                                gpu.free(scores);
                                Err(e)
                            }
                        }
                    });
                match scored {
                    Ok(scores) => {
                        let out = DeviceIntermediate {
                            len: matches.len,
                            docids: matches.docids,
                            scores,
                        };
                        gpu.free(matches.a_idx);
                        gpu.free(matches.b_idx);
                        Ok(out)
                    }
                    Err(e) => {
                        matches.free(gpu);
                        Err(e)
                    }
                }
            }
            GpuStrategy::Auto => unreachable!("resolved above"),
        }
    }

    /// Ships the intermediate's (docid, score) pairs back to the host.
    /// Borrows the intermediate: the caller frees it (on success *and* on
    /// a faulted transfer, where it is still needed for CPU migration).
    pub fn download(&self, inter: &DeviceIntermediate) -> Result<Intermediate, GpuError> {
        let docids = self.gpu.dtoh_prefix(&inter.docids, inter.len)?;
        let scores = self.gpu.dtoh_prefix(&inter.scores, inter.len)?;
        Ok(Intermediate { docids, scores })
    }

    /// Full GPU-only query ("Griffin-GPU running alone" in the paper's
    /// evaluation): all intersections on the device, final ranking on the
    /// CPU via `partial_sort` (the Fig. 7 winner).
    ///
    /// With overlap enabled (the default) this opens an async window on
    /// the device: each term's list ships on the copy stream while the
    /// previous term's decode + intersection run on the compute stream,
    /// so `time` reflects the pipeline's critical path rather than the
    /// serial sum. Results are bit-exact with overlap disabled.
    pub fn process_query(
        &self,
        index: &InvertedIndex,
        terms: &[TermId],
        k: usize,
    ) -> Result<GpuQueryOutput, GpuError> {
        let gpu = self.gpu;
        let was_async = gpu.async_enabled();
        if self.overlap.get() {
            gpu.set_async(true);
        }
        let start = gpu.now();
        let mut rank_work = WorkCounters::default();
        let result = self.process_query_inner(index, terms, k, &mut rank_work);
        // Close the window: leftover prefetches are returned to the
        // cache's custody and all scheduled work retires on the clock, so
        // `time` covers everything this query issued.
        self.drain_prefetch();
        gpu.sync();
        if !was_async {
            gpu.set_async(false);
        }
        let topk = result?;
        let time = gpu.now() - start;
        Ok(GpuQueryOutput {
            topk,
            time,
            rank_work,
        })
    }

    fn process_query_inner(
        &self,
        index: &InvertedIndex,
        terms: &[TermId],
        k: usize,
        rank_work: &mut WorkCounters,
    ) -> Result<Vec<(u32, f32)>, GpuError> {
        let host = self.eval_chain(index, terms)?;
        Ok(topk::top_k(&host.docids, &host.scores, k, rank_work))
    }

    /// Runs the conjunctive chain entirely on the device and ships the
    /// surviving (docid, score) pairs home — [`GpuEngine::process_query`]
    /// minus the final ranking. This is the plan executor's building
    /// block for GPU-placed chain and phrase operators, whose results
    /// feed further (host-side) set operations.
    ///
    /// The caller owns the async window and stream synchronization; any
    /// prefetch left in flight (the chain can end early on an empty
    /// intermediate) stays in the engine's custody until
    /// [`GpuEngine::drain_prefetch`].
    pub fn eval_chain(
        &self,
        index: &InvertedIndex,
        terms: &[TermId],
    ) -> Result<Intermediate, GpuError> {
        let gpu = self.gpu;
        let mut planned = terms.to_vec();
        // scoring_df, not the local list length: the sort fixes the f32
        // score fold order, which must match across shard views.
        planned.sort_by_key(|&t| index.scoring_df(t));
        let Some((&first, rest)) = planned.split_first() else {
            return Ok(Intermediate::default());
        };
        let first_postings = self.upload(index, first)?;
        if let Some(&second) = rest.first() {
            self.prefetch(index, second);
        }
        let inter = self.init_intermediate(&first_postings);
        self.release(first_postings);
        let mut inter = inter?;
        for (i, &t) in rest.iter().enumerate() {
            if inter.len == 0 {
                break;
            }
            let postings = match self.upload(index, t) {
                Ok(p) => p,
                Err(e) => {
                    inter.free(gpu);
                    return Err(e);
                }
            };
            if let Some(&next) = rest.get(i + 1) {
                self.prefetch(index, next);
            }
            let next = self.intersect_step(&inter, &postings, index.block_len(), GpuStrategy::Auto);
            self.release(postings);
            match next {
                Ok(n) => {
                    inter.free(gpu);
                    inter = n;
                }
                Err(e) => {
                    inter.free(gpu);
                    return Err(e);
                }
            }
        }
        let host = self.download(&inter);
        inter.free(gpu);
        host
    }

    /// Full GPU-only query with candidate-hull block pruning: before any
    /// list ships, the host intersects the lists' *skip tables* to find
    /// the docID hull `[max(first docids), min(last docids)]` that every
    /// common document must fall in, then uploads only the blocks
    /// overlapping that hull (range uploads, like a co-executed split's
    /// device lane). Blocks outside the hull are pruned before decode —
    /// they never cross PCIe. BM25 sees each list's full document
    /// frequency, so scores are bit-exact with the unpruned path.
    pub fn process_query_pruned(
        &self,
        index: &InvertedIndex,
        terms: &[TermId],
        k: usize,
    ) -> Result<GpuPrunedOutput, GpuError> {
        let gpu = self.gpu;
        let was_async = gpu.async_enabled();
        if self.overlap.get() {
            gpu.set_async(true);
        }
        let start = gpu.now();
        let mut rank_work = WorkCounters::default();
        let mut blocks_total = 0u64;
        let mut blocks_resident = 0u64;
        let result = self.pruned_query_inner(
            index,
            terms,
            k,
            &mut rank_work,
            &mut blocks_total,
            &mut blocks_resident,
        );
        gpu.sync();
        if !was_async {
            gpu.set_async(false);
        }
        let topk = result?;
        let time = gpu.now() - start;
        Ok(GpuPrunedOutput {
            out: GpuQueryOutput {
                topk,
                time,
                rank_work,
            },
            blocks_total,
            blocks_resident,
        })
    }

    fn pruned_query_inner(
        &self,
        index: &InvertedIndex,
        terms: &[TermId],
        k: usize,
        rank_work: &mut WorkCounters,
        blocks_total: &mut u64,
        blocks_resident: &mut u64,
    ) -> Result<Vec<(u32, f32)>, GpuError> {
        let gpu = self.gpu;
        let mut planned = terms.to_vec();
        // scoring_df, not the local list length: the sort fixes the f32
        // score fold order, which must match across shard views.
        planned.sort_by_key(|&t| index.scoring_df(t));
        let Some((&first, rest)) = planned.split_first() else {
            return Ok(Vec::new());
        };
        // The hull from the host-resident skip tables: a common docID is
        // in every list, so it is >= every list's first docID and <=
        // every list's last.
        let mut hull_lo = 0u32;
        let mut hull_hi = u32::MAX;
        for &t in &planned {
            let skips = &index.list(t).docs.skips;
            let (Some(head), Some(tail)) = (skips.first(), skips.last()) else {
                return Ok(Vec::new());
            };
            hull_lo = hull_lo.max(head.first_docid);
            hull_hi = hull_hi.min(tail.last_docid);
        }
        // Blocks of `t` overlapping the hull; every block outside is
        // pruned before decode (it never ships).
        let hull_blocks = |t: TermId| {
            let skips = &index.list(t).docs.skips;
            let lo = skips.partition_point(|s| s.last_docid < hull_lo);
            let hi = skips.partition_point(|s| s.first_docid <= hull_hi);
            (lo, hi.max(lo))
        };
        if hull_lo > hull_hi {
            // The lists' ranges don't even overlap: the intersection is
            // empty and nothing ships at all.
            for &t in &planned {
                *blocks_total += index.list(t).docs.num_blocks() as u64;
            }
            return Ok(Vec::new());
        }

        *blocks_total += index.list(first).docs.num_blocks() as u64;
        let (lo, hi) = hull_blocks(first);
        let first_postings = self.upload_hull(index, first, lo, hi, blocks_resident)?;
        let inter = self.init_intermediate(first_postings.postings());
        self.release_hull(first_postings);
        let mut inter = inter?;
        for &t in rest {
            if inter.len == 0 {
                break;
            }
            *blocks_total += index.list(t).docs.num_blocks() as u64;
            let (lo, hi) = hull_blocks(t);
            let postings = match self.upload_hull(index, t, lo, hi, blocks_resident) {
                Ok(p) => p,
                Err(e) => {
                    inter.free(gpu);
                    return Err(e);
                }
            };
            let next = self.intersect_step(
                &inter,
                postings.postings(),
                index.block_len(),
                GpuStrategy::Auto,
            );
            self.release_hull(postings);
            match next {
                Ok(n) => {
                    inter.free(gpu);
                    inter = n;
                }
                Err(e) => {
                    inter.free(gpu);
                    return Err(e);
                }
            }
        }
        let host = self.download(&inter);
        inter.free(gpu);
        let host = host?;
        Ok(topk::top_k(&host.docids, &host.scores, k, rank_work))
    }

    /// Ships a list for the pruned path, weighing the hull restriction
    /// against the LRU cache:
    ///
    /// * already device-resident → use the cached full list (a hit costs
    ///   nothing; a slice would re-cross PCIe);
    /// * hull covers at least half the blocks → normal cached upload:
    ///   the slice's saving is small and a full upload stays resident
    ///   for the workload's later queries (Zipf reuse is exactly where
    ///   the cache earns its keep);
    /// * narrow hull → range upload of just the overlapping blocks,
    ///   owned by this query and freed after its intersection.
    ///
    /// Correctness never depends on the choice: blocks outside the hull
    /// contain no common docIDs, and BM25 sees the full-list document
    /// frequency either way.
    fn upload_hull(
        &self,
        index: &InvertedIndex,
        term: TermId,
        lo: usize,
        hi: usize,
        blocks_resident: &mut u64,
    ) -> Result<HullUpload, GpuError> {
        let num_blocks = index.list(term).docs.num_blocks();
        let cached = self.cache.borrow().map.contains_key(&term);
        if cached || (hi - lo) * 2 >= num_blocks {
            *blocks_resident += num_blocks as u64;
            return Ok(HullUpload::Cached(self.upload(index, term)?));
        }
        *blocks_resident += (hi - lo) as u64;
        Ok(HullUpload::Slice(Box::new(
            self.upload_range(index, term, lo, hi)?,
        )))
    }

    /// Returns a [`HullUpload`] to its owner: cached lists to the LRU
    /// cache's custody, slices to the allocator.
    fn release_hull(&self, upload: HullUpload) {
        match upload {
            HullUpload::Cached(p) => self.release(p),
            HullUpload::Slice(p) => p.free(self.gpu),
        }
    }

    /// Frees engine-owned device state (the list cache and the doc-length
    /// table).
    pub fn shutdown(self) {
        self.drain_prefetch();
        let mut cache = self.cache.into_inner();
        for (_, e) in cache.map.drain() {
            let postings =
                Rc::try_unwrap(e.postings).expect("no query steps outstanding at shutdown");
            postings.free(self.gpu);
        }
        if let Some(b) = self.doc_lens {
            self.gpu.free(b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use griffin_codec::Codec;
    use griffin_cpu::CpuEngine;
    use griffin_gpu_sim::DeviceConfig;
    use griffin_index::InvertedIndex;

    fn synthetic_index(lists: &[Vec<u32>], num_docs: u32) -> InvertedIndex {
        InvertedIndex::from_docid_lists(lists, num_docs, Codec::EliasFano, 128)
    }

    fn term(idx: &InvertedIndex, i: usize) -> TermId {
        idx.lookup(&format!("t{i}")).expect("term exists")
    }

    #[test]
    fn gpu_query_matches_cpu_query() {
        let lists = vec![
            (0..400u32).map(|i| i * 31 + 5).collect::<Vec<_>>(),
            (0..3000u32).map(|i| i * 4 + 1).collect::<Vec<_>>(),
            (0..8000u32).map(|i| i * 2 + 1).collect::<Vec<_>>(),
        ];
        let idx = synthetic_index(&lists, 20_000);
        let terms: Vec<TermId> = (0..3).map(|i| term(&idx, i)).collect();

        let cpu = CpuEngine::new();
        let cpu_out = cpu.process_query(&idx, &terms, 10);

        let gpu = Gpu::new(DeviceConfig::test_tiny());
        let engine = GpuEngine::new(&gpu, idx.meta());
        let gpu_out = engine.process_query(&idx, &terms, 10).unwrap();

        assert_eq!(cpu_out.topk.len(), gpu_out.topk.len());
        for (c, g) in cpu_out.topk.iter().zip(&gpu_out.topk) {
            assert_eq!(c.0, g.0, "docids must agree");
            assert!((c.1 - g.1).abs() < 1e-5, "scores must agree: {c:?} {g:?}");
        }
        assert!(gpu_out.time.as_nanos() > 0);
    }

    #[test]
    fn strategies_produce_identical_intermediates() {
        let short: Vec<u32> = (0..100u32).map(|i| i * 211 + 7).collect();
        let long: Vec<u32> = (0..20_000u32).map(|i| i * 2 + 1).collect();
        let idx = synthetic_index(&[short, long], 50_000);

        let gpu = Gpu::new(DeviceConfig::test_tiny());
        let engine = GpuEngine::new(&gpu, idx.meta());
        let t0 = engine.upload(&idx, term(&idx, 0)).unwrap();
        let t1 = engine.upload(&idx, term(&idx, 1)).unwrap();

        let mut results = Vec::new();
        for strategy in [GpuStrategy::MergePath, GpuStrategy::BinarySearch] {
            let inter = engine.init_intermediate(&t0).unwrap();
            let next = engine
                .intersect_step(&inter, &t1, idx.block_len(), strategy)
                .unwrap();
            inter.free(&gpu);
            results.push(engine.download(&next).unwrap());
            next.free(&gpu);
        }
        assert_eq!(results[0], results[1]);
        assert!(
            !results[0].is_empty(),
            "test needs a non-empty intersection"
        );
    }

    #[test]
    fn empty_intersection_handled() {
        let evens: Vec<u32> = (0..1000u32).map(|i| i * 2).collect();
        let odds: Vec<u32> = (0..1000u32).map(|i| i * 2 + 1).collect();
        let idx = synthetic_index(&[evens, odds], 3_000);
        let gpu = Gpu::new(DeviceConfig::test_tiny());
        let engine = GpuEngine::new(&gpu, idx.meta());
        let terms = vec![term(&idx, 0), term(&idx, 1)];
        let out = engine.process_query(&idx, &terms, 10).unwrap();
        assert!(out.topk.is_empty());
    }

    #[test]
    fn overlap_is_bit_exact_and_no_slower_than_serial() {
        // Three long lists so the pipeline has transfers to hide.
        let lists: Vec<Vec<u32>> = vec![
            (0..4_000u32).map(|i| i * 7 + 3).collect(),
            (0..30_000u32).map(|i| i * 2 + 1).collect(),
            (0..50_000u32).map(|i| i + 1).collect(),
        ];
        let idx = synthetic_index(&lists, 120_000);
        let terms = vec![term(&idx, 0), term(&idx, 1), term(&idx, 2)];

        let run = |overlap: bool| {
            let gpu = Gpu::new(DeviceConfig::test_tiny());
            let engine = GpuEngine::new(&gpu, idx.meta());
            engine.set_overlap(overlap);
            let out = engine.process_query(&idx, &terms, 20).unwrap();
            let stats = engine.cache_stats();
            engine.shutdown();
            assert_eq!(gpu.mem_in_use(), 0);
            (out, stats)
        };
        let (serial, _) = run(false);
        let (pipelined, stats) = run(true);

        assert_eq!(serial.topk, pipelined.topk, "overlap must be bit-exact");
        assert!(
            pipelined.time <= serial.time,
            "pipelined ({:?}) must not exceed serial ({:?})",
            pipelined.time,
            serial.time
        );
        assert_eq!(stats.prefetch_issued, 2);
        assert_eq!(stats.prefetch_consumed, 2);
        assert_eq!(stats.misses, 3);
    }

    #[test]
    fn repeated_query_hits_the_device_cache() {
        let lists: Vec<Vec<u32>> = vec![
            (0..1_000u32).map(|i| i * 5).collect(),
            (0..10_000u32).map(|i| i * 2).collect(),
        ];
        let idx = synthetic_index(&lists, 40_000);
        let gpu = Gpu::new(DeviceConfig::test_tiny());
        let engine = GpuEngine::new(&gpu, idx.meta());
        let terms = vec![term(&idx, 0), term(&idx, 1)];
        let a = engine.process_query(&idx, &terms, 10).unwrap();
        let b = engine.process_query(&idx, &terms, 10).unwrap();
        assert_eq!(a.topk, b.topk);
        let stats = engine.cache_stats();
        assert_eq!(stats.misses, 2, "second query should be all hits");
        assert!(stats.hits >= 2);
        assert!(stats.hit_rate() > 0.0);
        assert!(
            b.time <= a.time,
            "cache-hot query must not be slower than the cold one"
        );
        engine.shutdown();
        assert_eq!(gpu.mem_in_use(), 0);
    }

    #[test]
    fn device_memory_is_reclaimed_after_query() {
        let lists = vec![
            (0..500u32).map(|i| i * 13).collect::<Vec<_>>(),
            (0..5_000u32).map(|i| i * 3).collect::<Vec<_>>(),
        ];
        let idx = synthetic_index(&lists, 20_000);
        let gpu = Gpu::new(DeviceConfig::test_tiny());
        let engine = GpuEngine::new(&gpu, idx.meta());
        let terms = vec![term(&idx, 0), term(&idx, 1)];
        let _ = engine.process_query(&idx, &terms, 10);
        // Cached lists persist across queries; shutdown drains them.
        engine.shutdown();
        assert_eq!(gpu.mem_in_use(), 0, "all device buffers must be freed");
    }
}
