//! Para-EF: parallel Elias–Fano decompression (paper §3.1.1, Algorithm 1).
//!
//! Griffin-GPU's decompression pipeline, structured exactly as the paper's
//! algorithm — with the prefix sum realized as a device-wide scan (its
//! "synchronization point"), which in CUDA terms means separate kernel
//! launches:
//!
//! 1. **Popcount** — one thread per high-bits word computes how many
//!    elements the word encodes (`__popc`).
//! 2. **Prefix sum** — exclusive scan of the popcounts ([`crate::scan`]),
//!    giving each word its first output index.
//! 3. **Scatter (scheduling)** — one thread per word writes its word index
//!    into `index_array[ps[i] + k]` for each encoded element: afterwards,
//!    element *e* knows which word encodes it (Algorithm 1 lines 4–8).
//! 4. **Recover** — one thread per element finds its set bit within the
//!    word, reconstructs the high bits from the bit position, fetches its
//!    low bits, and concatenates (Algorithm 1 lines 9–10).
//!
//! A fifth kernel decodes the VByte term-frequency side file (one thread
//! per 128-element block — the stream is sequential within a block, which
//! is why frequencies, unlike docIDs, don't get a fancier scheme).

use griffin_gpu_sim::{DeviceBuffer, DeviceError, Gpu, Kernel, LaunchConfig, Op, ThreadCtx};

use crate::scan::exclusive_scan;
use crate::transfer::{DeviceEfList, DevicePostings};

const BLOCK_DIM: u32 = 256;

/// Phase 1: popcount per high-bits word.
struct PopcKernel {
    hb: DeviceBuffer<u32>,
    ps: DeviceBuffer<u32>,
    n: usize,
}

impl Kernel for PopcKernel {
    fn name(&self) -> &'static str {
        "para_ef.popc"
    }

    type State = ();
    fn run_phase(&self, _p: usize, t: &mut ThreadCtx<'_>, _s: &mut ()) {
        let i = t.global_thread_idx();
        if t.branch(i < self.n) {
            let w = t.ld(&self.hb, i);
            t.op(Op::Popc, 1);
            t.st(&self.ps, i, w.count_ones());
        }
    }
}

/// Phase 3: each word's thread writes its index for every element the word
/// encodes. The loop length varies per thread — the divergence the tracer
/// records here is real and the timing model charges for it.
struct ScatterKernel {
    hb: DeviceBuffer<u32>,
    ps_ex: DeviceBuffer<u32>,
    index_array: DeviceBuffer<u32>,
    n_words: usize,
}

impl Kernel for ScatterKernel {
    fn name(&self) -> &'static str {
        "para_ef.scatter"
    }

    type State = ();
    fn run_phase(&self, _p: usize, t: &mut ThreadCtx<'_>, _s: &mut ()) {
        let i = t.global_thread_idx();
        if !t.branch(i < self.n_words) {
            return;
        }
        let w = t.ld(&self.hb, i);
        t.op(Op::Popc, 1);
        let count = w.count_ones();
        let start = t.ld(&self.ps_ex, i) as usize;
        let mut offset = 0u32;
        while t.branch(offset < count) {
            t.st(&self.index_array, start + offset as usize, i as u32);
            t.alu(1);
            offset += 1;
        }
    }
}

/// Position of the `(rank+1)`-th set bit of `word` (rank < popcount).
/// Charged as popcount-class ops, mirroring the `__popc`-based select the
/// CUDA implementation uses via a shared-memory lookup table.
#[inline]
fn nth_set_bit(t: &mut ThreadCtx<'_>, word: u32, rank: u32) -> u32 {
    let mut w = word;
    for _ in 0..rank {
        w &= w - 1; // clear lowest set bit
    }
    t.op(Op::Popc, rank + 1);
    w.trailing_zeros()
}

/// Phase 4: recover one element per thread.
struct RecoverKernel {
    list_hb: DeviceBuffer<u32>,
    list_lb: DeviceBuffer<u32>,
    block_hb_start: DeviceBuffer<u32>,
    block_lb_start: DeviceBuffer<u32>,
    block_elem_start: DeviceBuffer<u32>,
    block_b: DeviceBuffer<u32>,
    block_base: DeviceBuffer<u32>,
    word_block: DeviceBuffer<u32>,
    ps_ex: DeviceBuffer<u32>,
    index_array: DeviceBuffer<u32>,
    out: DeviceBuffer<u32>,
    n: usize,
}

impl Kernel for RecoverKernel {
    fn name(&self) -> &'static str {
        "para_ef.recover"
    }

    type State = ();
    fn run_phase(&self, _p: usize, t: &mut ThreadCtx<'_>, _s: &mut ()) {
        let e = t.global_thread_idx();
        if !t.branch(e < self.n) {
            return;
        }
        let w_idx = t.ld(&self.index_array, e) as usize;
        let rank = e as u32 - t.ld(&self.ps_ex, w_idx);
        let word = t.ld(&self.list_hb, w_idx);
        let p = nth_set_bit(t, word, rank);

        let blk = t.ld(&self.word_block, w_idx) as usize;
        let hb_start = t.ld(&self.block_hb_start, blk) as usize;
        let elem_start = t.ld(&self.block_elem_start, blk) as usize;
        let bitpos = (w_idx - hb_start) as u32 * 32 + p;
        let ones_before = (e - elem_start) as u32;
        let high = bitpos - ones_before;
        t.alu(4);

        let b = t.ld(&self.block_b, blk);
        let base = t.ld(&self.block_base, blk);
        let low = if t.branch(b > 0) {
            let lb_start_bits = t.ld(&self.block_lb_start, blk) as usize * 32;
            let bit = lb_start_bits + (e - elem_start) * b as usize;
            let w0 = t.ld(&self.list_lb, bit / 32);
            let off = (bit % 32) as u32;
            let have = 32 - off;
            let mut v = w0 >> off;
            if t.branch(b > have) {
                let w1 = t.ld(&self.list_lb, bit / 32 + 1);
                v |= w1 << have;
            }
            t.alu(4);
            if b == 32 {
                v
            } else {
                v & ((1u32 << b) - 1)
            }
        } else {
            0
        };
        t.alu(2);
        t.st(&self.out, e, base + ((high << b) | low));
    }
}

/// Decompresses a device-resident EF list into a dense docID buffer.
/// Intermediate buffers are freed before returning (on both paths); only
/// the output stays.
pub fn decompress(gpu: &Gpu, list: &DeviceEfList) -> Result<DeviceBuffer<u32>, DeviceError> {
    if list.len == 0 {
        return gpu.alloc::<u32>(0);
    }
    let ps = gpu.alloc::<u32>(list.hb_words)?;
    let step1 = gpu.launch(
        &PopcKernel {
            hb: list.hb.clone(),
            ps: ps.clone(),
            n: list.hb_words,
        },
        LaunchConfig::cover(list.hb_words, BLOCK_DIM),
    );
    if let Err(e) = step1 {
        gpu.free(ps);
        return Err(e);
    }
    let (ps_ex, total) = match exclusive_scan(gpu, &ps, list.hb_words) {
        Ok(r) => r,
        Err(e) => {
            gpu.free(ps);
            return Err(e);
        }
    };
    debug_assert_eq!(
        total as usize, list.len,
        "popcount total must equal list length"
    );

    let inner = || -> Result<DeviceBuffer<u32>, DeviceError> {
        let index_array = gpu.alloc::<u32>(list.len)?;
        let step2 = gpu.launch(
            &ScatterKernel {
                hb: list.hb.clone(),
                ps_ex: ps_ex.clone(),
                index_array: index_array.clone(),
                n_words: list.hb_words,
            },
            LaunchConfig::cover(list.hb_words, BLOCK_DIM),
        );
        let step3 = step2.and_then(|_| {
            let out = gpu.alloc::<u32>(list.len)?;
            let launched = gpu.launch(
                &RecoverKernel {
                    list_hb: list.hb.clone(),
                    list_lb: list.lb.clone(),
                    block_hb_start: list.block_hb_start.clone(),
                    block_lb_start: list.block_lb_start.clone(),
                    block_elem_start: list.block_elem_start.clone(),
                    block_b: list.block_b.clone(),
                    block_base: list.block_base.clone(),
                    word_block: list.word_block.clone(),
                    ps_ex: ps_ex.clone(),
                    index_array: index_array.clone(),
                    out: out.clone(),
                    n: list.len,
                },
                LaunchConfig::cover(list.len, BLOCK_DIM),
            );
            match launched {
                Ok(_) => Ok(out),
                Err(e) => {
                    gpu.free(out);
                    Err(e)
                }
            }
        });
        gpu.free(index_array);
        step3
    };
    let result = inner();
    gpu.free(ps);
    gpu.free(ps_ex);
    result
}

/// Decodes the VByte term-frequency side file: one thread per posting
/// block walks its byte run sequentially.
struct TfDecodeKernel {
    tf_words: DeviceBuffer<u32>,
    tf_offsets: DeviceBuffer<u32>,
    block_elem_start: DeviceBuffer<u32>,
    out: DeviceBuffer<u32>,
    num_blocks: usize,
    len: usize,
}

impl Kernel for TfDecodeKernel {
    fn name(&self) -> &'static str {
        "para_ef.tf_decode"
    }

    type State = ();
    fn run_phase(&self, _p: usize, t: &mut ThreadCtx<'_>, _s: &mut ()) {
        let b = t.global_thread_idx();
        if !t.branch(b < self.num_blocks) {
            return;
        }
        let elem_start = t.ld(&self.block_elem_start, b) as usize;
        let elem_end = if t.branch(b + 1 < self.num_blocks) {
            t.ld(&self.block_elem_start, b + 1) as usize
        } else {
            self.len
        };
        let mut byte = t.ld(&self.tf_offsets, b) as usize;
        for e in elem_start..elem_end {
            // Decode one varint.
            let mut v = 0u32;
            let mut shift = 0u32;
            loop {
                let word = t.ld(&self.tf_words, byte / 4);
                let bv = (word >> (8 * (byte % 4))) & 0xFF;
                byte += 1;
                v |= (bv & 0x7F) << shift;
                t.alu(4);
                if !t.branch(bv & 0x80 != 0) {
                    break;
                }
                shift += 7;
            }
            t.st(&self.out, e, v);
        }
    }
}

/// Decompresses the tf side of a posting list into a dense buffer aligned
/// with the docID buffer produced by [`decompress`].
pub fn decode_tfs(gpu: &Gpu, postings: &DevicePostings) -> Result<DeviceBuffer<u32>, DeviceError> {
    let len = postings.len();
    let out = gpu.alloc::<u32>(len)?;
    if len == 0 {
        return Ok(out);
    }
    let launched = gpu.launch(
        &TfDecodeKernel {
            tf_words: postings.tf_words.clone(),
            tf_offsets: postings.tf_offsets.clone(),
            block_elem_start: postings.docs.block_elem_start.clone(),
            out: out.clone(),
            num_blocks: postings.docs.num_blocks,
            len,
        },
        LaunchConfig::cover(postings.docs.num_blocks, 128),
    );
    match launched {
        Ok(_) => Ok(out),
        Err(e) => {
            gpu.free(out);
            Err(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use griffin_codec::{BlockedList, Codec, DEFAULT_BLOCK_LEN};
    use griffin_gpu_sim::DeviceConfig;
    use griffin_index::{CompressedPostingList, Posting};

    fn roundtrip(ids: &[u32]) {
        let gpu = Gpu::new(DeviceConfig::test_tiny());
        let list = BlockedList::compress(ids, Codec::EliasFano, DEFAULT_BLOCK_LEN);
        let dev = DeviceEfList::upload(&gpu, &list).unwrap();
        let out_buf = decompress(&gpu, &dev).unwrap();
        let out = gpu.dtoh(&out_buf).unwrap();
        assert_eq!(out, ids, "Para-EF decompression must be bit-exact");
    }

    #[test]
    fn single_block() {
        roundtrip(&(0..100u32).map(|i| i * 9 + 1).collect::<Vec<_>>());
    }

    #[test]
    fn multi_block() {
        roundtrip(&(0..5_000u32).map(|i| i * 3 + 2).collect::<Vec<_>>());
    }

    #[test]
    fn sparse_list_with_large_gaps() {
        roundtrip(&(0..1_000u32).map(|i| i * 40_000 + 17).collect::<Vec<_>>());
    }

    #[test]
    fn dense_consecutive_docids() {
        roundtrip(&(5_000u32..15_000).collect::<Vec<_>>());
    }

    #[test]
    fn irregular_gap_pattern() {
        let mut ids = Vec::new();
        let mut cur = 0u32;
        let mut state = 99u64;
        for _ in 0..3_000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            cur += 1 + (state >> 33) as u32 % 1000;
            ids.push(cur);
        }
        roundtrip(&ids);
    }

    #[test]
    fn decompress_frees_intermediates() {
        let gpu = Gpu::new(DeviceConfig::test_tiny());
        let ids: Vec<u32> = (0..2000u32).map(|i| i * 5).collect();
        let list = BlockedList::compress(&ids, Codec::EliasFano, 128);
        let dev = DeviceEfList::upload(&gpu, &list).unwrap();
        let before = gpu.mem_in_use();
        let out = decompress(&gpu, &dev).unwrap();
        // Only the output buffer should remain beyond the list itself.
        assert_eq!(gpu.mem_in_use(), before + out.size_bytes());
    }

    #[test]
    fn tf_decode_matches_host() {
        let gpu = Gpu::new(DeviceConfig::test_tiny());
        let postings: Vec<Posting> = (0..1_000u32)
            .map(|i| Posting {
                docid: i * 4 + 1,
                tf: 1 + (i * i) % 300, // multi-byte varints included
            })
            .collect();
        let list = CompressedPostingList::compress(&postings, Codec::EliasFano, 128);
        let dev = DevicePostings::upload(&gpu, &list, list.len() as u32).unwrap();
        let tf_buf = decode_tfs(&gpu, &dev).unwrap();
        let tfs = gpu.dtoh(&tf_buf).unwrap();
        let expect: Vec<u32> = postings.iter().map(|p| p.tf).collect();
        assert_eq!(tfs, expect);
    }

    #[test]
    fn decompression_time_grows_sublinearly_per_element() {
        // Bigger lists amortize launch overhead: ns/element must drop.
        let gpu = Gpu::new(DeviceConfig::tesla_k20());
        let mut per_elem = Vec::new();
        for n in [1_000u32, 100_000] {
            let ids: Vec<u32> = (0..n).map(|i| i * 7 + 3).collect();
            let list = BlockedList::compress(&ids, Codec::EliasFano, 128);
            let dev = DeviceEfList::upload(&gpu, &list).unwrap();
            let (_, t) = gpu.time(|g| decompress(g, &dev).unwrap());
            per_elem.push(t.as_nanos() as f64 / f64::from(n));
        }
        assert!(
            per_elem[1] < per_elem[0] / 2.0,
            "per-element cost should fall with size: {per_elem:?}"
        );
    }
}
