//! Parallel binary-search intersection over skip pointers (paper §3.1.2):
//! Griffin-GPU's strategy when the two lists' lengths differ widely.
//!
//! "Griffin-GPU first does binary search over the skip pointers instead of
//! the long list to identify blocks that may contain the elements in the
//! short list. It then only transfers, decompresses, and processes those
//! blocks."
//!
//! Pipeline (all device-side; the only host synchronizations are the two
//! 4-byte count read-backs that size allocations, as in a CUDA build):
//!
//! 1. **Skip search** — one thread per short-list element binary searches
//!    the skip table and flags its candidate block.
//! 2. **Needed-block compaction** — scan + scatter produce the dense list
//!    of blocks to decompress.
//! 3. **Selective block decode** — one GPU block per needed list block
//!    runs a block-local Elias–Fano decode into a scratch slab.
//! 4. **In-block search** — one thread per short-list element binary
//!    searches its decoded block.
//! 5. **Match compaction** — scan + scatter into the dense result.

use griffin_gpu_sim::{DeviceBuffer, DeviceError, Gpu, Kernel, LaunchConfig, Op, ThreadCtx};

use crate::mergepath::DeviceMatches;
use crate::scan::exclusive_scan;
use crate::transfer::DeviceEfList;

const BLOCK_DIM: u32 = 256;
const NO_BLOCK: u32 = u32::MAX;

/// Phase 1: map each short element to its candidate block.
struct SkipSearchKernel {
    short: DeviceBuffer<u32>,
    skip_first: DeviceBuffer<u32>,
    skip_last: DeviceBuffer<u32>,
    elem_block: DeviceBuffer<u32>,
    block_needed: DeviceBuffer<u32>,
    m: usize,
    num_blocks: usize,
}

impl Kernel for SkipSearchKernel {
    fn name(&self) -> &'static str {
        "gpu_binary.skip_search"
    }

    type State = ();
    fn run_phase(&self, _p: usize, t: &mut ThreadCtx<'_>, _s: &mut ()) {
        let i = t.global_thread_idx();
        if !t.branch(i < self.m) {
            return;
        }
        let v = t.ld(&self.short, i);
        // First block with last_docid >= v.
        let mut lo = 0usize;
        let mut hi = self.num_blocks;
        while t.branch(lo < hi) {
            let mid = lo + (hi - lo) / 2;
            let last = t.ld(&self.skip_last, mid);
            t.alu(1);
            if t.branch(last < v) {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        if t.branch(lo < self.num_blocks) {
            let first = t.ld(&self.skip_first, lo);
            if t.branch(v >= first) {
                t.st(&self.elem_block, i, lo as u32);
                // Conflicting stores of the same value: any winner is fine.
                t.st(&self.block_needed, lo, 1);
                return;
            }
        }
        t.st(&self.elem_block, i, NO_BLOCK);
    }
}

/// Phase 2b: scatter needed block ids into their scan-assigned slots.
struct BlockScatterKernel {
    block_needed: DeviceBuffer<u32>,
    block_slot: DeviceBuffer<u32>,
    needed_blocks: DeviceBuffer<u32>,
    num_blocks: usize,
}

impl Kernel for BlockScatterKernel {
    fn name(&self) -> &'static str {
        "gpu_binary.block_scatter"
    }

    type State = ();
    fn run_phase(&self, _p: usize, t: &mut ThreadCtx<'_>, _s: &mut ()) {
        let b = t.global_thread_idx();
        if !t.branch(b < self.num_blocks) {
            return;
        }
        let needed = t.ld(&self.block_needed, b) == 1;
        if t.branch(needed) {
            let slot = t.ld(&self.block_slot, b) as usize;
            t.st(&self.needed_blocks, slot, b as u32);
        }
    }
}

/// Phase 3: block-local Elias–Fano decode of the needed blocks only.
/// GPU block `g` decodes inverted-list block `needed_blocks[g]` into
/// `scratch[g * block_len ..]`.
struct BlockDecodeKernel {
    list: BlockDecodeView,
    needed_blocks: DeviceBuffer<u32>,
    scratch: DeviceBuffer<u32>,
    needed_count: usize,
    block_len: usize,
    max_hb_words: usize,
}

/// The subset of [`DeviceEfList`] buffers the decoder needs.
struct BlockDecodeView {
    hb: DeviceBuffer<u32>,
    lb: DeviceBuffer<u32>,
    block_hb_start: DeviceBuffer<u32>,
    block_lb_start: DeviceBuffer<u32>,
    block_elem_start: DeviceBuffer<u32>,
    block_b: DeviceBuffer<u32>,
    block_base: DeviceBuffer<u32>,
    num_blocks: usize,
    len: usize,
    hb_words: usize,
}

impl BlockDecodeView {
    fn new(list: &DeviceEfList) -> Self {
        BlockDecodeView {
            hb: list.hb.clone(),
            lb: list.lb.clone(),
            block_hb_start: list.block_hb_start.clone(),
            block_lb_start: list.block_lb_start.clone(),
            block_elem_start: list.block_elem_start.clone(),
            block_b: list.block_b.clone(),
            block_base: list.block_base.clone(),
            num_blocks: list.num_blocks,
            len: list.len,
            hb_words: list.hb_words,
        }
    }
}

impl Kernel for BlockDecodeKernel {
    fn name(&self) -> &'static str {
        "gpu_binary.block_decode"
    }

    type State = ();

    fn phases(&self) -> usize {
        2
    }

    fn shared_mem_words(&self, _block_dim: u32) -> usize {
        self.max_hb_words + 1
    }

    fn run_phase(&self, phase: usize, t: &mut ThreadCtx<'_>, _s: &mut ()) {
        let g = t.block_idx as usize;
        if g >= self.needed_count {
            return;
        }
        let blk = t.ld(&self.needed_blocks, g) as usize;
        let hb_start = t.ld(&self.list.block_hb_start, blk) as usize;
        let hb_end = if t.branch(blk + 1 < self.list.num_blocks) {
            t.ld(&self.list.block_hb_start, blk + 1) as usize
        } else {
            self.list.hb_words
        };
        let elem_start = t.ld(&self.list.block_elem_start, blk) as usize;
        let elem_end = if t.branch(blk + 1 < self.list.num_blocks) {
            t.ld(&self.list.block_elem_start, blk + 1) as usize
        } else {
            self.list.len
        };
        let count = elem_end - elem_start;

        if phase == 0 {
            // Thread 0 computes the cumulative popcount per high-bits word
            // (a dozen words at most: serial is the right call here).
            if t.branch(t.thread_idx == 0) {
                let mut cum = 0u32;
                for (w, word_idx) in (hb_start..hb_end).enumerate() {
                    t.st_shared(w, cum);
                    let word = t.ld(&self.list.hb, word_idx);
                    t.op(Op::Popc, 1);
                    cum += word.count_ones();
                }
                t.st_shared(hb_end - hb_start, cum);
            }
            return;
        }

        // Phase 1: each thread decodes one element.
        let j = t.thread_idx as usize;
        if !t.branch(j < count) {
            return;
        }
        // Find the word encoding element j: linear scan of the cumulative
        // counts (short; a real kernel would keep this in registers via
        // ballots, costed the same).
        let nwords = hb_end - hb_start;
        let mut w = 0usize;
        loop {
            let advance = w + 1 < nwords && t.ld_shared(w + 1) as usize <= j;
            if !t.branch(advance) {
                break;
            }
            w += 1;
            t.alu(1);
        }
        let rank = j as u32 - t.ld_shared(w);
        let word = t.ld(&self.list.hb, hb_start + w);
        let mut tmp = word;
        for _ in 0..rank {
            tmp &= tmp - 1;
        }
        t.op(Op::Popc, rank + 1);
        let p = tmp.trailing_zeros();
        let bitpos = w as u32 * 32 + p;
        let high = bitpos - j as u32;
        t.alu(3);

        let b = t.ld(&self.list.block_b, blk);
        let base = t.ld(&self.list.block_base, blk);
        let low = if t.branch(b > 0) {
            let bit = t.ld(&self.list.block_lb_start, blk) as usize * 32 + j * b as usize;
            let w0 = t.ld(&self.list.lb, bit / 32);
            let off = (bit % 32) as u32;
            let have = 32 - off;
            let mut v = w0 >> off;
            if t.branch(b > have) {
                v |= t.ld(&self.list.lb, bit / 32 + 1) << have;
            }
            t.alu(4);
            if b == 32 {
                v
            } else {
                v & ((1u32 << b) - 1)
            }
        } else {
            0
        };
        t.alu(2);
        t.st(
            &self.scratch,
            g * self.block_len + j,
            base + ((high << b) | low),
        );
    }
}

/// Phase 4: search each short element in its decoded block.
struct InBlockSearchKernel {
    short: DeviceBuffer<u32>,
    elem_block: DeviceBuffer<u32>,
    block_slot: DeviceBuffer<u32>,
    block_elem_start: DeviceBuffer<u32>,
    scratch: DeviceBuffer<u32>,
    match_flag: DeviceBuffer<u32>,
    match_bidx: DeviceBuffer<u32>,
    m: usize,
    num_blocks: usize,
    len: usize,
    block_len: usize,
}

impl Kernel for InBlockSearchKernel {
    fn name(&self) -> &'static str {
        "gpu_binary.in_block_search"
    }

    type State = ();
    fn run_phase(&self, _p: usize, t: &mut ThreadCtx<'_>, _s: &mut ()) {
        let i = t.global_thread_idx();
        if !t.branch(i < self.m) {
            return;
        }
        let blk = t.ld(&self.elem_block, i);
        if t.branch(blk == NO_BLOCK) {
            t.st(&self.match_flag, i, 0);
            return;
        }
        let blk = blk as usize;
        let slot = t.ld(&self.block_slot, blk) as usize;
        let elem_start = t.ld(&self.block_elem_start, blk) as usize;
        let elem_end = if t.branch(blk + 1 < self.num_blocks) {
            t.ld(&self.block_elem_start, blk + 1) as usize
        } else {
            self.len
        };
        let count = elem_end - elem_start;
        let v = t.ld(&self.short, i);
        let base = slot * self.block_len;
        let mut lo = 0usize;
        let mut hi = count;
        let mut found = false;
        let mut pos = 0usize;
        while t.branch(lo < hi) {
            let mid = lo + (hi - lo) / 2;
            let x = t.ld(&self.scratch, base + mid);
            t.alu(1);
            if t.branch(x == v) {
                found = true;
                pos = mid;
                break;
            } else if t.branch(x < v) {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        if t.branch(found) {
            t.st(&self.match_flag, i, 1);
            t.st(&self.match_bidx, i, (elem_start + pos) as u32);
        } else {
            t.st(&self.match_flag, i, 0);
        }
    }
}

/// Phase 5: compact flagged matches into the dense result.
struct MatchCompactKernel {
    short: DeviceBuffer<u32>,
    match_flag: DeviceBuffer<u32>,
    match_bidx: DeviceBuffer<u32>,
    offsets: DeviceBuffer<u32>,
    out_docid: DeviceBuffer<u32>,
    out_aidx: DeviceBuffer<u32>,
    out_bidx: DeviceBuffer<u32>,
    m: usize,
}

impl Kernel for MatchCompactKernel {
    fn name(&self) -> &'static str {
        "gpu_binary.match_compact"
    }

    type State = ();
    fn run_phase(&self, _p: usize, t: &mut ThreadCtx<'_>, _s: &mut ()) {
        let i = t.global_thread_idx();
        if !t.branch(i < self.m) {
            return;
        }
        let matched = t.ld(&self.match_flag, i) == 1;
        if t.branch(matched) {
            let dst = t.ld(&self.offsets, i) as usize;
            let v = t.ld(&self.short, i);
            let b = t.ld(&self.match_bidx, i);
            t.st(&self.out_docid, dst, v);
            t.st(&self.out_aidx, dst, i as u32);
            t.st(&self.out_bidx, dst, b);
        }
    }
}

/// The *classic* parallel binary search of prior GPU IR systems (the
/// baseline the paper's §2.3 critiques): one thread per short element
/// binary searches the fully decompressed long list in global memory —
/// log2(N) divergent, uncoalesced probes per thread.
struct FullBinaryKernel {
    short: DeviceBuffer<u32>,
    long: DeviceBuffer<u32>,
    match_flag: DeviceBuffer<u32>,
    match_bidx: DeviceBuffer<u32>,
    m: usize,
    n: usize,
}

impl Kernel for FullBinaryKernel {
    fn name(&self) -> &'static str {
        "gpu_binary.full_binary"
    }

    type State = ();
    fn run_phase(&self, _p: usize, t: &mut ThreadCtx<'_>, _s: &mut ()) {
        let i = t.global_thread_idx();
        if !t.branch(i < self.m) {
            return;
        }
        let v = t.ld(&self.short, i);
        let mut lo = 0usize;
        let mut hi = self.n;
        let mut found = false;
        let mut pos = 0usize;
        while t.branch(lo < hi) {
            let mid = lo + (hi - lo) / 2;
            let x = t.ld(&self.long, mid);
            t.alu(1);
            if t.branch(x == v) {
                found = true;
                pos = mid;
                break;
            } else if t.branch(x < v) {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        if t.branch(found) {
            t.st(&self.match_flag, i, 1);
            t.st(&self.match_bidx, i, pos as u32);
        } else {
            t.st(&self.match_flag, i, 0);
        }
    }
}

/// Intersects a device-resident decompressed short list against a
/// device-resident decompressed long list by per-element binary search —
/// the prior-work baseline of Fig. 13's "GPU binary" series.
pub fn intersect_decompressed(
    gpu: &Gpu,
    short: &DeviceBuffer<u32>,
    m: usize,
    long: &DeviceBuffer<u32>,
    n: usize,
) -> Result<DeviceMatches, DeviceError> {
    if m == 0 || n == 0 {
        return DeviceMatches::empty(gpu);
    }
    let mut scratch: Vec<DeviceBuffer<u32>> = Vec::new();
    let mut inner = || -> Result<DeviceMatches, DeviceError> {
        let match_flag = gpu.alloc::<u32>(m)?;
        scratch.push(match_flag.clone());
        let match_bidx = gpu.alloc::<u32>(m)?;
        scratch.push(match_bidx.clone());
        gpu.launch(
            &FullBinaryKernel {
                short: short.clone(),
                long: long.clone(),
                match_flag: match_flag.clone(),
                match_bidx: match_bidx.clone(),
                m,
                n,
            },
            LaunchConfig::cover(m, BLOCK_DIM),
        )?;
        let (offsets, total) = exclusive_scan(gpu, &match_flag, m)?;
        scratch.push(offsets.clone());
        let total = total as usize;
        let out_docid = gpu.alloc::<u32>(total)?;
        scratch.push(out_docid.clone());
        let out_aidx = gpu.alloc::<u32>(total)?;
        scratch.push(out_aidx.clone());
        let out_bidx = gpu.alloc::<u32>(total)?;
        scratch.push(out_bidx.clone());
        if total > 0 {
            gpu.launch(
                &MatchCompactKernel {
                    short: short.clone(),
                    match_flag: match_flag.clone(),
                    match_bidx: match_bidx.clone(),
                    offsets: offsets.clone(),
                    out_docid: out_docid.clone(),
                    out_aidx: out_aidx.clone(),
                    out_bidx: out_bidx.clone(),
                    m,
                },
                LaunchConfig::cover(m, BLOCK_DIM),
            )?;
        }
        scratch.truncate(scratch.len() - 3);
        Ok(DeviceMatches {
            docids: out_docid,
            a_idx: out_aidx,
            b_idx: out_bidx,
            len: total,
        })
    };
    let result = inner();
    for buf in scratch {
        gpu.free(buf);
    }
    result
}

/// Report of one parallel-binary intersection: the matches plus how many
/// blocks were decompressed (the quantity the ratio analysis in paper §3.2
/// is about).
pub struct GpuBinaryOutput {
    pub matches: DeviceMatches,
    pub blocks_decoded: usize,
}

/// Intersects a decompressed short list (`short`, `m` elements, device
/// resident) with a *compressed* long list, decompressing only the blocks
/// the skip search identifies. `b_idx` of the result are global element
/// indices into the long list.
pub fn intersect(
    gpu: &Gpu,
    short: &DeviceBuffer<u32>,
    m: usize,
    long: &DeviceEfList,
    block_len: usize,
) -> Result<GpuBinaryOutput, DeviceError> {
    if m == 0 || long.len == 0 {
        return Ok(GpuBinaryOutput {
            matches: DeviceMatches::empty(gpu)?,
            blocks_decoded: 0,
        });
    }
    let nb = long.num_blocks;

    let mut temps: Vec<DeviceBuffer<u32>> = Vec::new();
    let mut inner = || -> Result<GpuBinaryOutput, DeviceError> {
        // 1. Skip search.
        let elem_block = gpu.alloc::<u32>(m)?;
        temps.push(elem_block.clone());
        let block_needed = gpu.alloc::<u32>(nb)?;
        temps.push(block_needed.clone());
        gpu.launch(
            &SkipSearchKernel {
                short: short.clone(),
                skip_first: long.skip_first.clone(),
                skip_last: long.skip_last.clone(),
                elem_block: elem_block.clone(),
                block_needed: block_needed.clone(),
                m,
                num_blocks: nb,
            },
            LaunchConfig::cover(m, BLOCK_DIM),
        )?;

        // 2. Compact the needed blocks.
        let (block_slot, needed_count) = exclusive_scan(gpu, &block_needed, nb)?;
        temps.push(block_slot.clone());
        let needed_count = needed_count as usize;
        let needed_blocks = gpu.alloc::<u32>(needed_count.max(1))?;
        temps.push(needed_blocks.clone());
        if needed_count > 0 {
            gpu.launch(
                &BlockScatterKernel {
                    block_needed: block_needed.clone(),
                    block_slot: block_slot.clone(),
                    needed_blocks: needed_blocks.clone(),
                    num_blocks: nb,
                },
                LaunchConfig::cover(nb, BLOCK_DIM),
            )?;
        }

        // 3. Selective decode.
        let scratch = gpu.alloc::<u32>((needed_count * block_len).max(1))?;
        temps.push(scratch.clone());
        if needed_count > 0 {
            gpu.launch(
                &BlockDecodeKernel {
                    list: BlockDecodeView::new(long),
                    needed_blocks: needed_blocks.clone(),
                    scratch: scratch.clone(),
                    needed_count,
                    block_len,
                    max_hb_words: long.max_block_hb_words,
                },
                LaunchConfig::new(needed_count as u32, block_len as u32),
            )?;
        }

        // 4. In-block search.
        let match_flag = gpu.alloc::<u32>(m)?;
        temps.push(match_flag.clone());
        let match_bidx = gpu.alloc::<u32>(m)?;
        temps.push(match_bidx.clone());
        gpu.launch(
            &InBlockSearchKernel {
                short: short.clone(),
                elem_block: elem_block.clone(),
                block_slot: block_slot.clone(),
                block_elem_start: long.block_elem_start.clone(),
                scratch: scratch.clone(),
                match_flag: match_flag.clone(),
                match_bidx: match_bidx.clone(),
                m,
                num_blocks: nb,
                len: long.len,
                block_len,
            },
            LaunchConfig::cover(m, BLOCK_DIM),
        )?;

        // 5. Compact matches.
        let (offsets, total) = exclusive_scan(gpu, &match_flag, m)?;
        temps.push(offsets.clone());
        let total = total as usize;
        let out_docid = gpu.alloc::<u32>(total)?;
        temps.push(out_docid.clone());
        let out_aidx = gpu.alloc::<u32>(total)?;
        temps.push(out_aidx.clone());
        let out_bidx = gpu.alloc::<u32>(total)?;
        temps.push(out_bidx.clone());
        if total > 0 {
            gpu.launch(
                &MatchCompactKernel {
                    short: short.clone(),
                    match_flag: match_flag.clone(),
                    match_bidx: match_bidx.clone(),
                    offsets: offsets.clone(),
                    out_docid: out_docid.clone(),
                    out_aidx: out_aidx.clone(),
                    out_bidx: out_bidx.clone(),
                    m,
                },
                LaunchConfig::cover(m, BLOCK_DIM),
            )?;
        }
        temps.truncate(temps.len() - 3);
        Ok(GpuBinaryOutput {
            matches: DeviceMatches {
                docids: out_docid,
                a_idx: out_aidx,
                b_idx: out_bidx,
                len: total,
            },
            blocks_decoded: needed_count,
        })
    };
    let result = inner();
    for buf in temps {
        gpu.free(buf);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use griffin_codec::{BlockedList, Codec, DEFAULT_BLOCK_LEN};
    use griffin_gpu_sim::DeviceConfig;

    fn host_intersect(a: &[u32], b: &[u32]) -> Vec<u32> {
        b.iter()
            .filter(|&&v| a.binary_search(&v).is_ok())
            .copied()
            .collect::<Vec<_>>()
            .into_iter()
            .collect()
    }

    fn check(short: Vec<u32>, long: Vec<u32>) -> usize {
        let gpu = Gpu::new(DeviceConfig::test_tiny());
        let compressed = BlockedList::compress(&long, Codec::EliasFano, DEFAULT_BLOCK_LEN);
        let dlong = DeviceEfList::upload(&gpu, &compressed).unwrap();
        let dshort = gpu.htod(&short).unwrap();
        let out = intersect(&gpu, &dshort, short.len(), &dlong, DEFAULT_BLOCK_LEN).unwrap();
        let got = gpu
            .dtoh_prefix(&out.matches.docids, out.matches.len)
            .unwrap();
        let expect = host_intersect(&long, &short);
        assert_eq!(got, expect);
        // b_idx must index into the long list correctly.
        let b_idx = gpu
            .dtoh_prefix(&out.matches.b_idx, out.matches.len)
            .unwrap();
        for (k, &d) in got.iter().enumerate() {
            assert_eq!(long[b_idx[k] as usize], d);
        }
        out.blocks_decoded
    }

    #[test]
    fn sparse_short_list_skips_most_blocks() {
        let short: Vec<u32> = (0..40u32).map(|i| i * 5000 + 1).collect();
        let long: Vec<u32> = (0..50_000u32).collect();
        let decoded = check(short, long);
        let total_blocks = 50_000usize.div_ceil(DEFAULT_BLOCK_LEN);
        assert!(
            decoded <= 41 && decoded < total_blocks / 4,
            "decoded {decoded} of {total_blocks} blocks"
        );
    }

    #[test]
    fn no_matches() {
        let short: Vec<u32> = (0..20u32).map(|i| i * 2 + 1).collect();
        let long: Vec<u32> = (0..5_000u32).map(|i| i * 2).collect();
        check(short, long);
    }

    #[test]
    fn all_match() {
        let long: Vec<u32> = (0..3_000u32).map(|i| i * 3).collect();
        let short: Vec<u32> = long.iter().step_by(10).copied().collect();
        check(short, long);
    }

    #[test]
    fn short_elements_beyond_long_list() {
        let short = vec![10u32, 100, 9_999_999];
        let long: Vec<u32> = (0..1_000u32).map(|i| i * 10).collect();
        check(short, long);
    }

    #[test]
    fn elements_in_inter_block_gaps() {
        // Long list with large jumps at block boundaries.
        let mut long = Vec::new();
        for blk in 0..10u32 {
            for j in 0..128u32 {
                long.push(blk * 1_000_000 + j);
            }
        }
        let short = vec![500_000u32, 1_000_050, 2_500_000, 9_000_127];
        check(short, long);
    }

    #[test]
    fn full_binary_matches_skip_variant() {
        let gpu = Gpu::new(DeviceConfig::test_tiny());
        let long: Vec<u32> = (0..20_000u32).map(|i| i * 3).collect();
        let short: Vec<u32> = (0..900u32).map(|i| i * 61 + 3).collect();
        let compressed = BlockedList::compress(&long, Codec::EliasFano, DEFAULT_BLOCK_LEN);
        let dlong_c = DeviceEfList::upload(&gpu, &compressed).unwrap();
        let dlong = gpu.htod(&long).unwrap();
        let dshort = gpu.htod(&short).unwrap();

        let skip = intersect(&gpu, &dshort, short.len(), &dlong_c, DEFAULT_BLOCK_LEN).unwrap();
        let full = intersect_decompressed(&gpu, &dshort, short.len(), &dlong, long.len()).unwrap();
        let a = gpu
            .dtoh_prefix(&skip.matches.docids, skip.matches.len)
            .unwrap();
        let b = gpu.dtoh_prefix(&full.docids, full.len).unwrap();
        assert_eq!(a, b);
        let bi_a = gpu
            .dtoh_prefix(&skip.matches.b_idx, skip.matches.len)
            .unwrap();
        let bi_b = gpu.dtoh_prefix(&full.b_idx, full.len).unwrap();
        assert_eq!(bi_a, bi_b);
    }

    #[test]
    fn single_block_long_list() {
        let long: Vec<u32> = (0..100u32).map(|i| i * 2).collect();
        let short = vec![0u32, 50, 99, 198];
        check(short, long);
    }
}
