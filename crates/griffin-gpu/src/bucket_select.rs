//! GPU bucketSelect — the parallel k-selection algorithm of the paper's
//! Fig. 7 ranking study (after Alabi et al., "Fast K-selection algorithms
//! for graphics processing units").
//!
//! MSD-radix–style refinement: histogram the candidate keys by their
//! current byte (per-block shared-memory histograms, device reduction),
//! read the 256 counts back, identify the bucket containing the k-th
//! largest, compact that bucket's candidates, and recurse one byte deeper.
//! After (at most) four levels the k-th value is pinned exactly; a final
//! flag-scan-scatter selects everything above it plus enough ties.
//!
//! The many small kernel launches, reductions, and 1-KB read-backs are the
//! point: for the few-thousand-element result lists real queries produce,
//! this machinery cannot amortize, which is why the paper's Fig. 7 crowns
//! CPU `partial_sort`.

use griffin_gpu_sim::{DeviceBuffer, DeviceError, Gpu, Kernel, LaunchConfig, ThreadCtx};

use crate::radix_sort::{float_to_sortable, sortable_to_float};
use crate::scan::exclusive_scan;

const BLOCK_DIM: u32 = 256;
const RADIX: usize = 256;

/// Maps scores to sortable keys and seeds the candidate index set.
struct SeedKernel {
    scores: DeviceBuffer<f32>,
    keys: DeviceBuffer<u32>,
    cand: DeviceBuffer<u32>,
    n: usize,
}

impl Kernel for SeedKernel {
    fn name(&self) -> &'static str {
        "bucket_select.seed"
    }

    type State = ();
    fn run_phase(&self, _p: usize, t: &mut ThreadCtx<'_>, _s: &mut ()) {
        let i = t.global_thread_idx();
        if t.branch(i < self.n) {
            let bits = t.ld(&self.scores.cast::<u32>(), i);
            t.alu(2);
            t.st(&self.keys, i, float_to_sortable(bits));
            t.st(&self.cand, i, i as u32);
        }
    }
}

/// Histograms the candidates' keys by the byte at `shift`, restricted to
/// candidates whose higher bytes match `prefix`.
struct BucketHistKernel {
    keys: DeviceBuffer<u32>,
    cand: DeviceBuffer<u32>,
    hist: DeviceBuffer<u32>, // digit-major: [digit * num_blocks + block]
    n_cand: usize,
    shift: u32,
    num_blocks: usize,
}

impl Kernel for BucketHistKernel {
    fn name(&self) -> &'static str {
        "bucket_select.hist"
    }

    type State = ();

    fn phases(&self) -> usize {
        3
    }

    fn shared_mem_words(&self, _bd: u32) -> usize {
        RADIX
    }

    fn run_phase(&self, phase: usize, t: &mut ThreadCtx<'_>, _s: &mut ()) {
        let tid = t.thread_idx as usize;
        match phase {
            0 => {
                if tid < RADIX {
                    t.st_shared(tid, 0);
                }
            }
            1 => {
                let i = t.global_thread_idx();
                if t.branch(i < self.n_cand) {
                    let idx = t.ld(&self.cand, i) as usize;
                    let key = t.ld(&self.keys, idx);
                    let digit = ((key >> self.shift) & 0xFF) as usize;
                    t.alu(2);
                    t.atomic_add_shared(digit, 1);
                }
            }
            _ => {
                if tid < RADIX {
                    let c = t.ld_shared(tid);
                    t.st(&self.hist, tid * self.num_blocks + t.block_idx as usize, c);
                }
            }
        }
    }
}

/// Sums each digit's per-block counts: one thread per digit.
struct HistReduceKernel {
    hist: DeviceBuffer<u32>,
    totals: DeviceBuffer<u32>,
    num_blocks: usize,
}

impl Kernel for HistReduceKernel {
    fn name(&self) -> &'static str {
        "bucket_select.hist_reduce"
    }

    type State = ();
    fn run_phase(&self, _p: usize, t: &mut ThreadCtx<'_>, _s: &mut ()) {
        let d = t.global_thread_idx();
        if !t.branch(d < RADIX) {
            return;
        }
        let mut sum = 0u32;
        let mut b = 0usize;
        while t.branch(b < self.num_blocks) {
            sum += t.ld(&self.hist, d * self.num_blocks + b);
            t.alu(1);
            b += 1;
        }
        t.st(&self.totals, d, sum);
    }
}

/// Flags candidates whose byte at `shift` equals `digit` (the surviving
/// bucket).
struct BucketFlagKernel {
    keys: DeviceBuffer<u32>,
    cand: DeviceBuffer<u32>,
    flags: DeviceBuffer<u32>,
    n_cand: usize,
    shift: u32,
    digit: u32,
}

impl Kernel for BucketFlagKernel {
    fn name(&self) -> &'static str {
        "bucket_select.flag"
    }

    type State = ();
    fn run_phase(&self, _p: usize, t: &mut ThreadCtx<'_>, _s: &mut ()) {
        let i = t.global_thread_idx();
        if t.branch(i < self.n_cand) {
            let idx = t.ld(&self.cand, i) as usize;
            let key = t.ld(&self.keys, idx);
            let hit = ((key >> self.shift) & 0xFF) == self.digit;
            t.alu(2);
            t.st(&self.flags, i, u32::from(hit));
        }
    }
}

/// Scatters flagged candidates into the next candidate set.
struct BucketCompactKernel {
    cand_in: DeviceBuffer<u32>,
    flags: DeviceBuffer<u32>,
    offsets: DeviceBuffer<u32>,
    cand_out: DeviceBuffer<u32>,
    n_cand: usize,
}

impl Kernel for BucketCompactKernel {
    fn name(&self) -> &'static str {
        "bucket_select.compact"
    }

    type State = ();
    fn run_phase(&self, _p: usize, t: &mut ThreadCtx<'_>, _s: &mut ()) {
        let i = t.global_thread_idx();
        if t.branch(i < self.n_cand) {
            let flagged = t.ld(&self.flags, i) == 1;
            if t.branch(flagged) {
                let dst = t.ld(&self.offsets, i) as usize;
                let v = t.ld(&self.cand_in, i);
                t.st(&self.cand_out, dst, v);
            }
        }
    }
}

/// Flags elements with `key > threshold` (strict winners) or
/// `key == threshold` (ties), by mode.
struct SelectFlagKernel {
    keys: DeviceBuffer<u32>,
    flags: DeviceBuffer<u32>,
    n: usize,
    threshold: u32,
    equal_mode: bool,
}

impl Kernel for SelectFlagKernel {
    fn name(&self) -> &'static str {
        "bucket_select.select_flag"
    }

    type State = ();
    fn run_phase(&self, _p: usize, t: &mut ThreadCtx<'_>, _s: &mut ()) {
        let i = t.global_thread_idx();
        if t.branch(i < self.n) {
            let key = t.ld(&self.keys, i);
            let hit = if self.equal_mode {
                key == self.threshold
            } else {
                key > self.threshold
            };
            t.alu(1);
            t.st(&self.flags, i, u32::from(hit));
        }
    }
}

/// Gathers flagged (docid, key) pairs; `limit` bounds tie over-selection.
struct SelectGatherKernel {
    docids: DeviceBuffer<u32>,
    keys: DeviceBuffer<u32>,
    flags: DeviceBuffer<u32>,
    offsets: DeviceBuffer<u32>,
    out_docid: DeviceBuffer<u32>,
    out_key: DeviceBuffer<u32>,
    n: usize,
    base: usize,
    limit: usize,
}

impl Kernel for SelectGatherKernel {
    fn name(&self) -> &'static str {
        "bucket_select.select_gather"
    }

    type State = ();
    fn run_phase(&self, _p: usize, t: &mut ThreadCtx<'_>, _s: &mut ()) {
        let i = t.global_thread_idx();
        if t.branch(i < self.n) {
            let flagged = t.ld(&self.flags, i) == 1;
            if t.branch(flagged) {
                let slot = t.ld(&self.offsets, i) as usize;
                if t.branch(slot < self.limit) {
                    let d = t.ld(&self.docids, i);
                    let key = t.ld(&self.keys, i);
                    t.st(&self.out_docid, self.base + slot, d);
                    t.st(&self.out_key, self.base + slot, key);
                }
            }
        }
    }
}

/// Fig. 7's "GPU bucket select" ranker: returns the `k` highest-scoring
/// (docid, score) pairs, best first.
pub fn top_k_by_bucket_select(
    gpu: &Gpu,
    docids: &DeviceBuffer<u32>,
    scores: &DeviceBuffer<f32>,
    n: usize,
    k: usize,
) -> Result<Vec<(u32, f32)>, DeviceError> {
    if n == 0 || k == 0 {
        return Ok(Vec::new());
    }
    let k = k.min(n);
    // Every allocation is tracked here and released when the function
    // returns — on the success path and on a device fault alike.
    let mut scratch: Vec<DeviceBuffer<u32>> = Vec::new();
    let mut inner = || -> Result<(Vec<u32>, Vec<u32>), DeviceError> {
        let keys = gpu.alloc::<u32>(n)?;
        scratch.push(keys.clone());
        let mut cand = gpu.alloc::<u32>(n)?;
        scratch.push(cand.clone());
        gpu.launch(
            &SeedKernel {
                scores: scores.clone(),
                keys: keys.clone(),
                cand: cand.clone(),
                n,
            },
            LaunchConfig::cover(n, BLOCK_DIM),
        )?;

        // Locate the k-th largest key, byte by byte (MSD first).
        let mut n_cand = n;
        let mut remaining_k = k; // rank of the target within the candidates
        let mut kth_key = 0u32;
        for level in 0..4u32 {
            let shift = 8 * (3 - level);
            let num_blocks = n_cand.div_ceil(BLOCK_DIM as usize);
            let hist = gpu.alloc::<u32>(RADIX * num_blocks)?;
            scratch.push(hist.clone());
            gpu.launch(
                &BucketHistKernel {
                    keys: keys.clone(),
                    cand: cand.clone(),
                    hist: hist.clone(),
                    n_cand,
                    shift,
                    num_blocks,
                },
                LaunchConfig::new(num_blocks as u32, BLOCK_DIM),
            )?;
            let totals = gpu.alloc::<u32>(RADIX)?;
            scratch.push(totals.clone());
            gpu.launch(
                &HistReduceKernel {
                    hist: hist.clone(),
                    totals: totals.clone(),
                    num_blocks,
                },
                LaunchConfig::cover(RADIX, BLOCK_DIM),
            )?;
            // The 1-KB read-back that steers the recursion.
            let counts = gpu.dtoh(&totals)?;

            let mut digit = RADIX - 1;
            loop {
                let c = counts[digit] as usize;
                if c >= remaining_k {
                    break;
                }
                remaining_k -= c;
                assert!(digit > 0, "rank exhausted the histogram");
                digit -= 1;
            }
            kth_key |= (digit as u32) << shift;
            let bucket_size = counts[digit] as usize;

            if level == 3 || bucket_size <= 1 {
                break;
            }

            // Compact the surviving bucket into the next candidate set.
            let flags = gpu.alloc::<u32>(n_cand)?;
            scratch.push(flags.clone());
            gpu.launch(
                &BucketFlagKernel {
                    keys: keys.clone(),
                    cand: cand.clone(),
                    flags: flags.clone(),
                    n_cand,
                    shift,
                    digit: digit as u32,
                },
                LaunchConfig::cover(n_cand, BLOCK_DIM),
            )?;
            let (offsets, total) = exclusive_scan(gpu, &flags, n_cand)?;
            scratch.push(offsets.clone());
            debug_assert_eq!(total as usize, bucket_size);
            let cand_next = gpu.alloc::<u32>(bucket_size)?;
            scratch.push(cand_next.clone());
            gpu.launch(
                &BucketCompactKernel {
                    cand_in: cand.clone(),
                    flags: flags.clone(),
                    offsets: offsets.clone(),
                    cand_out: cand_next.clone(),
                    n_cand,
                },
                LaunchConfig::cover(n_cand, BLOCK_DIM),
            )?;
            cand = cand_next;
            n_cand = bucket_size;
        }

        // Select: strict winners first, then enough ties at the threshold.
        let out_docid = gpu.alloc::<u32>(k)?;
        scratch.push(out_docid.clone());
        let out_key = gpu.alloc::<u32>(k)?;
        scratch.push(out_key.clone());
        let flags = gpu.alloc::<u32>(n)?;
        scratch.push(flags.clone());
        gpu.launch(
            &SelectFlagKernel {
                keys: keys.clone(),
                flags: flags.clone(),
                n,
                threshold: kth_key,
                equal_mode: false,
            },
            LaunchConfig::cover(n, BLOCK_DIM),
        )?;
        let (offsets, winners) = exclusive_scan(gpu, &flags, n)?;
        scratch.push(offsets.clone());
        let winners = winners as usize;
        // With a full 4-level descent the threshold is exactly the k-th
        // key, so winners <= k-1; an early break (singleton bucket) zeroes
        // the low bytes, which can pull the k-th element itself above the
        // threshold.
        debug_assert!(
            winners <= k,
            "strict winners ({winners}) must be <= k ({k})"
        );
        if winners > 0 {
            gpu.launch(
                &SelectGatherKernel {
                    docids: docids.clone(),
                    keys: keys.clone(),
                    flags: flags.clone(),
                    offsets: offsets.clone(),
                    out_docid: out_docid.clone(),
                    out_key: out_key.clone(),
                    n,
                    base: 0,
                    limit: winners,
                },
                LaunchConfig::cover(n, BLOCK_DIM),
            )?;
        }
        // Ties at the threshold fill the remaining slots.
        if winners < k {
            gpu.launch(
                &SelectFlagKernel {
                    keys: keys.clone(),
                    flags: flags.clone(),
                    n,
                    threshold: kth_key,
                    equal_mode: true,
                },
                LaunchConfig::cover(n, BLOCK_DIM),
            )?;
            let (offsets, _ties) = exclusive_scan(gpu, &flags, n)?;
            scratch.push(offsets.clone());
            gpu.launch(
                &SelectGatherKernel {
                    docids: docids.clone(),
                    keys: keys.clone(),
                    flags: flags.clone(),
                    offsets: offsets.clone(),
                    out_docid: out_docid.clone(),
                    out_key: out_key.clone(),
                    n,
                    base: winners,
                    limit: k - winners,
                },
                LaunchConfig::cover(n, BLOCK_DIM),
            )?;
        }

        let docid_host = gpu.dtoh(&out_docid)?;
        let key_host = gpu.dtoh(&out_key)?;
        Ok((docid_host, key_host))
    };
    let result = inner();
    for buf in scratch {
        gpu.free(buf);
    }
    let (docid_host, key_host) = result?;
    let mut out: Vec<(u32, f32)> = docid_host
        .into_iter()
        .zip(key_host)
        .map(|(d, key)| (d, f32::from_bits(sortable_to_float(key))))
        .collect();
    out.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use griffin_gpu_sim::DeviceConfig;

    fn check(scores_host: Vec<f32>, k: usize) {
        let gpu = Gpu::new(DeviceConfig::test_tiny());
        let n = scores_host.len();
        let docids_host: Vec<u32> = (0..n as u32).collect();
        let docids = gpu.htod(&docids_host).unwrap();
        let scores = gpu.htod(&scores_host).unwrap();
        let got = top_k_by_bucket_select(&gpu, &docids, &scores, n, k).unwrap();
        let mut expect: Vec<f32> = scores_host.clone();
        expect.sort_by(|a, b| b.partial_cmp(a).unwrap());
        expect.truncate(k.min(n));
        let got_scores: Vec<f32> = got.iter().map(|&(_, s)| s).collect();
        assert_eq!(got_scores, expect);
        // Every returned docid carries its own score.
        for &(d, s) in &got {
            assert_eq!(scores_host[d as usize], s);
        }
    }

    #[test]
    fn distinct_scores() {
        check((0..2000).map(|i| (i as f32) * 0.5 + 1.0).collect(), 10);
    }

    #[test]
    fn heavy_ties() {
        check((0..3000).map(|i| (i % 5) as f32).collect(), 25);
    }

    #[test]
    fn k_equals_n() {
        check((0..100).map(|i| i as f32).collect(), 100);
    }

    #[test]
    fn pseudo_random_scores() {
        let mut state = 11u64;
        let scores: Vec<f32> = (0..4096)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 40) as f32) / 1000.0
            })
            .collect();
        check(scores, 10);
    }

    #[test]
    fn empty_and_zero_k() {
        let gpu = Gpu::new(DeviceConfig::test_tiny());
        let docids = gpu.alloc::<u32>(0).unwrap();
        let scores = gpu.alloc::<f32>(0).unwrap();
        assert!(top_k_by_bucket_select(&gpu, &docids, &scores, 0, 10)
            .unwrap()
            .is_empty());
        let d2 = gpu.htod(&[1u32]).unwrap();
        let s2 = gpu.htod(&[1.0f32]).unwrap();
        assert!(top_k_by_bucket_select(&gpu, &d2, &s2, 1, 0)
            .unwrap()
            .is_empty());
    }
}
