//! Tests of the GPU engine's device list cache and engine-level behaviour
//! that the unit tests don't cover.

use griffin_codec::Codec;
use griffin_gpu::GpuEngine;
use griffin_gpu_sim::{DeviceConfig, Gpu};
use griffin_index::{InvertedIndex, TermId};

fn index(lists: &[Vec<u32>]) -> InvertedIndex {
    InvertedIndex::from_docid_lists(lists, 100_000, Codec::EliasFano, 128)
}

fn term(idx: &InvertedIndex, i: usize) -> TermId {
    idx.lookup(&format!("t{i}")).unwrap()
}

#[test]
fn cache_hit_skips_the_transfer() {
    let lists = vec![(0..20_000u32).map(|i| i * 4).collect::<Vec<_>>()];
    let idx = index(&lists);
    let gpu = Gpu::new(DeviceConfig::test_tiny());
    let engine = GpuEngine::new(&gpu, idx.meta());

    let t0 = gpu.now();
    let p1 = engine.upload(&idx, term(&idx, 0)).unwrap();
    let miss_cost = gpu.now() - t0;
    engine.release(p1);

    let t1 = gpu.now();
    let p2 = engine.upload(&idx, term(&idx, 0)).unwrap();
    let hit_cost = gpu.now() - t1;
    engine.release(p2);

    assert!(miss_cost.as_nanos() > 0);
    assert_eq!(hit_cost.as_nanos(), 0, "cache hit must be free");
    engine.shutdown();
    assert_eq!(gpu.mem_in_use(), 0);
}

#[test]
fn zero_budget_disables_caching() {
    let lists = vec![(0..5_000u32).map(|i| i * 3).collect::<Vec<_>>()];
    let idx = index(&lists);
    let gpu = Gpu::new(DeviceConfig::test_tiny());
    let engine = GpuEngine::new(&gpu, idx.meta());
    engine.set_cache_budget(0);

    let p1 = engine.upload(&idx, term(&idx, 0)).unwrap();
    engine.release(p1);
    assert_eq!(gpu.mem_in_use(), 0, "released uncached list must be freed");

    // Second upload pays the transfer again.
    let t = gpu.now();
    let p2 = engine.upload(&idx, term(&idx, 0)).unwrap();
    assert!(gpu.now() > t);
    engine.release(p2);
    engine.shutdown();
    assert_eq!(gpu.mem_in_use(), 0);
}

#[test]
fn lru_evicts_the_coldest_list() {
    // Three lists; a budget that fits roughly two.
    let lists: Vec<Vec<u32>> = (0..3)
        .map(|k| (0..30_000u32).map(|i| i * 3 + k).collect())
        .collect();
    let idx = index(&lists);
    let gpu = Gpu::new(DeviceConfig::test_tiny());
    let engine = GpuEngine::new(&gpu, idx.meta());

    // Size one list to derive a two-list budget.
    let p = engine.upload(&idx, term(&idx, 0)).unwrap();
    let one = gpu.mem_in_use();
    engine.release(p);
    engine.set_cache_budget(one * 2 + one / 2);

    for i in [0usize, 1, 2] {
        let p = engine.upload(&idx, term(&idx, i)).unwrap();
        engine.release(p);
    }
    // t0 (coldest) must have been evicted: re-uploading it costs time,
    // while t2 (hottest) is free.
    let t = gpu.now();
    engine.release(engine.upload(&idx, term(&idx, 2)).unwrap());
    assert_eq!((gpu.now() - t).as_nanos(), 0, "t2 should be cached");
    let t = gpu.now();
    engine.release(engine.upload(&idx, term(&idx, 0)).unwrap());
    assert!(
        (gpu.now() - t).as_nanos() > 0,
        "t0 should have been evicted"
    );

    engine.shutdown();
    assert_eq!(gpu.mem_in_use(), 0);
}

#[test]
fn in_use_lists_survive_eviction_pressure() {
    let lists: Vec<Vec<u32>> = (0..2)
        .map(|k| (0..30_000u32).map(|i| i * 3 + k).collect())
        .collect();
    let idx = index(&lists);
    let gpu = Gpu::new(DeviceConfig::test_tiny());
    let engine = GpuEngine::new(&gpu, idx.meta());

    let held = engine.upload(&idx, term(&idx, 0)).unwrap();
    // Shrink the budget to zero while the list is borrowed: it must not be
    // freed under our feet.
    engine.set_cache_budget(0);
    assert!(!held.is_empty());
    let docids = griffin_gpu::para_ef::decompress(&gpu, &held.docs).unwrap();
    let host = gpu.dtoh(&docids).unwrap();
    assert_eq!(host.len(), lists[0].len());
    gpu.free(docids);
    engine.release(held);
    engine.shutdown();
    assert_eq!(gpu.mem_in_use(), 0);
}
