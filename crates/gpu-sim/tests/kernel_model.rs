//! Contract tests of the simulator's programming model: phases persist
//! per-thread state across barriers, shared memory is block-coherent,
//! block-local atomics count correctly, sampled tracing extrapolates, and
//! the timing model responds to divergence and coalescing the way real
//! hardware would.

use griffin_gpu_sim::{DeviceBuffer, DeviceConfig, Gpu, Kernel, LaunchConfig, Op, ThreadCtx};

fn tiny() -> Gpu {
    Gpu::new(DeviceConfig::test_tiny())
}

/// Phase 0 writes shared memory; phase 1 reads a *different* thread's slot
/// (rotation) — only correct if the inter-phase barrier works.
struct RotateKernel {
    out: DeviceBuffer<u32>,
}

impl Kernel for RotateKernel {
    type State = ();
    fn phases(&self) -> usize {
        2
    }
    fn shared_mem_words(&self, bd: u32) -> usize {
        bd as usize
    }
    fn run_phase(&self, phase: usize, t: &mut ThreadCtx<'_>, _s: &mut ()) {
        let tid = t.thread_idx as usize;
        if phase == 0 {
            t.st_shared(tid, tid as u32 * 10);
        } else {
            let neighbour = (tid + 1) % t.block_dim as usize;
            let v = t.ld_shared(neighbour);
            t.st(&self.out, t.global_thread_idx(), v);
        }
    }
}

#[test]
fn barrier_separated_shared_memory_rotation() {
    let gpu = tiny();
    let out = gpu.alloc::<u32>(64).unwrap();
    gpu.launch(&RotateKernel { out: out.clone() }, LaunchConfig::new(1, 64))
        .unwrap();
    let host = gpu.dtoh(&out).unwrap();
    for (tid, &v) in host.iter().enumerate() {
        assert_eq!(v, (((tid + 1) % 64) as u32) * 10);
    }
}

/// State persists across phases: accumulate in phase 0..2, emit in 3.
struct AccumKernel {
    out: DeviceBuffer<u32>,
}

#[derive(Default)]
struct Acc {
    sum: u32,
}

impl Kernel for AccumKernel {
    type State = Acc;
    fn phases(&self) -> usize {
        4
    }
    fn run_phase(&self, phase: usize, t: &mut ThreadCtx<'_>, s: &mut Acc) {
        if phase < 3 {
            s.sum += phase as u32 + 1; // 1 + 2 + 3
        } else {
            t.st(&self.out, t.global_thread_idx(), s.sum);
        }
    }
}

#[test]
fn per_thread_state_survives_barriers() {
    let gpu = tiny();
    let out = gpu.alloc::<u32>(128).unwrap();
    gpu.launch(&AccumKernel { out: out.clone() }, LaunchConfig::new(2, 64))
        .unwrap();
    assert!(gpu.dtoh(&out).unwrap().iter().all(|&v| v == 6));
}

/// Every thread atomically increments one shared counter; the total must
/// be exact and the returned "old" values must be a permutation of 0..n.
struct AtomicKernel {
    ranks: DeviceBuffer<u32>,
    total: DeviceBuffer<u32>,
}

impl Kernel for AtomicKernel {
    type State = ();
    fn phases(&self) -> usize {
        2
    }
    fn shared_mem_words(&self, _bd: u32) -> usize {
        1
    }
    fn run_phase(&self, phase: usize, t: &mut ThreadCtx<'_>, _s: &mut ()) {
        if phase == 0 {
            let rank = t.atomic_add_shared(0, 1);
            t.st(&self.ranks, t.global_thread_idx(), rank);
        } else if t.branch(t.thread_idx == 0) {
            let v = t.ld_shared(0);
            t.st(&self.total, t.block_idx as usize, v);
        }
    }
}

#[test]
fn block_local_atomics_are_exact() {
    let gpu = tiny();
    let ranks = gpu.alloc::<u32>(256).unwrap();
    let total = gpu.alloc::<u32>(2).unwrap();
    gpu.launch(
        &AtomicKernel {
            ranks: ranks.clone(),
            total: total.clone(),
        },
        LaunchConfig::new(2, 128),
    )
    .unwrap();
    assert_eq!(gpu.dtoh(&total).unwrap(), vec![128, 128]);
    let mut r = gpu.dtoh(&ranks).unwrap()[..128].to_vec();
    r.sort_unstable();
    assert_eq!(r, (0..128).collect::<Vec<u32>>());
}

/// Same functional kernel, divergent vs uniform branches: the divergent
/// variant must cost more virtual time.
struct BranchyKernel {
    out: DeviceBuffer<u32>,
    divergent: bool,
    n: usize,
}

impl Kernel for BranchyKernel {
    type State = ();
    fn run_phase(&self, _p: usize, t: &mut ThreadCtx<'_>, _s: &mut ()) {
        let i = t.global_thread_idx();
        if !t.branch(i < self.n) {
            return;
        }
        let cond = if self.divergent {
            i.is_multiple_of(2) // alternates within every warp
        } else {
            t.block_idx.is_multiple_of(2) // uniform within every warp
        };
        let mut acc = 0u32;
        for k in 0..64u32 {
            if t.branch(cond) {
                acc = acc.wrapping_add(k);
            } else {
                acc = acc.wrapping_mul(3).wrapping_add(1);
            }
            t.alu(1);
        }
        t.st(&self.out, i, acc);
    }
}

#[test]
fn divergence_costs_virtual_time() {
    let gpu = tiny();
    let n = 32 * 1024;
    let out = gpu.alloc::<u32>(n).unwrap();
    let t_uniform = gpu
        .launch(
            &BranchyKernel {
                out: out.clone(),
                divergent: false,
                n,
            },
            LaunchConfig::cover(n, 256),
        )
        .unwrap()
        .time;
    let t_divergent = gpu
        .launch(
            &BranchyKernel {
                out: out.clone(),
                divergent: true,
                n,
            },
            LaunchConfig::cover(n, 256),
        )
        .unwrap()
        .time;
    assert!(
        t_divergent.as_nanos() > t_uniform.as_nanos() * 3 / 2,
        "divergent {} vs uniform {}",
        t_divergent,
        t_uniform
    );
}

/// Coalesced vs strided global loads: strided must cost more.
struct LoadKernel {
    src: DeviceBuffer<u32>,
    out: DeviceBuffer<u32>,
    stride: usize,
    n: usize,
}

impl Kernel for LoadKernel {
    type State = ();
    fn run_phase(&self, _p: usize, t: &mut ThreadCtx<'_>, _s: &mut ()) {
        let i = t.global_thread_idx();
        if t.branch(i < self.n) {
            let idx = (i * self.stride) % self.src.len();
            let v = t.ld(&self.src, idx);
            t.st(&self.out, i, v);
        }
    }
}

#[test]
fn uncoalesced_access_costs_bandwidth() {
    let gpu = tiny();
    let n = 64 * 1024;
    let src = gpu.htod(&vec![7u32; n * 64]).unwrap();
    let out = gpu.alloc::<u32>(n).unwrap();
    let coalesced = gpu
        .launch(
            &LoadKernel {
                src: src.clone(),
                out: out.clone(),
                stride: 1,
                n,
            },
            LaunchConfig::cover(n, 256),
        )
        .unwrap()
        .time;
    let strided = gpu
        .launch(
            &LoadKernel {
                src: src.clone(),
                out: out.clone(),
                stride: 64, // one transaction per lane
                n,
            },
            LaunchConfig::cover(n, 256),
        )
        .unwrap()
        .time;
    assert!(
        strided.as_nanos() > coalesced.as_nanos() * 2,
        "strided {} vs coalesced {}",
        strided,
        coalesced
    );
}

/// Sampled tracing must agree (within tolerance) with full tracing on a
/// homogeneous workload.
struct CountKernel {
    out: DeviceBuffer<u32>,
    n: usize,
}

impl Kernel for CountKernel {
    type State = ();
    fn run_phase(&self, _p: usize, t: &mut ThreadCtx<'_>, _s: &mut ()) {
        let i = t.global_thread_idx();
        if t.branch(i < self.n) {
            t.op(Op::Alu, 10);
            t.op(Op::Mul, 3);
            t.st(&self.out, i, i as u32);
        }
    }
}

#[test]
fn trace_sampling_extrapolates_accurately() {
    let n = 200_000;
    let full_cfg = DeviceConfig::test_tiny();
    let sampled_cfg = DeviceConfig {
        trace_sample_stride: 32,
        ..DeviceConfig::test_tiny()
    };
    let mut times = Vec::new();
    let mut instr = Vec::new();
    for cfg in [full_cfg, sampled_cfg] {
        let gpu = Gpu::new(cfg);
        let out = gpu.alloc::<u32>(n).unwrap();
        let report = gpu
            .launch(&CountKernel { out, n }, LaunchConfig::cover(n, 256))
            .unwrap();
        times.push(report.time.as_nanos() as f64);
        instr.push(report.counters.ops[0] as f64);
    }
    let time_err = (times[0] - times[1]).abs() / times[0];
    let instr_err = (instr[0] - instr[1]).abs() / instr[0];
    assert!(time_err < 0.05, "time error {time_err}");
    assert!(instr_err < 0.05, "instruction-count error {instr_err}");
}

#[test]
fn packed_transfer_charges_one_latency() {
    let gpu = tiny();
    let parts: Vec<Vec<u32>> = (0..8).map(|i| vec![i as u32; 64]).collect();
    let refs: Vec<&[u32]> = parts.iter().map(Vec::as_slice).collect();
    let t0 = gpu.now();
    let bufs = gpu.htod_packed(&refs).unwrap();
    let t_packed = gpu.now() - t0;
    for (buf, part) in bufs.iter().zip(&parts) {
        assert_eq!(&gpu.dtoh(buf).unwrap(), part);
    }
    // Eight separate transfers would pay eight PCIe latencies.
    let t1 = gpu.now();
    for part in &parts {
        let b = gpu.htod(part).unwrap();
        gpu.free(b);
    }
    let t_individual = gpu.now() - t1;
    assert!(
        t_individual.as_nanos() > t_packed.as_nanos() * 3,
        "packed {} vs individual {}",
        t_packed,
        t_individual
    );
}

#[test]
fn launch_report_exposes_breakdown() {
    let gpu = tiny();
    let n = 10_000;
    let out = gpu.alloc::<u32>(n).unwrap();
    let report = gpu
        .launch(&CountKernel { out, n }, LaunchConfig::cover(n, 256))
        .unwrap();
    assert!(report.breakdown.total_ns >= report.breakdown.launch_overhead_ns);
    assert!(["compute", "memory", "latency"].contains(&report.breakdown.bound_by()));
    assert_eq!(
        report.config.total_threads() as usize,
        n.div_ceil(256) * 256
    );
    assert_eq!(report.counters.stores_applied, n as u64);
}
