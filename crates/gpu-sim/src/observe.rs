//! Passive observation hooks for the simulated device.
//!
//! Telemetry lives *outside* this crate; the device only exposes a
//! callback installed with [`crate::Gpu::set_observer`]. Observers are
//! strictly read-only: they run after the virtual clock has already
//! advanced and receive borrowed event data, so installing one can never
//! change functional results or virtual timings.

use crate::clock::VirtualNanos;
use crate::device::LaunchReport;
use crate::stream::StreamKind;

/// Direction of a PCIe transfer, from the host's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferDir {
    /// Host → device (upload).
    HtoD,
    /// Device → host (download).
    DtoH,
}

impl TransferDir {
    pub fn as_str(self) -> &'static str {
        match self {
            TransferDir::HtoD => "htod",
            TransferDir::DtoH => "dtoh",
        }
    }
}

/// One observable device operation.
#[derive(Debug)]
pub enum DeviceEvent<'a> {
    /// A kernel launch retired.
    KernelLaunch {
        /// Kernel name (see [`crate::Kernel::name`]).
        name: &'static str,
        /// Device virtual time when the launch started.
        start: VirtualNanos,
        /// Full launch report: duration, breakdown, warp counters.
        report: &'a LaunchReport,
    },
    /// A PCIe DMA transfer completed.
    Transfer {
        direction: TransferDir,
        bytes: u64,
        /// Device virtual time when the transfer started.
        start: VirtualNanos,
        duration: VirtualNanos,
    },
}

impl DeviceEvent<'_> {
    /// The stream (engine timeline) this event executed on: kernels run
    /// on the compute engine, PCIe transfers on the copy engine. Exports
    /// use this to put each event on its own trace lane so copy/compute
    /// overlap is visible.
    pub fn stream(&self) -> StreamKind {
        match self {
            DeviceEvent::KernelLaunch { .. } => StreamKind::Compute,
            DeviceEvent::Transfer { .. } => StreamKind::Copy,
        }
    }
}

/// Callback type for [`crate::Gpu::set_observer`].
pub type DeviceObserver = dyn Fn(&DeviceEvent<'_>) + Send + Sync;
