//! The simulated device: memory management, transfers, kernel launches, and
//! the virtual clock.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use crate::clock::VirtualNanos;
use crate::config::DeviceConfig;
use crate::kernel::{run_block, Kernel, LaunchConfig};
use crate::mem::{DeviceBuffer, DeviceWord, MemStats, Pool, WriteLog};
use crate::observe::{DeviceEvent, DeviceObserver, TransferDir};
use crate::pcie::transfer_time;
use crate::timing::{kernel_time, TimeBreakdown};
use crate::tracer::LaunchCounters;

/// Result of one kernel launch: how long it took in virtual time, the
/// performance counters behind that number, and the timing breakdown.
#[derive(Debug, Clone)]
pub struct LaunchReport {
    pub time: VirtualNanos,
    pub breakdown: TimeBreakdown,
    pub counters: LaunchCounters,
    pub config: LaunchConfig,
}

/// A simulated GPU.
///
/// All operations advance the device's virtual clock by their modelled
/// cost; callers read the clock with [`Gpu::now`] or measure spans with
/// [`Gpu::time`]. The functional results of kernels are bit-exact.
pub struct Gpu {
    cfg: DeviceConfig,
    pool: Mutex<Pool>,
    clock_ns: AtomicU64,
    stats: MemStats,
    /// Below this many threads a launch runs on one host thread (spawning
    /// costs more than it saves).
    parallel_threshold: u64,
    /// Passive telemetry hook (see [`crate::observe`]). The flag keeps the
    /// disabled-path cost to one relaxed atomic load per operation.
    observed: AtomicBool,
    observer: Mutex<Option<Arc<DeviceObserver>>>,
}

impl Gpu {
    pub fn new(cfg: DeviceConfig) -> Self {
        Gpu {
            cfg,
            pool: Mutex::new(Pool::default()),
            clock_ns: AtomicU64::new(0),
            stats: MemStats::default(),
            parallel_threshold: 1 << 15,
            observed: AtomicBool::new(false),
            observer: Mutex::new(None),
        }
    }

    /// Installs (or, with `None`, removes) a passive observer that is
    /// called after every kernel launch and PCIe transfer. Observers are
    /// read-only: they can never change functional results or the virtual
    /// clock, which is what makes tracing-on vs. tracing-off equivalence
    /// testable.
    pub fn set_observer(&self, observer: Option<Arc<DeviceObserver>>) {
        self.observed.store(observer.is_some(), Ordering::Release);
        *self.observer.lock().expect("observer lock") = observer;
    }

    #[inline]
    fn observe(&self, event: &DeviceEvent<'_>) {
        if !self.observed.load(Ordering::Acquire) {
            return;
        }
        let obs = self.observer.lock().expect("observer lock").clone();
        if let Some(obs) = obs {
            obs(event);
        }
    }

    #[inline]
    fn lock_pool(&self) -> MutexGuard<'_, Pool> {
        self.pool.lock().expect("device pool lock")
    }

    pub fn config(&self) -> &DeviceConfig {
        &self.cfg
    }

    /// Current virtual time on this device.
    pub fn now(&self) -> VirtualNanos {
        VirtualNanos::from_nanos(self.clock_ns.load(Ordering::Relaxed))
    }

    /// Advance the clock by an externally computed cost (used by engines to
    /// charge work that happens "on" the device outside a kernel).
    pub fn advance(&self, by: VirtualNanos) {
        self.clock_ns.fetch_add(by.as_nanos(), Ordering::Relaxed);
    }

    /// Reset the clock to zero (experiments reuse one device).
    pub fn reset_clock(&self) {
        self.clock_ns.store(0, Ordering::Relaxed);
    }

    /// Measure the virtual time consumed by `f`.
    pub fn time<R>(&self, f: impl FnOnce(&Gpu) -> R) -> (R, VirtualNanos) {
        let start = self.now();
        let r = f(self);
        (r, self.now() - start)
    }

    /// Device memory currently allocated, in bytes.
    pub fn mem_in_use(&self) -> u64 {
        self.lock_pool().bytes_in_use
    }

    /// Allocate an uninitialized (zeroed) buffer of `len` elements.
    /// Charges the `cudaMalloc` overhead.
    pub fn alloc<T: DeviceWord>(&self, len: usize) -> DeviceBuffer<T> {
        let mut pool = self.lock_pool();
        let (id, generation) = pool.alloc(vec![0u32; len]);
        let in_use = pool.bytes_in_use;
        assert!(
            in_use <= self.cfg.global_mem_bytes,
            "device out of memory: {in_use} > {}",
            self.cfg.global_mem_bytes
        );
        drop(pool);
        self.stats.on_alloc();
        self.stats.track_peak(in_use);
        self.advance(VirtualNanos::from_nanos(self.cfg.malloc_overhead_ns));
        DeviceBuffer::new(id, len, generation)
    }

    /// Allocate and fill from host memory: `cudaMalloc` + host→device DMA.
    pub fn htod<T: DeviceWord>(&self, host: &[T]) -> DeviceBuffer<T> {
        let words: Vec<u32> = host.iter().map(|v| v.to_word()).collect();
        let bytes = words.len() as u64 * 4;
        let mut pool = self.lock_pool();
        let (id, generation) = pool.alloc(words);
        let in_use = pool.bytes_in_use;
        assert!(
            in_use <= self.cfg.global_mem_bytes,
            "device out of memory: {in_use} > {}",
            self.cfg.global_mem_bytes
        );
        drop(pool);
        self.stats.on_alloc();
        self.stats.track_peak(in_use);
        self.stats.htod_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.advance(VirtualNanos::from_nanos(self.cfg.malloc_overhead_ns));
        let start = self.now();
        let duration = transfer_time(&self.cfg.pcie, bytes);
        self.advance(duration);
        self.observe(&DeviceEvent::Transfer {
            direction: TransferDir::HtoD,
            bytes,
            start,
            duration,
        });
        DeviceBuffer::new(id, host.len(), generation)
    }

    /// Allocate-and-fill several arrays with a *single* DMA transfer (one
    /// PCIe latency charge for the combined payload) — models packing
    /// multiple arrays into one `cudaMemcpy`, which any serious
    /// implementation does for per-list metadata.
    pub fn htod_packed(&self, parts: &[&[u32]]) -> Vec<DeviceBuffer<u32>> {
        let total_bytes: u64 = parts.iter().map(|p| p.len() as u64 * 4).sum();
        let mut out = Vec::with_capacity(parts.len());
        let mut pool = self.lock_pool();
        for part in parts {
            let (id, generation) = pool.alloc(part.to_vec());
            out.push(DeviceBuffer::new(id, part.len(), generation));
        }
        let in_use = pool.bytes_in_use;
        assert!(
            in_use <= self.cfg.global_mem_bytes,
            "device out of memory: {in_use} > {}",
            self.cfg.global_mem_bytes
        );
        drop(pool);
        self.stats.on_alloc();
        self.stats.track_peak(in_use);
        self.stats
            .htod_bytes
            .fetch_add(total_bytes, Ordering::Relaxed);
        self.advance(VirtualNanos::from_nanos(self.cfg.malloc_overhead_ns));
        let start = self.now();
        let duration = transfer_time(&self.cfg.pcie, total_bytes);
        self.advance(duration);
        self.observe(&DeviceEvent::Transfer {
            direction: TransferDir::HtoD,
            bytes: total_bytes,
            start,
            duration,
        });
        out
    }

    /// Copy a buffer back to the host: device→host DMA.
    pub fn dtoh<T: DeviceWord>(&self, buf: &DeviceBuffer<T>) -> Vec<T> {
        let pool = self.lock_pool();
        let out: Vec<T> = pool
            .words(buf.id)
            .iter()
            .map(|&w| T::from_word(w))
            .collect();
        drop(pool);
        let bytes = buf.size_bytes();
        self.stats.dtoh_bytes.fetch_add(bytes, Ordering::Relaxed);
        let start = self.now();
        let duration = transfer_time(&self.cfg.pcie, bytes);
        self.advance(duration);
        self.observe(&DeviceEvent::Transfer {
            direction: TransferDir::DtoH,
            bytes,
            start,
            duration,
        });
        out
    }

    /// Copy a prefix of a buffer back to the host (common after compaction
    /// kernels where only `len` of the allocation is meaningful).
    pub fn dtoh_prefix<T: DeviceWord>(&self, buf: &DeviceBuffer<T>, len: usize) -> Vec<T> {
        assert!(len <= buf.len());
        let pool = self.lock_pool();
        let out: Vec<T> = pool.words(buf.id)[..len]
            .iter()
            .map(|&w| T::from_word(w))
            .collect();
        drop(pool);
        let bytes = len as u64 * 4;
        self.stats.dtoh_bytes.fetch_add(bytes, Ordering::Relaxed);
        let start = self.now();
        let duration = transfer_time(&self.cfg.pcie, bytes);
        self.advance(duration);
        self.observe(&DeviceEvent::Transfer {
            direction: TransferDir::DtoH,
            bytes,
            start,
            duration,
        });
        out
    }

    /// Read a single element without charging transfer time (host-side
    /// debugging/tests only).
    pub fn peek<T: DeviceWord>(&self, buf: &DeviceBuffer<T>, idx: usize) -> T {
        let pool = self.lock_pool();
        T::from_word(pool.words(buf.id)[idx])
    }

    /// Release a buffer. Charges the `cudaFree` overhead.
    pub fn free<T: DeviceWord>(&self, buf: DeviceBuffer<T>) {
        self.lock_pool().free(buf.id);
        self.stats.on_free();
        self.advance(VirtualNanos::from_nanos(self.cfg.free_overhead_ns));
    }

    /// Time to move `bytes` across PCIe (exposed for scheduler estimates).
    pub fn pcie_time(&self, bytes: u64) -> VirtualNanos {
        transfer_time(&self.cfg.pcie, bytes)
    }

    /// Launch a kernel and advance the clock by its modelled duration.
    pub fn launch<K: Kernel>(&self, kernel: &K, lc: LaunchConfig) -> LaunchReport {
        let mut pool = self.lock_pool();
        let warps_per_block = lc.block_dim.div_ceil(self.cfg.warp_size);
        let total_warps = u64::from(lc.grid_dim) * u64::from(warps_per_block);

        let (mut counters, logs) =
            if lc.total_threads() < self.parallel_threshold || lc.grid_dim == 1 {
                let mut counters = LaunchCounters::default();
                let mut log = WriteLog::default();
                for b in 0..lc.grid_dim {
                    run_block(kernel, &self.cfg, lc, b, &pool, &mut log, &mut counters);
                }
                (counters, vec![log])
            } else {
                self.launch_parallel(kernel, lc, &pool)
            };

        counters.total_warps = total_warps;
        counters.stores_applied = logs.iter().map(|l| l.stores() as u64).sum();
        counters.extrapolate();

        for log in logs {
            if !log.is_empty() {
                log.apply(&mut pool);
            }
        }
        drop(pool);

        let breakdown = kernel_time(&self.cfg, &counters);
        let time = breakdown.total();
        let start = self.now();
        self.advance(time);
        let report = LaunchReport {
            time,
            breakdown,
            counters,
            config: lc,
        };
        self.observe(&DeviceEvent::KernelLaunch {
            name: kernel.name(),
            start,
            report: &report,
        });
        report
    }

    /// Execute blocks on multiple host threads. Each worker owns a write
    /// log and counter set; logs are applied in worker order (deterministic
    /// because workers own contiguous block ranges).
    fn launch_parallel<K: Kernel>(
        &self,
        kernel: &K,
        lc: LaunchConfig,
        pool: &Pool,
    ) -> (LaunchCounters, Vec<WriteLog>) {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .min(lc.grid_dim as usize)
            .max(1);
        let chunk = (lc.grid_dim as usize).div_ceil(workers);
        let cfg = &self.cfg;

        let mut results: Vec<(LaunchCounters, WriteLog)> = Vec::with_capacity(workers);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for w in 0..workers {
                let first = w * chunk;
                let last = ((w + 1) * chunk).min(lc.grid_dim as usize);
                if first >= last {
                    break;
                }
                handles.push(scope.spawn(move || {
                    let mut counters = LaunchCounters::default();
                    let mut log = WriteLog::default();
                    for b in first..last {
                        run_block(kernel, cfg, lc, b as u32, pool, &mut log, &mut counters);
                    }
                    (counters, log)
                }));
            }
            for h in handles {
                results.push(h.join().expect("kernel block executor panicked"));
            }
        });

        let mut counters = LaunchCounters::default();
        let mut logs = Vec::with_capacity(results.len());
        for (c, log) in results {
            counters.merge(&c);
            logs.push(log);
        }
        (counters, logs)
    }

    /// Aggregate transfer/allocation statistics for reports.
    pub fn stats(&self) -> DeviceStatsSnapshot {
        DeviceStatsSnapshot {
            allocs: self.stats.allocs.load(Ordering::Relaxed),
            frees: self.stats.frees.load(Ordering::Relaxed),
            htod_bytes: self.stats.htod_bytes.load(Ordering::Relaxed),
            dtoh_bytes: self.stats.dtoh_bytes.load(Ordering::Relaxed),
            peak_bytes: self.stats.peak_bytes.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of device statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeviceStatsSnapshot {
    pub allocs: u64,
    pub frees: u64,
    pub htod_bytes: u64,
    pub dtoh_bytes: u64,
    pub peak_bytes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::ThreadCtx;

    struct AddOne {
        src: DeviceBuffer<u32>,
        dst: DeviceBuffer<u32>,
        n: usize,
    }

    impl Kernel for AddOne {
        type State = ();
        fn run_phase(&self, _p: usize, t: &mut ThreadCtx<'_>, _s: &mut ()) {
            let i = t.global_thread_idx();
            if t.branch(i < self.n) {
                let v: u32 = t.ld(&self.src, i);
                t.alu(1);
                t.st(&self.dst, i, v + 1);
            }
        }
    }

    #[test]
    fn functional_roundtrip() {
        let gpu = Gpu::new(DeviceConfig::test_tiny());
        let data: Vec<u32> = (0..500).collect();
        let src = gpu.htod(&data);
        let dst = gpu.alloc::<u32>(500);
        gpu.launch(
            &AddOne {
                src,
                dst: dst.clone(),
                n: 500,
            },
            LaunchConfig::cover(500, 128),
        );
        let out = gpu.dtoh(&dst);
        assert_eq!(out.len(), 500);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i as u32 + 1));
    }

    #[test]
    fn parallel_and_serial_paths_agree() {
        let gpu = Gpu::new(DeviceConfig::test_tiny());
        let n = 200_000; // forces the parallel path
        let data: Vec<u32> = (0..n as u32).collect();
        let src = gpu.htod(&data);
        let dst = gpu.alloc::<u32>(n);
        let report = gpu.launch(
            &AddOne {
                src,
                dst: dst.clone(),
                n,
            },
            LaunchConfig::cover(n, 256),
        );
        assert_eq!(report.counters.stores_applied, n as u64);
        let out = gpu.dtoh(&dst);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i as u32 + 1));
    }

    #[test]
    fn clock_advances_with_every_operation() {
        let gpu = Gpu::new(DeviceConfig::test_tiny());
        let t0 = gpu.now();
        let buf = gpu.htod(&[1u32, 2, 3]);
        let t1 = gpu.now();
        assert!(t1 > t0, "htod must charge time");
        let _ = gpu.dtoh(&buf);
        let t2 = gpu.now();
        assert!(t2 > t1, "dtoh must charge time");
        gpu.free(buf);
        assert!(gpu.now() > t2, "free must charge time");
    }

    #[test]
    fn alloc_free_accounting() {
        let gpu = Gpu::new(DeviceConfig::test_tiny());
        let a = gpu.alloc::<u32>(1000);
        assert_eq!(gpu.mem_in_use(), 4000);
        let b = gpu.alloc::<u32>(500);
        assert_eq!(gpu.mem_in_use(), 6000);
        gpu.free(a);
        assert_eq!(gpu.mem_in_use(), 2000);
        gpu.free(b);
        assert_eq!(gpu.mem_in_use(), 0);
        let s = gpu.stats();
        assert_eq!(s.allocs, 2);
        assert_eq!(s.frees, 2);
        assert_eq!(s.peak_bytes, 6000);
    }

    #[test]
    #[should_panic(expected = "out of memory")]
    fn oom_panics() {
        let gpu = Gpu::new(DeviceConfig::test_tiny()); // 64 MB
        let _ = gpu.alloc::<u32>(20 * 1024 * 1024); // 80 MB
    }

    #[test]
    fn time_helper_measures_span() {
        let gpu = Gpu::new(DeviceConfig::test_tiny());
        let (_, t) = gpu.time(|g| {
            let b = g.htod(&[0u32; 1024]);
            g.free(b);
        });
        assert!(t.as_nanos() > 0);
    }

    #[test]
    fn dtoh_prefix_returns_prefix_and_charges_less() {
        let gpu = Gpu::new(DeviceConfig::test_tiny());
        let buf = gpu.htod(&(0u32..1000).collect::<Vec<_>>());
        let t0 = gpu.now();
        let few = gpu.dtoh_prefix(&buf, 10);
        let t_few = gpu.now() - t0;
        assert_eq!(few, (0u32..10).collect::<Vec<_>>());
        let t1 = gpu.now();
        let _all = gpu.dtoh(&buf);
        let t_all = gpu.now() - t1;
        assert!(t_all >= t_few);
    }
}
