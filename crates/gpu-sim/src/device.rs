//! The simulated device: memory management, transfers, kernel launches, and
//! the virtual clock.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use crate::clock::VirtualNanos;
use crate::config::DeviceConfig;
use crate::fault::{DeviceError, FaultKind, FaultPlan, FaultState, OpClass};
use crate::kernel::{run_block, Kernel, LaunchConfig};
use crate::mem::{DeviceBuffer, DeviceWord, MemStats, Pool, WriteLog};
use crate::observe::{DeviceEvent, DeviceObserver, TransferDir};
use crate::pcie::transfer_time;
use crate::stream::{StreamEvent, StreamKind, StreamTable};
use crate::timing::{kernel_time, TimeBreakdown};
use crate::tracer::LaunchCounters;

/// Result of one kernel launch: how long it took in virtual time, the
/// performance counters behind that number, and the timing breakdown.
#[derive(Debug, Clone)]
pub struct LaunchReport {
    pub time: VirtualNanos,
    pub breakdown: TimeBreakdown,
    pub counters: LaunchCounters,
    pub config: LaunchConfig,
}

/// A simulated GPU.
///
/// All operations advance the device's virtual clock by their modelled
/// cost; callers read the clock with [`Gpu::now`] or measure spans with
/// [`Gpu::time`]. The functional results of kernels are bit-exact.
///
/// Allocations, transfers, and kernel launches are fallible: they return
/// [`DeviceError`] on real memory exhaustion and on faults injected by an
/// installed [`FaultPlan`]. Failed attempts still advance the virtual
/// clock by the cost of the attempt (see [`crate::fault`]).
pub struct Gpu {
    cfg: DeviceConfig,
    pool: Mutex<Pool>,
    clock_ns: AtomicU64,
    stats: MemStats,
    /// Below this many threads a launch runs on one host thread (spawning
    /// costs more than it saves).
    parallel_threshold: u64,
    /// Passive telemetry hook (see [`crate::observe`]). The flag keeps the
    /// disabled-path cost to one relaxed atomic load per operation.
    observed: AtomicBool,
    observer: Mutex<Option<Arc<DeviceObserver>>>,
    /// Fallible operations issued since the fault plan was installed.
    /// Counted only while a plan is armed, so un-faulted runs pay a single
    /// relaxed load per operation.
    ops: AtomicU64,
    fault_armed: AtomicBool,
    faults: Mutex<Option<FaultState>>,
    /// Per-engine retire frontiers for async (stream) scheduling; see
    /// [`crate::stream`]. Disabled by default, in which case every
    /// operation is strictly serial on the host-visible clock.
    streams: Mutex<StreamTable>,
}

impl Gpu {
    pub fn new(cfg: DeviceConfig) -> Self {
        let plan = cfg.fault_plan.clone();
        let gpu = Gpu {
            cfg,
            pool: Mutex::new(Pool::default()),
            clock_ns: AtomicU64::new(0),
            stats: MemStats::default(),
            parallel_threshold: 1 << 15,
            observed: AtomicBool::new(false),
            observer: Mutex::new(None),
            ops: AtomicU64::new(0),
            fault_armed: AtomicBool::new(false),
            faults: Mutex::new(None),
            streams: Mutex::new(StreamTable::default()),
        };
        gpu.set_fault_plan(plan);
        gpu
    }

    /// Installs (or, with `None`, removes) a fault-injection plan, resetting
    /// the operation counter and any sticky device-lost state — the
    /// simulated equivalent of swapping in a healthy device.
    pub fn set_fault_plan(&self, plan: Option<FaultPlan>) {
        self.ops.store(0, Ordering::Relaxed);
        let mut slot = self.faults.lock().unwrap_or_else(|p| p.into_inner());
        self.fault_armed.store(plan.is_some(), Ordering::Release);
        *slot = plan.map(FaultState::new);
    }

    /// Decides whether the next fallible operation faults. Increments the
    /// operation counter only while a plan is armed.
    #[inline]
    fn fault_check(&self, class: OpClass) -> Option<(u64, FaultKind)> {
        if !self.fault_armed.load(Ordering::Acquire) {
            return None;
        }
        let op = self.ops.fetch_add(1, Ordering::Relaxed);
        let mut guard = self.faults.lock().unwrap_or_else(|p| p.into_inner());
        guard
            .as_mut()
            .and_then(|st| st.fire(op, class))
            .map(|k| (op, k))
    }

    /// Maps a fired fault to its error, charging the cost of the failed
    /// attempt: transient faults cost the full modelled operation (computed
    /// by the caller via `attempt_cost`), a lost device fails fast at the
    /// fixed submission overhead `submit_cost`.
    fn fault_error(
        &self,
        op: u64,
        kind: FaultKind,
        requested_bytes: u64,
        submit_cost: u64,
        attempt_cost: VirtualNanos,
    ) -> DeviceError {
        match kind {
            FaultKind::DeviceLost => {
                self.advance(VirtualNanos::from_nanos(submit_cost));
                DeviceError::DeviceLost { op_index: op }
            }
            FaultKind::KernelLaunchFailed => {
                self.advance(attempt_cost);
                DeviceError::KernelLaunchFailed { op_index: op }
            }
            FaultKind::TransferError { dir } => {
                self.advance(attempt_cost);
                DeviceError::TransferError { dir, op_index: op }
            }
            FaultKind::DeviceOom => {
                // An injected allocator failure costs the driver call, like
                // a real failed cudaMalloc.
                self.advance(VirtualNanos::from_nanos(submit_cost));
                DeviceError::DeviceOom {
                    requested_bytes,
                    in_use_bytes: self.mem_in_use(),
                    capacity_bytes: self.cfg.global_mem_bytes,
                }
            }
        }
    }

    /// Installs (or, with `None`, removes) a passive observer that is
    /// called after every kernel launch and PCIe transfer. Observers are
    /// read-only: they can never change functional results or the virtual
    /// clock, which is what makes tracing-on vs. tracing-off equivalence
    /// testable.
    pub fn set_observer(&self, observer: Option<Arc<DeviceObserver>>) {
        self.observed.store(observer.is_some(), Ordering::Release);
        *self.observer.lock().unwrap_or_else(|p| p.into_inner()) = observer;
    }

    #[inline]
    fn observe(&self, event: &DeviceEvent<'_>) {
        if !self.observed.load(Ordering::Acquire) {
            return;
        }
        // The guard is dropped before the callback runs, so a panicking
        // observer can neither poison this mutex nor deadlock the device;
        // recover from poison anyway in case a past panic won a race.
        let obs = self
            .observer
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone();
        if let Some(obs) = obs {
            obs(event);
        }
    }

    #[inline]
    fn lock_pool(&self) -> MutexGuard<'_, Pool> {
        // Recover from poison: the pool's structure is only mutated between
        // launches (kernel stores buffer in write logs and apply after
        // execution), so a panic mid-launch leaves it consistent. Poisoning
        // the device for every later query would turn one bad kernel or
        // observer into a permanent outage.
        self.pool.lock().unwrap_or_else(|p| p.into_inner())
    }

    pub fn config(&self) -> &DeviceConfig {
        &self.cfg
    }

    /// Current virtual time on this device.
    pub fn now(&self) -> VirtualNanos {
        VirtualNanos::from_nanos(self.clock_ns.load(Ordering::Relaxed))
    }

    /// Advance the clock by an externally computed cost (used by engines to
    /// charge work that happens "on" the device outside a kernel).
    pub fn advance(&self, by: VirtualNanos) {
        self.clock_ns.fetch_add(by.as_nanos(), Ordering::Relaxed);
    }

    /// Reset the clock to zero (experiments reuse one device). Stream
    /// frontiers are reset with it — pending async work is forgotten.
    pub fn reset_clock(&self) {
        self.clock_ns.store(0, Ordering::Relaxed);
        self.lock_streams().busy_until = [0; crate::stream::NUM_STREAMS];
    }

    #[inline]
    fn lock_streams(&self) -> MutexGuard<'_, StreamTable> {
        self.streams.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Enables or disables asynchronous (stream) scheduling.
    ///
    /// Enabling seeds both stream frontiers from the current clock;
    /// disabling first synchronizes (the clock advances to the last
    /// retire frontier) so no scheduled work is ever silently dropped.
    /// Both directions are idempotent. See [`crate::stream`] for the
    /// timing and functional semantics.
    pub fn set_async(&self, enabled: bool) {
        let mut st = self.lock_streams();
        if st.enabled == enabled {
            return;
        }
        if enabled {
            let now = self.clock_ns.load(Ordering::Relaxed);
            st.busy_until = [now; crate::stream::NUM_STREAMS];
        } else {
            let f = st.frontier();
            self.clock_ns.fetch_max(f, Ordering::Relaxed);
        }
        st.enabled = enabled;
    }

    /// Whether asynchronous (stream) scheduling is currently enabled.
    pub fn async_enabled(&self) -> bool {
        self.lock_streams().enabled
    }

    /// Records an event on a stream: the virtual time at which everything
    /// issued on it so far retires (`cudaEventRecord`). In serial mode
    /// this is simply the current clock.
    pub fn record_event(&self, stream: StreamKind) -> StreamEvent {
        let st = self.lock_streams();
        let now = self.clock_ns.load(Ordering::Relaxed);
        let at = if st.enabled {
            st.busy_until[stream.index()].max(now)
        } else {
            now
        };
        StreamEvent::at(VirtualNanos::from_nanos(at))
    }

    /// Makes future work on `stream` start no earlier than `event`
    /// (`cudaStreamWaitEvent`). A no-op in serial mode, where issue order
    /// already implies completion order.
    pub fn stream_wait(&self, stream: StreamKind, event: StreamEvent) {
        let mut st = self.lock_streams();
        if !st.enabled {
            return;
        }
        let i = stream.index();
        st.busy_until[i] = st.busy_until[i].max(event.ready_at().as_nanos());
    }

    /// Blocks the host until `event` completes (`cudaEventSynchronize`):
    /// the clock advances to the event's retire time if it is in the
    /// future.
    pub fn wait_event(&self, event: StreamEvent) {
        self.clock_ns
            .fetch_max(event.ready_at().as_nanos(), Ordering::Relaxed);
    }

    /// Blocks the host until every stream is idle
    /// (`cudaDeviceSynchronize`). A no-op in serial mode.
    pub fn sync(&self) {
        let st = self.lock_streams();
        if st.enabled {
            self.clock_ns.fetch_max(st.frontier(), Ordering::Relaxed);
        }
    }

    /// The retire frontier of one stream (tests and property checks).
    pub fn stream_busy_until(&self, stream: StreamKind) -> VirtualNanos {
        VirtualNanos::from_nanos(self.lock_streams().busy_until[stream.index()])
    }

    /// Blocks the host until one stream is idle (`cudaStreamSynchronize`).
    pub fn stream_sync(&self, stream: StreamKind) {
        let ev = self.record_event(stream);
        self.wait_event(ev);
    }

    /// Schedules `duration` of work onto `stream` and returns its start
    /// time. Serial mode: the work starts now and the clock advances over
    /// it. Async mode: the work starts at `max(stream frontier, clock)`
    /// and occupies the stream until it retires — the clock does not move
    /// (that happens at a wait/sync).
    fn schedule_op(&self, stream: StreamKind, duration: VirtualNanos) -> VirtualNanos {
        let mut st = self.lock_streams();
        if !st.enabled {
            drop(st);
            let start = self.now();
            self.advance(duration);
            return start;
        }
        let clock = self.clock_ns.load(Ordering::Relaxed);
        let i = stream.index();
        let start = st.busy_until[i].max(clock);
        st.busy_until[i] = start.saturating_add(duration.as_nanos());
        VirtualNanos::from_nanos(start)
    }

    /// Error surfacing is a synchronization point, as with a real driver:
    /// before a failed attempt is charged to the host clock, all
    /// in-flight stream work retires. Keeps "failed attempt cost" visible
    /// to callers that measure spans around fallible operations, which is
    /// what makes step durations sum exactly to query totals even when
    /// faults land during overlapped execution.
    fn join_streams_for_error(&self) {
        self.sync();
    }

    /// Measure the virtual time consumed by `f`.
    pub fn time<R>(&self, f: impl FnOnce(&Gpu) -> R) -> (R, VirtualNanos) {
        let start = self.now();
        let r = f(self);
        (r, self.now() - start)
    }

    /// Device memory currently allocated, in bytes.
    pub fn mem_in_use(&self) -> u64 {
        self.lock_pool().bytes_in_use
    }

    /// Real memory-exhaustion check, made *before* the pool is mutated so a
    /// failed allocation has no side effects. Charges the failed
    /// `cudaMalloc` driver call.
    fn check_capacity(&self, pool: &Pool, bytes: u64) -> Result<(), DeviceError> {
        if pool.bytes_in_use + bytes > self.cfg.global_mem_bytes {
            let in_use = pool.bytes_in_use;
            self.advance(VirtualNanos::from_nanos(self.cfg.malloc_overhead_ns));
            return Err(DeviceError::DeviceOom {
                requested_bytes: bytes,
                in_use_bytes: in_use,
                capacity_bytes: self.cfg.global_mem_bytes,
            });
        }
        Ok(())
    }

    /// Allocate an uninitialized (zeroed) buffer of `len` elements.
    /// Charges the `cudaMalloc` overhead.
    pub fn alloc<T: DeviceWord>(&self, len: usize) -> Result<DeviceBuffer<T>, DeviceError> {
        let bytes = len as u64 * 4;
        if let Some((op, kind)) = self.fault_check(OpClass::Alloc) {
            return Err(self.fault_error(
                op,
                kind,
                bytes,
                self.cfg.malloc_overhead_ns,
                VirtualNanos::from_nanos(self.cfg.malloc_overhead_ns),
            ));
        }
        let mut pool = self.lock_pool();
        self.check_capacity(&pool, bytes)?;
        let (id, generation) = pool.alloc(vec![0u32; len]);
        let in_use = pool.bytes_in_use;
        drop(pool);
        self.stats.on_alloc();
        self.stats.track_peak(in_use);
        self.advance(VirtualNanos::from_nanos(self.cfg.malloc_overhead_ns));
        Ok(DeviceBuffer::new(id, len, generation))
    }

    /// Allocate and fill from host memory: `cudaMalloc` + host→device DMA.
    pub fn htod<T: DeviceWord>(&self, host: &[T]) -> Result<DeviceBuffer<T>, DeviceError> {
        let bytes = host.len() as u64 * 4;
        if let Some((op, kind)) = self.fault_check(OpClass::Transfer(TransferDir::HtoD)) {
            self.join_streams_for_error();
            let attempt = VirtualNanos::from_nanos(self.cfg.malloc_overhead_ns)
                + transfer_time(&self.cfg.pcie, bytes);
            return Err(self.fault_error(op, kind, bytes, self.cfg.pcie.latency_ns, attempt));
        }
        let words: Vec<u32> = host.iter().map(|v| v.to_word()).collect();
        let mut pool = self.lock_pool();
        self.check_capacity(&pool, bytes)?;
        let (id, generation) = pool.alloc(words);
        let in_use = pool.bytes_in_use;
        drop(pool);
        self.stats.on_alloc();
        self.stats.track_peak(in_use);
        self.stats.htod_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.advance(VirtualNanos::from_nanos(self.cfg.malloc_overhead_ns));
        let duration = transfer_time(&self.cfg.pcie, bytes);
        let start = self.schedule_op(StreamKind::Copy, duration);
        self.observe(&DeviceEvent::Transfer {
            direction: TransferDir::HtoD,
            bytes,
            start,
            duration,
        });
        Ok(DeviceBuffer::new(id, host.len(), generation))
    }

    /// Allocate-and-fill several arrays with a *single* DMA transfer (one
    /// PCIe latency charge for the combined payload) — models packing
    /// multiple arrays into one `cudaMemcpy`, which any serious
    /// implementation does for per-list metadata.
    pub fn htod_packed(&self, parts: &[&[u32]]) -> Result<Vec<DeviceBuffer<u32>>, DeviceError> {
        let total_bytes: u64 = parts.iter().map(|p| p.len() as u64 * 4).sum();
        if let Some((op, kind)) = self.fault_check(OpClass::Transfer(TransferDir::HtoD)) {
            self.join_streams_for_error();
            let attempt = VirtualNanos::from_nanos(self.cfg.malloc_overhead_ns)
                + transfer_time(&self.cfg.pcie, total_bytes);
            return Err(self.fault_error(op, kind, total_bytes, self.cfg.pcie.latency_ns, attempt));
        }
        let mut out = Vec::with_capacity(parts.len());
        let mut pool = self.lock_pool();
        self.check_capacity(&pool, total_bytes)?;
        for part in parts {
            let (id, generation) = pool.alloc(part.to_vec());
            out.push(DeviceBuffer::new(id, part.len(), generation));
        }
        let in_use = pool.bytes_in_use;
        drop(pool);
        self.finish_packed_htod(total_bytes, in_use);
        Ok(out)
    }

    /// Shared tail of the packed-upload paths: statistics, the
    /// `cudaMalloc` charge, and the DMA scheduled on the copy stream.
    fn finish_packed_htod(&self, total_bytes: u64, in_use: u64) {
        self.stats.on_alloc();
        self.stats.track_peak(in_use);
        self.stats
            .htod_bytes
            .fetch_add(total_bytes, Ordering::Relaxed);
        self.advance(VirtualNanos::from_nanos(self.cfg.malloc_overhead_ns));
        let duration = transfer_time(&self.cfg.pcie, total_bytes);
        let start = self.schedule_op(StreamKind::Copy, duration);
        self.observe(&DeviceEvent::Transfer {
            direction: TransferDir::HtoD,
            bytes: total_bytes,
            start,
            duration,
        });
    }

    /// [`Self::htod_packed_n`] taking ownership of the staged arrays: the
    /// host-side storage is *moved* into the device pool instead of being
    /// copied part by part. This removes one full memcpy of every list
    /// image from the hot transfer path (the staging buffers engines
    /// build are dropped right after the upload anyway).
    pub fn htod_packed_owned<const N: usize>(
        &self,
        parts: [Vec<u32>; N],
    ) -> Result<[DeviceBuffer<u32>; N], DeviceError> {
        let total_bytes: u64 = parts.iter().map(|p| p.len() as u64 * 4).sum();
        if let Some((op, kind)) = self.fault_check(OpClass::Transfer(TransferDir::HtoD)) {
            self.join_streams_for_error();
            let attempt = VirtualNanos::from_nanos(self.cfg.malloc_overhead_ns)
                + transfer_time(&self.cfg.pcie, total_bytes);
            return Err(self.fault_error(op, kind, total_bytes, self.cfg.pcie.latency_ns, attempt));
        }
        let mut pool = self.lock_pool();
        self.check_capacity(&pool, total_bytes)?;
        let out = parts.map(|part| {
            let len = part.len();
            let (id, generation) = pool.alloc(part);
            DeviceBuffer::new(id, len, generation)
        });
        let in_use = pool.bytes_in_use;
        drop(pool);
        self.finish_packed_htod(total_bytes, in_use);
        Ok(out)
    }

    /// [`Self::htod_packed`] with a compile-time part count, letting callers
    /// destructure the uploaded buffers instead of popping a `Vec`:
    ///
    /// ```ignore
    /// let [hb, lb] = gpu.htod_packed_n([&high_bits, &low_bits])?;
    /// ```
    pub fn htod_packed_n<const N: usize>(
        &self,
        parts: [&[u32]; N],
    ) -> Result<[DeviceBuffer<u32>; N], DeviceError> {
        let bufs = self.htod_packed(&parts)?;
        Ok(bufs
            .try_into()
            .unwrap_or_else(|_| unreachable!("htod_packed returns one buffer per part")))
    }

    /// Copy a buffer back to the host: device→host DMA. Host-blocking —
    /// in async mode the clock first advances to the *compute* frontier
    /// (the data was produced by kernels), then the DMA is charged
    /// serially. The HtoD copy stream is deliberately not joined: the K20
    /// has a dedicated copy engine per direction, so a download never
    /// waits behind an in-flight upload/prefetch. Callers downloading a
    /// buffer that came straight from `htod` (no kernel in between) must
    /// [`Gpu::wait_event`] its upload first — the engines do.
    pub fn dtoh<T: DeviceWord>(&self, buf: &DeviceBuffer<T>) -> Result<Vec<T>, DeviceError> {
        let bytes = buf.size_bytes();
        if let Some((op, kind)) = self.fault_check(OpClass::Transfer(TransferDir::DtoH)) {
            self.join_streams_for_error();
            let attempt = transfer_time(&self.cfg.pcie, bytes);
            return Err(self.fault_error(op, kind, bytes, self.cfg.pcie.latency_ns, attempt));
        }
        self.stream_sync(StreamKind::Compute);
        let pool = self.lock_pool();
        let out: Vec<T> = pool
            .words(buf.id)
            .iter()
            .map(|&w| T::from_word(w))
            .collect();
        drop(pool);
        self.stats.dtoh_bytes.fetch_add(bytes, Ordering::Relaxed);
        let start = self.now();
        let duration = transfer_time(&self.cfg.pcie, bytes);
        self.advance(duration);
        self.observe(&DeviceEvent::Transfer {
            direction: TransferDir::DtoH,
            bytes,
            start,
            duration,
        });
        Ok(out)
    }

    /// Copy a prefix of a buffer back to the host (common after compaction
    /// kernels where only `len` of the allocation is meaningful).
    pub fn dtoh_prefix<T: DeviceWord>(
        &self,
        buf: &DeviceBuffer<T>,
        len: usize,
    ) -> Result<Vec<T>, DeviceError> {
        assert!(len <= buf.len());
        let bytes = len as u64 * 4;
        if let Some((op, kind)) = self.fault_check(OpClass::Transfer(TransferDir::DtoH)) {
            self.join_streams_for_error();
            let attempt = transfer_time(&self.cfg.pcie, bytes);
            return Err(self.fault_error(op, kind, bytes, self.cfg.pcie.latency_ns, attempt));
        }
        self.stream_sync(StreamKind::Compute);
        let pool = self.lock_pool();
        let out: Vec<T> = pool.words(buf.id)[..len]
            .iter()
            .map(|&w| T::from_word(w))
            .collect();
        drop(pool);
        self.stats.dtoh_bytes.fetch_add(bytes, Ordering::Relaxed);
        let start = self.now();
        let duration = transfer_time(&self.cfg.pcie, bytes);
        self.advance(duration);
        self.observe(&DeviceEvent::Transfer {
            direction: TransferDir::DtoH,
            bytes,
            start,
            duration,
        });
        Ok(out)
    }

    /// Read a single element without charging transfer time (host-side
    /// debugging/tests only).
    pub fn peek<T: DeviceWord>(&self, buf: &DeviceBuffer<T>, idx: usize) -> T {
        let pool = self.lock_pool();
        T::from_word(pool.words(buf.id)[idx])
    }

    /// Release a buffer. Charges the `cudaFree` overhead.
    pub fn free<T: DeviceWord>(&self, buf: DeviceBuffer<T>) {
        self.lock_pool().free(buf.id);
        self.stats.on_free();
        self.advance(VirtualNanos::from_nanos(self.cfg.free_overhead_ns));
    }

    /// Time to move `bytes` across PCIe (exposed for scheduler estimates).
    pub fn pcie_time(&self, bytes: u64) -> VirtualNanos {
        transfer_time(&self.cfg.pcie, bytes)
    }

    /// Launch a kernel and advance the clock by its modelled duration.
    ///
    /// An injected [`FaultKind::KernelLaunchFailed`] models a kernel that
    /// crashes at retire: the launch runs functionally (so its cost is the
    /// real modelled cost) and charges full virtual time, but none of its
    /// stores become visible and no observer event is emitted. A lost
    /// device fails at submission, charging only the launch overhead.
    pub fn launch<K: Kernel>(
        &self,
        kernel: &K,
        lc: LaunchConfig,
    ) -> Result<LaunchReport, DeviceError> {
        let fault = self.fault_check(OpClass::Kernel);
        if let Some((op, FaultKind::DeviceLost)) = fault {
            self.join_streams_for_error();
            self.advance(VirtualNanos::from_nanos(self.cfg.kernel_launch_overhead_ns));
            return Err(DeviceError::DeviceLost { op_index: op });
        }

        let mut pool = self.lock_pool();
        let warps_per_block = lc.block_dim.div_ceil(self.cfg.warp_size);
        let total_warps = u64::from(lc.grid_dim) * u64::from(warps_per_block);

        let (mut counters, logs) =
            if lc.total_threads() < self.parallel_threshold || lc.grid_dim == 1 {
                let mut counters = LaunchCounters::default();
                let mut log = WriteLog::default();
                for b in 0..lc.grid_dim {
                    run_block(kernel, &self.cfg, lc, b, &pool, &mut log, &mut counters);
                }
                (counters, vec![log])
            } else {
                self.launch_parallel(kernel, lc, &pool)
            };

        counters.total_warps = total_warps;
        counters.stores_applied = logs.iter().map(|l| l.stores() as u64).sum();
        counters.extrapolate();

        if fault.is_none() {
            for log in logs {
                if !log.is_empty() {
                    log.apply(&mut pool);
                }
            }
        }
        drop(pool);

        let breakdown = kernel_time(&self.cfg, &counters);
        let time = breakdown.total();

        if let Some((op, kind)) = fault {
            // A failed launch surfaces at a synchronization point: retire
            // in-flight stream work, then charge the wasted attempt to the
            // host clock (serial mode: plain clock advance, as before).
            self.join_streams_for_error();
            self.advance(time);
            return Err(match kind {
                FaultKind::TransferError { dir } => {
                    DeviceError::TransferError { dir, op_index: op }
                }
                FaultKind::DeviceOom => DeviceError::DeviceOom {
                    requested_bytes: 0,
                    in_use_bytes: self.mem_in_use(),
                    capacity_bytes: self.cfg.global_mem_bytes,
                },
                _ => DeviceError::KernelLaunchFailed { op_index: op },
            });
        }

        let start = self.schedule_op(StreamKind::Compute, time);
        let report = LaunchReport {
            time,
            breakdown,
            counters,
            config: lc,
        };
        self.observe(&DeviceEvent::KernelLaunch {
            name: kernel.name(),
            start,
            report: &report,
        });
        Ok(report)
    }

    /// Execute blocks on multiple host threads. Each worker owns a write
    /// log and counter set; logs are applied in worker order (deterministic
    /// because workers own contiguous block ranges).
    fn launch_parallel<K: Kernel>(
        &self,
        kernel: &K,
        lc: LaunchConfig,
        pool: &Pool,
    ) -> (LaunchCounters, Vec<WriteLog>) {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .min(lc.grid_dim as usize)
            .max(1);
        let chunk = (lc.grid_dim as usize).div_ceil(workers);
        let cfg = &self.cfg;

        let mut results: Vec<(LaunchCounters, WriteLog)> = Vec::with_capacity(workers);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for w in 0..workers {
                let first = w * chunk;
                let last = ((w + 1) * chunk).min(lc.grid_dim as usize);
                if first >= last {
                    break;
                }
                handles.push(scope.spawn(move || {
                    let mut counters = LaunchCounters::default();
                    let mut log = WriteLog::default();
                    for b in first..last {
                        run_block(kernel, cfg, lc, b as u32, pool, &mut log, &mut counters);
                    }
                    (counters, log)
                }));
            }
            for h in handles {
                results.push(h.join().expect("kernel block executor panicked"));
            }
        });

        let mut counters = LaunchCounters::default();
        let mut logs = Vec::with_capacity(results.len());
        for (c, log) in results {
            counters.merge(&c);
            logs.push(log);
        }
        (counters, logs)
    }

    /// Aggregate transfer/allocation statistics for reports.
    pub fn stats(&self) -> DeviceStatsSnapshot {
        DeviceStatsSnapshot {
            allocs: self.stats.allocs.load(Ordering::Relaxed),
            frees: self.stats.frees.load(Ordering::Relaxed),
            htod_bytes: self.stats.htod_bytes.load(Ordering::Relaxed),
            dtoh_bytes: self.stats.dtoh_bytes.load(Ordering::Relaxed),
            peak_bytes: self.stats.peak_bytes.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of device statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeviceStatsSnapshot {
    pub allocs: u64,
    pub frees: u64,
    pub htod_bytes: u64,
    pub dtoh_bytes: u64,
    pub peak_bytes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::ThreadCtx;

    struct AddOne {
        src: DeviceBuffer<u32>,
        dst: DeviceBuffer<u32>,
        n: usize,
    }

    impl Kernel for AddOne {
        type State = ();
        fn run_phase(&self, _p: usize, t: &mut ThreadCtx<'_>, _s: &mut ()) {
            let i = t.global_thread_idx();
            if t.branch(i < self.n) {
                let v: u32 = t.ld(&self.src, i);
                t.alu(1);
                t.st(&self.dst, i, v + 1);
            }
        }
    }

    #[test]
    fn functional_roundtrip() {
        let gpu = Gpu::new(DeviceConfig::test_tiny());
        let data: Vec<u32> = (0..500).collect();
        let src = gpu.htod(&data).unwrap();
        let dst = gpu.alloc::<u32>(500).unwrap();
        gpu.launch(
            &AddOne {
                src,
                dst: dst.clone(),
                n: 500,
            },
            LaunchConfig::cover(500, 128),
        )
        .unwrap();
        let out = gpu.dtoh(&dst).unwrap();
        assert_eq!(out.len(), 500);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i as u32 + 1));
    }

    #[test]
    fn parallel_and_serial_paths_agree() {
        let gpu = Gpu::new(DeviceConfig::test_tiny());
        let n = 200_000; // forces the parallel path
        let data: Vec<u32> = (0..n as u32).collect();
        let src = gpu.htod(&data).unwrap();
        let dst = gpu.alloc::<u32>(n).unwrap();
        let report = gpu
            .launch(
                &AddOne {
                    src,
                    dst: dst.clone(),
                    n,
                },
                LaunchConfig::cover(n, 256),
            )
            .unwrap();
        assert_eq!(report.counters.stores_applied, n as u64);
        let out = gpu.dtoh(&dst).unwrap();
        assert!(out.iter().enumerate().all(|(i, &v)| v == i as u32 + 1));
    }

    #[test]
    fn clock_advances_with_every_operation() {
        let gpu = Gpu::new(DeviceConfig::test_tiny());
        let t0 = gpu.now();
        let buf = gpu.htod(&[1u32, 2, 3]).unwrap();
        let t1 = gpu.now();
        assert!(t1 > t0, "htod must charge time");
        let _ = gpu.dtoh(&buf).unwrap();
        let t2 = gpu.now();
        assert!(t2 > t1, "dtoh must charge time");
        gpu.free(buf);
        assert!(gpu.now() > t2, "free must charge time");
    }

    #[test]
    fn alloc_free_accounting() {
        let gpu = Gpu::new(DeviceConfig::test_tiny());
        let a = gpu.alloc::<u32>(1000).unwrap();
        assert_eq!(gpu.mem_in_use(), 4000);
        let b = gpu.alloc::<u32>(500).unwrap();
        assert_eq!(gpu.mem_in_use(), 6000);
        gpu.free(a);
        assert_eq!(gpu.mem_in_use(), 2000);
        gpu.free(b);
        assert_eq!(gpu.mem_in_use(), 0);
        let s = gpu.stats();
        assert_eq!(s.allocs, 2);
        assert_eq!(s.frees, 2);
        assert_eq!(s.peak_bytes, 6000);
    }

    #[test]
    fn oom_is_an_error_with_no_side_effects() {
        let gpu = Gpu::new(DeviceConfig::test_tiny()); // 64 MB
        let t0 = gpu.now();
        let res = gpu.alloc::<u32>(20 * 1024 * 1024); // 80 MB
        match res {
            Err(DeviceError::DeviceOom {
                requested_bytes,
                in_use_bytes,
                capacity_bytes,
            }) => {
                assert_eq!(requested_bytes, 80 * 1024 * 1024);
                assert_eq!(in_use_bytes, 0);
                assert_eq!(capacity_bytes, 64 * 1024 * 1024);
            }
            other => panic!("expected DeviceOom, got {other:?}"),
        }
        // The failed cudaMalloc costs time but allocates nothing.
        assert!(gpu.now() > t0);
        assert_eq!(gpu.mem_in_use(), 0);
        assert_eq!(gpu.stats().allocs, 0);
        // The device stays usable.
        let b = gpu.alloc::<u32>(16).unwrap();
        gpu.free(b);
    }

    #[test]
    fn time_helper_measures_span() {
        let gpu = Gpu::new(DeviceConfig::test_tiny());
        let (_, t) = gpu.time(|g| {
            let b = g.htod(&[0u32; 1024]).unwrap();
            g.free(b);
        });
        assert!(t.as_nanos() > 0);
    }

    #[test]
    fn dtoh_prefix_returns_prefix_and_charges_less() {
        let gpu = Gpu::new(DeviceConfig::test_tiny());
        let buf = gpu.htod(&(0u32..1000).collect::<Vec<_>>()).unwrap();
        let t0 = gpu.now();
        let few = gpu.dtoh_prefix(&buf, 10).unwrap();
        let t_few = gpu.now() - t0;
        assert_eq!(few, (0u32..10).collect::<Vec<_>>());
        let t1 = gpu.now();
        let _all = gpu.dtoh(&buf).unwrap();
        let t_all = gpu.now() - t1;
        assert!(t_all >= t_few);
    }

    /// Runs a fixed op sequence and returns (outputs, final clock).
    fn run_sequence(gpu: &Gpu) -> (Vec<u32>, u64) {
        let data: Vec<u32> = (0..500).collect();
        let src = gpu.htod(&data).expect("htod");
        let dst = gpu.alloc::<u32>(500).expect("alloc");
        gpu.launch(
            &AddOne {
                src: src.clone(),
                dst: dst.clone(),
                n: 500,
            },
            LaunchConfig::cover(500, 128),
        )
        .expect("launch");
        let out = gpu.dtoh(&dst).expect("dtoh");
        gpu.free(src);
        gpu.free(dst);
        (out, gpu.now().as_nanos())
    }

    #[test]
    fn armed_noop_plan_is_bit_exact() {
        let plain = Gpu::new(DeviceConfig::test_tiny());
        let mut cfg = DeviceConfig::test_tiny();
        cfg.fault_plan = Some(crate::fault::FaultPlan::seeded(1234));
        let armed = Gpu::new(cfg);
        assert_eq!(run_sequence(&plain), run_sequence(&armed));
    }

    #[test]
    fn injected_kernel_fault_charges_time_and_hides_stores() {
        let mut cfg = DeviceConfig::test_tiny();
        // Ops: 0 = htod, 1 = alloc, 2 = launch.
        cfg.fault_plan =
            Some(crate::fault::FaultPlan::seeded(0).fail_at(2, FaultKind::KernelLaunchFailed));
        let gpu = Gpu::new(cfg);
        let src = gpu.htod(&(0u32..500).collect::<Vec<_>>()).unwrap();
        let dst = gpu.alloc::<u32>(500).unwrap();
        let t0 = gpu.now();
        let err = gpu
            .launch(
                &AddOne {
                    src,
                    dst: dst.clone(),
                    n: 500,
                },
                LaunchConfig::cover(500, 128),
            )
            .unwrap_err();
        assert_eq!(err, DeviceError::KernelLaunchFailed { op_index: 2 });
        assert!(err.is_transient());
        assert!(gpu.now() > t0, "a failed attempt still costs virtual time");
        // No stores became visible.
        let out = gpu.dtoh(&dst).unwrap();
        assert!(out.iter().all(|&v| v == 0), "stores must not be applied");
        // Retry succeeds (the fault was pinned to op 2 only).
        let src2 = gpu.htod(&(0u32..500).collect::<Vec<_>>()).unwrap();
        gpu.launch(
            &AddOne {
                src: src2,
                dst: dst.clone(),
                n: 500,
            },
            LaunchConfig::cover(500, 128),
        )
        .unwrap();
        let out = gpu.dtoh(&dst).unwrap();
        assert!(out.iter().enumerate().all(|(i, &v)| v == i as u32 + 1));
    }

    #[test]
    fn failed_transfer_charges_the_attempt() {
        let mut cfg = DeviceConfig::test_tiny();
        cfg.fault_plan = Some(crate::fault::FaultPlan::seeded(0).fail_at(
            0,
            FaultKind::TransferError {
                dir: TransferDir::HtoD,
            },
        ));
        let gpu = Gpu::new(cfg);
        let data = vec![0u32; 1 << 20];
        let t0 = gpu.now();
        let err = gpu.htod(&data).unwrap_err();
        let charged = (gpu.now() - t0).as_nanos();
        assert!(matches!(err, DeviceError::TransferError { .. }));
        // Full attempt cost: malloc overhead + the DMA the wire carried.
        let modelled = gpu.pcie_time(1 << 22).as_nanos() + 50;
        assert_eq!(charged, modelled);
        assert_eq!(gpu.mem_in_use(), 0, "failed upload leaves no allocation");
    }

    #[test]
    fn device_loss_is_sticky_until_plan_reset() {
        let mut cfg = DeviceConfig::test_tiny();
        cfg.fault_plan = Some(crate::fault::FaultPlan::seeded(0).lose_device_at(1));
        let gpu = Gpu::new(cfg);
        let buf = gpu.htod(&[1u32, 2, 3]).unwrap(); // op 0: fine
        let err = gpu.dtoh(&buf).unwrap_err(); // op 1: lost
        assert_eq!(err, DeviceError::DeviceLost { op_index: 1 });
        assert!(!err.is_transient());
        // Everything afterwards fails fast...
        assert!(gpu.alloc::<u32>(4).is_err());
        assert!(gpu.htod(&[9u32]).is_err());
        // ...but free still works (host-side bookkeeping).
        gpu.free(buf);
        assert_eq!(gpu.mem_in_use(), 0);
        // Installing a fresh plan models swapping in a healthy device.
        gpu.set_fault_plan(None);
        let b = gpu.htod(&[7u32]).unwrap();
        assert_eq!(gpu.dtoh(&b).unwrap(), vec![7]);
    }

    #[test]
    fn probabilistic_faults_are_reproducible() {
        let run = |seed: u64| -> Vec<bool> {
            let mut cfg = DeviceConfig::test_tiny();
            cfg.fault_plan =
                Some(crate::fault::FaultPlan::seeded(seed).with_transfer_fault_rate(0.3));
            let gpu = Gpu::new(cfg);
            (0..64).map(|_| gpu.htod(&[1u32, 2]).is_err()).collect()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
        assert!(run(5).iter().any(|&f| f), "30% over 64 ops should fire");
    }

    #[test]
    fn panicking_observer_does_not_poison_the_device() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        let gpu = Gpu::new(DeviceConfig::test_tiny());
        gpu.set_observer(Some(Arc::new(|_e: &DeviceEvent<'_>| {
            panic!("observer bug")
        })));
        let r = catch_unwind(AssertUnwindSafe(|| {
            let _ = gpu.htod(&[1u32, 2, 3]);
        }));
        assert!(r.is_err(), "the observer panic propagates to the caller");
        // A later query must not find a poisoned device.
        gpu.set_observer(None);
        let buf = gpu.htod(&[4u32, 5]).unwrap();
        assert_eq!(gpu.dtoh(&buf).unwrap(), vec![4, 5]);
        gpu.free(buf);
    }

    struct PanicKernel;
    impl Kernel for PanicKernel {
        type State = ();
        fn run_phase(&self, _p: usize, t: &mut ThreadCtx<'_>, _s: &mut ()) {
            if t.global_thread_idx() == 0 {
                panic!("kernel bug");
            }
        }
    }

    #[test]
    fn panicking_kernel_does_not_poison_the_pool() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        let gpu = Gpu::new(DeviceConfig::test_tiny());
        let r = catch_unwind(AssertUnwindSafe(|| {
            let _ = gpu.launch(&PanicKernel, LaunchConfig::cover(64, 64));
        }));
        assert!(r.is_err());
        // The pool lock was held across the panic; later ops must recover.
        let buf = gpu.htod(&[1u32, 2, 3]).unwrap();
        assert_eq!(gpu.dtoh(&buf).unwrap(), vec![1, 2, 3]);
        gpu.free(buf);
    }

    #[test]
    fn async_mode_is_bit_exact_and_never_slower() {
        let serial = Gpu::new(DeviceConfig::test_tiny());
        let (out_serial, t_serial) = run_sequence(&serial);

        let gpu = Gpu::new(DeviceConfig::test_tiny());
        gpu.set_async(true);
        let (out_async, _) = run_sequence(&gpu);
        gpu.set_async(false); // syncs: clock covers all scheduled work
        let t_async = gpu.now().as_nanos();

        assert_eq!(out_serial, out_async, "results must not depend on overlap");
        assert!(
            t_async <= t_serial,
            "critical path ({t_async}) cannot exceed the serial sum ({t_serial})"
        );
    }

    #[test]
    fn stream_wait_orders_dependent_work_and_copies_overlap_compute() {
        use crate::stream::StreamKind;
        let gpu = Gpu::new(DeviceConfig::test_tiny());
        gpu.set_async(true);
        let n = 200_000;
        let data: Vec<u32> = (0..n as u32).collect();
        let src = gpu.htod(&data).unwrap();
        let up = gpu.record_event(StreamKind::Copy);
        let dst = gpu.alloc::<u32>(n).unwrap();
        gpu.stream_wait(StreamKind::Compute, up);
        gpu.launch(
            &AddOne {
                src,
                dst: dst.clone(),
                n,
            },
            LaunchConfig::cover(n, 128),
        )
        .unwrap();
        let kernel_done = gpu.record_event(StreamKind::Compute);
        assert!(
            kernel_done.ready_at() >= up.ready_at(),
            "a kernel that waits on an upload cannot retire before it"
        );
        // A second (small) upload issued while the kernel runs finishes
        // under it: that is the copy/compute overlap the model exists for.
        let src2 = gpu.htod(&[1u32, 2, 3, 4]).unwrap();
        let up2 = gpu.record_event(StreamKind::Copy);
        assert!(
            up2.ready_at() < kernel_done.ready_at(),
            "the copy engine must be free while the compute engine is busy"
        );
        gpu.sync();
        assert_eq!(
            gpu.now(),
            kernel_done.ready_at().max(up2.ready_at()),
            "sync advances the clock to the last stream frontier"
        );
        // dtoh is host-blocking and sees the kernel's stores.
        let out = gpu.dtoh(&dst).unwrap();
        assert!(out.iter().enumerate().all(|(i, &v)| v == i as u32 + 1));
        gpu.free(dst);
        gpu.free(src2);
    }

    #[test]
    fn htod_packed_owned_matches_htod_packed() {
        let borrowed = Gpu::new(DeviceConfig::test_tiny());
        let a: Vec<u32> = (0..1000).collect();
        let b: Vec<u32> = (0..37).map(|i| i * 3).collect();
        let [ba, bb] = borrowed.htod_packed_n([&a, &b]).unwrap();
        let owned = Gpu::new(DeviceConfig::test_tiny());
        let [oa, ob] = owned.htod_packed_owned([a.clone(), b.clone()]).unwrap();
        assert_eq!(borrowed.now(), owned.now(), "identical charge");
        assert_eq!(borrowed.dtoh(&ba).unwrap(), owned.dtoh(&oa).unwrap());
        assert_eq!(borrowed.dtoh(&bb).unwrap(), owned.dtoh(&ob).unwrap());
        assert_eq!(owned.dtoh(&ob).unwrap(), b);
        for (g, bufs) in [(&borrowed, [ba, bb]), (&owned, [oa, ob])] {
            for buf in bufs {
                g.free(buf);
            }
            assert_eq!(g.mem_in_use(), 0);
        }
    }

    #[test]
    fn fault_during_async_work_charges_at_a_sync_point() {
        use crate::stream::StreamKind;
        let mut cfg = DeviceConfig::test_tiny();
        // Ops: 0 = htod, 1 = htod (faulted).
        cfg.fault_plan = Some(crate::fault::FaultPlan::seeded(0).fail_at(
            1,
            FaultKind::TransferError {
                dir: TransferDir::HtoD,
            },
        ));
        let gpu = Gpu::new(cfg);
        gpu.set_async(true);
        let big = vec![0u32; 1 << 20];
        let first = gpu.htod(&big).unwrap();
        let scheduled = gpu.stream_busy_until(StreamKind::Copy);
        assert!(
            gpu.now() < scheduled,
            "the first upload is still in flight on the copy stream"
        );
        let t0 = gpu.now();
        let err = gpu.htod(&[1u32, 2]).unwrap_err();
        assert!(matches!(err, DeviceError::TransferError { .. }));
        // The error joined the streams first, then charged the attempt:
        // everything scheduled so far is inside the measured clock.
        assert!(gpu.now() >= scheduled, "error surfacing synchronizes");
        assert!(gpu.now() > t0, "the failed attempt still costs time");
        gpu.free(first);
        gpu.set_async(false);
    }
}
