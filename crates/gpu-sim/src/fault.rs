//! Deterministic fault injection for the simulated device.
//!
//! A [`FaultPlan`] — attached to [`crate::DeviceConfig`] or installed at
//! runtime with [`crate::Gpu::set_fault_plan`] — makes device operations
//! fail on a seeded, reproducible schedule. Faults can be pinned to exact
//! operation indices (`fail_at`) or drawn per-class from a seeded RNG
//! (`*_fault_rate`); [`FaultPlan::lose_device_at`] drops the device off the
//! bus *stickily*, failing every subsequent operation.
//!
//! Failed attempts still cost virtual time: a kernel that aborts at retire
//! charges its full modelled duration, a failed DMA charges the transfer
//! time, and only a lost device fails fast (the fixed submission overhead).
//! This keeps recovery experiments honest — retries are not free.
//!
//! With no plan installed (or a plan where [`FaultPlan::is_noop`] holds),
//! the device behaves bit-identically to a build without this module:
//! same outputs, same virtual timings, same observer events.
//!
//! ## Faults under asynchronous streams
//!
//! Fault decisions are made at *issue* time in program order, so an op's
//! index is the same whether overlap ([`crate::Gpu::set_async`]) is on or
//! off — a chaos schedule reproduces identically in both modes. Error
//! *surfacing* is a synchronization point (as with a real driver): the
//! clock first advances over all in-flight stream work, then the failed
//! attempt is charged, so spans measured around fallible operations stay
//! exact. A fault injected into an in-flight *prefetch* is held by the
//! engine and charged to the operation that consumes the prefetched data
//! (see `griffin-gpu`'s prefetch pipeline).

use std::error::Error;
use std::fmt;

use crate::observe::TransferDir;

/// The ways a device operation can fail.
///
/// `op_index` is the zero-based index of the failing operation among all
/// fallible operations (allocations, transfers, kernel launches) issued
/// since the fault plan was installed — useful for correlating an error
/// with a [`FaultPlan`] schedule in tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceError {
    /// A kernel launch aborted before its stores became visible.
    KernelLaunchFailed { op_index: u64 },
    /// A PCIe DMA transfer failed; no data reached the other side.
    TransferError { dir: TransferDir, op_index: u64 },
    /// The allocation did not fit in device memory (real exhaustion or an
    /// injected allocator failure).
    DeviceOom {
        requested_bytes: u64,
        in_use_bytes: u64,
        capacity_bytes: u64,
    },
    /// The device dropped off the bus. Sticky: every later operation fails
    /// with this error until a new fault plan resets the device.
    DeviceLost { op_index: u64 },
}

impl DeviceError {
    /// Transient errors may succeed on retry; a lost device never comes
    /// back (within one plan's lifetime).
    pub fn is_transient(&self) -> bool {
        !matches!(self, DeviceError::DeviceLost { .. })
    }

    /// Stable label for metrics (`griffin_fault_*` counter tags).
    pub fn kind_label(&self) -> &'static str {
        match self {
            DeviceError::KernelLaunchFailed { .. } => "kernel_launch_failed",
            DeviceError::TransferError { .. } => "transfer_error",
            DeviceError::DeviceOom { .. } => "device_oom",
            DeviceError::DeviceLost { .. } => "device_lost",
        }
    }
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::KernelLaunchFailed { op_index } => {
                write!(f, "kernel launch failed (device op #{op_index})")
            }
            DeviceError::TransferError { dir, op_index } => {
                write!(
                    f,
                    "{} transfer failed (device op #{op_index})",
                    dir.as_str()
                )
            }
            DeviceError::DeviceOom {
                requested_bytes,
                in_use_bytes,
                capacity_bytes,
            } => write!(
                f,
                "device out of memory: requested {requested_bytes} B with \
                 {in_use_bytes}/{capacity_bytes} B in use"
            ),
            DeviceError::DeviceLost { op_index } => {
                write!(f, "device lost (since device op #{op_index})")
            }
        }
    }
}

impl Error for DeviceError {}

/// Fault classes a [`FaultPlan`] can schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    KernelLaunchFailed,
    TransferError {
        dir: TransferDir,
    },
    DeviceOom,
    /// Sticky: once fired, every subsequent operation fails.
    DeviceLost,
}

/// A deterministic schedule of device faults.
///
/// The same plan (same seed, same rates, same pinned indices) always
/// produces the same fault sequence for the same operation stream — the
/// property the chaos test suite and `exp_faults` rely on.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for the per-class probability draws.
    pub seed: u64,
    /// Probability in `[0, 1]` that a kernel launch fails.
    pub kernel_fault_rate: f64,
    /// Probability in `[0, 1]` that a PCIe transfer fails.
    pub transfer_fault_rate: f64,
    /// Probability in `[0, 1]` that an allocation fails with OOM.
    pub oom_fault_rate: f64,
    /// Faults pinned to exact operation indices (fired regardless of the
    /// probability draws). A pinned `DeviceLost` becomes sticky.
    pub at: Vec<(u64, FaultKind)>,
    /// Lose the device at this operation index (sticky from there on).
    pub lost_at: Option<u64>,
}

impl FaultPlan {
    /// A plan that injects nothing (until rates or pinned faults are added).
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            kernel_fault_rate: 0.0,
            transfer_fault_rate: 0.0,
            oom_fault_rate: 0.0,
            at: Vec::new(),
            lost_at: None,
        }
    }

    pub fn with_kernel_fault_rate(mut self, rate: f64) -> Self {
        self.kernel_fault_rate = rate;
        self
    }

    pub fn with_transfer_fault_rate(mut self, rate: f64) -> Self {
        self.transfer_fault_rate = rate;
        self
    }

    pub fn with_oom_fault_rate(mut self, rate: f64) -> Self {
        self.oom_fault_rate = rate;
        self
    }

    /// Applies `rate` to kernels, transfers, and allocations alike.
    pub fn with_fault_rate(self, rate: f64) -> Self {
        self.with_kernel_fault_rate(rate)
            .with_transfer_fault_rate(rate)
            .with_oom_fault_rate(rate)
    }

    /// Pins a fault of `kind` to operation index `op`.
    pub fn fail_at(mut self, op: u64, kind: FaultKind) -> Self {
        self.at.push((op, kind));
        self
    }

    /// Loses the device stickily at operation index `op`.
    pub fn lose_device_at(mut self, op: u64) -> Self {
        self.lost_at = Some(op);
        self
    }

    /// True when the plan can never fire a fault. An armed no-op plan is
    /// observationally identical to no plan at all.
    pub fn is_noop(&self) -> bool {
        self.kernel_fault_rate <= 0.0
            && self.transfer_fault_rate <= 0.0
            && self.oom_fault_rate <= 0.0
            && self.at.is_empty()
            && self.lost_at.is_none()
    }
}

/// SplitMix64 — tiny, deterministic, dependency-free. Each fallible device
/// operation whose class has a nonzero rate consumes exactly one draw, so
/// the stream is stable under changes to *other* classes' rates.
#[derive(Debug, Clone)]
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// The operation class a fault check is made for (determines which rate
/// applies and what error an unpinned fault maps to).
#[derive(Debug, Clone, Copy)]
pub(crate) enum OpClass {
    Kernel,
    Transfer(TransferDir),
    Alloc,
}

/// Mutable state behind a running fault plan.
#[derive(Debug)]
pub(crate) struct FaultState {
    plan: FaultPlan,
    rng: SplitMix64,
    lost: bool,
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan) -> Self {
        let rng = SplitMix64::new(plan.seed);
        FaultState {
            plan,
            rng,
            lost: false,
        }
    }

    /// Decides whether operation `op_index` of class `class` faults, and
    /// with what kind. Pinned faults win over probability draws; a lost
    /// device wins over everything.
    pub(crate) fn fire(&mut self, op_index: u64, class: OpClass) -> Option<FaultKind> {
        if self.lost {
            return Some(FaultKind::DeviceLost);
        }
        if self.plan.lost_at.is_some_and(|at| op_index >= at) {
            self.lost = true;
            return Some(FaultKind::DeviceLost);
        }
        if let Some(&(_, kind)) = self.plan.at.iter().find(|&&(i, _)| i == op_index) {
            if kind == FaultKind::DeviceLost {
                self.lost = true;
            }
            return Some(kind);
        }
        let rate = match class {
            OpClass::Kernel => self.plan.kernel_fault_rate,
            OpClass::Transfer(_) => self.plan.transfer_fault_rate,
            OpClass::Alloc => self.plan.oom_fault_rate,
        };
        if rate > 0.0 && self.rng.next_f64() < rate {
            return Some(match class {
                OpClass::Kernel => FaultKind::KernelLaunchFailed,
                OpClass::Transfer(dir) => FaultKind::TransferError { dir },
                OpClass::Alloc => FaultKind::DeviceOom,
            });
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_uniformish() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        let mut sum = 0.0;
        for _ in 0..1000 {
            let x = a.next_f64();
            assert_eq!(x, b.next_f64());
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 1000.0;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn pinned_faults_fire_at_their_index() {
        let plan = FaultPlan::seeded(1)
            .fail_at(3, FaultKind::KernelLaunchFailed)
            .fail_at(5, FaultKind::DeviceOom);
        let mut st = FaultState::new(plan);
        for op in 0..8u64 {
            let fired = st.fire(op, OpClass::Kernel);
            match op {
                3 => assert_eq!(fired, Some(FaultKind::KernelLaunchFailed)),
                5 => assert_eq!(fired, Some(FaultKind::DeviceOom)),
                _ => assert_eq!(fired, None),
            }
        }
    }

    #[test]
    fn device_loss_is_sticky() {
        let mut st = FaultState::new(FaultPlan::seeded(7).lose_device_at(2));
        assert_eq!(st.fire(0, OpClass::Kernel), None);
        assert_eq!(st.fire(1, OpClass::Alloc), None);
        for op in 2..10u64 {
            assert_eq!(
                st.fire(op, OpClass::Transfer(TransferDir::HtoD)),
                Some(FaultKind::DeviceLost),
                "op {op}"
            );
        }
    }

    #[test]
    fn pinned_device_lost_is_sticky_too() {
        let mut st = FaultState::new(FaultPlan::seeded(7).fail_at(4, FaultKind::DeviceLost));
        assert_eq!(st.fire(3, OpClass::Kernel), None);
        assert_eq!(st.fire(4, OpClass::Kernel), Some(FaultKind::DeviceLost));
        assert_eq!(st.fire(5, OpClass::Alloc), Some(FaultKind::DeviceLost));
    }

    #[test]
    fn rates_draw_deterministically_per_seed() {
        let fired = |seed: u64| -> Vec<u64> {
            let mut st = FaultState::new(FaultPlan::seeded(seed).with_kernel_fault_rate(0.25));
            (0..100u64)
                .filter(|&op| st.fire(op, OpClass::Kernel).is_some())
                .collect()
        };
        assert_eq!(fired(9), fired(9));
        assert_ne!(fired(9), fired(10), "different seeds, different schedule");
        let n = fired(9).len();
        assert!(
            (10..=45).contains(&n),
            "~25% of 100 ops should fire, got {n}"
        );
    }

    #[test]
    fn class_rates_are_independent_streams() {
        // A transfer-only rate must not consume draws on kernel ops.
        let mut st = FaultState::new(FaultPlan::seeded(3).with_transfer_fault_rate(0.5));
        for op in 0..50u64 {
            assert_eq!(st.fire(op, OpClass::Kernel), None);
        }
        let mut st2 = FaultState::new(FaultPlan::seeded(3).with_transfer_fault_rate(0.5));
        let hits: usize = (0..50u64)
            .filter(|&op| st2.fire(op, OpClass::Transfer(TransferDir::DtoH)).is_some())
            .count();
        assert!(hits > 5, "a 50% rate must actually fire ({hits})");
    }

    #[test]
    fn noop_plans_are_recognized() {
        assert!(FaultPlan::seeded(0).is_noop());
        assert!(!FaultPlan::seeded(0).with_fault_rate(0.01).is_noop());
        assert!(!FaultPlan::seeded(0).lose_device_at(0).is_noop());
        assert!(!FaultPlan::seeded(0)
            .fail_at(1, FaultKind::DeviceOom)
            .is_noop());
    }
}
