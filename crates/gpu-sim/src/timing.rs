//! The analytic kernel timing model.
//!
//! Converts extrapolated [`LaunchCounters`] into virtual time using an
//! occupancy/roofline model with three terms, taking their maximum (the
//! device overlaps compute with memory, and a launch cannot finish before
//! its critical path):
//!
//! 1. **Issue-throughput bound** — total warp-instructions divided by the
//!    device's aggregate issue width, inflated by the measured
//!    branch-divergence rate (a divergent warp executes both sides).
//! 2. **Memory-bandwidth bound** — coalesced transactions × transaction
//!    width divided by device bandwidth.
//! 3. **Latency floor** — for launches too small to fill the machine,
//!    `waves × (per-warp issue cycles + per-warp memory latency)`. This is
//!    what makes tiny kernels slow relative to their work, the effect the
//!    paper leans on ("these costs occur just once, so running larger, more
//!    complex query operations can amortize them").
//!
//! The fixed kernel-launch overhead is added on top.

use crate::clock::VirtualNanos;
use crate::config::DeviceConfig;
use crate::tracer::{LaunchCounters, Op};

/// Detailed timing breakdown for one launch, surfaced for tests and model
/// ablation benches.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeBreakdown {
    pub launch_overhead_ns: f64,
    pub compute_ns: f64,
    pub memory_ns: f64,
    pub latency_floor_ns: f64,
    pub total_ns: f64,
}

/// Total issue cycles (warp-granularity) implied by the counters.
fn issue_cycles(cfg: &DeviceConfig, c: &LaunchCounters) -> f64 {
    let k = &cfg.costs;
    let lane_cycles = c.ops[Op::Alu.idx()] as f64 * k.alu_cpi
        + c.ops[Op::Mul.idx()] as f64 * k.mul_cpi
        + c.ops[Op::Popc.idx()] as f64 * k.popc_cpi
        + c.branches as f64 * k.branch_cpi
        + c.smem_accesses as f64 * k.smem_cpi
        + c.gmem_accesses as f64 * k.gmem_issue_cpi;
    // Lanes execute in lockstep: lane-summed ops issue as warp instructions.
    let warp_cycles = lane_cycles / f64::from(cfg.warp_size);
    // Divergent branches serialize both paths; penalize the instruction
    // stream by the measured divergence rate.
    let divergence = 1.0 + k.divergence_penalty * c.divergence_rate();
    // Atomics serialize per conflicting access; charge them at lane
    // granularity (pessimistic: all conflict).
    warp_cycles * divergence + c.atomics as f64 * k.atomic_cpi
}

/// Computes the virtual duration of a kernel launch.
pub fn kernel_time(cfg: &DeviceConfig, c: &LaunchCounters) -> TimeBreakdown {
    let ns_per_cycle = cfg.ns_per_cycle();
    let cycles = issue_cycles(cfg, c);

    // 1. Throughput bound.
    let compute_ns = cycles / cfg.issue_width_warps() * ns_per_cycle;

    // 2. Bandwidth bound.
    let bytes = c.gmem_bytes(cfg.transaction_bytes) as f64;
    let memory_ns = bytes / cfg.global_bandwidth_bytes_per_sec * 1e9;

    // 3. Latency floor.
    let total_warps = c.total_warps.max(1) as f64;
    let waves = (total_warps / cfg.max_resident_warps() as f64).ceil();
    let per_warp_issue = cycles / total_warps;
    let per_warp_mem_latency = c.gmem_transactions as f64 / total_warps
        * cfg.costs.gmem_latency_cycles
        / cfg.costs.mem_level_parallelism.max(1.0);
    let latency_floor_ns = waves * (per_warp_issue + per_warp_mem_latency) * ns_per_cycle;

    let body = compute_ns.max(memory_ns).max(latency_floor_ns);
    let launch_overhead_ns = cfg.kernel_launch_overhead_ns as f64;
    TimeBreakdown {
        launch_overhead_ns,
        compute_ns,
        memory_ns,
        latency_floor_ns,
        total_ns: launch_overhead_ns + body,
    }
}

impl TimeBreakdown {
    pub fn total(&self) -> VirtualNanos {
        VirtualNanos::from_nanos_f64(self.total_ns)
    }

    /// Which term bound the launch (for diagnostics).
    pub fn bound_by(&self) -> &'static str {
        if self.compute_ns >= self.memory_ns && self.compute_ns >= self.latency_floor_ns {
            "compute"
        } else if self.memory_ns >= self.latency_floor_ns {
            "memory"
        } else {
            "latency"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DeviceConfig;

    fn counters(total_warps: u64) -> LaunchCounters {
        LaunchCounters {
            total_warps,
            traced_warps: total_warps,
            ..Default::default()
        }
    }

    #[test]
    fn empty_launch_costs_only_overhead() {
        let cfg = DeviceConfig::tesla_k20();
        let t = kernel_time(&cfg, &counters(1));
        assert_eq!(t.total().as_nanos(), cfg.kernel_launch_overhead_ns);
    }

    #[test]
    fn compute_bound_scales_with_ops() {
        let cfg = DeviceConfig::tesla_k20();
        let mut c = counters(100_000);
        c.ops[Op::Alu.idx()] = 100_000 * 32 * 100; // 100 alu per lane
        let t1 = kernel_time(&cfg, &c);
        c.ops[Op::Alu.idx()] *= 2;
        let t2 = kernel_time(&cfg, &c);
        assert!(t2.total_ns > t1.total_ns * 1.5);
        assert_eq!(t1.bound_by(), "compute");
    }

    #[test]
    fn memory_bound_when_traffic_dominates() {
        let cfg = DeviceConfig::tesla_k20();
        let mut c = counters(100_000);
        // Huge transaction count, negligible compute.
        c.gmem_transactions = 50_000_000;
        c.gmem_accesses = 50_000_000;
        let t = kernel_time(&cfg, &c);
        assert_eq!(t.bound_by(), "memory");
        // 50M * 128B = 6.4 GB at 208 GB/s ~= 30.8 ms.
        assert!((t.memory_ns / 1e6 - 30.77).abs() < 0.5, "{}", t.memory_ns);
    }

    #[test]
    fn small_launch_hits_latency_floor() {
        let cfg = DeviceConfig::tesla_k20();
        let mut c = counters(4); // 4 warps: far below residency
        c.gmem_transactions = 40; // 10 transactions per warp
        c.gmem_accesses = 40 * 32;
        let t = kernel_time(&cfg, &c);
        assert_eq!(t.bound_by(), "latency");
    }

    #[test]
    fn divergence_inflates_compute() {
        let cfg = DeviceConfig::tesla_k20();
        let mut c = counters(100_000);
        c.ops[Op::Alu.idx()] = 100_000 * 32 * 50;
        c.branch_sites = 1000;
        let base = kernel_time(&cfg, &c).compute_ns;
        c.divergent_sites = 1000; // 100% divergence
        let div = kernel_time(&cfg, &c).compute_ns;
        assert!((div / base - 2.0).abs() < 0.01, "{div} vs {base}");
    }

    #[test]
    fn more_waves_raise_latency_floor() {
        let cfg = DeviceConfig::tesla_k20();
        let resident = cfg.max_resident_warps();
        let mut c1 = counters(resident);
        c1.gmem_transactions = resident * 4;
        let mut c2 = counters(resident * 3);
        c2.gmem_transactions = resident * 3 * 4;
        let f1 = kernel_time(&cfg, &c1).latency_floor_ns;
        let f2 = kernel_time(&cfg, &c2).latency_floor_ns;
        assert!((f2 / f1 - 3.0).abs() < 0.01);
    }
}
