//! Asynchronous streams: per-engine virtual timelines.
//!
//! A real Kepler-class device has (at least) two independent engines — a
//! copy engine driving the PCIe DMA and a compute engine executing
//! kernels — and CUDA exposes them through *streams*: work items in one
//! stream execute in issue order, work items in different streams may
//! overlap. Griffin's biggest modeled-latency win (paper Figs. 10–11) is
//! hiding the next operation's long-list upload behind the current
//! operation's Para-EF decode + MergePath intersection, which requires
//! exactly this model.
//!
//! ## Timing semantics
//!
//! The device keeps one `busy_until` frontier per [`StreamKind`] alongside
//! the host-visible clock ([`crate::Gpu::now`]). While async mode is
//! enabled ([`crate::Gpu::set_async`]):
//!
//! * an operation issued on stream `s` *starts* at
//!   `max(busy_until[s], host clock, waited events)` and occupies the
//!   stream until `start + duration` — two operations on the same stream
//!   can never overlap, operations on different streams can;
//! * [`crate::Gpu::record_event`] captures a stream's current frontier as
//!   a [`StreamEvent`];
//! * [`crate::Gpu::stream_wait`] raises another stream's floor to an
//!   event (`cudaStreamWaitEvent`): later work on that stream starts no
//!   earlier than the event;
//! * [`crate::Gpu::wait_event`] / [`crate::Gpu::sync`] advance the host
//!   clock to the event / to every stream's frontier (`cudaEventSynchronize`
//!   / `cudaDeviceSynchronize`). Completion time is therefore the **max
//!   over dependency chains** — the critical path — instead of the serial
//!   sum.
//!
//! ## Functional semantics
//!
//! Functional execution stays *issue-ordered*: a transfer's bytes land in
//! device memory and a kernel's stores are applied at issue time, exactly
//! as in serial mode. Only the *timing* is scheduled onto the stream
//! timelines. Since engines always issue a transfer before the kernel
//! that consumes it (and declare the dependency with
//! [`crate::Gpu::stream_wait`] so the timing respects it too), results
//! are bit-exact with overlap on or off — by construction, not by luck.

use crate::clock::VirtualNanos;

/// The hardware engine a stream schedules onto.
///
/// The simulator models the two engines relevant to Griffin: the PCIe
/// copy engine and the SMX compute engine. (A K20 actually has two copy
/// engines, one per direction; `dtoh` is host-blocking in this model so a
/// single copy timeline suffices — see [`crate::config::DeviceConfig::copy_engines`].)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StreamKind {
    /// Kernel launches.
    Compute,
    /// PCIe DMA transfers.
    Copy,
}

/// Total number of stream timelines the device keeps.
pub const NUM_STREAMS: usize = 2;

impl StreamKind {
    #[inline]
    pub(crate) fn index(self) -> usize {
        match self {
            StreamKind::Compute => 0,
            StreamKind::Copy => 1,
        }
    }

    /// Stable label for telemetry lanes ("gpu-compute" / "gpu-copy").
    pub fn as_str(self) -> &'static str {
        match self {
            StreamKind::Compute => "gpu-compute",
            StreamKind::Copy => "gpu-copy",
        }
    }
}

/// Completion marker of asynchronously issued work (`cudaEventRecord`).
///
/// An event is just a point on the virtual timeline: the time at which
/// everything issued on its stream so far has retired. Events are `Copy`
/// and totally ordered, so "max over dependency chains" is literally
/// `Iterator::max`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct StreamEvent {
    ready: VirtualNanos,
}

impl StreamEvent {
    /// An event that is already complete at time zero — the identity for
    /// dependency maxes.
    pub const READY: StreamEvent = StreamEvent {
        ready: VirtualNanos::ZERO,
    };

    #[inline]
    pub(crate) fn at(ready: VirtualNanos) -> StreamEvent {
        StreamEvent { ready }
    }

    /// The virtual time at which the recorded work completes.
    #[inline]
    pub fn ready_at(self) -> VirtualNanos {
        self.ready
    }
}

/// Per-device stream state, guarded by one mutex on the [`crate::Gpu`].
#[derive(Debug, Default)]
pub(crate) struct StreamTable {
    /// Whether async scheduling is on. Off (the default) reproduces the
    /// historical strictly serial clock bit-for-bit.
    pub enabled: bool,
    /// Retire frontier of each stream, in ns (indexed by
    /// [`StreamKind::index`]).
    pub busy_until: [u64; NUM_STREAMS],
}

impl StreamTable {
    /// Max retire frontier across all streams.
    #[inline]
    pub fn frontier(&self) -> u64 {
        self.busy_until[0].max(self.busy_until[1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_order_by_time() {
        let a = StreamEvent::at(VirtualNanos::from_nanos(10));
        let b = StreamEvent::at(VirtualNanos::from_nanos(30));
        assert!(a < b);
        assert_eq!([a, b, StreamEvent::READY].iter().max(), Some(&b));
        assert_eq!(b.ready_at().as_nanos(), 30);
    }

    #[test]
    fn stream_labels_are_lane_names() {
        assert_eq!(StreamKind::Compute.as_str(), "gpu-compute");
        assert_eq!(StreamKind::Copy.as_str(), "gpu-copy");
        assert_ne!(StreamKind::Compute.index(), StreamKind::Copy.index());
    }
}
