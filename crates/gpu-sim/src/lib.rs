//! # griffin-gpu-sim — a software SIMT GPU simulator
//!
//! This crate is the hardware substrate for the Griffin reproduction. The
//! original paper runs CUDA kernels on an NVIDIA Tesla K20; this crate
//! provides a *software* device with the same programming model so that the
//! paper's kernels (Para-EF decompression, MergePath intersection, parallel
//! binary search, bucket-select, radix sort) can be implemented, executed
//! bit-exactly, and *timed* under a calibrated analytic model.
//!
//! ## Execution model
//!
//! A [`Gpu`] owns device memory (a pool of word-addressed buffers) and a
//! virtual clock. Kernels implement the [`Kernel`] trait: a grid of blocks,
//! each block a set of threads grouped into 32-lane warps. A kernel runs in
//! one or more *phases*; a phase boundary is a block-wide barrier
//! (`__syncthreads`). Per-thread registers live in `Kernel::State` and
//! persist across phases.
//!
//! Functional semantics:
//! * global reads observe the state of device memory *at launch time*
//!   (CUDA offers no global coherence within a launch either);
//! * global writes are logged and applied when the launch retires;
//! * shared memory is per-block and coherent across phases;
//! * block-local atomics (`atomic_add_shared`) are sequentially consistent.
//!
//! Blocks are independent and executed in parallel on host threads.
//!
//! ## Timing model
//!
//! Every memory access, charged ALU op, and branch flows through
//! [`ThreadCtx`], which records per-warp counters on a *sample* of warps
//! (full functional execution, sampled performance tracing — the standard
//! trick for fast performance models). [`timing`] converts the extrapolated
//! counters into virtual nanoseconds using an occupancy/roofline model:
//! kernel-launch overhead, issue-throughput-bound compute time,
//! bandwidth-bound memory time with measured coalescing, a latency floor for
//! under-occupied launches, and branch-divergence serialization.
//!
//! Host↔device traffic goes through the [`pcie`] model (fixed latency +
//! bandwidth), and device allocations charge an allocation overhead — exactly
//! the overheads the paper's scheduler must amortize.
//!
//! ## Fault injection
//!
//! Allocations, transfers, and launches are fallible — they return
//! [`DeviceError`] on memory exhaustion and on faults injected by a
//! seeded, deterministic [`FaultPlan`] installed on
//! [`DeviceConfig::fault_plan`] (or swapped at runtime with
//! [`Gpu::set_fault_plan`]). A failed attempt still advances the virtual
//! clock by its modelled cost, so recovery policies pay realistic retry
//! latency. With no plan installed the fallible paths cost one relaxed
//! atomic load and behave bit-identically to a fault-free build. See
//! [`fault`] for the fault taxonomy and determinism guarantees.
//!
//! ## Quick example
//!
//! ```
//! use griffin_gpu_sim::{Gpu, DeviceConfig, Kernel, ThreadCtx, LaunchConfig};
//!
//! /// Doubles every element of a buffer.
//! struct DoubleKernel {
//!     src: griffin_gpu_sim::DeviceBuffer<u32>,
//!     dst: griffin_gpu_sim::DeviceBuffer<u32>,
//!     n: usize,
//! }
//! impl Kernel for DoubleKernel {
//!     type State = ();
//!     fn run_phase(&self, _phase: usize, t: &mut ThreadCtx<'_>, _s: &mut ()) {
//!         let i = t.global_thread_idx();
//!         if t.branch(i < self.n) {
//!             let v: u32 = t.ld(&self.src, i);
//!             t.alu(1);
//!             t.st(&self.dst, i, v * 2);
//!         }
//!     }
//! }
//!
//! let gpu = Gpu::new(DeviceConfig::tesla_k20());
//! let data: Vec<u32> = (0..1000).collect();
//! let src = gpu.htod(&data).expect("upload");
//! let dst = gpu.alloc::<u32>(1000).expect("alloc");
//! let k = DoubleKernel { src: src.clone(), dst: dst.clone(), n: 1000 };
//! let report = gpu.launch(&k, LaunchConfig::cover(1000, 256)).expect("launch");
//! assert!(report.time.as_nanos() > 0);
//! let out = gpu.dtoh(&dst).expect("download");
//! assert_eq!(out[7], 14);
//! ```

pub mod clock;
pub mod config;
pub mod device;
pub mod fault;
pub mod kernel;
pub mod mem;
pub mod observe;
pub mod pcie;
pub mod stream;
pub mod timing;
pub mod tracer;

pub use clock::VirtualNanos;
pub use config::{CostParams, DeviceConfig, PcieConfig};
pub use device::{Gpu, LaunchReport};
pub use fault::{DeviceError, FaultKind, FaultPlan};
pub use kernel::{Dim, Kernel, LaunchConfig, ThreadCtx};
pub use mem::{DeviceBuffer, DeviceWord};
pub use observe::{DeviceEvent, DeviceObserver, TransferDir};
pub use stream::{StreamEvent, StreamKind};
pub use tracer::{LaunchCounters, Op};
