//! Per-warp performance tracing.
//!
//! Functional execution always runs every thread; performance counters are
//! recorded on a sample of warps (`DeviceConfig::trace_sample_stride`) and
//! extrapolated, which keeps the simulator fast on multi-million-thread
//! launches while preserving the statistics the timing model needs:
//! instruction mix, branch-divergence rate, and memory-coalescing behaviour.

/// Instruction classes a kernel can charge through [`crate::ThreadCtx`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// Simple integer/logic op (add, compare, shift, mask).
    Alu,
    /// Integer multiply / mad.
    Mul,
    /// Population count (`__popc`).
    Popc,
}

pub(crate) const OP_KINDS: usize = 3;

impl Op {
    #[inline]
    pub(crate) fn idx(self) -> usize {
        match self {
            Op::Alu => 0,
            Op::Mul => 1,
            Op::Popc => 2,
        }
    }
}

/// Counters for one traced warp.
#[derive(Debug, Default, Clone)]
pub(crate) struct WarpCounters {
    /// Dynamic op counts summed over the warp's lanes.
    pub ops: [u64; OP_KINDS],
    /// Total branch sites executed (lane-summed).
    pub branches: u64,
    /// Branch sites where lanes of this warp disagreed.
    pub divergent_sites: u64,
    /// Total branch sites observed (per-warp, not lane-summed).
    pub branch_sites: u64,
    /// Global load/store *instructions* (lane-summed).
    pub gmem_accesses: u64,
    /// Memory transactions after coalescing (warp-level).
    pub gmem_transactions: u64,
    /// Shared-memory accesses (lane-summed).
    pub smem_accesses: u64,
    /// Block-local atomic operations (lane-summed).
    pub atomics: u64,
    /// Lanes that executed at least one op in this warp.
    pub active_lanes: u32,
}

/// Scratch for one warp-site's branch outcomes and memory footprint,
/// reset at each phase boundary.
#[derive(Default)]
pub(crate) struct WarpTraceState {
    pub counters: WarpCounters,
    /// Per branch-site: (taken count, executed count) across lanes.
    branch_sites: Vec<(u32, u32)>,
    /// Per memory-site: sorted-on-demand list of touched transaction lines.
    mem_sites: Vec<MemSite>,
}

#[derive(Default)]
struct MemSite {
    lines: Vec<u64>,
}

impl WarpTraceState {
    pub(crate) fn reset_phase(&mut self) {
        // Finalize any outstanding per-site statistics into the counters.
        self.flush_sites();
        self.branch_sites.clear();
        self.mem_sites.clear();
    }

    /// Record a branch outcome for the lane currently executing.
    /// `site` is the per-lane branch sequence number within the phase.
    #[inline]
    pub(crate) fn record_branch(&mut self, site: usize, taken: bool) {
        if site >= self.branch_sites.len() {
            self.branch_sites.resize(site + 1, (0, 0));
        }
        let s = &mut self.branch_sites[site];
        if taken {
            s.0 += 1;
        }
        s.1 += 1;
        self.counters.branches += 1;
    }

    /// Record one lane's global access of `bytes` at byte address `addr`.
    /// `site` is the per-lane memory-op sequence number within the phase.
    #[inline]
    pub(crate) fn record_gmem(&mut self, site: usize, addr: u64, transaction_bytes: u32) {
        if site >= self.mem_sites.len() {
            self.mem_sites.resize_with(site + 1, MemSite::default);
        }
        let line = addr / u64::from(transaction_bytes);
        self.mem_sites[site].lines.push(line);
        self.counters.gmem_accesses += 1;
    }

    /// Fold per-site data into warp-level counters (divergence and
    /// transactions). Called at phase end and warp end.
    pub(crate) fn flush_sites(&mut self) {
        for &(taken, total) in &self.branch_sites {
            self.counters.branch_sites += 1;
            if taken != 0 && taken != total {
                self.counters.divergent_sites += 1;
            }
        }
        self.branch_sites.clear();
        for site in &mut self.mem_sites {
            site.lines.sort_unstable();
            site.lines.dedup();
            self.counters.gmem_transactions += site.lines.len() as u64;
            site.lines.clear();
        }
        self.mem_sites.clear();
    }
}

/// Aggregated, extrapolated counters for one kernel launch. These feed the
/// timing model and are surfaced in [`crate::LaunchReport`] for tests and
/// model ablations.
#[derive(Debug, Default, Clone)]
pub struct LaunchCounters {
    /// Warps launched (grid × block, rounded up to warp granularity).
    pub total_warps: u64,
    /// Warps actually traced.
    pub traced_warps: u64,
    /// Extrapolated dynamic ops by class, lane-summed.
    pub ops: [u64; OP_KINDS],
    /// Extrapolated branch executions, lane-summed.
    pub branches: u64,
    /// Extrapolated branch sites (warp-level).
    pub branch_sites: u64,
    /// Extrapolated divergent branch sites (warp-level).
    pub divergent_sites: u64,
    /// Extrapolated global memory access instructions (lane-summed).
    pub gmem_accesses: u64,
    /// Extrapolated global memory transactions (warp-level, coalesced).
    pub gmem_transactions: u64,
    /// Extrapolated shared memory accesses.
    pub smem_accesses: u64,
    /// Extrapolated block-local atomics.
    pub atomics: u64,
    /// Global stores applied at retire (exact, not sampled).
    pub stores_applied: u64,
}

impl LaunchCounters {
    /// Fraction of branch sites that diverged (0 when no branches ran).
    pub fn divergence_rate(&self) -> f64 {
        if self.branch_sites == 0 {
            0.0
        } else {
            self.divergent_sites as f64 / self.branch_sites as f64
        }
    }

    /// Average transactions per global warp-access: 1.0 is perfectly
    /// coalesced, up to `warp_size` for fully scattered access.
    pub fn coalescing_factor(&self, warp_size: u32) -> f64 {
        if self.gmem_accesses == 0 {
            return 1.0;
        }
        // warp-level accesses ~= lane accesses / active lanes; approximate
        // with warp_size which under-counts for partially-active warps.
        let warp_accesses = (self.gmem_accesses as f64 / f64::from(warp_size)).max(1.0);
        (self.gmem_transactions as f64 / warp_accesses).max(1.0 / f64::from(warp_size))
    }

    /// Bytes moved through the memory system.
    pub fn gmem_bytes(&self, transaction_bytes: u32) -> u64 {
        self.gmem_transactions * u64::from(transaction_bytes)
    }

    /// Accumulate one traced warp.
    pub(crate) fn absorb(&mut self, w: &WarpCounters) {
        self.traced_warps += 1;
        for i in 0..OP_KINDS {
            self.ops[i] += w.ops[i];
        }
        self.branches += w.branches;
        self.branch_sites += w.branch_sites;
        self.divergent_sites += w.divergent_sites;
        self.gmem_accesses += w.gmem_accesses;
        self.gmem_transactions += w.gmem_transactions;
        self.smem_accesses += w.smem_accesses;
        self.atomics += w.atomics;
    }

    /// Scale sampled counters up to the full launch.
    pub(crate) fn extrapolate(&mut self) {
        if self.traced_warps == 0 || self.traced_warps >= self.total_warps {
            return;
        }
        let scale = self.total_warps as f64 / self.traced_warps as f64;
        let s = |v: u64| (v as f64 * scale).round() as u64;
        for op in &mut self.ops {
            *op = s(*op);
        }
        self.branches = s(self.branches);
        self.branch_sites = s(self.branch_sites);
        self.divergent_sites = s(self.divergent_sites);
        self.gmem_accesses = s(self.gmem_accesses);
        self.gmem_transactions = s(self.gmem_transactions);
        self.smem_accesses = s(self.smem_accesses);
        self.atomics = s(self.atomics);
    }

    /// Merge counters from another executor thread (parallel blocks).
    pub(crate) fn merge(&mut self, other: &LaunchCounters) {
        self.traced_warps += other.traced_warps;
        for i in 0..OP_KINDS {
            self.ops[i] += other.ops[i];
        }
        self.branches += other.branches;
        self.branch_sites += other.branch_sites;
        self.divergent_sites += other.divergent_sites;
        self.gmem_accesses += other.gmem_accesses;
        self.gmem_transactions += other.gmem_transactions;
        self.smem_accesses += other.smem_accesses;
        self.atomics += other.atomics;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn branch_divergence_detection() {
        let mut t = WarpTraceState::default();
        // Site 0: all 4 lanes take the branch -> uniform.
        for _ in 0..4 {
            t.record_branch(0, true);
        }
        // Site 1: split outcome -> divergent.
        t.record_branch(1, true);
        t.record_branch(1, false);
        t.flush_sites();
        assert_eq!(t.counters.branch_sites, 2);
        assert_eq!(t.counters.divergent_sites, 1);
        assert_eq!(t.counters.branches, 6);
    }

    #[test]
    fn coalesced_access_is_one_transaction() {
        let mut t = WarpTraceState::default();
        // 32 lanes touch consecutive u32s: one 128-byte transaction.
        for lane in 0..32u64 {
            t.record_gmem(0, lane * 4, 128);
        }
        t.flush_sites();
        assert_eq!(t.counters.gmem_transactions, 1);
        assert_eq!(t.counters.gmem_accesses, 32);
    }

    #[test]
    fn scattered_access_is_many_transactions() {
        let mut t = WarpTraceState::default();
        for lane in 0..32u64 {
            t.record_gmem(0, lane * 4096, 128);
        }
        t.flush_sites();
        assert_eq!(t.counters.gmem_transactions, 32);
    }

    #[test]
    fn extrapolation_scales_counts() {
        let mut c = LaunchCounters {
            total_warps: 100,
            ..Default::default()
        };
        let mut w = WarpCounters::default();
        w.ops[Op::Alu.idx()] = 10;
        w.gmem_transactions = 2;
        c.absorb(&w);
        c.extrapolate();
        assert_eq!(c.ops[Op::Alu.idx()], 1000);
        assert_eq!(c.gmem_transactions, 200);
    }

    #[test]
    fn divergence_rate_and_bytes() {
        let c = LaunchCounters {
            branch_sites: 10,
            divergent_sites: 3,
            gmem_transactions: 5,
            ..Default::default()
        };
        assert_eq!(c.divergence_rate(), 0.3);
        assert_eq!(c.gmem_bytes(128), 640);
    }
}
