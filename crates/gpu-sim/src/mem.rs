//! Device memory: a pool of word-addressed buffers plus the write log that
//! gives launches their "visible at retire" store semantics.

use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Types that can live in device memory. Device buffers are word-addressed
/// (32-bit), matching how the kernels in this reproduction treat data
/// (docIDs, frequencies, compressed words, float scores via their bit
/// patterns).
pub trait DeviceWord: Copy + Send + Sync + 'static {
    fn to_word(self) -> u32;
    fn from_word(w: u32) -> Self;
}

impl DeviceWord for u32 {
    #[inline]
    fn to_word(self) -> u32 {
        self
    }
    #[inline]
    fn from_word(w: u32) -> Self {
        w
    }
}

impl DeviceWord for i32 {
    #[inline]
    fn to_word(self) -> u32 {
        self as u32
    }
    #[inline]
    fn from_word(w: u32) -> Self {
        w as i32
    }
}

impl DeviceWord for f32 {
    #[inline]
    fn to_word(self) -> u32 {
        self.to_bits()
    }
    #[inline]
    fn from_word(w: u32) -> Self {
        f32::from_bits(w)
    }
}

/// Opaque identifier of a buffer within one device's pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BufferId(pub(crate) u32);

/// A typed handle to device memory. Handles are cheap to clone and do not
/// own the storage; freeing is explicit through [`crate::Gpu::free`] (the
/// experiments account allocation/free overheads deliberately).
#[derive(Debug)]
pub struct DeviceBuffer<T: DeviceWord> {
    pub(crate) id: BufferId,
    pub(crate) len: usize,
    /// Generation guard: detects use-after-free in debug paths.
    pub(crate) generation: u32,
    _marker: PhantomData<T>,
}

impl<T: DeviceWord> Clone for DeviceBuffer<T> {
    fn clone(&self) -> Self {
        DeviceBuffer {
            id: self.id,
            len: self.len,
            generation: self.generation,
            _marker: PhantomData,
        }
    }
}

impl<T: DeviceWord> DeviceBuffer<T> {
    pub(crate) fn new(id: BufferId, len: usize, generation: u32) -> Self {
        DeviceBuffer {
            id,
            len,
            generation,
            _marker: PhantomData,
        }
    }

    /// Number of `T` elements in the buffer.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Size in bytes (each element is one 32-bit word).
    pub fn size_bytes(&self) -> u64 {
        self.len as u64 * 4
    }

    /// Reinterprets the handle as a different word type (e.g. viewing a
    /// `DeviceBuffer<f32>` of scores as raw `u32` words for a radix pass).
    pub fn cast<U: DeviceWord>(&self) -> DeviceBuffer<U> {
        DeviceBuffer::new(self.id, self.len, self.generation)
    }
}

pub(crate) struct RawBuf {
    pub(crate) words: Vec<u32>,
    pub(crate) generation: u32,
    pub(crate) live: bool,
}

/// The device memory pool. Immutable (`&Pool`) during a launch; write logs
/// are applied between launches.
#[derive(Default)]
pub(crate) struct Pool {
    pub(crate) bufs: Vec<RawBuf>,
    free_slots: Vec<u32>,
    pub(crate) bytes_in_use: u64,
}

impl Pool {
    pub(crate) fn alloc(&mut self, words: Vec<u32>) -> (BufferId, u32) {
        self.bytes_in_use += words.len() as u64 * 4;
        // Reuse a dead slot if available to keep the pool compact.
        if let Some(slot) = self.free_slots.pop() {
            let b = &mut self.bufs[slot as usize];
            let generation = b.generation + 1;
            *b = RawBuf {
                words,
                generation,
                live: true,
            };
            return (BufferId(slot), generation);
        }
        self.bufs.push(RawBuf {
            words,
            generation: 0,
            live: true,
        });
        (BufferId((self.bufs.len() - 1) as u32), 0)
    }

    pub(crate) fn free(&mut self, id: BufferId) -> u64 {
        let b = &mut self.bufs[id.0 as usize];
        assert!(b.live, "double free of device buffer {id:?}");
        let bytes = b.words.len() as u64 * 4;
        self.bytes_in_use -= bytes;
        b.live = false;
        b.words = Vec::new();
        self.free_slots.push(id.0);
        bytes
    }

    #[inline]
    pub(crate) fn generation(&self, id: BufferId) -> u32 {
        self.bufs[id.0 as usize].generation
    }

    #[inline]
    pub(crate) fn words(&self, id: BufferId) -> &[u32] {
        let b = &self.bufs[id.0 as usize];
        debug_assert!(b.live, "access to freed device buffer {id:?}");
        &b.words
    }
}

/// A log of global-memory stores performed by one executor thread during a
/// launch. Contiguous stores to consecutive indices of the same buffer are
/// run-length packed, which makes the common "thread *i* writes slot *i*"
/// pattern cost O(1) amortized.
#[derive(Default)]
pub struct WriteLog {
    runs: Vec<WriteRun>,
}

struct WriteRun {
    buf: BufferId,
    start: usize,
    words: Vec<u32>,
}

impl WriteLog {
    pub(crate) fn push(&mut self, buf: BufferId, idx: usize, word: u32) {
        if let Some(last) = self.runs.last_mut() {
            if last.buf == buf && idx == last.start + last.words.len() {
                last.words.push(word);
                return;
            }
        }
        self.runs.push(WriteRun {
            buf,
            start: idx,
            words: vec![word],
        });
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    pub(crate) fn stores(&self) -> usize {
        self.runs.iter().map(|r| r.words.len()).sum()
    }

    /// Applies all logged stores to the pool. Later runs win on overlap,
    /// mirroring the "unspecified but some-thread-wins" CUDA semantics for
    /// conflicting unsynchronized stores.
    pub(crate) fn apply(self, pool: &mut Pool) {
        for run in self.runs {
            let b = &mut pool.bufs[run.buf.0 as usize];
            debug_assert!(b.live, "store to freed device buffer");
            let end = run.start + run.words.len();
            assert!(
                end <= b.words.len(),
                "device store out of bounds: {}..{} in buffer of {} words",
                run.start,
                end,
                b.words.len()
            );
            b.words[run.start..end].copy_from_slice(&run.words);
        }
    }
}

/// Device-wide statistics kept by the [`crate::Gpu`].
#[derive(Debug, Default)]
pub struct MemStats {
    pub allocs: AtomicU64,
    pub frees: AtomicU64,
    pub htod_bytes: AtomicU64,
    pub dtoh_bytes: AtomicU64,
    pub peak_bytes: AtomicU64,
}

impl MemStats {
    pub(crate) fn on_alloc(&self) {
        self.allocs.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn on_free(&self) {
        self.frees.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn track_peak(&self, in_use: u64) {
        self.peak_bytes.fetch_max(in_use, Ordering::Relaxed);
    }
}

/// Shared, cloneable view of the stats for reporting.
pub type SharedMemStats = Arc<MemStats>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_word_roundtrips() {
        assert_eq!(u32::from_word(42u32.to_word()), 42);
        assert_eq!(i32::from_word((-7i32).to_word()), -7);
        let f = 3.25f32;
        assert_eq!(f32::from_word(f.to_word()), f);
    }

    #[test]
    fn pool_alloc_free_reuse() {
        let mut pool = Pool::default();
        let (a, _) = pool.alloc(vec![1, 2, 3]);
        assert_eq!(pool.bytes_in_use, 12);
        let freed = pool.free(a);
        assert_eq!(freed, 12);
        assert_eq!(pool.bytes_in_use, 0);
        // Slot is reused with a bumped generation.
        let (b, gen) = pool.alloc(vec![9]);
        assert_eq!(a, b);
        assert_eq!(gen, 1);
        assert_eq!(pool.words(b), &[9]);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn pool_double_free_panics() {
        let mut pool = Pool::default();
        let (a, _) = pool.alloc(vec![1]);
        pool.free(a);
        pool.free(a);
    }

    #[test]
    fn write_log_run_length_packs() {
        let mut pool = Pool::default();
        let (a, _) = pool.alloc(vec![0; 8]);
        let mut log = WriteLog::default();
        for i in 0..8 {
            log.push(a, i, i as u32 * 10);
        }
        assert_eq!(
            log.runs.len(),
            1,
            "contiguous stores should pack into one run"
        );
        assert_eq!(log.stores(), 8);
        log.apply(&mut pool);
        assert_eq!(pool.words(a), &[0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn write_log_later_run_wins_on_overlap() {
        let mut pool = Pool::default();
        let (a, _) = pool.alloc(vec![0; 4]);
        let mut log = WriteLog::default();
        log.push(a, 1, 5);
        log.push(a, 3, 7); // breaks the run
        log.push(a, 1, 9); // overlaps the first store
        log.apply(&mut pool);
        assert_eq!(pool.words(a), &[0, 9, 0, 7]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn write_log_bounds_checked_on_apply() {
        let mut pool = Pool::default();
        let (a, _) = pool.alloc(vec![0; 2]);
        let mut log = WriteLog::default();
        log.push(a, 2, 1);
        log.apply(&mut pool);
    }

    #[test]
    fn buffer_handle_cast_preserves_identity() {
        let buf: DeviceBuffer<f32> = DeviceBuffer::new(BufferId(3), 10, 0);
        let as_u32: DeviceBuffer<u32> = buf.cast();
        assert_eq!(as_u32.id, buf.id);
        assert_eq!(as_u32.len(), 10);
        assert_eq!(as_u32.size_bytes(), 40);
    }
}
