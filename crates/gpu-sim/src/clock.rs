//! Virtual time: the single time domain shared by the GPU simulator, the CPU
//! cost model, and the serving simulator.
//!
//! All Griffin experiments report *virtual* nanoseconds so the reproduced
//! figures are deterministic and independent of the host machine. The type is
//! a thin wrapper over `u64` nanoseconds with saturating arithmetic (an
//! experiment that overflows 580 years of virtual time is a bug, not a
//! wrap-around).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A span of virtual time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtualNanos(u64);

impl VirtualNanos {
    pub const ZERO: VirtualNanos = VirtualNanos(0);

    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        VirtualNanos(ns)
    }

    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        VirtualNanos(us * 1_000)
    }

    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        VirtualNanos(ms * 1_000_000)
    }

    /// Builds a span from a (possibly fractional) nanosecond count produced
    /// by the analytic models. Negative and NaN inputs clamp to zero.
    #[inline]
    pub fn from_nanos_f64(ns: f64) -> Self {
        if ns.is_finite() && ns > 0.0 {
            VirtualNanos(ns.round() as u64)
        } else {
            VirtualNanos(0)
        }
    }

    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    #[inline]
    pub fn saturating_sub(self, rhs: Self) -> Self {
        VirtualNanos(self.0.saturating_sub(rhs.0))
    }

    #[inline]
    pub fn max(self, rhs: Self) -> Self {
        VirtualNanos(self.0.max(rhs.0))
    }

    #[inline]
    pub fn min(self, rhs: Self) -> Self {
        VirtualNanos(self.0.min(rhs.0))
    }

    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Ratio of two spans, used when reporting speedups. Returns `f64::NAN`
    /// if `rhs` is zero.
    pub fn speedup_over(self, rhs: Self) -> f64 {
        if self.0 == 0 {
            return f64::NAN;
        }
        rhs.0 as f64 / self.0 as f64
    }
}

impl Add for VirtualNanos {
    type Output = VirtualNanos;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        VirtualNanos(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for VirtualNanos {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for VirtualNanos {
    type Output = VirtualNanos;
    /// Saturating: virtual spans never go negative.
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        VirtualNanos(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for VirtualNanos {
    type Output = VirtualNanos;
    #[inline]
    fn mul(self, rhs: u64) -> Self {
        VirtualNanos(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for VirtualNanos {
    type Output = VirtualNanos;
    #[inline]
    fn div(self, rhs: u64) -> Self {
        VirtualNanos(self.0 / rhs.max(1))
    }
}

impl Sum for VirtualNanos {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(VirtualNanos::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for VirtualNanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_conversion() {
        assert_eq!(VirtualNanos::from_micros(3).as_nanos(), 3_000);
        assert_eq!(VirtualNanos::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(VirtualNanos::from_nanos(1500).as_micros_f64(), 1.5);
        assert_eq!(VirtualNanos::from_millis(1).as_secs_f64(), 1e-3);
    }

    #[test]
    fn f64_construction_clamps() {
        assert_eq!(VirtualNanos::from_nanos_f64(-5.0), VirtualNanos::ZERO);
        assert_eq!(VirtualNanos::from_nanos_f64(f64::NAN), VirtualNanos::ZERO);
        assert_eq!(VirtualNanos::from_nanos_f64(2.6).as_nanos(), 3);
    }

    #[test]
    fn arithmetic_saturates() {
        let big = VirtualNanos::from_nanos(u64::MAX);
        assert_eq!(big + VirtualNanos::from_nanos(1), big);
        let small = VirtualNanos::from_nanos(1);
        assert_eq!(small - big, VirtualNanos::ZERO);
        assert_eq!(big * 2, big);
    }

    #[test]
    fn div_by_zero_is_guarded() {
        assert_eq!(
            VirtualNanos::from_nanos(10) / 0,
            VirtualNanos::from_nanos(10)
        );
        assert_eq!(
            VirtualNanos::from_nanos(10) / 2,
            VirtualNanos::from_nanos(5)
        );
    }

    #[test]
    fn speedup() {
        let a = VirtualNanos::from_nanos(100);
        let b = VirtualNanos::from_nanos(1000);
        assert_eq!(a.speedup_over(b), 10.0);
        assert!(VirtualNanos::ZERO.speedup_over(b).is_nan());
    }

    #[test]
    fn sum_and_display() {
        let total: VirtualNanos = (1..=4).map(VirtualNanos::from_millis).sum();
        assert_eq!(total, VirtualNanos::from_millis(10));
        assert_eq!(format!("{}", VirtualNanos::from_nanos(999)), "999ns");
        assert_eq!(format!("{}", VirtualNanos::from_micros(1)), "1.000us");
        assert_eq!(format!("{}", VirtualNanos::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", VirtualNanos::from_millis(2500)), "2.500s");
    }
}
