//! PCIe transfer model: fixed per-transfer latency plus a bandwidth term.
//!
//! The paper's scheduler exists precisely because these transfers are not
//! free: moving the intermediate result between host and device costs real
//! time that must be weighed against the processing-speed difference.

use crate::clock::VirtualNanos;
use crate::config::PcieConfig;

/// Time to move `bytes` across the link in one DMA transfer.
pub fn transfer_time(cfg: &PcieConfig, bytes: u64) -> VirtualNanos {
    let bw_ns = bytes as f64 / cfg.bandwidth_bytes_per_sec * 1e9;
    VirtualNanos::from_nanos(cfg.latency_ns) + VirtualNanos::from_nanos_f64(bw_ns)
}

/// Effective bandwidth (bytes/s) achieved for a transfer of `bytes`,
/// accounting for the fixed latency. Useful for model sanity checks.
pub fn effective_bandwidth(cfg: &PcieConfig, bytes: u64) -> f64 {
    let t = transfer_time(cfg, bytes);
    if t.is_zero() {
        return 0.0;
    }
    bytes as f64 / t.as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link() -> PcieConfig {
        PcieConfig {
            bandwidth_bytes_per_sec: 8.0e9,
            latency_ns: 10_000,
        }
    }

    #[test]
    fn small_transfer_is_latency_bound() {
        let t = transfer_time(&link(), 4);
        // 4 bytes at 8 GB/s is half a nanosecond; latency dominates.
        assert!(t.as_nanos() >= 10_000 && t.as_nanos() < 10_010);
    }

    #[test]
    fn large_transfer_is_bandwidth_bound() {
        let t = transfer_time(&link(), 80_000_000); // 80 MB
                                                    // 80 MB / 8 GB/s = 10 ms >> 10 us latency.
        assert!((t.as_millis_f64() - 10.0).abs() < 0.1, "{t}");
    }

    #[test]
    fn effective_bandwidth_approaches_peak() {
        let small = effective_bandwidth(&link(), 1024);
        let large = effective_bandwidth(&link(), 1 << 30);
        assert!(small < 1.0e9, "small transfers can't reach peak: {small}");
        assert!(
            large > 7.9e9,
            "large transfers should approach 8 GB/s: {large}"
        );
    }
}
