//! Device and cost-model configuration.
//!
//! The default configuration models the NVIDIA Tesla K20 used in the paper's
//! evaluation (Section 4.1): 13 SMX units × 192 CUDA cores at 706 MHz, 5 GB
//! of GDDR5 at 208 GB/s, attached over 16-lane PCIe 2.0 (8 GB/s).

use crate::fault::FaultPlan;

/// PCIe link model: a fixed per-transfer latency plus a bandwidth term.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PcieConfig {
    /// Sustained bandwidth in bytes per second (paper: 8 GB/s, PCIe 2.0 x16).
    pub bandwidth_bytes_per_sec: f64,
    /// Fixed overhead per DMA transfer (driver + doorbell + DMA setup).
    pub latency_ns: u64,
}

impl Default for PcieConfig {
    fn default() -> Self {
        PcieConfig {
            bandwidth_bytes_per_sec: 8.0e9,
            latency_ns: 10_000, // ~10us per cudaMemcpy, typical for this era
        }
    }
}

/// Cycle costs of the abstract operations a kernel can charge.
///
/// These are *issue* costs per warp-instruction; memory latency and
/// bandwidth are modelled separately in [`crate::timing`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostParams {
    /// Simple integer/logic op (add, sub, and, or, shift, compare).
    pub alu_cpi: f64,
    /// Integer multiply / multiply-add.
    pub mul_cpi: f64,
    /// Population count (`__popc`), one hardware instruction on Kepler.
    pub popc_cpi: f64,
    /// Branch instruction issue cost.
    pub branch_cpi: f64,
    /// Extra serialization factor applied to a warp's dynamic instructions
    /// when a branch diverges (both sides execute). 1.0 means a divergent
    /// branch doubles the cost of the instructions it guards on average.
    pub divergence_penalty: f64,
    /// Shared-memory access issue cost (conflict-free).
    pub smem_cpi: f64,
    /// Issue cost of a global load/store instruction (latency modelled
    /// separately).
    pub gmem_issue_cpi: f64,
    /// Global memory latency in cycles (Kepler: ~400–800; hidden by
    /// occupancy when enough warps are resident).
    pub gmem_latency_cycles: f64,
    /// Block-local atomic cost per *conflicting* access.
    pub atomic_cpi: f64,
    /// Outstanding memory transactions a warp overlaps (memory-level
    /// parallelism). Kepler sustains many in-flight loads per warp; this
    /// divides the per-warp latency term in the under-occupancy floor.
    pub mem_level_parallelism: f64,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            alu_cpi: 1.0,
            mul_cpi: 2.0,
            popc_cpi: 1.0,
            branch_cpi: 1.0,
            divergence_penalty: 1.0,
            smem_cpi: 1.0,
            gmem_issue_cpi: 2.0,
            gmem_latency_cycles: 500.0,
            atomic_cpi: 8.0,
            mem_level_parallelism: 16.0,
        }
    }
}

/// Full device model.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceConfig {
    /// Human-readable device name (appears in experiment output headers).
    pub name: &'static str,
    /// Number of streaming multiprocessors.
    pub num_sms: u32,
    /// CUDA cores per SM. `cores_per_sm / warp_size` warps can issue per
    /// cycle per SM.
    pub cores_per_sm: u32,
    /// Core clock in Hz.
    pub clock_hz: f64,
    /// SIMD width of a warp. The paper's ratio analysis assumes 32.
    pub warp_size: u32,
    /// Hardware limit on threads per block.
    pub max_threads_per_block: u32,
    /// Maximum warps resident per SM (occupancy ceiling; K20/Kepler: 64).
    pub max_resident_warps_per_sm: u32,
    /// Shared memory per block, in 32-bit words (K20: 48 KB -> 12288 words).
    pub shared_mem_words_per_block: usize,
    /// Total device memory in bytes (K20: 5 GB).
    pub global_mem_bytes: u64,
    /// Device memory bandwidth in bytes per second (K20: 208 GB/s).
    pub global_bandwidth_bytes_per_sec: f64,
    /// Width of one memory transaction in bytes (L2 line / segment size).
    pub transaction_bytes: u32,
    /// Fixed kernel-launch overhead in nanoseconds (driver + dispatch).
    pub kernel_launch_overhead_ns: u64,
    /// `cudaMalloc` overhead in nanoseconds.
    pub malloc_overhead_ns: u64,
    /// `cudaFree` overhead in nanoseconds.
    pub free_overhead_ns: u64,
    /// Independent DMA (copy) engines. The K20 has two (one per
    /// direction); the simulator models one copy timeline because `dtoh`
    /// is host-blocking (see [`crate::stream`]), so this is informational
    /// for cost models and reports.
    pub copy_engines: u32,
    /// PCIe link to the host.
    pub pcie: PcieConfig,
    /// Per-instruction-class issue costs.
    pub costs: CostParams,
    /// Track performance counters on roughly one warp in `sample_stride`
    /// (1 = trace every warp). Functional execution is always exact.
    pub trace_sample_stride: u32,
    /// Optional deterministic fault-injection schedule (see
    /// [`crate::fault`]). `None` — and any plan where
    /// [`FaultPlan::is_noop`] holds — leaves the device bit-identical to a
    /// fault-free build.
    pub fault_plan: Option<FaultPlan>,
}

impl DeviceConfig {
    /// The NVIDIA Tesla K20 configuration from the paper's testbed.
    pub fn tesla_k20() -> Self {
        DeviceConfig {
            name: "Tesla K20 (simulated)",
            num_sms: 13,
            cores_per_sm: 192,
            clock_hz: 706.0e6,
            warp_size: 32,
            max_threads_per_block: 1024,
            max_resident_warps_per_sm: 64,
            shared_mem_words_per_block: 48 * 1024 / 4,
            global_mem_bytes: 5 * 1024 * 1024 * 1024,
            global_bandwidth_bytes_per_sec: 208.0e9,
            transaction_bytes: 128,
            kernel_launch_overhead_ns: 6_000,
            malloc_overhead_ns: 10_000,
            free_overhead_ns: 4_000,
            copy_engines: 2,
            pcie: PcieConfig::default(),
            costs: CostParams::default(),
            trace_sample_stride: 1,
            fault_plan: None,
        }
    }

    /// A deliberately tiny device for unit tests: 2 SMs, small shared
    /// memory, negligible overheads, full tracing.
    pub fn test_tiny() -> Self {
        DeviceConfig {
            name: "test-tiny",
            num_sms: 2,
            cores_per_sm: 64,
            clock_hz: 1.0e9,
            warp_size: 32,
            max_threads_per_block: 256,
            max_resident_warps_per_sm: 16,
            shared_mem_words_per_block: 4096,
            global_mem_bytes: 64 * 1024 * 1024,
            global_bandwidth_bytes_per_sec: 100.0e9,
            transaction_bytes: 128,
            kernel_launch_overhead_ns: 100,
            malloc_overhead_ns: 50,
            free_overhead_ns: 20,
            copy_engines: 1,
            pcie: PcieConfig {
                bandwidth_bytes_per_sec: 8.0e9,
                latency_ns: 100,
            },
            costs: CostParams::default(),
            trace_sample_stride: 1,
            fault_plan: None,
        }
    }

    /// Warps that can issue simultaneously across the whole device.
    pub fn issue_width_warps(&self) -> f64 {
        f64::from(self.num_sms) * f64::from(self.cores_per_sm) / f64::from(self.warp_size)
    }

    /// Maximum warps resident device-wide (occupancy ceiling).
    pub fn max_resident_warps(&self) -> u64 {
        u64::from(self.num_sms) * u64::from(self.max_resident_warps_per_sm)
    }

    /// Nanoseconds per core cycle.
    pub fn ns_per_cycle(&self) -> f64 {
        1.0e9 / self.clock_hz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k20_matches_paper_specs() {
        let c = DeviceConfig::tesla_k20();
        // 2496 CUDA cores total
        assert_eq!(c.num_sms * c.cores_per_sm, 2496);
        // 208 GB/s inner bandwidth (paper Section 2.3)
        assert_eq!(c.global_bandwidth_bytes_per_sec, 208.0e9);
        // 5 GB device memory
        assert_eq!(c.global_mem_bytes, 5 * 1024 * 1024 * 1024);
        // 8 GB/s PCIe 2.0 x16 (paper Section 4.1)
        assert_eq!(c.pcie.bandwidth_bytes_per_sec, 8.0e9);
    }

    #[test]
    fn derived_quantities() {
        let c = DeviceConfig::tesla_k20();
        assert_eq!(c.issue_width_warps(), 78.0); // 13 SMs * 6 warps/cycle
        assert_eq!(c.max_resident_warps(), 13 * 64);
        let ns = c.ns_per_cycle();
        assert!((ns - 1.416).abs() < 0.01, "{ns}");
    }
}
