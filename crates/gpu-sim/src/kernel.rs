//! The kernel programming model: grids, blocks, warps, phases, and the
//! [`ThreadCtx`] through which kernel code touches device state.

use crate::config::DeviceConfig;
use crate::mem::{DeviceBuffer, DeviceWord, Pool, WriteLog};
use crate::tracer::{LaunchCounters, Op, WarpTraceState};

/// Launch geometry: a 1-D grid of 1-D blocks (all kernels in this
/// reproduction are naturally 1-D over list elements or partitions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchConfig {
    /// Number of thread blocks.
    pub grid_dim: u32,
    /// Threads per block.
    pub block_dim: u32,
}

impl LaunchConfig {
    pub fn new(grid_dim: u32, block_dim: u32) -> Self {
        assert!(grid_dim > 0 && block_dim > 0, "empty launch");
        LaunchConfig {
            grid_dim,
            block_dim,
        }
    }

    /// Enough `block_dim`-sized blocks to cover `n` elements, one thread
    /// per element (the CUDA `(n + b - 1) / b` idiom).
    pub fn cover(n: usize, block_dim: u32) -> Self {
        assert!(block_dim > 0, "zero block_dim");
        let grid = n.div_ceil(block_dim as usize).max(1);
        LaunchConfig::new(grid as u32, block_dim)
    }

    pub fn total_threads(&self) -> u64 {
        u64::from(self.grid_dim) * u64::from(self.block_dim)
    }
}

/// Alias kept for readers used to CUDA's `dim3`; grids here are 1-D.
pub type Dim = u32;

/// A GPU kernel.
///
/// A kernel executes `phases()` phases; between consecutive phases there is
/// an implicit block-wide barrier (`__syncthreads`). Per-thread registers
/// that must survive a barrier live in `State`.
///
/// Global memory loads observe the launch-time snapshot; stores retire when
/// the launch completes. Shared memory is coherent across phases within a
/// block.
pub trait Kernel: Sync {
    /// Per-thread register state carried across phases.
    type State: Default + Send;

    /// Number of phases (barrier-separated sections). Default 1 (no barrier).
    fn phases(&self) -> usize {
        1
    }

    /// Shared-memory words requested per block.
    fn shared_mem_words(&self, block_dim: u32) -> usize {
        let _ = block_dim;
        0
    }

    /// Human-readable kernel name, used by device observers (telemetry).
    /// Defaults to the implementing type's name with module path stripped.
    fn name(&self) -> &'static str {
        let full = std::any::type_name::<Self>();
        match full.rsplit("::").next() {
            Some(short) if !short.is_empty() => short,
            _ => full,
        }
    }

    /// Body of one thread for one phase.
    fn run_phase(&self, phase: usize, t: &mut ThreadCtx<'_>, state: &mut Self::State);
}

/// Execution context of one thread (lane) during one phase.
///
/// All device-state access and all cost charging flows through this type.
pub struct ThreadCtx<'a> {
    /// Index of this thread's block within the grid.
    pub block_idx: u32,
    /// Threads per block.
    pub block_dim: u32,
    /// This thread's index within its block.
    pub thread_idx: u32,
    /// Blocks in the grid.
    pub grid_dim: u32,

    pool: &'a Pool,
    writes: &'a mut WriteLog,
    shared: &'a mut [u32],
    trace: Option<&'a mut WarpTraceState>,
    transaction_bytes: u32,
    branch_site: usize,
    mem_site: usize,
}

impl<'a> ThreadCtx<'a> {
    /// Global linear thread index (`blockIdx.x * blockDim.x + threadIdx.x`).
    #[inline]
    pub fn global_thread_idx(&self) -> usize {
        self.block_idx as usize * self.block_dim as usize + self.thread_idx as usize
    }

    /// Total threads in the launch.
    #[inline]
    pub fn total_threads(&self) -> usize {
        self.grid_dim as usize * self.block_dim as usize
    }

    /// Lane within the warp.
    #[inline]
    pub fn lane_id(&self) -> u32 {
        self.thread_idx % 32
    }

    /// Warp index within the block.
    #[inline]
    pub fn warp_in_block(&self) -> u32 {
        self.thread_idx / 32
    }

    /// Load one element from global memory.
    #[inline]
    pub fn ld<T: DeviceWord>(&mut self, buf: &DeviceBuffer<T>, idx: usize) -> T {
        let words = self.pool.words(buf.id);
        debug_assert!(
            self.pool.generation(buf.id) == buf.generation,
            "stale device buffer handle (use-after-free)"
        );
        assert!(
            idx < buf.len,
            "device load out of bounds: {idx} >= {} (buffer {:?})",
            buf.len,
            buf.id
        );
        let w = words[idx];
        if let Some(tr) = self.trace.as_deref_mut() {
            let addr = (u64::from(buf.id.0) << 40) | (idx as u64 * 4);
            tr.record_gmem(self.mem_site, addr, self.transaction_bytes);
        }
        self.mem_site += 1;
        T::from_word(w)
    }

    /// Store one element to global memory (visible after the launch).
    #[inline]
    pub fn st<T: DeviceWord>(&mut self, buf: &DeviceBuffer<T>, idx: usize, v: T) {
        assert!(
            idx < buf.len,
            "device store out of bounds: {idx} >= {} (buffer {:?})",
            buf.len,
            buf.id
        );
        self.writes.push(buf.id, idx, v.to_word());
        if let Some(tr) = self.trace.as_deref_mut() {
            let addr = (u64::from(buf.id.0) << 40) | (idx as u64 * 4);
            tr.record_gmem(self.mem_site, addr, self.transaction_bytes);
        }
        self.mem_site += 1;
    }

    /// Load a word from block-shared memory.
    #[inline]
    pub fn ld_shared(&mut self, idx: usize) -> u32 {
        if let Some(tr) = self.trace.as_deref_mut() {
            tr.counters.smem_accesses += 1;
        }
        self.shared[idx]
    }

    /// Store a word to block-shared memory (visible to later phases; within
    /// a phase, visibility follows lane execution order as on real hardware
    /// without a barrier — don't rely on it).
    #[inline]
    pub fn st_shared(&mut self, idx: usize, v: u32) {
        if let Some(tr) = self.trace.as_deref_mut() {
            tr.counters.smem_accesses += 1;
        }
        self.shared[idx] = v;
    }

    /// Block-local atomic add; returns the previous value.
    #[inline]
    pub fn atomic_add_shared(&mut self, idx: usize, v: u32) -> u32 {
        if let Some(tr) = self.trace.as_deref_mut() {
            tr.counters.atomics += 1;
        }
        let old = self.shared[idx];
        self.shared[idx] = old.wrapping_add(v);
        old
    }

    /// Number of shared-memory words available to this block.
    #[inline]
    pub fn shared_len(&self) -> usize {
        self.shared.len()
    }

    /// Charge `n` simple ALU ops.
    #[inline]
    pub fn alu(&mut self, n: u32) {
        self.op(Op::Alu, n);
    }

    /// Charge `n` ops of class `op`.
    #[inline]
    pub fn op(&mut self, op: Op, n: u32) {
        if let Some(tr) = self.trace.as_deref_mut() {
            tr.counters.ops[op.idx()] += u64::from(n);
        }
    }

    /// Record a branch and return its condition, so kernel code reads
    /// naturally: `if t.branch(a < b) { ... }`. Divergence is detected by
    /// comparing outcomes across the warp's lanes at the same branch site.
    #[inline]
    pub fn branch(&mut self, cond: bool) -> bool {
        if let Some(tr) = self.trace.as_deref_mut() {
            tr.record_branch(self.branch_site, cond);
        }
        self.branch_site += 1;
        cond
    }
}

/// Runs all phases of `kernel` for one block, accumulating stores into
/// `writes` and sampled counters into `counters`.
pub(crate) fn run_block<K: Kernel>(
    kernel: &K,
    cfg: &DeviceConfig,
    lc: LaunchConfig,
    block_idx: u32,
    pool: &Pool,
    writes: &mut WriteLog,
    counters: &mut LaunchCounters,
) {
    let bdim = lc.block_dim;
    assert!(
        bdim <= cfg.max_threads_per_block,
        "block_dim {bdim} exceeds device limit {}",
        cfg.max_threads_per_block
    );
    let smem_words = kernel.shared_mem_words(bdim);
    assert!(
        smem_words <= cfg.shared_mem_words_per_block,
        "kernel requests {smem_words} shared words, device has {}",
        cfg.shared_mem_words_per_block
    );
    let mut shared = vec![0u32; smem_words];
    let mut states: Vec<K::State> = (0..bdim).map(|_| K::State::default()).collect();

    let warp_size = cfg.warp_size;
    let warps_in_block = bdim.div_ceil(warp_size);
    let stride = cfg.trace_sample_stride.max(1);
    let mut traces: Vec<Option<WarpTraceState>> = (0..warps_in_block)
        .map(|w| {
            let global_warp = u64::from(block_idx) * u64::from(warps_in_block) + u64::from(w);
            (global_warp % u64::from(stride) == 0).then(WarpTraceState::default)
        })
        .collect();

    let phases = kernel.phases();
    for phase in 0..phases {
        for w in 0..warps_in_block {
            let mut tr = traces[w as usize].as_mut();
            let first = w * warp_size;
            let last = (first + warp_size).min(bdim);
            for tid in first..last {
                let mut ctx = ThreadCtx {
                    block_idx,
                    block_dim: bdim,
                    thread_idx: tid,
                    grid_dim: lc.grid_dim,
                    pool,
                    writes,
                    shared: &mut shared,
                    trace: tr.as_deref_mut(),
                    transaction_bytes: cfg.transaction_bytes,
                    branch_site: 0,
                    mem_site: 0,
                };
                kernel.run_phase(phase, &mut ctx, &mut states[tid as usize]);
            }
            if let Some(tr) = traces[w as usize].as_mut() {
                tr.reset_phase();
            }
        }
    }

    for tr in traces.into_iter().flatten() {
        let mut tr = tr;
        tr.flush_sites();
        if tr.counters.active_lanes == 0 {
            // active_lanes not tracked per-op; mark the warp live.
            tr.counters.active_lanes = warp_size.min(bdim);
        }
        counters.absorb(&tr.counters);
    }
}
