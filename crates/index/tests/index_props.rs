//! Property-based tests of the index substrate: the builder must produce
//! posting lists that exactly invert the documents, for any corpus.

use griffin_codec::Codec;
use griffin_index::{CompressedPostingList, IndexBuilder, Posting};
use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

/// Small random corpora: each document is a list of small word ids.
fn corpora() -> impl Strategy<Value = Vec<Vec<u8>>> {
    vec(vec(0u8..40, 1..30), 1..60)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn builder_inverts_documents_exactly(docs in corpora(),
                                         codec_idx in 0usize..3) {
        let codec = [Codec::PforDelta, Codec::EliasFano, Codec::Varint][codec_idx];
        let mut builder = IndexBuilder::new(codec);
        // Reference inverted index with term frequencies.
        let mut reference: BTreeMap<String, Vec<(u32, u32)>> = BTreeMap::new();
        for (docid, words) in docs.iter().enumerate() {
            let tokens: Vec<String> = words.iter().map(|w| format!("w{w}")).collect();
            let refs: Vec<&str> = tokens.iter().map(String::as_str).collect();
            builder.add_document(&refs);
            let mut tf: BTreeMap<&str, u32> = BTreeMap::new();
            for t in &refs {
                *tf.entry(t).or_insert(0) += 1;
            }
            for (t, f) in tf {
                reference.entry(t.to_string()).or_default().push((docid as u32, f));
            }
        }
        let idx = builder.build();
        prop_assert_eq!(idx.num_terms(), reference.len());
        for (term, postings) in &reference {
            let tid = idx.lookup(term).expect("term present");
            let (ids, tfs) = idx.list(tid).decompress();
            let expect_ids: Vec<u32> = postings.iter().map(|&(d, _)| d).collect();
            let expect_tfs: Vec<u32> = postings.iter().map(|&(_, f)| f).collect();
            prop_assert_eq!(&ids, &expect_ids, "docids of {}", term);
            prop_assert_eq!(&tfs, &expect_tfs, "tfs of {}", term);
            prop_assert_eq!(idx.doc_freq(tid), postings.len());
        }
        // Corpus metadata.
        prop_assert_eq!(idx.num_docs() as usize, docs.len());
        for (docid, words) in docs.iter().enumerate() {
            prop_assert_eq!(idx.meta().doc_len(docid as u32), words.len() as f32);
        }
    }

    #[test]
    fn posting_list_block_alignment(n in 1usize..700, codec_idx in 0usize..3) {
        let codec = [Codec::PforDelta, Codec::EliasFano, Codec::Varint][codec_idx];
        let postings: Vec<Posting> = (0..n as u32)
            .map(|i| Posting { docid: i * 3 + 1, tf: i % 250 + 1 })
            .collect();
        let list = CompressedPostingList::compress(&postings, codec, 128);
        // Per-block decode concatenates to the full list.
        let mut ids = Vec::new();
        let mut tfs = Vec::new();
        for b in 0..list.num_blocks() {
            list.decode_block_into(b, &mut ids, &mut tfs);
        }
        prop_assert_eq!(ids.len(), n);
        for (i, p) in postings.iter().enumerate() {
            prop_assert_eq!(ids[i], p.docid);
            prop_assert_eq!(tfs[i], p.tf);
        }
    }

    #[test]
    fn dictionary_is_stable_under_reinsertion(words in vec("[a-z]{1,6}", 1..80)) {
        let mut d = griffin_index::Dictionary::new();
        let first: Vec<_> = words.iter().map(|w| d.intern(w)).collect();
        let second: Vec<_> = words.iter().map(|w| d.intern(w)).collect();
        prop_assert_eq!(&first, &second);
        let unique: BTreeSet<&String> = words.iter().collect();
        prop_assert_eq!(d.len(), unique.len());
        for w in &words {
            let id = d.lookup(w).expect("interned");
            prop_assert_eq!(d.term(id), w.as_str());
        }
    }
}
