//! Documents and corpus-level metadata.

/// Document identifier. Sorted docID order is what makes d-gap compression
/// and merge-based intersection work.
pub type DocId = u32;

/// Corpus statistics needed by the BM25 ranking model (paper §2.1.3):
/// document count, per-document lengths, and the average document length.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusMeta {
    /// Number of documents in the corpus.
    pub num_docs: u32,
    /// Length (token count) of each document, indexed by `DocId`.
    pub doc_lens: Vec<u32>,
    /// Average document length.
    pub avg_doc_len: f32,
}

impl CorpusMeta {
    pub fn from_doc_lens(doc_lens: Vec<u32>) -> CorpusMeta {
        let num_docs = doc_lens.len() as u32;
        let avg = if doc_lens.is_empty() {
            0.0
        } else {
            doc_lens.iter().map(|&l| l as f64).sum::<f64>() / doc_lens.len() as f64
        };
        CorpusMeta {
            num_docs,
            doc_lens,
            avg_doc_len: avg as f32,
        }
    }

    /// Synthetic corpora (generated posting lists without real documents)
    /// use a uniform document length; BM25 then degrades gracefully to a
    /// tf/idf-style score, which is all the scheduling experiments need.
    pub fn uniform(num_docs: u32, doc_len: u32) -> CorpusMeta {
        CorpusMeta {
            num_docs,
            doc_lens: Vec::new(),
            avg_doc_len: doc_len as f32,
        }
    }

    /// Length of document `d` (uniform corpora return the average).
    #[inline]
    pub fn doc_len(&self, d: DocId) -> f32 {
        match self.doc_lens.get(d as usize) {
            Some(&l) => l as f32,
            None => self.avg_doc_len,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_doc_lens_computes_average() {
        let m = CorpusMeta::from_doc_lens(vec![10, 20, 30]);
        assert_eq!(m.num_docs, 3);
        assert_eq!(m.avg_doc_len, 20.0);
        assert_eq!(m.doc_len(1), 20.0);
    }

    #[test]
    fn uniform_corpus_returns_average_for_everything() {
        let m = CorpusMeta::uniform(1_000_000, 250);
        assert_eq!(m.doc_len(0), 250.0);
        assert_eq!(m.doc_len(999_999), 250.0);
    }

    #[test]
    fn empty_corpus() {
        let m = CorpusMeta::from_doc_lens(vec![]);
        assert_eq!(m.num_docs, 0);
        assert_eq!(m.avg_doc_len, 0.0);
    }
}
