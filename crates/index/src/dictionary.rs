//! Term dictionary: interns term strings to dense [`TermId`]s.

use std::collections::HashMap;

/// Dense term identifier; also the index of the term's posting list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(pub u32);

/// Bidirectional term ↔ id mapping.
#[derive(Debug, Default, Clone)]
pub struct Dictionary {
    by_term: HashMap<String, TermId>,
    terms: Vec<String>,
}

impl Dictionary {
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `term`, returning its id (existing or fresh).
    pub fn intern(&mut self, term: &str) -> TermId {
        if let Some(&id) = self.by_term.get(term) {
            return id;
        }
        let id = TermId(self.terms.len() as u32);
        self.terms.push(term.to_owned());
        self.by_term.insert(term.to_owned(), id);
        id
    }

    /// Looks up an existing term.
    pub fn lookup(&self, term: &str) -> Option<TermId> {
        self.by_term.get(term).copied()
    }

    /// The string for a term id.
    pub fn term(&self, id: TermId) -> &str {
        &self.terms[id.0 as usize]
    }

    pub fn len(&self) -> usize {
        self.terms.len()
    }

    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut d = Dictionary::new();
        let a = d.intern("ppopp");
        let b = d.intern("austria");
        let a2 = d.intern("ppopp");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn lookup_and_reverse() {
        let mut d = Dictionary::new();
        let id = d.intern("2018");
        assert_eq!(d.lookup("2018"), Some(id));
        assert_eq!(d.lookup("2019"), None);
        assert_eq!(d.term(id), "2018");
    }
}
