//! The in-memory inverted index ("we assume the whole dataset has been
//! loaded in the host main memory", paper §4.1).

use griffin_codec::Codec;

use crate::dictionary::{Dictionary, TermId};
use crate::document::CorpusMeta;
use crate::posting::CompressedPostingList;
use crate::rank::Bm25;

/// A searchable, compressed, in-memory inverted index.
///
/// Construction additionally bakes *block-max* metadata: for every
/// posting-list block, the largest BM25 contribution any posting in the
/// block can produce (under the recorded [`Bm25`] parameters). Top-k
/// pruning compares these upper bounds against the current heap floor to
/// skip blocks that cannot change the result.
#[derive(Debug, Clone)]
pub struct InvertedIndex {
    dictionary: Dictionary,
    lists: Vec<CompressedPostingList>,
    meta: CorpusMeta,
    codec: Codec,
    block_len: usize,
    /// Per term, per docID block: max BM25 contribution of any posting in
    /// the block (aligned with `lists[t].docs.skips`).
    block_ubs: Vec<Vec<f32>>,
    /// The parameters the upper bounds were computed under.
    bm25: Bm25,
    /// For a shard view (see [`crate::shard`]): the *whole corpus*
    /// document frequency of each term. BM25's idf — and the df-sorted
    /// plan order it implies — must see global statistics on every
    /// shard, or shard scores drift from the unsharded engine's.
    /// `None` for a complete index, where the list length is the df.
    scoring_dfs: Option<Vec<u32>>,
}

impl InvertedIndex {
    pub fn new(
        dictionary: Dictionary,
        lists: Vec<CompressedPostingList>,
        meta: CorpusMeta,
        codec: Codec,
        block_len: usize,
    ) -> Self {
        Self::with_scoring_dfs(dictionary, lists, meta, codec, block_len, None)
    }

    /// Builds a docID-range *shard view*: the lists hold only this
    /// shard's slice of each posting list (docIDs stay global), while
    /// `meta` and `scoring_dfs` carry whole-corpus statistics so idf,
    /// document lengths, and the df-sorted term order — and therefore
    /// every f32 score bit — match the unsharded index exactly. The
    /// block upper bounds are computed under the same global idf, so
    /// block-max pruning stays exact on the shard.
    pub fn with_scoring_dfs(
        dictionary: Dictionary,
        lists: Vec<CompressedPostingList>,
        meta: CorpusMeta,
        codec: Codec,
        block_len: usize,
        scoring_dfs: Option<Vec<u32>>,
    ) -> Self {
        if let Some(dfs) = &scoring_dfs {
            assert_eq!(dfs.len(), lists.len(), "one scoring df per term");
        }
        let bm25 = Bm25::default();
        let block_ubs = compute_block_ubs(&lists, &meta, &bm25, scoring_dfs.as_deref());
        InvertedIndex {
            dictionary,
            lists,
            meta,
            codec,
            block_len,
            block_ubs,
            bm25,
            scoring_dfs,
        }
    }

    /// Builds an index directly from generated docID lists (synthetic
    /// workloads): list `i` becomes the posting list of a term named
    /// `t{i}`, with every posting at in-document position `i`. Term
    /// frequencies default to 1. The position convention makes a phrase
    /// over consecutive synthetic terms (`"t3 t4"`) equivalent to their
    /// intersection — a convenient testable identity.
    pub fn from_docid_lists(
        docid_lists: &[Vec<u32>],
        num_docs: u32,
        codec: Codec,
        block_len: usize,
    ) -> Self {
        let mut dictionary = Dictionary::new();
        let lists: Vec<CompressedPostingList> = docid_lists
            .iter()
            .enumerate()
            .map(|(i, ids)| {
                dictionary.intern(&format!("t{i}"));
                CompressedPostingList::from_docids_at_position(ids, i as u32, codec, block_len)
            })
            .collect();
        Self::new(
            dictionary,
            lists,
            CorpusMeta::uniform(num_docs, 300),
            codec,
            block_len,
        )
    }

    pub fn lookup(&self, term: &str) -> Option<TermId> {
        self.dictionary.lookup(term)
    }

    pub fn dictionary(&self) -> &Dictionary {
        &self.dictionary
    }

    /// The posting list of a term.
    pub fn list(&self, term: TermId) -> &CompressedPostingList {
        &self.lists[term.0 as usize]
    }

    /// Document frequency (list length) of a term. On a shard view this
    /// is the *local* posting count — the right signal for work and
    /// placement estimates, the wrong one for scoring (use
    /// [`InvertedIndex::scoring_df`]).
    pub fn doc_freq(&self, term: TermId) -> usize {
        self.list(term).len()
    }

    /// The document frequency BM25 must score with: the whole-corpus df
    /// on a shard view, the list length otherwise. Everything that feeds
    /// idf — or decides the df-sorted fold order of a score — goes
    /// through here, so sharding never moves a score bit.
    pub fn scoring_df(&self, term: TermId) -> usize {
        match &self.scoring_dfs {
            Some(dfs) => dfs[term.0 as usize] as usize,
            None => self.doc_freq(term),
        }
    }

    /// Whether this index is a docID-range shard view of a larger corpus.
    pub fn is_shard_view(&self) -> bool {
        self.scoring_dfs.is_some()
    }

    pub fn num_terms(&self) -> usize {
        self.lists.len()
    }

    pub fn num_docs(&self) -> u32 {
        self.meta.num_docs
    }

    pub fn meta(&self) -> &CorpusMeta {
        &self.meta
    }

    pub fn codec(&self) -> Codec {
        self.codec
    }

    pub fn block_len(&self) -> usize {
        self.block_len
    }

    /// Per-block BM25 score upper bounds of a term's posting list,
    /// aligned with its docID blocks.
    pub fn block_ubs(&self, term: TermId) -> &[f32] {
        &self.block_ubs[term.0 as usize]
    }

    /// The whole-list score upper bound of a term (MaxScore's per-term
    /// bound): the max over its block upper bounds.
    pub fn term_ub(&self, term: TermId) -> f32 {
        self.block_ubs[term.0 as usize]
            .iter()
            .fold(0.0f32, |a, &b| a.max(b))
    }

    /// The BM25 parameters the block upper bounds were computed under.
    /// Engines must only prune when they score with equal parameters.
    pub fn bm25(&self) -> &Bm25 {
        &self.bm25
    }

    /// Total compressed size of all posting lists, in bits.
    pub fn size_bits(&self) -> u64 {
        self.lists.iter().map(|l| l.size_bits() as u64).sum()
    }
}

/// One decompression pass per list: the exact max contribution per block.
/// Uses the same [`Bm25::contribution`] code path the engines score with,
/// so `exact_score <= partial + ub[block]` holds bit-for-bit (f32 max of
/// the very values the engine will compute).
fn compute_block_ubs(
    lists: &[CompressedPostingList],
    meta: &CorpusMeta,
    bm25: &Bm25,
    scoring_dfs: Option<&[u32]>,
) -> Vec<Vec<f32>> {
    let mut docids: Vec<u32> = Vec::new();
    let mut tfs: Vec<u32> = Vec::new();
    lists
        .iter()
        .enumerate()
        .map(|(t, list)| {
            let df = scoring_dfs.map_or(list.len() as u32, |dfs| dfs[t]);
            let idf = bm25.idf(meta.num_docs, df);
            (0..list.num_blocks())
                .map(|b| {
                    docids.clear();
                    tfs.clear();
                    list.decode_block_into(b, &mut docids, &mut tfs);
                    docids
                        .iter()
                        .zip(&tfs)
                        .map(|(&d, &tf)| {
                            bm25.contribution(idf, tf, meta.doc_len(d), meta.avg_doc_len)
                        })
                        .fold(f32::NEG_INFINITY, f32::max)
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_docid_lists_creates_terms() {
        let lists = vec![vec![1u32, 5, 9], vec![2u32, 5, 8, 9, 20]];
        let idx = InvertedIndex::from_docid_lists(&lists, 100, Codec::EliasFano, 128);
        assert_eq!(idx.num_terms(), 2);
        let t0 = idx.lookup("t0").unwrap();
        let t1 = idx.lookup("t1").unwrap();
        assert_eq!(idx.doc_freq(t0), 3);
        assert_eq!(idx.doc_freq(t1), 5);
        let (ids, _) = idx.list(t1).decompress();
        assert_eq!(ids, lists[1]);
        assert_eq!(idx.num_docs(), 100);
    }

    #[test]
    fn size_accounting() {
        let lists = vec![(1u32..=1000).map(|i| i * 2).collect::<Vec<_>>()];
        let idx = InvertedIndex::from_docid_lists(&lists, 2001, Codec::EliasFano, 128);
        assert!(idx.size_bits() > 0);
        assert!(idx.size_bits() < 1000 * 32);
    }

    #[test]
    fn block_ubs_bound_every_contribution() {
        let lists = vec![(0u32..1000).map(|i| i * 3 + 1).collect::<Vec<_>>()];
        let idx = InvertedIndex::from_docid_lists(&lists, 5000, Codec::EliasFano, 128);
        let t0 = idx.lookup("t0").unwrap();
        let list = idx.list(t0);
        let ubs = idx.block_ubs(t0);
        assert_eq!(ubs.len(), list.num_blocks());
        let bm = idx.bm25();
        let idf = bm.idf(idx.num_docs(), list.len() as u32);
        let (docids, tfs) = list.decompress();
        for (i, (&d, &tf)) in docids.iter().zip(&tfs).enumerate() {
            let c = bm.contribution(idf, tf, idx.meta().doc_len(d), idx.meta().avg_doc_len);
            let block = i / idx.block_len();
            assert!(c <= ubs[block], "posting {i} exceeds its block bound");
        }
        // Uniform tf + uniform doc length → the bound is tight.
        assert!(ubs.iter().all(|&u| u > 0.0 && u.is_finite()));
    }

    #[test]
    fn synthetic_positions_follow_the_list_index() {
        let lists = vec![vec![4u32, 8], vec![4u32, 9]];
        let idx = InvertedIndex::from_docid_lists(&lists, 100, Codec::EliasFano, 128);
        let mut out = Vec::new();
        idx.list(idx.lookup("t1").unwrap())
            .positions_into(0, 0, &mut out);
        assert_eq!(out, vec![1]);
    }
}
