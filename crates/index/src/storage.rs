//! The in-memory inverted index ("we assume the whole dataset has been
//! loaded in the host main memory", paper §4.1).

use griffin_codec::Codec;

use crate::dictionary::{Dictionary, TermId};
use crate::document::CorpusMeta;
use crate::posting::CompressedPostingList;

/// A searchable, compressed, in-memory inverted index.
#[derive(Debug, Clone)]
pub struct InvertedIndex {
    dictionary: Dictionary,
    lists: Vec<CompressedPostingList>,
    meta: CorpusMeta,
    codec: Codec,
    block_len: usize,
}

impl InvertedIndex {
    pub fn new(
        dictionary: Dictionary,
        lists: Vec<CompressedPostingList>,
        meta: CorpusMeta,
        codec: Codec,
        block_len: usize,
    ) -> Self {
        InvertedIndex {
            dictionary,
            lists,
            meta,
            codec,
            block_len,
        }
    }

    /// Builds an index directly from generated docID lists (synthetic
    /// workloads): list `i` becomes the posting list of a term named
    /// `t{i}`. Term frequencies default to 1.
    pub fn from_docid_lists(
        docid_lists: &[Vec<u32>],
        num_docs: u32,
        codec: Codec,
        block_len: usize,
    ) -> Self {
        let mut dictionary = Dictionary::new();
        let lists: Vec<CompressedPostingList> = docid_lists
            .iter()
            .enumerate()
            .map(|(i, ids)| {
                dictionary.intern(&format!("t{i}"));
                CompressedPostingList::from_docids(ids, codec, block_len)
            })
            .collect();
        InvertedIndex {
            dictionary,
            lists,
            meta: CorpusMeta::uniform(num_docs, 300),
            codec,
            block_len,
        }
    }

    pub fn lookup(&self, term: &str) -> Option<TermId> {
        self.dictionary.lookup(term)
    }

    pub fn dictionary(&self) -> &Dictionary {
        &self.dictionary
    }

    /// The posting list of a term.
    pub fn list(&self, term: TermId) -> &CompressedPostingList {
        &self.lists[term.0 as usize]
    }

    /// Document frequency (list length) of a term.
    pub fn doc_freq(&self, term: TermId) -> usize {
        self.list(term).len()
    }

    pub fn num_terms(&self) -> usize {
        self.lists.len()
    }

    pub fn num_docs(&self) -> u32 {
        self.meta.num_docs
    }

    pub fn meta(&self) -> &CorpusMeta {
        &self.meta
    }

    pub fn codec(&self) -> Codec {
        self.codec
    }

    pub fn block_len(&self) -> usize {
        self.block_len
    }

    /// Total compressed size of all posting lists, in bits.
    pub fn size_bits(&self) -> u64 {
        self.lists.iter().map(|l| l.size_bits() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_docid_lists_creates_terms() {
        let lists = vec![vec![1u32, 5, 9], vec![2u32, 5, 8, 9, 20]];
        let idx = InvertedIndex::from_docid_lists(&lists, 100, Codec::EliasFano, 128);
        assert_eq!(idx.num_terms(), 2);
        let t0 = idx.lookup("t0").unwrap();
        let t1 = idx.lookup("t1").unwrap();
        assert_eq!(idx.doc_freq(t0), 3);
        assert_eq!(idx.doc_freq(t1), 5);
        let (ids, _) = idx.list(t1).decompress();
        assert_eq!(ids, lists[1]);
        assert_eq!(idx.num_docs(), 100);
    }

    #[test]
    fn size_accounting() {
        let lists = vec![(1u32..=1000).map(|i| i * 2).collect::<Vec<_>>()];
        let idx = InvertedIndex::from_docid_lists(&lists, 2001, Codec::EliasFano, 128);
        assert!(idx.size_bits() > 0);
        assert!(idx.size_bits() < 1000 * 32);
    }
}
