//! BM25 similarity (paper §2.1.3, following Robertson & Walker).
//!
//! BM25 is additive over query terms, which the engines exploit: the
//! intermediate result carries an accumulated partial score, and each
//! pairwise intersection adds the new term's contribution for the
//! surviving documents — no re-touching of earlier lists.
//!
//! The parameters live in this crate (not the CPU engine) because the
//! index builder bakes per-block score upper bounds at construction time
//! (see [`crate::InvertedIndex::block_ubs`]); pruning is only sound when
//! the engine scores with the *same* parameters the bounds were computed
//! under, so the index records its [`Bm25`] and engines compare.

use crate::document::CorpusMeta;

/// BM25 parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bm25 {
    pub k1: f32,
    pub b: f32,
}

impl Default for Bm25 {
    fn default() -> Self {
        Bm25 { k1: 1.2, b: 0.75 }
    }
}

impl Bm25 {
    /// Robertson–Sparck-Jones IDF with the +1 floor that keeps common terms
    /// non-negative.
    pub fn idf(&self, num_docs: u32, doc_freq: u32) -> f32 {
        let n = num_docs as f32;
        let df = doc_freq as f32;
        (((n - df + 0.5) / (df + 0.5)) + 1.0).ln()
    }

    /// One term's score contribution for a document.
    #[inline]
    pub fn contribution(&self, idf: f32, tf: u32, doc_len: f32, avg_doc_len: f32) -> f32 {
        let tf = tf as f32;
        let norm = if avg_doc_len > 0.0 {
            self.k1 * (1.0 - self.b + self.b * doc_len / avg_doc_len)
        } else {
            self.k1
        };
        idf * (tf * (self.k1 + 1.0)) / (tf + norm)
    }

    /// Convenience: contribution using corpus metadata.
    #[inline]
    pub fn score_one(&self, meta: &CorpusMeta, doc_freq: u32, docid: u32, tf: u32) -> f32 {
        let idf = self.idf(meta.num_docs, doc_freq);
        self.contribution(idf, tf, meta.doc_len(docid), meta.avg_doc_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idf_decreases_with_document_frequency() {
        let bm = Bm25::default();
        let rare = bm.idf(1_000_000, 10);
        let common = bm.idf(1_000_000, 500_000);
        assert!(rare > common);
        assert!(common > 0.0, "idf stays positive with the +1 floor");
    }

    #[test]
    fn contribution_saturates_in_tf() {
        let bm = Bm25::default();
        let idf = 2.0;
        let c1 = bm.contribution(idf, 1, 100.0, 100.0);
        let c2 = bm.contribution(idf, 2, 100.0, 100.0);
        let c3 = bm.contribution(idf, 3, 100.0, 100.0);
        let c100 = bm.contribution(idf, 100, 100.0, 100.0);
        assert!(c2 > c1);
        assert!(c100 < idf * (bm.k1 + 1.0), "bounded by idf * (k1+1)");
        assert!(c3 - c2 < c2 - c1, "diminishing marginal returns");
    }

    #[test]
    fn longer_documents_are_penalized() {
        let bm = Bm25::default();
        let short = bm.contribution(2.0, 3, 50.0, 100.0);
        let long = bm.contribution(2.0, 3, 500.0, 100.0);
        assert!(short > long);
    }

    #[test]
    fn uniform_corpus_scoring_is_stable() {
        let bm = Bm25::default();
        let meta = CorpusMeta::uniform(1000, 300);
        let s = bm.score_one(&meta, 50, 7, 2);
        assert!(s.is_finite() && s > 0.0);
    }
}
