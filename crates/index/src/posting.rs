//! Posting lists: docIDs compressed with the configured codec, term
//! frequencies VByte-compressed block-aligned with the docID blocks, and
//! an optional in-document position stream (for phrase queries) with the
//! same block alignment.

use griffin_codec::{varint, BlockedList, Codec};

use crate::document::DocId;

/// One posting: a document containing the term, with its in-document term
/// frequency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Posting {
    pub docid: DocId,
    pub tf: u32,
}

/// A compressed posting list: the docID side is a skip-indexed
/// [`BlockedList`]; term frequencies are a VByte stream with one byte-range
/// per docID block so a block decode yields matching (docid, tf) pairs.
/// In-document positions ride in a third block-aligned stream: per posting
/// a VByte count followed by delta-encoded positions (first absolute).
#[derive(Debug, Clone, PartialEq)]
pub struct CompressedPostingList {
    pub docs: BlockedList,
    /// VByte-encoded term frequencies for all postings, block-aligned.
    tf_bytes: Vec<u8>,
    /// Byte offset of each block's tf run (length = num_blocks + 1).
    tf_offsets: Vec<u32>,
    /// VByte position stream: per posting `count, pos_0, Δpos_1, …`.
    pos_bytes: Vec<u8>,
    /// Byte offset of each block's position run (length = num_blocks + 1).
    pos_offsets: Vec<u32>,
}

impl CompressedPostingList {
    /// Compresses `postings` (sorted by docid, strictly increasing).
    /// Every posting gets the single synthetic position 0; use
    /// [`CompressedPostingList::compress_with_positions`] when real token
    /// positions are known.
    pub fn compress(postings: &[Posting], codec: Codec, block_len: usize) -> Self {
        Self::compress_at_position(postings, 0, codec, block_len)
    }

    /// Compresses `postings` giving every posting the single constant
    /// position `pos` (synthetic workloads: list `i` at position `i`
    /// makes a phrase over consecutive synthetic terms behave exactly
    /// like their intersection — a testable identity).
    pub fn compress_at_position(
        postings: &[Posting],
        pos: u32,
        codec: Codec,
        block_len: usize,
    ) -> Self {
        let positions: Vec<Vec<u32>> = postings.iter().map(|_| vec![pos]).collect();
        Self::compress_with_positions(postings, &positions, codec, block_len)
    }

    /// Compresses `postings` with their in-document positions:
    /// `positions[i]` are the strictly increasing token offsets of
    /// `postings[i]`'s term in its document.
    pub fn compress_with_positions(
        postings: &[Posting],
        positions: &[Vec<u32>],
        codec: Codec,
        block_len: usize,
    ) -> Self {
        assert_eq!(
            postings.len(),
            positions.len(),
            "one position set per posting"
        );
        let docids: Vec<u32> = postings.iter().map(|p| p.docid).collect();
        let docs = BlockedList::compress(&docids, codec, block_len);
        let mut tf_bytes = Vec::new();
        let mut tf_offsets = Vec::with_capacity(docs.num_blocks() + 1);
        let mut pos_bytes = Vec::new();
        let mut pos_offsets = Vec::with_capacity(docs.num_blocks() + 1);
        tf_offsets.push(0);
        pos_offsets.push(0);
        for (chunk, pos_chunk) in postings.chunks(block_len).zip(positions.chunks(block_len)) {
            for (p, ps) in chunk.iter().zip(pos_chunk) {
                varint::encode_u32(p.tf, &mut tf_bytes);
                varint::encode_u32(ps.len() as u32, &mut pos_bytes);
                let mut prev = 0u32;
                for (j, &pos) in ps.iter().enumerate() {
                    debug_assert!(j == 0 || pos > prev, "positions strictly increasing");
                    varint::encode_u32(pos - if j == 0 { 0 } else { prev }, &mut pos_bytes);
                    prev = pos;
                }
            }
            tf_offsets.push(tf_bytes.len() as u32);
            pos_offsets.push(pos_bytes.len() as u32);
        }
        CompressedPostingList {
            docs,
            tf_bytes,
            tf_offsets,
            pos_bytes,
            pos_offsets,
        }
    }

    /// Builds from bare docIDs with tf = 1 for every posting (synthetic
    /// workloads generate docID lists directly).
    pub fn from_docids(docids: &[u32], codec: Codec, block_len: usize) -> Self {
        Self::from_docids_at_position(docids, 0, codec, block_len)
    }

    /// Like [`CompressedPostingList::from_docids`] but placing every
    /// posting at the constant position `pos`.
    pub fn from_docids_at_position(
        docids: &[u32],
        pos: u32,
        codec: Codec,
        block_len: usize,
    ) -> Self {
        let postings: Vec<Posting> = docids
            .iter()
            .map(|&d| Posting { docid: d, tf: 1 })
            .collect();
        Self::compress_at_position(&postings, pos, codec, block_len)
    }

    /// Number of postings.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    pub fn num_blocks(&self) -> usize {
        self.docs.num_blocks()
    }

    /// Decodes block `i`, appending its docIDs and tfs.
    ///
    /// Infallible by contract: the list was built in-memory by
    /// [`CompressedPostingList::compress`], so its blocks are valid by
    /// construction. Untrusted words must go through the fallible
    /// `griffin-codec` APIs before ever reaching an index.
    pub fn decode_block_into(&self, i: usize, docids: &mut Vec<u32>, tfs: &mut Vec<u32>) {
        self.docs
            .decode_block_into(i, docids)
            .expect("index-built list is valid by construction");
        let range = self.tf_offsets[i] as usize..self.tf_offsets[i + 1] as usize;
        let count = self.docs.skips[i].count as usize;
        varint::decode_n(&self.tf_bytes[range], 0, count, tfs)
            .expect("index-built tf side file is valid by construction");
    }

    /// Decodes only the term frequencies of block `i` (used when the docID
    /// side was decoded through an instrumented path).
    pub fn decode_block_into_tfs_only(&self, i: usize, tfs: &mut Vec<u32>) {
        let range = self.tf_offsets[i] as usize..self.tf_offsets[i + 1] as usize;
        let count = self.docs.skips[i].count as usize;
        griffin_codec::varint::decode_n(&self.tf_bytes[range], 0, count, tfs)
            .expect("index-built tf side file is valid by construction");
    }

    /// Decodes the in-document positions of the posting at `idx_in_block`
    /// within block `i`, appending them to `out`. Returns the number of
    /// VByte values read or skipped (so instrumented callers can charge
    /// decode work).
    pub fn positions_into(&self, i: usize, idx_in_block: usize, out: &mut Vec<u32>) -> usize {
        let bytes = &self.pos_bytes[self.pos_offsets[i] as usize..self.pos_offsets[i + 1] as usize];
        let mut cursor = 0usize;
        let mut varints = 0usize;
        let mut scratch: Vec<u32> = Vec::new();
        for j in 0..=idx_in_block {
            scratch.clear();
            let after =
                varint::decode_n(bytes, cursor, 1, &mut scratch).expect("valid position stream");
            let count = scratch[0] as usize;
            varints += 1;
            scratch.clear();
            let end =
                varint::decode_n(bytes, after, count, &mut scratch).expect("valid position stream");
            varints += count;
            cursor = end;
            if j == idx_in_block {
                let mut acc = 0u32;
                for (idx, &delta) in scratch.iter().enumerate() {
                    acc = if idx == 0 { delta } else { acc + delta };
                    out.push(acc);
                }
            }
        }
        varints
    }

    /// Decodes the entire list into (docids, tfs).
    pub fn decompress(&self) -> (Vec<u32>, Vec<u32>) {
        let mut docids = Vec::with_capacity(self.len());
        let mut tfs = Vec::with_capacity(self.len());
        for i in 0..self.num_blocks() {
            self.decode_block_into(i, &mut docids, &mut tfs);
        }
        (docids, tfs)
    }

    /// Raw access to the tf side file (VByte bytes + per-block offsets),
    /// used to ship term frequencies to the GPU.
    pub fn tf_raw(&self) -> (&[u8], &[u32]) {
        (&self.tf_bytes, &self.tf_offsets)
    }

    /// Total compressed size in bits (docs + tf side file). Positions are
    /// accounted separately by [`CompressedPostingList::pos_size_bits`] so
    /// historical size metrics stay comparable.
    pub fn size_bits(&self) -> usize {
        self.docs.size_bits() + self.tf_bytes.len() * 8 + self.tf_offsets.len() * 32
    }

    /// Size of the position side file, in bits.
    pub fn pos_size_bits(&self) -> usize {
        self.pos_bytes.len() * 8 + self.pos_offsets.len() * 32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn postings(n: u32) -> Vec<Posting> {
        (0..n)
            .map(|i| Posting {
                docid: i * 7 + 1,
                tf: 1 + (i % 9),
            })
            .collect()
    }

    #[test]
    fn roundtrip_docids_and_tfs() {
        let ps = postings(500);
        for codec in [Codec::PforDelta, Codec::EliasFano, Codec::Varint] {
            let list = CompressedPostingList::compress(&ps, codec, 128);
            let (docids, tfs) = list.decompress();
            assert_eq!(docids.len(), 500);
            for (i, p) in ps.iter().enumerate() {
                assert_eq!(docids[i], p.docid, "{codec:?} docid {i}");
                assert_eq!(tfs[i], p.tf, "{codec:?} tf {i}");
            }
        }
    }

    #[test]
    fn block_decode_is_aligned() {
        let ps = postings(300);
        let list = CompressedPostingList::compress(&ps, Codec::EliasFano, 128);
        let mut docids = Vec::new();
        let mut tfs = Vec::new();
        list.decode_block_into(2, &mut docids, &mut tfs);
        assert_eq!(docids.len(), 44);
        assert_eq!(tfs.len(), 44);
        assert_eq!(docids[0], ps[256].docid);
        assert_eq!(tfs[0], ps[256].tf);
    }

    #[test]
    fn from_docids_sets_unit_tf() {
        let ids: Vec<u32> = (1..=100).map(|i| i * 3).collect();
        let list = CompressedPostingList::from_docids(&ids, Codec::PforDelta, 128);
        let (docids, tfs) = list.decompress();
        assert_eq!(docids, ids);
        assert!(tfs.iter().all(|&t| t == 1));
    }

    #[test]
    fn empty_list() {
        let list = CompressedPostingList::compress(&[], Codec::EliasFano, 128);
        assert!(list.is_empty());
        assert_eq!(list.num_blocks(), 0);
        let (d, t) = list.decompress();
        assert!(d.is_empty() && t.is_empty());
    }

    #[test]
    fn positions_roundtrip_across_blocks() {
        let ps = postings(300);
        let positions: Vec<Vec<u32>> = (0..300u32)
            .map(|i| (0..(1 + i % 4)).map(|j| i + j * 5 + 1).collect())
            .collect();
        let list =
            CompressedPostingList::compress_with_positions(&ps, &positions, Codec::EliasFano, 128);
        let mut out = Vec::new();
        for (i, want) in positions.iter().enumerate() {
            out.clear();
            let block = i / 128;
            let varints = list.positions_into(block, i % 128, &mut out);
            assert_eq!(&out, want, "posting {i}");
            assert!(varints >= want.len());
        }
    }

    #[test]
    fn default_positions_are_a_constant_zero() {
        let list = CompressedPostingList::from_docids(&[3, 9, 27], Codec::Varint, 128);
        let mut out = Vec::new();
        list.positions_into(0, 1, &mut out);
        assert_eq!(out, vec![0]);
        let at = CompressedPostingList::from_docids_at_position(&[3, 9, 27], 5, Codec::Varint, 128);
        out.clear();
        at.positions_into(0, 2, &mut out);
        assert_eq!(out, vec![5]);
    }

    #[test]
    fn position_size_is_separate_from_core_size() {
        let ps = postings(200);
        let a = CompressedPostingList::compress(&ps, Codec::EliasFano, 128);
        assert!(a.pos_size_bits() > 0);
        assert!(a.size_bits() > 0);
    }
}
