//! Posting lists: docIDs compressed with the configured codec, term
//! frequencies VByte-compressed block-aligned with the docID blocks.

use griffin_codec::{varint, BlockedList, Codec};

use crate::document::DocId;

/// One posting: a document containing the term, with its in-document term
/// frequency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Posting {
    pub docid: DocId,
    pub tf: u32,
}

/// A compressed posting list: the docID side is a skip-indexed
/// [`BlockedList`]; term frequencies are a VByte stream with one byte-range
/// per docID block so a block decode yields matching (docid, tf) pairs.
#[derive(Debug, Clone, PartialEq)]
pub struct CompressedPostingList {
    pub docs: BlockedList,
    /// VByte-encoded term frequencies for all postings, block-aligned.
    tf_bytes: Vec<u8>,
    /// Byte offset of each block's tf run (length = num_blocks + 1).
    tf_offsets: Vec<u32>,
}

impl CompressedPostingList {
    /// Compresses `postings` (sorted by docid, strictly increasing).
    pub fn compress(postings: &[Posting], codec: Codec, block_len: usize) -> Self {
        let docids: Vec<u32> = postings.iter().map(|p| p.docid).collect();
        let docs = BlockedList::compress(&docids, codec, block_len);
        let mut tf_bytes = Vec::new();
        let mut tf_offsets = Vec::with_capacity(docs.num_blocks() + 1);
        tf_offsets.push(0);
        for chunk in postings.chunks(block_len) {
            for p in chunk {
                varint::encode_u32(p.tf, &mut tf_bytes);
            }
            tf_offsets.push(tf_bytes.len() as u32);
        }
        if postings.is_empty() {
            // keep offsets consistent: a single 0..0 range set above
        }
        CompressedPostingList {
            docs,
            tf_bytes,
            tf_offsets,
        }
    }

    /// Builds from bare docIDs with tf = 1 for every posting (synthetic
    /// workloads generate docID lists directly).
    pub fn from_docids(docids: &[u32], codec: Codec, block_len: usize) -> Self {
        let postings: Vec<Posting> = docids
            .iter()
            .map(|&d| Posting { docid: d, tf: 1 })
            .collect();
        Self::compress(&postings, codec, block_len)
    }

    /// Number of postings.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    pub fn num_blocks(&self) -> usize {
        self.docs.num_blocks()
    }

    /// Decodes block `i`, appending its docIDs and tfs.
    ///
    /// Infallible by contract: the list was built in-memory by
    /// [`CompressedPostingList::compress`], so its blocks are valid by
    /// construction. Untrusted words must go through the fallible
    /// `griffin-codec` APIs before ever reaching an index.
    pub fn decode_block_into(&self, i: usize, docids: &mut Vec<u32>, tfs: &mut Vec<u32>) {
        self.docs
            .decode_block_into(i, docids)
            .expect("index-built list is valid by construction");
        let range = self.tf_offsets[i] as usize..self.tf_offsets[i + 1] as usize;
        let count = self.docs.skips[i].count as usize;
        varint::decode_n(&self.tf_bytes[range], 0, count, tfs)
            .expect("index-built tf side file is valid by construction");
    }

    /// Decodes only the term frequencies of block `i` (used when the docID
    /// side was decoded through an instrumented path).
    pub fn decode_block_into_tfs_only(&self, i: usize, tfs: &mut Vec<u32>) {
        let range = self.tf_offsets[i] as usize..self.tf_offsets[i + 1] as usize;
        let count = self.docs.skips[i].count as usize;
        griffin_codec::varint::decode_n(&self.tf_bytes[range], 0, count, tfs)
            .expect("index-built tf side file is valid by construction");
    }

    /// Decodes the entire list into (docids, tfs).
    pub fn decompress(&self) -> (Vec<u32>, Vec<u32>) {
        let mut docids = Vec::with_capacity(self.len());
        let mut tfs = Vec::with_capacity(self.len());
        for i in 0..self.num_blocks() {
            self.decode_block_into(i, &mut docids, &mut tfs);
        }
        (docids, tfs)
    }

    /// Raw access to the tf side file (VByte bytes + per-block offsets),
    /// used to ship term frequencies to the GPU.
    pub fn tf_raw(&self) -> (&[u8], &[u32]) {
        (&self.tf_bytes, &self.tf_offsets)
    }

    /// Total compressed size in bits (docs + tf side file).
    pub fn size_bits(&self) -> usize {
        self.docs.size_bits() + self.tf_bytes.len() * 8 + self.tf_offsets.len() * 32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn postings(n: u32) -> Vec<Posting> {
        (0..n)
            .map(|i| Posting {
                docid: i * 7 + 1,
                tf: 1 + (i % 9),
            })
            .collect()
    }

    #[test]
    fn roundtrip_docids_and_tfs() {
        let ps = postings(500);
        for codec in [Codec::PforDelta, Codec::EliasFano, Codec::Varint] {
            let list = CompressedPostingList::compress(&ps, codec, 128);
            let (docids, tfs) = list.decompress();
            assert_eq!(docids.len(), 500);
            for (i, p) in ps.iter().enumerate() {
                assert_eq!(docids[i], p.docid, "{codec:?} docid {i}");
                assert_eq!(tfs[i], p.tf, "{codec:?} tf {i}");
            }
        }
    }

    #[test]
    fn block_decode_is_aligned() {
        let ps = postings(300);
        let list = CompressedPostingList::compress(&ps, Codec::EliasFano, 128);
        let mut docids = Vec::new();
        let mut tfs = Vec::new();
        list.decode_block_into(2, &mut docids, &mut tfs);
        assert_eq!(docids.len(), 44);
        assert_eq!(tfs.len(), 44);
        assert_eq!(docids[0], ps[256].docid);
        assert_eq!(tfs[0], ps[256].tf);
    }

    #[test]
    fn from_docids_sets_unit_tf() {
        let ids: Vec<u32> = (1..=100).map(|i| i * 3).collect();
        let list = CompressedPostingList::from_docids(&ids, Codec::PforDelta, 128);
        let (docids, tfs) = list.decompress();
        assert_eq!(docids, ids);
        assert!(tfs.iter().all(|&t| t == 1));
    }

    #[test]
    fn empty_list() {
        let list = CompressedPostingList::compress(&[], Codec::EliasFano, 128);
        assert!(list.is_empty());
        assert_eq!(list.num_blocks(), 0);
        let (d, t) = list.decompress();
        assert!(d.is_empty() && t.is_empty());
    }
}
