//! DocID-range sharding: slicing one index into N shard views whose
//! per-shard results merge back bit-exact.
//!
//! A shard is a contiguous docID range. Every posting list is sliced to
//! the range (docIDs stay global — no remapping), re-compressed with its
//! positions, and packaged as an [`InvertedIndex`] that carries the
//! *whole-corpus* [`CorpusMeta`](crate::document::CorpusMeta) and per-term scoring dfs (see
//! [`InvertedIndex::scoring_df`]). Because every document lives in
//! exactly one shard and every shard scores with global statistics, the
//! global top-k is a subset of the union of per-shard top-k's, and
//! merging with the engine's own comparator reproduces the unsharded
//! answer bit for bit. All query shapes shard cleanly: intersection,
//! union, difference, and phrase checks all distribute over a docID-range
//! restriction.

use griffin_codec::Codec;

use crate::posting::{CompressedPostingList, Posting};
use crate::storage::InvertedIndex;

/// How the docID space is cut into shards: contiguous, disjoint ranges
/// covering `0..num_docs`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    /// Exclusive upper docID bound of each shard; the last entry is
    /// `num_docs`. Shard `s` owns `bounds[s-1]..bounds[s]` (from 0 for
    /// the first).
    bounds: Vec<u32>,
}

impl ShardPlan {
    /// Cuts `0..num_docs` into `shards` near-equal contiguous ranges
    /// (the first `num_docs % shards` ranges get one extra document).
    pub fn even(num_docs: u32, shards: usize) -> ShardPlan {
        assert!(shards >= 1, "at least one shard");
        let shards = shards as u32;
        let base = num_docs / shards;
        let extra = num_docs % shards;
        let mut bounds = Vec::with_capacity(shards as usize);
        let mut hi = 0u32;
        for s in 0..shards {
            hi += base + u32::from(s < extra);
            bounds.push(hi);
        }
        debug_assert_eq!(hi, num_docs);
        ShardPlan { bounds }
    }

    pub fn num_shards(&self) -> usize {
        self.bounds.len()
    }

    /// The docID range shard `s` owns.
    pub fn range(&self, s: usize) -> std::ops::Range<u32> {
        let lo = if s == 0 { 0 } else { self.bounds[s - 1] };
        lo..self.bounds[s]
    }

    /// Which shard a docID belongs to.
    pub fn shard_of(&self, docid: u32) -> usize {
        self.bounds.partition_point(|&hi| hi <= docid)
    }
}

/// Slices `index` into one shard view per [`ShardPlan`] range.
///
/// Each view holds only its range's postings (with term frequencies and
/// positions) but scores with the full corpus statistics, so running any
/// query against every shard and merging the top-k's is bit-exact with
/// running it unsharded. Construction cost is one decompress +
/// re-compress pass per (term, shard).
pub fn partition(index: &InvertedIndex, plan: &ShardPlan) -> Vec<InvertedIndex> {
    let codec: Codec = index.codec();
    let block_len = index.block_len();
    let num_terms = index.num_terms();
    let scoring_dfs: Vec<u32> = (0..num_terms)
        .map(|t| index.scoring_df(crate::dictionary::TermId(t as u32)) as u32)
        .collect();

    let mut shard_lists: Vec<Vec<CompressedPostingList>> = (0..plan.num_shards())
        .map(|_| Vec::with_capacity(num_terms))
        .collect();
    let mut positions: Vec<u32> = Vec::new();
    for t in 0..num_terms {
        let list = index.list(crate::dictionary::TermId(t as u32));
        let (docids, tfs) = list.decompress();
        for (s, shard) in shard_lists.iter_mut().enumerate() {
            let range = plan.range(s);
            let lo = docids.partition_point(|&d| d < range.start);
            let hi = docids.partition_point(|&d| d < range.end);
            let postings: Vec<Posting> = (lo..hi)
                .map(|i| Posting {
                    docid: docids[i],
                    tf: tfs[i],
                })
                .collect();
            let mut pos: Vec<Vec<u32>> = Vec::with_capacity(hi - lo);
            for i in lo..hi {
                positions.clear();
                list.positions_into(i / block_len, i % block_len, &mut positions);
                pos.push(positions.clone());
            }
            shard.push(CompressedPostingList::compress_with_positions(
                &postings, &pos, codec, block_len,
            ));
        }
    }

    shard_lists
        .into_iter()
        .map(|lists| {
            InvertedIndex::with_scoring_dfs(
                index.dictionary().clone(),
                lists,
                index.meta().clone(),
                codec,
                block_len,
                Some(scoring_dfs.clone()),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_index() -> InvertedIndex {
        let lists: Vec<Vec<u32>> = vec![
            (0..500u32).map(|i| i * 2).collect(),
            (0..200u32).map(|i| i * 5 + 1).collect(),
            vec![3, 999],
        ];
        InvertedIndex::from_docid_lists(&lists, 1000, Codec::EliasFano, 128)
    }

    #[test]
    fn even_plan_covers_and_partitions() {
        let plan = ShardPlan::even(10, 3);
        assert_eq!(plan.num_shards(), 3);
        assert_eq!(plan.range(0), 0..4);
        assert_eq!(plan.range(1), 4..7);
        assert_eq!(plan.range(2), 7..10);
        for d in 0..10u32 {
            let s = plan.shard_of(d);
            assert!(plan.range(s).contains(&d));
        }
    }

    #[test]
    fn shards_slice_lists_and_keep_global_stats() {
        let index = sample_index();
        let plan = ShardPlan::even(index.num_docs(), 4);
        let shards = partition(&index, &plan);
        assert_eq!(shards.len(), 4);
        for t in 0..index.num_terms() {
            let term = crate::dictionary::TermId(t as u32);
            let (full_ids, full_tfs) = index.list(term).decompress();
            let mut seen_ids = Vec::new();
            let mut seen_tfs = Vec::new();
            for (s, shard) in shards.iter().enumerate() {
                assert!(shard.is_shard_view());
                // Global statistics survive the slice.
                assert_eq!(shard.num_docs(), index.num_docs());
                assert_eq!(shard.scoring_df(term), index.doc_freq(term));
                let (ids, tfs) = shard.list(term).decompress();
                assert_eq!(shard.doc_freq(term), ids.len());
                for &d in &ids {
                    assert!(plan.range(s).contains(&d), "docid {d} outside shard {s}");
                }
                seen_ids.extend(ids);
                seen_tfs.extend(tfs);
            }
            // The shards partition the list exactly (order preserved:
            // ranges are ascending and each list slice is ascending).
            assert_eq!(seen_ids, full_ids);
            assert_eq!(seen_tfs, full_tfs);
        }
    }

    #[test]
    fn shard_positions_survive_the_slice() {
        let index = sample_index();
        let plan = ShardPlan::even(index.num_docs(), 3);
        let shards = partition(&index, &plan);
        // from_docid_lists puts term t's postings at position t.
        let term = index.lookup("t1").unwrap();
        for shard in &shards {
            let list = shard.list(term);
            let mut out = Vec::new();
            for i in 0..list.len() {
                out.clear();
                list.positions_into(i / shard.block_len(), i % shard.block_len(), &mut out);
                assert_eq!(out, vec![1]);
            }
        }
    }

    #[test]
    fn shard_block_ubs_use_global_idf() {
        let index = sample_index();
        let plan = ShardPlan::even(index.num_docs(), 4);
        let shards = partition(&index, &plan);
        let term = index.lookup("t0").unwrap();
        let bm = index.bm25();
        let idf = bm.idf(index.num_docs(), index.doc_freq(term) as u32);
        for shard in &shards {
            let (ids, tfs) = shard.list(term).decompress();
            let ubs = shard.block_ubs(term);
            for (i, (&d, &tf)) in ids.iter().zip(&tfs).enumerate() {
                let c = bm.contribution(idf, tf, index.meta().doc_len(d), index.meta().avg_doc_len);
                assert!(c <= ubs[i / shard.block_len()], "shard bound must hold");
            }
        }
    }
}
