//! Index construction from tokenized documents.

use std::collections::HashMap;

use griffin_codec::{Codec, DEFAULT_BLOCK_LEN};

use crate::dictionary::Dictionary;
use crate::document::{CorpusMeta, DocId};
use crate::posting::{CompressedPostingList, Posting};
use crate::storage::InvertedIndex;

/// Accumulates documents, then compresses everything into an
/// [`InvertedIndex`]. Documents must be added in increasing `DocId` order
/// (the standard crawl-order assignment that makes d-gaps small).
pub struct IndexBuilder {
    dictionary: Dictionary,
    postings: Vec<Vec<Posting>>,
    /// Token positions parallel to `postings`: `positions[t][i]` are the
    /// in-document offsets behind `postings[t][i]` (phrase queries).
    positions: Vec<Vec<Vec<u32>>>,
    doc_lens: Vec<u32>,
    next_docid: DocId,
    codec: Codec,
    block_len: usize,
}

impl IndexBuilder {
    pub fn new(codec: Codec) -> Self {
        IndexBuilder {
            dictionary: Dictionary::new(),
            postings: Vec::new(),
            positions: Vec::new(),
            doc_lens: Vec::new(),
            next_docid: 0,
            codec,
            block_len: DEFAULT_BLOCK_LEN,
        }
    }

    /// Overrides the block length (128 in the paper; the ablation benches
    /// sweep it).
    pub fn with_block_len(mut self, block_len: usize) -> Self {
        self.block_len = block_len;
        self
    }

    /// Adds a document; returns its assigned `DocId`.
    pub fn add_document(&mut self, tokens: &[&str]) -> DocId {
        let docid = self.next_docid;
        self.next_docid += 1;
        self.doc_lens.push(tokens.len() as u32);

        let mut occ: HashMap<&str, Vec<u32>> = HashMap::new();
        for (pos, &t) in tokens.iter().enumerate() {
            occ.entry(t).or_default().push(pos as u32);
        }
        // Deterministic posting order regardless of hash iteration order.
        let mut entries: Vec<(&str, Vec<u32>)> = occ.into_iter().collect();
        entries.sort_unstable();
        for (term, positions) in entries {
            let tid = self.dictionary.intern(term);
            if self.postings.len() <= tid.0 as usize {
                self.postings.resize_with(tid.0 as usize + 1, Vec::new);
                self.positions.resize_with(tid.0 as usize + 1, Vec::new);
            }
            self.postings[tid.0 as usize].push(Posting {
                docid,
                tf: positions.len() as u32,
            });
            self.positions[tid.0 as usize].push(positions);
        }
        docid
    }

    /// Convenience for whitespace-tokenized text.
    pub fn add_text(&mut self, text: &str) -> DocId {
        let tokens: Vec<&str> = text.split_whitespace().collect();
        self.add_document(&tokens)
    }

    /// Compresses all posting lists (with positions) and produces the
    /// final index.
    pub fn build(self) -> InvertedIndex {
        let lists: Vec<CompressedPostingList> = self
            .postings
            .iter()
            .zip(&self.positions)
            .map(|(ps, pos)| {
                CompressedPostingList::compress_with_positions(ps, pos, self.codec, self.block_len)
            })
            .collect();
        InvertedIndex::new(
            self.dictionary,
            lists,
            CorpusMeta::from_doc_lens(self.doc_lens),
            self.codec,
            self.block_len,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_searchable_index() {
        let mut b = IndexBuilder::new(Codec::EliasFano);
        b.add_text("ppopp vienna austria 2018");
        b.add_text("vienna is in austria");
        b.add_text("ppopp 2018 deadline");
        let idx = b.build();

        assert_eq!(idx.num_docs(), 3);
        let austria = idx.lookup("austria").expect("term exists");
        let (docids, _) = idx.list(austria).decompress();
        assert_eq!(docids, vec![0, 1]);
        let ppopp = idx.lookup("ppopp").unwrap();
        let (docids, _) = idx.list(ppopp).decompress();
        assert_eq!(docids, vec![0, 2]);
        assert!(idx.lookup("munich").is_none());
    }

    #[test]
    fn term_frequencies_are_counted() {
        let mut b = IndexBuilder::new(Codec::PforDelta);
        b.add_text("data data data base");
        let idx = b.build();
        let data = idx.lookup("data").unwrap();
        let (_, tfs) = idx.list(data).decompress();
        assert_eq!(tfs, vec![3]);
        let base = idx.lookup("base").unwrap();
        let (_, tfs) = idx.list(base).decompress();
        assert_eq!(tfs, vec![1]);
    }

    #[test]
    fn doc_lens_recorded() {
        let mut b = IndexBuilder::new(Codec::EliasFano);
        b.add_text("a b c");
        b.add_text("a");
        let idx = b.build();
        assert_eq!(idx.meta().doc_len(0), 3.0);
        assert_eq!(idx.meta().doc_len(1), 1.0);
        assert_eq!(idx.meta().avg_doc_len, 2.0);
    }
}
