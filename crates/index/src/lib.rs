//! # griffin-index — the inverted-index substrate
//!
//! Implements the data structures of paper §2.1: a dictionary mapping terms
//! to term IDs, compressed blocked posting lists with skip pointers (built
//! on [`griffin_codec`]), per-document metadata for BM25 ranking, and an
//! index builder that turns tokenized documents into a searchable
//! [`InvertedIndex`].
//!
//! Each posting carries a document ID and a term frequency ("each entry in
//! the inverted list contains a document frequency", §2.1.3); docIDs are
//! compressed with the configured codec, term frequencies with VByte,
//! block-aligned with the docID blocks so decoding a block yields both.

pub mod builder;
pub mod dictionary;
pub mod document;
pub mod posting;
pub mod rank;
pub mod shard;
pub mod storage;

pub use builder::IndexBuilder;
pub use dictionary::{Dictionary, TermId};
pub use document::{CorpusMeta, DocId};
pub use posting::{CompressedPostingList, Posting};
pub use rank::Bm25;
pub use shard::{partition, ShardPlan};
pub use storage::InvertedIndex;
