//! Ratio-controlled list pairs for the crossover experiments.
//!
//! Paper §3.2 groups intersections into seven length-ratio bands —
//! [1,16), [16,32), [32,64), [64,128), [128,256), [256,512), [512,1024) —
//! and measures GPU vs CPU latency per band (Fig. 8); Fig. 13 uses
//! comparable-length pairs. This module generates pairs with an exact
//! target ratio and a controllable overlap fraction.

use rand::Rng;

use crate::lists::{gen_docid_list, GapProfile};

/// One of the paper's ratio bands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RatioGroup {
    pub lo: usize,
    pub hi: usize,
}

impl RatioGroup {
    /// Label as printed in Fig. 8 ("[16,32)").
    pub fn label(&self) -> String {
        format!("[{},{})", self.lo, self.hi)
    }

    /// Geometric midpoint, used as the representative ratio.
    pub fn representative(&self) -> usize {
        ((self.lo as f64) * (self.hi as f64)).sqrt() as usize
    }
}

/// The seven bands of paper §3.2.
pub const RATIO_GROUPS: [RatioGroup; 7] = [
    RatioGroup { lo: 1, hi: 16 },
    RatioGroup { lo: 16, hi: 32 },
    RatioGroup { lo: 32, hi: 64 },
    RatioGroup { lo: 64, hi: 128 },
    RatioGroup { lo: 128, hi: 256 },
    RatioGroup { lo: 256, hi: 512 },
    RatioGroup { lo: 512, hi: 1024 },
];

/// Generates a (short, long) pair: `long_len` elements in the long list, a
/// ratio drawn uniformly from `group`, and `overlap` fraction of the short
/// list present in the long list (the paper's real pairs always share
/// documents; overlap 0.2–0.5 is typical for conjunctive queries).
///
/// Short-list members are drawn in *bursts* of consecutive long-list
/// positions: co-occurring terms cluster in crawl-adjacent documents, so a
/// real intermediate result hits runs of the same posting blocks. This
/// locality is load-bearing for the Fig. 8 crossover — it is what lets the
/// CPU's one-block decode cache amortize at high ratios.
pub fn gen_ratio_pair<R: Rng + ?Sized>(
    rng: &mut R,
    group: RatioGroup,
    long_len: usize,
    overlap: f64,
    num_docs: u32,
) -> (Vec<u32>, Vec<u32>) {
    gen_ratio_pair_opts(
        rng,
        group,
        long_len,
        overlap,
        num_docs,
        PairShape::intermediate(),
    )
}

/// Locality profile of the short list.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairShape {
    /// Members are drawn in runs of this many consecutive long-list
    /// positions (1 = independent sampling).
    pub member_burst: usize,
    /// Fraction of non-members placed adjacent to member runs instead of
    /// uniformly over the docID space.
    pub clustered_nonmembers: f64,
}

impl PairShape {
    /// The short list plays a query's *intermediate result*: it inherits
    /// the burstiness of the posting lists it came from (Fig. 8's regime —
    /// this locality is what lets the CPU's one-block decode cache
    /// amortize at high ratios).
    pub fn intermediate() -> PairShape {
        PairShape {
            member_burst: 16,
            clustered_nonmembers: 0.85,
        }
    }

    /// The short list is an independent term's posting list (Fig. 13's
    /// regime): membership scatters.
    pub fn independent() -> PairShape {
        PairShape {
            member_burst: 1,
            clustered_nonmembers: 0.0,
        }
    }
}

/// [`gen_ratio_pair`] with an explicit short-list locality profile.
pub fn gen_ratio_pair_opts<R: Rng + ?Sized>(
    rng: &mut R,
    group: RatioGroup,
    long_len: usize,
    overlap: f64,
    num_docs: u32,
    shape: PairShape,
) -> (Vec<u32>, Vec<u32>) {
    assert!((0.0..=1.0).contains(&overlap));
    let ratio = rng.gen_range(group.lo..group.hi).max(1);
    let short_len = (long_len / ratio).max(1);
    let long = gen_docid_list(rng, long_len, num_docs, GapProfile::HeavyTailed);

    // Members: runs of consecutive long-list elements.
    let member_count = (short_len as f64 * overlap) as usize;
    let burst = shape.member_burst.clamp(1, member_count.max(1));
    let mut short: Vec<u32> = Vec::with_capacity(short_len);
    while short.len() < member_count {
        let start = rng.gen_range(0..long.len());
        let take = burst
            .min(long.len() - start)
            .min(member_count - short.len());
        short.extend_from_slice(&long[start..start + take]);
    }
    // Non-members: a `clustered_nonmembers` fraction adjacent to member
    // runs, the rest uniform. Never present in the long list.
    let members = short.len().max(1);
    while short.len() < short_len {
        let candidate = if rng.gen::<f64>() < shape.clustered_nonmembers && !short.is_empty() {
            let anchor = short[rng.gen_range(0..members)];
            anchor.saturating_add(rng.gen_range(1..5_000))
        } else {
            rng.gen_range(0..num_docs)
        };
        if long.binary_search(&candidate).is_err() {
            short.push(candidate);
        }
    }
    short.sort_unstable();
    short.dedup();
    (short, long)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn groups_match_paper() {
        assert_eq!(RATIO_GROUPS.len(), 7);
        assert_eq!(RATIO_GROUPS[0].label(), "[1,16)");
        assert_eq!(RATIO_GROUPS[6].label(), "[512,1024)");
        // Bands are contiguous.
        for w in RATIO_GROUPS.windows(2) {
            assert_eq!(w[0].hi, w[1].lo);
        }
    }

    #[test]
    fn pair_respects_ratio_band() {
        let mut rng = StdRng::seed_from_u64(1);
        for group in RATIO_GROUPS {
            let (short, long) = gen_ratio_pair(&mut rng, group, 100_000, 0.3, 50_000_000);
            let ratio = long.len() as f64 / short.len() as f64;
            assert!(
                ratio >= group.lo as f64 * 0.8 && ratio < group.hi as f64 * 1.3,
                "{}: ratio {ratio}",
                group.label()
            );
        }
    }

    #[test]
    fn overlap_controls_intersection_size() {
        let mut rng = StdRng::seed_from_u64(2);
        let group = RatioGroup { lo: 8, hi: 9 };
        let (short, long) = gen_ratio_pair(&mut rng, group, 80_000, 0.5, 10_000_000);
        let hits = short
            .iter()
            .filter(|v| long.binary_search(v).is_ok())
            .count();
        let frac = hits as f64 / short.len() as f64;
        assert!((0.35..0.65).contains(&frac), "overlap fraction {frac}");
    }

    #[test]
    fn lists_are_sorted_unique() {
        let mut rng = StdRng::seed_from_u64(3);
        let (short, long) = gen_ratio_pair(&mut rng, RATIO_GROUPS[2], 50_000, 0.2, 20_000_000);
        assert!(short.windows(2).all(|w| w[0] < w[1]));
        assert!(long.windows(2).all(|w| w[0] < w[1]));
    }
}
