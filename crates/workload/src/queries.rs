//! Synthetic query logs matching the paper's Fig. 11 term-count histogram
//! (TREC 2005/2006 efficiency track substitute).

use griffin_index::{InvertedIndex, TermId};
use rand::Rng;

use crate::zipf::Zipf;

/// Shape of a generated query log.
#[derive(Debug, Clone)]
pub struct QueryLogSpec {
    /// Number of queries (the paper runs 10 000).
    pub num_queries: usize,
    /// Probability of each term count, starting at 2 terms; the final
    /// entry absorbs ">6". Defaults to Fig. 11's histogram.
    pub term_count_probs: Vec<(usize, f64)>,
    /// Zipf exponent biasing term *selection* toward frequent terms (real
    /// query terms skew popular, which is what makes list ratios drift
    /// upward as queries execute).
    pub term_bias: f64,
    /// Probability that a term is drawn from the popularity-biased Zipf;
    /// the rest are uniform over the vocabulary. The mixture is what gives
    /// real logs their enormous cost variance: most queries contain at
    /// least one rare (cheap) term, while the all-popular minority are the
    /// "whale" queries behind the paper's tail-latency study.
    pub popular_mix: f64,
}

impl Default for QueryLogSpec {
    fn default() -> Self {
        QueryLogSpec {
            num_queries: 10_000,
            // Paper Fig. 11: ~27% 2-term, 33% 3-term, 24% 4-term, then a
            // tail at 5, 6, and >6 terms.
            term_count_probs: vec![
                (2, 0.27),
                (3, 0.33),
                (4, 0.24),
                (5, 0.09),
                (6, 0.04),
                (7, 0.03),
            ],
            term_bias: 1.2,
            popular_mix: 0.65,
        }
    }
}

impl QueryLogSpec {
    /// Samples one query's term count.
    pub fn sample_term_count<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let total: f64 = self.term_count_probs.iter().map(|&(_, p)| p).sum();
        let mut u = rng.gen::<f64>() * total;
        for &(count, p) in &self.term_count_probs {
            if u < p {
                return count;
            }
            u -= p;
        }
        self.term_count_probs.last().expect("non-empty").0
    }

    /// Generates the full query log over an index: term IDs are drawn
    /// Zipf-biased by document frequency (popular terms appear in more
    /// queries), distinct within a query.
    pub fn generate<R: Rng + ?Sized>(
        &self,
        index: &InvertedIndex,
        rng: &mut R,
    ) -> Vec<Vec<TermId>> {
        let n_terms = index.num_terms();
        assert!(n_terms >= 8, "index too small for realistic queries");
        // Rank terms by descending document frequency; Zipf over ranks.
        let mut by_df: Vec<u32> = (0..n_terms as u32).collect();
        by_df.sort_by_key(|&t| std::cmp::Reverse(index.doc_freq(TermId(t))));
        let zipf = Zipf::new(n_terms as u64, self.term_bias);

        let mut queries = Vec::with_capacity(self.num_queries);
        for _ in 0..self.num_queries {
            let want = self.sample_term_count(rng).min(n_terms);
            let mut terms: Vec<TermId> = Vec::with_capacity(want);
            while terms.len() < want {
                let rank = if rng.gen::<f64>() < self.popular_mix {
                    zipf.sample(rng) as usize - 1
                } else {
                    rng.gen_range(0..n_terms)
                };
                let t = TermId(by_df[rank]);
                if !terms.contains(&t) {
                    terms.push(t);
                }
            }
            queries.push(terms);
        }
        queries
    }
}

/// Shape of a mixed-operator query log: text queries exercising the full
/// grammar (conjunctions, `OR` arms, negations, quoted phrases) with
/// term popularity drawn from the same df-ranked Zipf mixture as
/// [`QueryLogSpec`]. The generator emits query *strings*, so the log
/// also exercises the parser — the serving simulation and `exp_queries`
/// feed these through [`Griffin::query`].
///
/// [`Griffin::query`]: ../../griffin/engine/struct.Griffin.html#method.query
#[derive(Debug, Clone)]
pub struct MixedQuerySpec {
    /// Number of queries to generate.
    pub num_queries: usize,
    /// Zipf exponent over df-ranked terms (see [`QueryLogSpec::term_bias`]).
    pub term_bias: f64,
    /// Popular-vs-uniform mixture (see [`QueryLogSpec::popular_mix`]).
    pub popular_mix: f64,
    /// Relative weight of plain conjunctions (`a b c`).
    pub and_weight: f64,
    /// Relative weight of disjunctions (`a OR b [OR c]`).
    pub or_weight: f64,
    /// Relative weight of negated conjunctions (`a b -c`).
    pub not_weight: f64,
    /// Relative weight of quoted phrases (`"a b" [c]`).
    pub phrase_weight: f64,
}

impl Default for MixedQuerySpec {
    fn default() -> Self {
        // Web logs are mostly conjunctive; the operator tail is real but
        // thin. The defaults keep conjunctions dominant while giving the
        // planner a steady diet of every operator.
        MixedQuerySpec {
            num_queries: 1_000,
            term_bias: 1.2,
            popular_mix: 0.65,
            and_weight: 0.55,
            or_weight: 0.20,
            not_weight: 0.15,
            phrase_weight: 0.10,
        }
    }
}

/// The operator shape of one generated query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryShape {
    And,
    Or,
    Not,
    Phrase,
}

impl MixedQuerySpec {
    /// Samples one query's operator shape from the weight mixture.
    pub fn sample_shape<R: Rng + ?Sized>(&self, rng: &mut R) -> QueryShape {
        let total = self.and_weight + self.or_weight + self.not_weight + self.phrase_weight;
        let mut u = rng.gen::<f64>() * total;
        for (shape, w) in [
            (QueryShape::And, self.and_weight),
            (QueryShape::Or, self.or_weight),
            (QueryShape::Not, self.not_weight),
        ] {
            if u < w {
                return shape;
            }
            u -= w;
        }
        QueryShape::Phrase
    }

    /// Generates the query log as parser-ready strings over the index's
    /// vocabulary. Terms within a query are distinct; negated terms are
    /// drawn popular-biased too (a negation only prunes if it matches).
    pub fn generate<R: Rng + ?Sized>(&self, index: &InvertedIndex, rng: &mut R) -> Vec<String> {
        let n_terms = index.num_terms();
        assert!(n_terms >= 8, "index too small for mixed queries");
        let mut by_df: Vec<u32> = (0..n_terms as u32).collect();
        by_df.sort_by_key(|&t| std::cmp::Reverse(index.doc_freq(TermId(t))));
        let zipf = Zipf::new(n_terms as u64, self.term_bias);
        let dict = index.dictionary();

        let pick_words = |rng: &mut R, want: usize| -> Vec<&str> {
            let mut ids: Vec<TermId> = Vec::with_capacity(want);
            while ids.len() < want.min(n_terms) {
                let rank = if rng.gen::<f64>() < self.popular_mix {
                    zipf.sample(rng) as usize - 1
                } else {
                    rng.gen_range(0..n_terms)
                };
                let t = TermId(by_df[rank]);
                if !ids.contains(&t) {
                    ids.push(t);
                }
            }
            ids.iter().map(|&t| dict.term(t)).collect()
        };

        (0..self.num_queries)
            .map(|_| match self.sample_shape(rng) {
                QueryShape::And => {
                    let n = rng.gen_range(2..=4);
                    pick_words(rng, n).join(" ")
                }
                QueryShape::Or => {
                    let n = rng.gen_range(2..=3);
                    pick_words(rng, n).join(" OR ")
                }
                QueryShape::Not => {
                    let w = pick_words(rng, 3);
                    format!("{} {} -{}", w[0], w[1], w[2])
                }
                QueryShape::Phrase => {
                    let with_extra = rng.gen_bool(0.5);
                    let w = pick_words(rng, if with_extra { 3 } else { 2 });
                    if with_extra {
                        format!("\"{} {}\" {}", w[0], w[1], w[2])
                    } else {
                        format!("\"{} {}\"", w[0], w[1])
                    }
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use griffin_codec::Codec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_index(n_terms: usize) -> InvertedIndex {
        let lists: Vec<Vec<u32>> = (0..n_terms)
            .map(|t| (0..(10 + t as u32 * 7)).map(|i| i * 3 + 1).collect())
            .collect();
        InvertedIndex::from_docid_lists(&lists, 10_000, Codec::EliasFano, 128)
    }

    #[test]
    fn term_count_histogram_matches_fig11() {
        let spec = QueryLogSpec::default();
        let mut rng = StdRng::seed_from_u64(1);
        let mut hist = [0usize; 10];
        for _ in 0..20_000 {
            hist[spec.sample_term_count(&mut rng)] += 1;
        }
        let frac = |c: usize| hist[c] as f64 / 20_000.0;
        assert!((frac(2) - 0.27).abs() < 0.02, "2-term: {}", frac(2));
        assert!((frac(3) - 0.33).abs() < 0.02, "3-term: {}", frac(3));
        assert!((frac(4) - 0.24).abs() < 0.02, "4-term: {}", frac(4));
    }

    #[test]
    fn queries_have_distinct_valid_terms() {
        let idx = tiny_index(50);
        let spec = QueryLogSpec {
            num_queries: 500,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(2);
        let queries = spec.generate(&idx, &mut rng);
        assert_eq!(queries.len(), 500);
        for q in &queries {
            assert!(q.len() >= 2);
            let mut sorted = q.clone();
            sorted.sort();
            sorted.dedup();
            assert_eq!(sorted.len(), q.len(), "duplicate terms in query");
            for t in q {
                assert!((t.0 as usize) < idx.num_terms());
            }
        }
    }

    #[test]
    fn popular_terms_appear_more_often() {
        let idx = tiny_index(100);
        let spec = QueryLogSpec {
            num_queries: 3_000,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(3);
        let queries = spec.generate(&idx, &mut rng);
        let mut counts = vec![0usize; 100];
        for q in &queries {
            for t in q {
                counts[t.0 as usize] += 1;
            }
        }
        // Term 99 has the largest df (lists grow with index); it should be
        // among the most-queried terms.
        let max_count = *counts.iter().max().unwrap();
        assert!(counts[99] * 3 > max_count, "popular term underused");
        // And the least frequent term should be rarer than the most.
        assert!(counts[0] < max_count);
    }

    #[test]
    fn mixed_queries_cover_every_shape_and_stay_in_vocabulary() {
        let idx = tiny_index(60);
        let spec = MixedQuerySpec {
            num_queries: 400,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(9);
        let queries = spec.generate(&idx, &mut rng);
        assert_eq!(queries.len(), 400);
        let mut saw = (false, false, false);
        for q in &queries {
            if q.contains(" OR ") {
                saw.0 = true;
            }
            if q.contains(" -") {
                saw.1 = true;
            }
            if q.contains('"') {
                saw.2 = true;
            }
            // Every bare word (quotes and '-' stripped) is in-vocabulary.
            for w in q.split_whitespace() {
                let w = w.trim_matches('"').trim_start_matches('-');
                if w == "OR" {
                    continue;
                }
                assert!(
                    idx.lookup(w).is_some(),
                    "out-of-vocabulary word {w:?} in {q:?}"
                );
            }
        }
        assert!(saw.0 && saw.1 && saw.2, "missing shapes: {saw:?}");
    }

    #[test]
    fn mixed_queries_are_deterministic() {
        let idx = tiny_index(30);
        let spec = MixedQuerySpec {
            num_queries: 50,
            ..Default::default()
        };
        let a = spec.generate(&idx, &mut StdRng::seed_from_u64(4));
        let b = spec.generate(&idx, &mut StdRng::seed_from_u64(4));
        assert_eq!(a, b);
        assert_ne!(a, spec.generate(&idx, &mut StdRng::seed_from_u64(5)));
    }

    #[test]
    fn deterministic_with_seed() {
        let idx = tiny_index(30);
        let spec = QueryLogSpec {
            num_queries: 50,
            ..Default::default()
        };
        let a = spec.generate(&idx, &mut StdRng::seed_from_u64(7));
        let b = spec.generate(&idx, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }
}
