//! Synthetic query logs matching the paper's Fig. 11 term-count histogram
//! (TREC 2005/2006 efficiency track substitute).

use griffin_index::{InvertedIndex, TermId};
use rand::Rng;

use crate::zipf::Zipf;

/// Shape of a generated query log.
#[derive(Debug, Clone)]
pub struct QueryLogSpec {
    /// Number of queries (the paper runs 10 000).
    pub num_queries: usize,
    /// Probability of each term count, starting at 2 terms; the final
    /// entry absorbs ">6". Defaults to Fig. 11's histogram.
    pub term_count_probs: Vec<(usize, f64)>,
    /// Zipf exponent biasing term *selection* toward frequent terms (real
    /// query terms skew popular, which is what makes list ratios drift
    /// upward as queries execute).
    pub term_bias: f64,
    /// Probability that a term is drawn from the popularity-biased Zipf;
    /// the rest are uniform over the vocabulary. The mixture is what gives
    /// real logs their enormous cost variance: most queries contain at
    /// least one rare (cheap) term, while the all-popular minority are the
    /// "whale" queries behind the paper's tail-latency study.
    pub popular_mix: f64,
}

impl Default for QueryLogSpec {
    fn default() -> Self {
        QueryLogSpec {
            num_queries: 10_000,
            // Paper Fig. 11: ~27% 2-term, 33% 3-term, 24% 4-term, then a
            // tail at 5, 6, and >6 terms.
            term_count_probs: vec![
                (2, 0.27),
                (3, 0.33),
                (4, 0.24),
                (5, 0.09),
                (6, 0.04),
                (7, 0.03),
            ],
            term_bias: 1.2,
            popular_mix: 0.65,
        }
    }
}

impl QueryLogSpec {
    /// Samples one query's term count.
    pub fn sample_term_count<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let total: f64 = self.term_count_probs.iter().map(|&(_, p)| p).sum();
        let mut u = rng.gen::<f64>() * total;
        for &(count, p) in &self.term_count_probs {
            if u < p {
                return count;
            }
            u -= p;
        }
        self.term_count_probs.last().expect("non-empty").0
    }

    /// Generates the full query log over an index: term IDs are drawn
    /// Zipf-biased by document frequency (popular terms appear in more
    /// queries), distinct within a query.
    pub fn generate<R: Rng + ?Sized>(
        &self,
        index: &InvertedIndex,
        rng: &mut R,
    ) -> Vec<Vec<TermId>> {
        let n_terms = index.num_terms();
        assert!(n_terms >= 8, "index too small for realistic queries");
        // Rank terms by descending document frequency; Zipf over ranks.
        let mut by_df: Vec<u32> = (0..n_terms as u32).collect();
        by_df.sort_by_key(|&t| std::cmp::Reverse(index.doc_freq(TermId(t))));
        let zipf = Zipf::new(n_terms as u64, self.term_bias);

        let mut queries = Vec::with_capacity(self.num_queries);
        for _ in 0..self.num_queries {
            let want = self.sample_term_count(rng).min(n_terms);
            let mut terms: Vec<TermId> = Vec::with_capacity(want);
            while terms.len() < want {
                let rank = if rng.gen::<f64>() < self.popular_mix {
                    zipf.sample(rng) as usize - 1
                } else {
                    rng.gen_range(0..n_terms)
                };
                let t = TermId(by_df[rank]);
                if !terms.contains(&t) {
                    terms.push(t);
                }
            }
            queries.push(terms);
        }
        queries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use griffin_codec::Codec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_index(n_terms: usize) -> InvertedIndex {
        let lists: Vec<Vec<u32>> = (0..n_terms)
            .map(|t| (0..(10 + t as u32 * 7)).map(|i| i * 3 + 1).collect())
            .collect();
        InvertedIndex::from_docid_lists(&lists, 10_000, Codec::EliasFano, 128)
    }

    #[test]
    fn term_count_histogram_matches_fig11() {
        let spec = QueryLogSpec::default();
        let mut rng = StdRng::seed_from_u64(1);
        let mut hist = [0usize; 10];
        for _ in 0..20_000 {
            hist[spec.sample_term_count(&mut rng)] += 1;
        }
        let frac = |c: usize| hist[c] as f64 / 20_000.0;
        assert!((frac(2) - 0.27).abs() < 0.02, "2-term: {}", frac(2));
        assert!((frac(3) - 0.33).abs() < 0.02, "3-term: {}", frac(3));
        assert!((frac(4) - 0.24).abs() < 0.02, "4-term: {}", frac(4));
    }

    #[test]
    fn queries_have_distinct_valid_terms() {
        let idx = tiny_index(50);
        let spec = QueryLogSpec {
            num_queries: 500,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(2);
        let queries = spec.generate(&idx, &mut rng);
        assert_eq!(queries.len(), 500);
        for q in &queries {
            assert!(q.len() >= 2);
            let mut sorted = q.clone();
            sorted.sort();
            sorted.dedup();
            assert_eq!(sorted.len(), q.len(), "duplicate terms in query");
            for t in q {
                assert!((t.0 as usize) < idx.num_terms());
            }
        }
    }

    #[test]
    fn popular_terms_appear_more_often() {
        let idx = tiny_index(100);
        let spec = QueryLogSpec {
            num_queries: 3_000,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(3);
        let queries = spec.generate(&idx, &mut rng);
        let mut counts = vec![0usize; 100];
        for q in &queries {
            for t in q {
                counts[t.0 as usize] += 1;
            }
        }
        // Term 99 has the largest df (lists grow with index); it should be
        // among the most-queried terms.
        let max_count = *counts.iter().max().unwrap();
        assert!(counts[99] * 3 > max_count, "popular term underused");
        // And the least frequent term should be rarer than the most.
        assert!(counts[0] < max_count);
    }

    #[test]
    fn deterministic_with_seed() {
        let idx = tiny_index(30);
        let spec = QueryLogSpec {
            num_queries: 50,
            ..Default::default()
        };
        let a = spec.generate(&idx, &mut StdRng::seed_from_u64(7));
        let b = spec.generate(&idx, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }
}
