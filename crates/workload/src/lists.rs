//! Synthetic posting-list generation.
//!
//! Two knobs matter for the paper's experiments: the **length
//! distribution** across lists (Fig. 10: bulk between 1 K and 1 M, tail to
//! 26 M) and the **gap distribution** within a list (heavy-tailed, the
//! regime where Elias–Fano out-compresses PforDelta — Table 1).

use rand::Rng;

/// Shape of the d-gap distribution within a generated list.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GapProfile {
    /// Every gap identical (degenerate; for calibration tests).
    Uniform,
    /// Heavy-tailed gaps: lognormal with σ = 2 — the p90 gap sits ~1.8×
    /// above the mean and the p99 ~14× above, forcing PforDelta into wide
    /// slots *and* full-width exceptions, while Elias–Fano pays only
    /// ~2 + log2(mean) bits. The default; models real crawl-ordered
    /// posting lists (and reproduces Table 1's EF > PforDelta ordering).
    HeavyTailed,
    /// Clustered bursts: runs of consecutive docIDs separated by long
    /// jumps (URL-ordered corpora).
    Clustered,
}

/// Generates a sorted, strictly increasing docID list of exactly `len`
/// elements whose gaps average `num_docs / len` under the given profile.
/// DocIDs stay below `num_docs` by rescaling when the walk overshoots.
pub fn gen_docid_list<R: Rng + ?Sized>(
    rng: &mut R,
    len: usize,
    num_docs: u32,
    profile: GapProfile,
) -> Vec<u32> {
    assert!(len > 0, "empty lists are not meaningful workloads");
    assert!(
        (len as u64) < u64::from(num_docs),
        "cannot fit {len} unique docIDs below {num_docs}"
    );
    let mean_gap = (u64::from(num_docs) / len as u64).max(1) as f64;
    let mut gaps = Vec::with_capacity(len);
    match profile {
        GapProfile::Uniform => {
            for _ in 0..len {
                gaps.push(mean_gap);
            }
        }
        GapProfile::HeavyTailed => {
            // Lognormal(μ, σ=2) with μ chosen so the mean is `mean_gap`:
            // E[g] = e^(μ + σ²/2) ⇒ μ = ln(mean_gap) − 2.
            let sigma = 2.0f64;
            let mu = mean_gap.max(1.0).ln() - sigma * sigma / 2.0;
            for _ in 0..len {
                let u1: f64 = rng.gen::<f64>().max(1e-12);
                let u2: f64 = rng.gen();
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                gaps.push(1.0 + (mu + sigma * z).exp());
            }
        }
        GapProfile::Clustered => {
            // Bursts of ~64 consecutive ids, then a jump sized to keep the
            // overall density on target.
            let burst = 64usize;
            let jump = mean_gap * burst as f64;
            let mut in_burst = 0usize;
            for _ in 0..len {
                if in_burst == burst {
                    in_burst = 0;
                    gaps.push(1.0 + rng.gen::<f64>() * 2.0 * jump);
                } else {
                    in_burst += 1;
                    gaps.push(1.0);
                }
            }
        }
    }
    // Rescale so the list spans ~the whole docID space without overflow.
    let total: f64 = gaps.iter().sum();
    let scale = (f64::from(num_docs) * 0.95) / total;
    let mut ids = Vec::with_capacity(len);
    let mut acc = 0f64;
    let mut prev: i64 = -1;
    for g in gaps {
        acc += (g * scale).max(1.0);
        let mut id = acc as i64;
        if id <= prev {
            id = prev + 1;
        }
        prev = id;
        ids.push(id as u32);
    }
    debug_assert!(ids.windows(2).all(|w| w[0] < w[1]));
    ids
}

/// Generates a *correlated* family of posting lists: the docID space is
/// divided into segments with a shared Zipf popularity, each list fills
/// dense runs inside the segments it samples, and runs within a segment
/// anchor near a shared per-segment hot spot.
///
/// This models crawl-ordered web corpora, where related documents are
/// adjacent and co-occurring terms share dense docID regions. The
/// correlation matters: it makes *intersection survivors bursty*, which is
/// what lets the CPU's skip search (one-block decode cache) collapse the
/// cost of high-ratio operations — the effect behind the paper's Fig. 8
/// crossover and Griffin's hybrid wins.
pub fn gen_correlated_lists<R: Rng + ?Sized>(
    rng: &mut R,
    lens: &[usize],
    num_docs: u32,
) -> Vec<Vec<u32>> {
    let segment: u32 = 8_192;
    let num_segments = (num_docs / segment).max(1);
    let zipf = crate::zipf::Zipf::new(u64::from(num_segments), 0.9);
    // Popularity rank -> segment id, shuffled so hot segments spread over
    // the docID space.
    let mut rank_to_segment: Vec<u32> = (0..num_segments).collect();
    for i in (1..rank_to_segment.len()).rev() {
        let j = rng.gen_range(0..=i);
        rank_to_segment.swap(i, j);
    }
    // Shared per-segment hot spot (where each segment's popular documents
    // live).
    let hot_offset: Vec<u32> = (0..num_segments)
        .map(|_| rng.gen_range(0..segment / 2))
        .collect();

    lens.iter()
        .map(|&len| {
            let mut ids: Vec<u32> = Vec::with_capacity(len + len / 4);
            while ids.len() < len {
                let rank = zipf.sample(rng) as usize - 1;
                let seg = rank_to_segment[rank];
                let base = seg * segment + hot_offset[seg as usize];
                // A dense run near the segment's hot spot, with per-list
                // jitter and stride. Jitter spans a few compression blocks:
                // lists share *regions* without sharing exact runs, so
                // intersections are bursty but far from contiguous.
                let run = rng.gen_range(32..=128).min(len - ids.len() + 32);
                let jitter = rng.gen_range(0..1_024);
                let stride = rng.gen_range(1..=8);
                let mut d = base.saturating_add(jitter);
                for _ in 0..run {
                    if d >= num_docs {
                        break;
                    }
                    ids.push(d);
                    d += stride;
                }
            }
            ids.sort_unstable();
            ids.dedup();
            ids
        })
        .collect()
}

/// Samples a list length matching the paper's Fig. 10 CDF: log10(size)
/// approximately normal around 10^4.6, clamped to [100, max_len].
pub fn sample_list_len<R: Rng + ?Sized>(rng: &mut R, max_len: usize) -> usize {
    // Box–Muller for a standard normal.
    let u1: f64 = rng.gen::<f64>().max(1e-12);
    let u2: f64 = rng.gen();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    let log10 = 4.6 + 1.0 * z;
    (10f64.powf(log10) as usize).clamp(100, max_len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lists_are_strictly_increasing_and_bounded() {
        let mut rng = StdRng::seed_from_u64(1);
        for profile in [
            GapProfile::Uniform,
            GapProfile::HeavyTailed,
            GapProfile::Clustered,
        ] {
            let ids = gen_docid_list(&mut rng, 10_000, 1_000_000, profile);
            assert_eq!(ids.len(), 10_000);
            assert!(ids.windows(2).all(|w| w[0] < w[1]), "{profile:?}");
            assert!(*ids.last().unwrap() < 1_100_000, "{profile:?}");
        }
    }

    #[test]
    fn density_tracks_request() {
        let mut rng = StdRng::seed_from_u64(2);
        let ids = gen_docid_list(&mut rng, 100_000, 10_000_000, GapProfile::HeavyTailed);
        let span = *ids.last().unwrap() as f64;
        // The list should span most of the docID space.
        assert!(span > 5_000_000.0, "span = {span}");
    }

    #[test]
    fn heavy_tailed_gaps_have_high_p90_over_mean_width() {
        let mut rng = StdRng::seed_from_u64(3);
        let ids = gen_docid_list(&mut rng, 50_000, 50_000_000, GapProfile::HeavyTailed);
        let mut gaps: Vec<u32> = ids.windows(2).map(|w| w[1] - w[0]).collect();
        gaps.sort_unstable();
        let mean = gaps.iter().map(|&g| g as f64).sum::<f64>() / gaps.len() as f64;
        let p90 = gaps[gaps.len() * 9 / 10] as f64;
        // The tail (p90 and above) must sit well above the mean — the
        // regime where PforDelta pays for exceptions.
        assert!(p90 > mean, "p90 {p90} vs mean {mean}");
        let p99 = gaps[gaps.len() * 99 / 100] as f64;
        assert!(p99 > 3.0 * mean, "p99 {p99} vs mean {mean}");
    }

    #[test]
    fn clustered_lists_have_many_unit_gaps() {
        let mut rng = StdRng::seed_from_u64(4);
        let ids = gen_docid_list(&mut rng, 10_000, 100_000_000, GapProfile::Clustered);
        let unit = ids.windows(2).filter(|w| w[1] - w[0] == 1).count();
        assert!(unit > 5_000, "unit gaps: {unit}");
    }

    #[test]
    fn list_len_distribution_matches_fig10_shape() {
        let mut rng = StdRng::seed_from_u64(5);
        let lens: Vec<usize> = (0..5_000)
            .map(|_| sample_list_len(&mut rng, 26_000_000))
            .collect();
        let frac = |lo: usize, hi: usize| {
            lens.iter().filter(|&&l| l >= lo && l < hi).count() as f64 / lens.len() as f64
        };
        // Bulk between 1K and 1M (paper Fig. 10).
        assert!(frac(1_000, 1_000_000) > 0.55, "{}", frac(1_000, 1_000_000));
        // A real tail above 1M but not dominating.
        let tail = frac(1_000_000, usize::MAX);
        assert!(tail > 0.02 && tail < 0.35, "tail = {tail}");
        assert!(lens.iter().all(|&l| l <= 26_000_000));
    }

    #[test]
    fn deterministic_generation() {
        let a = gen_docid_list(
            &mut StdRng::seed_from_u64(9),
            1000,
            100_000,
            GapProfile::HeavyTailed,
        );
        let b = gen_docid_list(
            &mut StdRng::seed_from_u64(9),
            1000,
            100_000,
            GapProfile::HeavyTailed,
        );
        assert_eq!(a, b);
    }
}
