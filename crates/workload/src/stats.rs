//! Latency statistics: percentiles and CDFs for the tail-latency study
//! (paper Fig. 15) and the distribution characterizations (Fig. 10).

use griffin_gpu_sim::VirtualNanos;

/// Percentile (0–100, inclusive) of a sample set by nearest-rank; the
/// input need not be sorted.
pub fn percentile(samples: &[VirtualNanos], p: f64) -> VirtualNanos {
    assert!(!samples.is_empty(), "percentile of empty sample set");
    assert!((0.0..=100.0).contains(&p));
    let mut sorted: Vec<VirtualNanos> = samples.to_vec();
    sorted.sort_unstable();
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Accumulates latencies and reports the paper's percentile set.
#[derive(Debug, Default, Clone)]
pub struct LatencyStats {
    samples: Vec<VirtualNanos>,
}

impl LatencyStats {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn record(&mut self, t: VirtualNanos) {
        self.samples.push(t);
    }

    pub fn len(&self) -> usize {
        self.samples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    pub fn mean(&self) -> VirtualNanos {
        if self.samples.is_empty() {
            return VirtualNanos::ZERO;
        }
        let total: u64 = self.samples.iter().map(|t| t.as_nanos()).sum();
        VirtualNanos::from_nanos(total / self.samples.len() as u64)
    }

    pub fn percentile(&self, p: f64) -> VirtualNanos {
        percentile(&self.samples, p)
    }

    /// The percentiles of paper Fig. 15: p80, p90, p95, p99, p99.9.
    pub fn tail_set(&self) -> [(f64, VirtualNanos); 5] {
        [80.0, 90.0, 95.0, 99.0, 99.9].map(|p| (p, self.percentile(p)))
    }

    /// Empirical CDF over the given thresholds: fraction of samples <= t.
    pub fn cdf(&self, thresholds: &[VirtualNanos]) -> Vec<f64> {
        let mut sorted: Vec<VirtualNanos> = self.samples.clone();
        sorted.sort_unstable();
        thresholds
            .iter()
            .map(|&t| sorted.partition_point(|&s| s <= t) as f64 / sorted.len().max(1) as f64)
            .collect()
    }
}

/// CDF over plain counts (used for the Fig. 10 list-size distribution).
pub fn size_cdf(sizes: &[usize], thresholds: &[usize]) -> Vec<f64> {
    let mut sorted = sizes.to_vec();
    sorted.sort_unstable();
    thresholds
        .iter()
        .map(|&t| sorted.partition_point(|&s| s <= t) as f64 / sorted.len().max(1) as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(v: u64) -> VirtualNanos {
        VirtualNanos::from_nanos(v)
    }

    #[test]
    fn percentile_nearest_rank() {
        let samples: Vec<VirtualNanos> = (1..=100).map(ns).collect();
        assert_eq!(percentile(&samples, 50.0), ns(50));
        assert_eq!(percentile(&samples, 95.0), ns(95));
        assert_eq!(percentile(&samples, 100.0), ns(100));
        assert_eq!(percentile(&samples, 99.9), ns(100));
        assert_eq!(percentile(&samples, 0.0), ns(1));
    }

    #[test]
    fn tail_set_is_monotone() {
        let mut stats = LatencyStats::new();
        for i in 0..10_000u64 {
            // Heavy tail: mostly fast, a few very slow.
            let v = if i % 100 == 0 {
                1_000_000 + i
            } else {
                1_000 + i % 500
            };
            stats.record(ns(v));
        }
        let tail = stats.tail_set();
        for w in tail.windows(2) {
            assert!(w[0].1 <= w[1].1, "percentiles must be monotone: {tail:?}");
        }
        assert!(tail[4].1 > tail[0].1 * 100, "tail must stretch");
    }

    #[test]
    fn mean_and_cdf() {
        let mut stats = LatencyStats::new();
        for v in [10u64, 20, 30, 40] {
            stats.record(ns(v));
        }
        assert_eq!(stats.mean(), ns(25));
        let cdf = stats.cdf(&[ns(10), ns(25), ns(40)]);
        assert_eq!(cdf, vec![0.25, 0.5, 1.0]);
    }

    #[test]
    fn size_cdf_shape() {
        let sizes = vec![100, 1_000, 10_000, 100_000, 1_000_000];
        let cdf = size_cdf(&sizes, &[999, 10_000, 2_000_000]);
        assert_eq!(cdf, vec![0.2, 0.6, 1.0]);
    }
}
