//! Synthetic corpora.
//!
//! Two levels: a small *text* corpus generator (Zipfian vocabulary,
//! lognormal-ish document lengths) that exercises the full tokenize →
//! build → compress path for the examples, and a *list-level* index
//! generator that synthesizes posting lists directly at the Fig. 10 scale
//! without materializing documents.

use griffin_codec::Codec;
use griffin_index::{IndexBuilder, InvertedIndex};
use rand::Rng;

use crate::lists::sample_list_len;
use crate::zipf::Zipf;

/// Parameters for a small document corpus.
#[derive(Debug, Clone)]
pub struct CorpusSpec {
    pub num_docs: usize,
    pub vocab_size: usize,
    pub avg_doc_len: usize,
    pub codec: Codec,
}

impl Default for CorpusSpec {
    fn default() -> Self {
        CorpusSpec {
            num_docs: 2_000,
            vocab_size: 5_000,
            avg_doc_len: 120,
            codec: Codec::EliasFano,
        }
    }
}

/// Builds a text-derived index: documents of Zipf-drawn words
/// ("w0", "w1", ...), doc lengths varying ±50% around the average.
pub fn build_text_index<R: Rng + ?Sized>(spec: &CorpusSpec, rng: &mut R) -> InvertedIndex {
    let zipf = Zipf::new(spec.vocab_size as u64, 1.0);
    let mut builder = IndexBuilder::new(spec.codec);
    let mut tokens: Vec<String> = Vec::new();
    for _ in 0..spec.num_docs {
        let len = rng.gen_range(spec.avg_doc_len / 2..=spec.avg_doc_len * 3 / 2);
        tokens.clear();
        for _ in 0..len {
            tokens.push(format!("w{}", zipf.sample(rng) - 1));
        }
        let refs: Vec<&str> = tokens.iter().map(String::as_str).collect();
        builder.add_document(&refs);
    }
    builder.build()
}

/// Parameters for a list-level synthetic index (the experiment scale).
#[derive(Debug, Clone)]
pub struct ListIndexSpec {
    /// Terms (posting lists) to generate.
    pub num_terms: usize,
    /// Document universe size.
    pub num_docs: u32,
    /// Longest generated list (paper max: 26 M; experiments scale down).
    pub max_list_len: usize,
    pub codec: Codec,
    pub block_len: usize,
}

impl Default for ListIndexSpec {
    fn default() -> Self {
        ListIndexSpec {
            num_terms: 64,
            num_docs: 4_000_000,
            max_list_len: 2_000_000,
            codec: Codec::EliasFano,
            block_len: 128,
        }
    }
}

/// Generates posting lists with Fig. 10-shaped lengths, *correlated*
/// cross-list structure (shared dense docID regions, as crawl-ordered web
/// corpora have), returning both the compressed index and the raw lists
/// (benches reuse the raw docids as ground truth).
pub fn build_list_index<R: Rng + ?Sized>(
    spec: &ListIndexSpec,
    rng: &mut R,
) -> (InvertedIndex, Vec<Vec<u32>>) {
    let lens: Vec<usize> = (0..spec.num_terms)
        .map(|_| {
            sample_list_len(rng, spec.max_list_len)
                .min(spec.num_docs as usize / 2)
                .max(100)
        })
        .collect();
    let lists = crate::lists::gen_correlated_lists(rng, &lens, spec.num_docs);
    let index = InvertedIndex::from_docid_lists(&lists, spec.num_docs, spec.codec, spec.block_len);
    (index, lists)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn text_index_is_searchable() {
        let spec = CorpusSpec {
            num_docs: 200,
            vocab_size: 300,
            avg_doc_len: 50,
            codec: Codec::EliasFano,
        };
        let mut rng = StdRng::seed_from_u64(1);
        let idx = build_text_index(&spec, &mut rng);
        assert_eq!(idx.num_docs(), 200);
        // The most common word must exist and have a long list.
        let w0 = idx.lookup("w0").expect("rank-1 word present");
        assert!(idx.doc_freq(w0) > 50, "df(w0) = {}", idx.doc_freq(w0));
        // Fetch-and-decode works.
        let (ids, tfs) = idx.list(w0).decompress();
        assert_eq!(ids.len(), tfs.len());
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn list_index_has_fig10_spread() {
        let spec = ListIndexSpec {
            num_terms: 40,
            num_docs: 2_000_000,
            max_list_len: 500_000,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(2);
        let (idx, lists) = build_list_index(&spec, &mut rng);
        assert_eq!(idx.num_terms(), 40);
        let min = lists.iter().map(Vec::len).min().unwrap();
        let max = lists.iter().map(Vec::len).max().unwrap();
        assert!(max > min * 10, "need spread: {min}..{max}");
        // Index agrees with raw lists.
        for (i, raw) in lists.iter().enumerate().take(3) {
            let t = idx.lookup(&format!("t{i}")).unwrap();
            let (ids, _) = idx.list(t).decompress();
            assert_eq!(&ids, raw);
        }
    }
}
