//! Synthetic corpora.
//!
//! Two levels: a small *text* corpus generator (Zipfian vocabulary,
//! lognormal-ish document lengths) that exercises the full tokenize →
//! build → compress path for the examples, and a *list-level* index
//! generator that synthesizes posting lists directly at the Fig. 10 scale
//! without materializing documents.

use griffin_codec::{Codec, DEFAULT_BLOCK_LEN};
use griffin_index::{IndexBuilder, InvertedIndex};
use rand::Rng;

use crate::lists::sample_list_len;
use crate::zipf::Zipf;

/// Parameters for a small document corpus.
#[derive(Debug, Clone)]
pub struct CorpusSpec {
    pub num_docs: usize,
    pub vocab_size: usize,
    pub avg_doc_len: usize,
    pub codec: Codec,
    /// Word burstiness (Church & Gale): the probability that a token
    /// repeats a word already used in the same document instead of
    /// drawing fresh from the vocabulary. Real text is bursty — a word
    /// that appears once in a document tends to recur — which is what
    /// gives term frequencies their heavy within-document tail (and
    /// block-max scores something to discriminate on). 0 disables.
    pub burstiness: f64,
    /// Heavy-tailed document lengths (Pareto-ish, exponent `1/skew`)
    /// with docIDs assigned in *length order* — a stand-in for the
    /// URL-order docID assignment real indexes use, which clusters
    /// similar documents. Length clustering is what gives per-block
    /// score upper bounds their spread: BM25's length normalization
    /// pushes whole blocks of long documents below the top-k floor.
    /// 0 disables (uniform ±50% lengths, arrival-order docIDs).
    pub length_skew: f64,
    /// Posting-list block length. Block-max pruning trades index size
    /// for bound tightness: smaller blocks mean finer per-block upper
    /// bounds (the BMW literature favours 32-64 over the decode-friendly
    /// 128). Defaults to the codec's [`DEFAULT_BLOCK_LEN`].
    pub block_len: usize,
}

impl Default for CorpusSpec {
    fn default() -> Self {
        CorpusSpec {
            num_docs: 2_000,
            vocab_size: 5_000,
            avg_doc_len: 120,
            codec: Codec::EliasFano,
            burstiness: 0.0,
            length_skew: 0.0,
            block_len: DEFAULT_BLOCK_LEN,
        }
    }
}

/// Builds a text-derived index: documents of Zipf-drawn words
/// ("w0", "w1", ...), doc lengths varying ±50% around the average.
/// With [`CorpusSpec::burstiness`] set, repeats are drawn uniformly
/// from the document's earlier tokens — a rich-get-richer process, so
/// within-document term frequencies come out power-law-ish like real
/// text rather than thin like independent draws.
pub fn build_text_index<R: Rng + ?Sized>(spec: &CorpusSpec, rng: &mut R) -> InvertedIndex {
    let zipf = Zipf::new(spec.vocab_size as u64, 1.0);
    let mut builder = IndexBuilder::new(spec.codec).with_block_len(spec.block_len);
    let mut docs: Vec<Vec<String>> = Vec::with_capacity(spec.num_docs);
    for _ in 0..spec.num_docs {
        let len = if spec.length_skew > 0.0 {
            // Pareto-ish tail: most documents short, a long tail of
            // template-heavy giants, capped at 8x the average.
            let u: f64 = rng.gen::<f64>().max(1e-9);
            let heavy = spec.avg_doc_len as f64 * u.powf(-spec.length_skew) / 2.0;
            (heavy as usize).clamp(spec.avg_doc_len / 4, spec.avg_doc_len * 8)
        } else {
            rng.gen_range(spec.avg_doc_len / 2..=spec.avg_doc_len * 3 / 2)
        };
        let mut tokens: Vec<String> = Vec::with_capacity(len);
        for _ in 0..len {
            if !tokens.is_empty() && rng.gen::<f64>() < spec.burstiness {
                let echo = rng.gen_range(0..tokens.len());
                tokens.push(tokens[echo].clone());
            } else {
                tokens.push(format!("w{}", zipf.sample(rng) - 1));
            }
        }
        docs.push(tokens);
    }
    if spec.length_skew > 0.0 {
        // URL-order stand-in: cluster similar (here: similar-length)
        // documents so per-block bounds stay tight.
        docs.sort_by_key(Vec::len);
    }
    for tokens in &docs {
        let refs: Vec<&str> = tokens.iter().map(String::as_str).collect();
        builder.add_document(&refs);
    }
    builder.build()
}

/// Parameters for a list-level synthetic index (the experiment scale).
#[derive(Debug, Clone)]
pub struct ListIndexSpec {
    /// Terms (posting lists) to generate.
    pub num_terms: usize,
    /// Document universe size.
    pub num_docs: u32,
    /// Longest generated list (paper max: 26 M; experiments scale down).
    pub max_list_len: usize,
    pub codec: Codec,
    pub block_len: usize,
}

impl Default for ListIndexSpec {
    fn default() -> Self {
        ListIndexSpec {
            num_terms: 64,
            num_docs: 4_000_000,
            max_list_len: 2_000_000,
            codec: Codec::EliasFano,
            block_len: 128,
        }
    }
}

/// Generates posting lists with Fig. 10-shaped lengths, *correlated*
/// cross-list structure (shared dense docID regions, as crawl-ordered web
/// corpora have), returning both the compressed index and the raw lists
/// (benches reuse the raw docids as ground truth).
pub fn build_list_index<R: Rng + ?Sized>(
    spec: &ListIndexSpec,
    rng: &mut R,
) -> (InvertedIndex, Vec<Vec<u32>>) {
    let lens: Vec<usize> = (0..spec.num_terms)
        .map(|_| {
            sample_list_len(rng, spec.max_list_len)
                .min(spec.num_docs as usize / 2)
                .max(100)
        })
        .collect();
    let lists = crate::lists::gen_correlated_lists(rng, &lens, spec.num_docs);
    let index = InvertedIndex::from_docid_lists(&lists, spec.num_docs, spec.codec, spec.block_len);
    (index, lists)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn text_index_is_searchable() {
        let spec = CorpusSpec {
            num_docs: 200,
            vocab_size: 300,
            avg_doc_len: 50,
            codec: Codec::EliasFano,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(1);
        let idx = build_text_index(&spec, &mut rng);
        assert_eq!(idx.num_docs(), 200);
        // The most common word must exist and have a long list.
        let w0 = idx.lookup("w0").expect("rank-1 word present");
        assert!(idx.doc_freq(w0) > 50, "df(w0) = {}", idx.doc_freq(w0));
        // Fetch-and-decode works.
        let (ids, tfs) = idx.list(w0).decompress();
        assert_eq!(ids.len(), tfs.len());
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn list_index_has_fig10_spread() {
        let spec = ListIndexSpec {
            num_terms: 40,
            num_docs: 2_000_000,
            max_list_len: 500_000,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(2);
        let (idx, lists) = build_list_index(&spec, &mut rng);
        assert_eq!(idx.num_terms(), 40);
        let min = lists.iter().map(Vec::len).min().unwrap();
        let max = lists.iter().map(Vec::len).max().unwrap();
        assert!(max > min * 10, "need spread: {min}..{max}");
        // Index agrees with raw lists.
        for (i, raw) in lists.iter().enumerate().take(3) {
            let t = idx.lookup(&format!("t{i}")).unwrap();
            let (ids, _) = idx.list(t).decompress();
            assert_eq!(&ids, raw);
        }
    }
}
