//! Zipf-distributed sampling — term frequencies, document frequencies,
//! and vocabulary draws are all Zipfian in web corpora.
//!
//! Two regimes: an **exact** inverse-CDF sampler (precomputed cumulative
//! weights, binary search) for vocabularies up to [`EXACT_LIMIT`], and a
//! **continuous inversion** approximation for larger universes, which
//! inverts the integral of `x^-s` — O(1) memory, and accurate to within
//! the half-integer rounding for the heavy head that matters.

use rand::Rng;

/// Above this `n`, the sampler switches to continuous inversion.
pub const EXACT_LIMIT: u64 = 1 << 20;

/// A Zipf(n, s) sampler over `{1, ..., n}` with exponent `s > 0`;
/// rank 1 is the most probable.
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    s: f64,
    /// Exact mode: cumulative probabilities (length n).
    cdf: Vec<f64>,
    /// Approximate mode: integral bounds.
    h_lo: f64,
    h_hi: f64,
}

impl Zipf {
    pub fn new(n: u64, s: f64) -> Zipf {
        assert!(n >= 1, "Zipf needs at least one element");
        assert!(s > 0.0 && s.is_finite(), "exponent must be positive");
        if n <= EXACT_LIMIT {
            let mut cdf = Vec::with_capacity(n as usize);
            let mut acc = 0.0f64;
            for k in 1..=n {
                acc += (k as f64).powf(-s);
                cdf.push(acc);
            }
            let total = acc;
            for c in &mut cdf {
                *c /= total;
            }
            Zipf {
                n,
                s,
                cdf,
                h_lo: 0.0,
                h_hi: 0.0,
            }
        } else {
            let h = |x: f64| -> f64 {
                if (s - 1.0).abs() < 1e-9 {
                    x.ln()
                } else {
                    (x.powf(1.0 - s) - 1.0) / (1.0 - s)
                }
            };
            Zipf {
                n,
                s,
                cdf: Vec::new(),
                h_lo: h(0.5),
                h_hi: h(n as f64 + 0.5),
            }
        }
    }

    fn h_inv(&self, y: f64) -> f64 {
        if (self.s - 1.0).abs() < 1e-9 {
            y.exp()
        } else {
            (1.0 + y * (1.0 - self.s)).powf(1.0 / (1.0 - self.s))
        }
    }

    /// Draws one rank in `{1, ..., n}`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if !self.cdf.is_empty() {
            let u: f64 = rng.gen();
            let idx = self.cdf.partition_point(|&c| c < u);
            return (idx as u64 + 1).min(self.n);
        }
        let u: f64 = rng.gen();
        let y = self.h_lo + u * (self.h_hi - self.h_lo);
        let x = self.h_inv(y);
        (x + 0.5).floor().clamp(1.0, self.n as f64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn histogram(n: u64, s: f64, draws: usize) -> Vec<usize> {
        let z = Zipf::new(n, s);
        let mut rng = StdRng::seed_from_u64(42);
        let mut hist = vec![0usize; n as usize + 1];
        for _ in 0..draws {
            let k = z.sample(&mut rng);
            assert!((1..=n).contains(&k));
            hist[k as usize] += 1;
        }
        hist
    }

    #[test]
    fn rank_one_dominates() {
        let hist = histogram(1000, 1.0, 50_000);
        assert!(hist[1] > hist[2]);
        assert!(hist[2] > hist[10]);
        assert!(hist[1] > hist[100] * 10);
    }

    #[test]
    fn exact_mode_frequency_ratio_matches_power_law() {
        let hist = histogram(10_000, 1.0, 400_000);
        // P(1)/P(10) == 10 for s = 1; allow sampling noise.
        let ratio = hist[1] as f64 / hist[10].max(1) as f64;
        assert!((7.0..14.0).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn approximate_mode_supports_huge_n() {
        let z = Zipf::new(10_000_000_000, 1.2);
        let mut rng = StdRng::seed_from_u64(7);
        let mut small = 0;
        for _ in 0..1000 {
            let k = z.sample(&mut rng);
            assert!((1..=10_000_000_000).contains(&k));
            if k <= 100 {
                small += 1;
            }
        }
        // The head must carry substantial mass.
        assert!(small > 300, "head draws: {small}");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let z = Zipf::new(500, 1.1);
        let draw = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..20).map(|_| z.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(3), draw(3));
        assert_ne!(draw(3), draw(4));
    }

    #[test]
    fn steeper_exponent_concentrates_mass() {
        let flat = histogram(1000, 0.8, 50_000);
        let steep = histogram(1000, 2.0, 50_000);
        assert!(steep[1] > flat[1]);
    }
}
