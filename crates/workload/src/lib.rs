//! # griffin-workload — synthetic ClueWeb12/TREC substitute
//!
//! The paper evaluates on the ClueWeb12 web crawl (41 M documents) with
//! TREC 2005/2006 efficiency-track query logs — both unavailable here
//! (license-gated, 300 GB). What the evaluation actually depends on is
//! captured by the paper's own characterization figures:
//!
//! * **Fig. 10** — the inverted-list size distribution (bulk between 1 K
//!   and 1 M elements, max 26 M);
//! * **Fig. 11** — the query term-count histogram (27 % two-term, 33 %
//!   three-term, 24 % four-term, the rest 5/6/>6);
//! * heavy-tailed d-gap distributions within lists (what makes
//!   compression-scheme comparisons meaningful).
//!
//! This crate generates workloads matching those published distributions,
//! deterministically from a seed: posting lists ([`lists`]), ratio-
//! controlled list pairs for the crossover studies ([`ratio`]), query logs
//! ([`queries`]), corpus/index generators for examples and experiments
//! ([`corpus`]), and latency statistics ([`stats`]). [`zipf`] provides the
//! Zipf sampler everything leans on.

pub mod corpus;
pub mod lists;
pub mod queries;
pub mod ratio;
pub mod stats;
pub mod zipf;

pub use corpus::{build_list_index, build_text_index, CorpusSpec, ListIndexSpec};
pub use lists::{gen_correlated_lists, gen_docid_list, sample_list_len, GapProfile};
pub use queries::{MixedQuerySpec, QueryLogSpec, QueryShape};
pub use ratio::{gen_ratio_pair, gen_ratio_pair_opts, PairShape, RatioGroup, RATIO_GROUPS};
pub use stats::{percentile, size_cdf, LatencyStats};
pub use zipf::Zipf;
