//! Property-based tests of the workload generators: structural invariants
//! must hold for any parameters, or downstream experiments silently break.

use griffin_workload::{
    gen_correlated_lists, gen_docid_list, gen_ratio_pair_opts, GapProfile, PairShape, QueryLogSpec,
    RatioGroup,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn docid_lists_always_valid(seed in any::<u64>(),
                                len in 10usize..5_000,
                                density in 3u32..1_000,
                                profile_idx in 0usize..3) {
        let profile = [GapProfile::Uniform, GapProfile::HeavyTailed, GapProfile::Clustered]
            [profile_idx];
        let num_docs = (len as u64 * u64::from(density)).min(u32::MAX as u64 - 1) as u32;
        let mut rng = StdRng::seed_from_u64(seed);
        let ids = gen_docid_list(&mut rng, len, num_docs.max(len as u32 * 2), profile);
        prop_assert_eq!(ids.len(), len);
        prop_assert!(ids.windows(2).all(|w| w[0] < w[1]), "strictly increasing");
    }

    #[test]
    fn ratio_pairs_always_valid(seed in any::<u64>(),
                                long_len in 1_000usize..50_000,
                                group_idx in 0usize..7,
                                overlap in 0.0f64..1.0,
                                independent in any::<bool>()) {
        let group = griffin_workload::RATIO_GROUPS[group_idx];
        let shape = if independent { PairShape::independent() } else { PairShape::intermediate() };
        let mut rng = StdRng::seed_from_u64(seed);
        let (short, long) = gen_ratio_pair_opts(
            &mut rng, group, long_len, overlap, 50_000_000, shape);
        prop_assert!(short.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(long.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(!short.is_empty());
        // Ratio lands in (or near) the requested band; dedup can shrink
        // the short list slightly, so allow slack upward.
        let ratio = long.len() as f64 / short.len() as f64;
        prop_assert!(ratio >= group.lo as f64 * 0.5, "{} in {}", ratio, group.label());
    }

    #[test]
    fn correlated_lists_share_regions(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let lists = gen_correlated_lists(&mut rng, &[20_000, 20_000], 2_000_000);
        for l in &lists {
            prop_assert!(l.windows(2).all(|w| w[0] < w[1]));
        }
        // Correlation: the two lists must intersect far more than
        // independent uniform lists would (expected ~200 for 20K/2M).
        let hits = lists[0]
            .iter()
            .filter(|v| lists[1].binary_search(v).is_ok())
            .count();
        prop_assert!(hits > 500, "only {hits} shared docids");
    }

    #[test]
    fn query_log_respects_spec(seed in any::<u64>(), n_queries in 1usize..100) {
        let lists: Vec<Vec<u32>> = (0..20)
            .map(|t| (0..(100 + t * 37) as u32).map(|i| i * 5 + 1).collect())
            .collect();
        let idx = griffin_index::InvertedIndex::from_docid_lists(
            &lists, 100_000, griffin_codec::Codec::EliasFano, 128);
        let spec = QueryLogSpec { num_queries: n_queries, ..Default::default() };
        let mut rng = StdRng::seed_from_u64(seed);
        let queries = spec.generate(&idx, &mut rng);
        prop_assert_eq!(queries.len(), n_queries);
        for q in &queries {
            prop_assert!(q.len() >= 2 && q.len() <= 7);
            let mut dedup = q.clone();
            dedup.sort();
            dedup.dedup();
            prop_assert_eq!(dedup.len(), q.len());
        }
    }
}

#[test]
fn ratio_group_representatives_are_inside() {
    for g in griffin_workload::RATIO_GROUPS {
        let r = g.representative();
        assert!(r >= g.lo && r < g.hi, "{} not in {}", r, g.label());
    }
    let g = RatioGroup { lo: 128, hi: 256 };
    assert_eq!(g.representative(), 181);
}
