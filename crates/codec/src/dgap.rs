//! Delta (d-gap) transforms for sorted docID sequences (paper §2.1.1).
//!
//! A block's docIDs are stored relative to a `base` — the docID immediately
//! preceding the block (for the first block of a list, 0 with the
//! convention that docIDs start at 1; the index builder guarantees this).

/// Converts strictly increasing `docids` (all greater than `base`) into
/// d-gaps: `gaps[0] = docids[0] - base`, `gaps[i] = docids[i] - docids[i-1]`.
pub fn to_gaps(docids: &[u32], base: u32, out: &mut Vec<u32>) {
    out.clear();
    out.reserve(docids.len());
    let mut prev = base;
    for (i, &d) in docids.iter().enumerate() {
        // Strictly increasing within the list; the first element may equal
        // the base (docID 0 at the head of a list whose base is 0).
        debug_assert!(
            if i == 0 { d >= prev } else { d > prev },
            "docids must be strictly increasing above base ({d} vs {prev})"
        );
        out.push(d - prev);
        prev = d;
    }
}

/// Inverse of [`to_gaps`].
pub fn from_gaps(gaps: &[u32], base: u32, out: &mut Vec<u32>) {
    out.clear();
    out.reserve(gaps.len());
    let mut acc = base;
    for &g in gaps {
        acc += g;
        out.push(acc);
    }
}

/// In-place prefix-sum reconstruction used by decoders that already have
/// the gaps in the output buffer. Addition wraps so corrupt gap streams
/// cannot panic on overflow; valid lists never exceed u32 docIDs, so the
/// result is unchanged for well-formed input.
pub fn prefix_sum_in_place(buf: &mut [u32], base: u32) {
    let mut acc = base;
    for v in buf {
        acc = acc.wrapping_add(*v);
        *v = acc;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gap_roundtrip() {
        let ids = vec![100, 121, 163, 172, 185, 214, 282, 300, 347];
        let mut gaps = Vec::new();
        to_gaps(&ids, 0, &mut gaps);
        // Paper Fig. 3's example d-gaps (first value kept absolute).
        assert_eq!(gaps, vec![100, 21, 42, 9, 13, 29, 68, 18, 47]);
        let mut back = Vec::new();
        from_gaps(&gaps, 0, &mut back);
        assert_eq!(back, ids);
    }

    #[test]
    fn nonzero_base() {
        let ids = vec![11, 15, 17];
        let mut gaps = Vec::new();
        to_gaps(&ids, 10, &mut gaps);
        assert_eq!(gaps, vec![1, 4, 2]);
        let mut back = Vec::new();
        from_gaps(&gaps, 10, &mut back);
        assert_eq!(back, ids);
    }

    #[test]
    fn prefix_sum_matches_from_gaps() {
        let mut gaps = vec![3, 1, 1, 10];
        prefix_sum_in_place(&mut gaps, 5);
        assert_eq!(gaps, vec![8, 9, 10, 20]);
    }

    #[test]
    fn empty_is_fine() {
        let mut out = Vec::new();
        to_gaps(&[], 7, &mut out);
        assert!(out.is_empty());
        from_gaps(&[], 7, &mut out);
        assert!(out.is_empty());
    }
}
