//! Compression-ratio accounting (paper Table 1).
//!
//! The paper reports the *compression ratio* — uncompressed size (32-bit
//! docIDs) divided by compressed size — averaged over all inverted lists:
//! 3.3 for PforDelta and 4.6 for Elias–Fano on their ClueWeb12-derived
//! index.

use crate::blocks::{BlockedList, Codec};

/// Accumulates sizes across many lists and reports aggregate ratios.
#[derive(Debug, Default, Clone)]
pub struct CompressionStats {
    pub lists: usize,
    pub elements: u64,
    pub raw_bits: u64,
    pub compressed_bits: u64,
    /// Sum of per-list ratios, for the per-list average the paper uses.
    ratio_sum: f64,
}

impl CompressionStats {
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one compressed list to the tally.
    pub fn add(&mut self, list: &BlockedList) {
        let raw = list.raw_bits() as u64;
        let compressed = list.size_bits() as u64;
        self.lists += 1;
        self.elements += list.len() as u64;
        self.raw_bits += raw;
        self.compressed_bits += compressed;
        if compressed > 0 {
            self.ratio_sum += raw as f64 / compressed as f64;
        }
    }

    /// Aggregate ratio: total raw bits over total compressed bits.
    pub fn overall_ratio(&self) -> f64 {
        if self.compressed_bits == 0 {
            return 0.0;
        }
        self.raw_bits as f64 / self.compressed_bits as f64
    }

    /// Mean of per-list ratios (the paper's "average compression ratio").
    pub fn mean_list_ratio(&self) -> f64 {
        if self.lists == 0 {
            return 0.0;
        }
        self.ratio_sum / self.lists as f64
    }

    /// Average compressed bits per integer.
    pub fn bits_per_int(&self) -> f64 {
        if self.elements == 0 {
            return 0.0;
        }
        self.compressed_bits as f64 / self.elements as f64
    }
}

/// Convenience: compress `docids` with `codec` and report (ratio,
/// bits/int) for a single list.
pub fn measure_one(docids: &[u32], codec: Codec, block_len: usize) -> (f64, f64) {
    let list = BlockedList::compress(docids, codec, block_len);
    let ratio = list.raw_bits() as f64 / list.size_bits() as f64;
    let bpi = list.size_bits() as f64 / list.len().max(1) as f64;
    (ratio, bpi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocks::DEFAULT_BLOCK_LEN;

    fn dense_list(n: u32, stride: u32) -> Vec<u32> {
        (0..n).map(|i| i * stride + 1).collect()
    }

    #[test]
    fn accumulates_multiple_lists() {
        let mut stats = CompressionStats::new();
        for n in [1000u32, 2000, 4000] {
            let ids = dense_list(n, 5);
            stats.add(&BlockedList::compress(
                &ids,
                Codec::EliasFano,
                DEFAULT_BLOCK_LEN,
            ));
        }
        assert_eq!(stats.lists, 3);
        assert_eq!(stats.elements, 7000);
        assert!(stats.overall_ratio() > 1.0);
        assert!(stats.mean_list_ratio() > 1.0);
        assert!(stats.bits_per_int() < 32.0);
    }

    #[test]
    fn ef_beats_pfordelta_on_heavy_tailed_gap_distributions() {
        // Real posting-list gaps are heavy-tailed (power-law-ish): the top
        // ~10% of gaps are large enough that PforDelta must either widen its
        // slots or pay 32 raw bits per exception, while Elias–Fano pays only
        // ~2 + log2(mean gap) bits per element. This is the Table 1 effect
        // in miniature.
        let mut ids = Vec::new();
        let mut cur = 0u32;
        let mut state = 12345u64;
        for _ in 0..10_000u32 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let u = (state >> 40) as f64 / (1u64 << 24) as f64; // uniform [0,1)
            let jump = 1 + (u.powi(4) * 4000.0) as u32; // quartic -> heavy tail
            cur += jump;
            ids.push(cur);
        }
        let (pf, _) = measure_one(&ids, Codec::PforDelta, DEFAULT_BLOCK_LEN);
        let (ef, _) = measure_one(&ids, Codec::EliasFano, DEFAULT_BLOCK_LEN);
        assert!(
            ef > pf,
            "EF ratio ({ef:.2}) should exceed PforDelta ratio ({pf:.2})"
        );
    }

    #[test]
    fn empty_stats_are_zero() {
        let stats = CompressionStats::new();
        assert_eq!(stats.overall_ratio(), 0.0);
        assert_eq!(stats.mean_list_ratio(), 0.0);
        assert_eq!(stats.bits_per_int(), 0.0);
    }
}
