//! Blocked compressed lists with skip pointers (paper Fig. 2).
//!
//! A [`BlockedList`] stores a sorted docID sequence as independently
//! compressed fixed-size blocks plus one [`SkipEntry`] per block holding the
//! block's first/last docID and its offset into the word stream. Skip
//! entries support binary search to locate the block that may contain a
//! docID without decompressing anything else — the operation the paper's
//! ratio-128 analysis (§3.2) is built on.

use crate::dgap;
use crate::ef::{EfBlock, EfBlockRef};
use crate::error::CodecError;
use crate::pfordelta::{PforBlock, PforBlockRef};
use crate::varint;

/// The block size used throughout the paper (and tied to its choice of 128
/// as the GPU/CPU crossover ratio).
pub const DEFAULT_BLOCK_LEN: usize = 128;

/// Which compression scheme a list uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Codec {
    /// PforDelta over d-gaps (paper Fig. 3) — the CPU scheme.
    PforDelta,
    /// Partitioned Elias–Fano over base-relative values (paper Fig. 4) —
    /// the Griffin-GPU scheme.
    EliasFano,
    /// Byte-aligned VByte over d-gaps — baseline.
    Varint,
}

impl Codec {
    /// Compresses one block of docIDs (strictly increasing, all > `base`
    /// except that base 0 with docids starting at 0 is also accepted for
    /// the first block) into `out`.
    pub fn encode_block(&self, docids: &[u32], base: u32, out: &mut Vec<u32>) {
        match self {
            Codec::PforDelta => {
                let mut gaps = Vec::new();
                dgap::to_gaps(docids, base, &mut gaps);
                PforBlock::encode(&gaps).to_words(out);
            }
            Codec::EliasFano => {
                let rel: Vec<u32> = docids.iter().map(|&d| d - base).collect();
                EfBlock::encode(&rel).to_words(out);
            }
            Codec::Varint => {
                let mut gaps = Vec::new();
                dgap::to_gaps(docids, base, &mut gaps);
                let mut bytes = Vec::new();
                varint::encode_slice(&gaps, &mut bytes);
                out.push(docids.len() as u32);
                out.push(bytes.len() as u32);
                // Pack bytes into words, little-endian.
                for chunk in bytes.chunks(4) {
                    let mut w = 0u32;
                    for (i, &b) in chunk.iter().enumerate() {
                        w |= u32::from(b) << (8 * i);
                    }
                    out.push(w);
                }
            }
        }
    }

    /// Decompresses one block (produced by [`Codec::encode_block`] with the
    /// same `base`), appending absolute docIDs to `out`.
    ///
    /// Corrupt or truncated `words` yield an [`Err`] and leave `out` exactly
    /// as it was; this path never panics on bad input.
    pub fn decode_block(
        &self,
        words: &[u32],
        base: u32,
        out: &mut Vec<u32>,
    ) -> Result<(), CodecError> {
        match self {
            Codec::PforDelta => {
                let blk = PforBlockRef::parse(words)?;
                let start = out.len();
                blk.decode_into(out)?;
                dgap::prefix_sum_in_place(&mut out[start..], base);
            }
            Codec::EliasFano => {
                let blk = EfBlockRef::parse(words)?;
                blk.decode_into(base, out)?;
            }
            Codec::Varint => {
                if words.len() < 2 {
                    return Err(CodecError::Truncated);
                }
                let count = words[0] as usize;
                let nbytes = words[1] as usize;
                // Each value takes at least one byte, and the bytes must fit
                // in the words that follow the two header words — bounds a
                // corrupt header before any allocation happens.
                if nbytes > (words.len() - 2) * 4 || count > nbytes {
                    return Err(CodecError::Truncated);
                }
                let start = out.len();
                varint::decode_words_n(&words[2..], nbytes, count, out)?;
                dgap::prefix_sum_in_place(&mut out[start..], base);
            }
        }
        Ok(())
    }
}

/// Skip pointer for one block: "the offset and the first value of each
/// inverted list block" (paper Fig. 2), plus the last value and element
/// offset, which the intersection algorithms need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SkipEntry {
    /// First docID stored in the block.
    pub first_docid: u32,
    /// Last docID stored in the block (inclusive).
    pub last_docid: u32,
    /// Offset of the block's words within [`BlockedList::words`].
    pub word_start: u32,
    /// Number of words the block occupies.
    pub word_len: u32,
    /// Index of the block's first element within the whole list.
    pub elem_start: u32,
    /// Elements in the block (== block_len except possibly the last).
    pub count: u32,
}

/// A compressed, blocked, skip-indexed docID list.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockedList {
    pub codec: Codec,
    pub block_len: usize,
    /// Concatenated compressed blocks.
    pub words: Vec<u32>,
    /// One entry per block, ordered by docID.
    pub skips: Vec<SkipEntry>,
    /// Total number of docIDs.
    len: usize,
}

impl BlockedList {
    /// Compresses `docids` (strictly increasing) into `block_len`-element
    /// blocks.
    pub fn compress(docids: &[u32], codec: Codec, block_len: usize) -> BlockedList {
        assert!(block_len > 0, "block_len must be positive");
        debug_assert!(
            docids.windows(2).all(|w| w[0] < w[1]),
            "docids must be strictly increasing"
        );
        let mut words = Vec::new();
        let mut skips = Vec::with_capacity(docids.len().div_ceil(block_len));
        let mut base = 0u32;
        let mut elem_start = 0u32;
        for chunk in docids.chunks(block_len) {
            let word_start = words.len() as u32;
            codec.encode_block(chunk, base, &mut words);
            skips.push(SkipEntry {
                first_docid: chunk[0],
                last_docid: *chunk.last().expect("chunks are non-empty"),
                word_start,
                word_len: words.len() as u32 - word_start,
                elem_start,
                count: chunk.len() as u32,
            });
            base = *chunk.last().expect("chunks are non-empty");
            elem_start += chunk.len() as u32;
        }
        BlockedList {
            codec,
            block_len,
            words,
            skips,
            len: docids.len(),
        }
    }

    /// Number of docIDs in the list.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn num_blocks(&self) -> usize {
        self.skips.len()
    }

    /// Base docID for decoding block `i` (the docID preceding the block).
    pub fn block_base(&self, i: usize) -> u32 {
        if i == 0 {
            0
        } else {
            self.skips[i - 1].last_docid
        }
    }

    /// Decompresses block `i`, appending its docIDs to `out`. Fails when
    /// the stored words are corrupt or a skip entry points outside them.
    pub fn decode_block_into(&self, i: usize, out: &mut Vec<u32>) -> Result<(), CodecError> {
        let s = &self.skips[i];
        let words = self
            .words
            .get(s.word_start as usize..(s.word_start + s.word_len) as usize)
            .ok_or(CodecError::Truncated)?;
        self.codec.decode_block(words, self.block_base(i), out)
    }

    /// Decompresses the entire list. Fails on the first corrupt block.
    pub fn decompress(&self) -> Result<Vec<u32>, CodecError> {
        let mut out = Vec::with_capacity(self.len);
        for i in 0..self.num_blocks() {
            self.decode_block_into(i, &mut out)?;
        }
        Ok(out)
    }

    /// Binary search over skip pointers: index of the first block whose
    /// `last_docid >= docid`, i.e. the only block that could contain
    /// `docid`. `None` if `docid` is beyond the list.
    pub fn find_block(&self, docid: u32) -> Option<usize> {
        let idx = self.skips.partition_point(|s| s.last_docid < docid);
        (idx < self.skips.len()).then_some(idx)
    }

    /// Streaming decoder: yields docIDs in order, decompressing one block
    /// at a time (O(block_len) memory regardless of list length). This is
    /// the access pattern a merge-based intersection over compressed
    /// inputs uses.
    ///
    /// Panics on corrupt blocks: streaming iteration is reserved for lists
    /// built in-memory by [`Self::compress`], which are valid by
    /// construction. Untrusted words should go through the fallible
    /// [`Self::decode_block_into`] / [`Self::decompress`] instead.
    pub fn iter(&self) -> BlockedListIter<'_> {
        BlockedListIter {
            list: self,
            block: 0,
            buf: Vec::new(),
            pos: 0,
        }
    }

    /// Compressed size in bits (words + skip entries, the format as
    /// shipped; matches what Table 1 measures).
    pub fn size_bits(&self) -> usize {
        // Each skip entry costs two words in a practical layout
        // (first_docid + packed offsets); count them honestly.
        (self.words.len() + 2 * self.skips.len()) * 32
    }

    /// Uncompressed size in bits (32-bit docIDs).
    pub fn raw_bits(&self) -> usize {
        self.len * 32
    }
}

/// Streaming iterator over a [`BlockedList`]'s docIDs.
pub struct BlockedListIter<'a> {
    list: &'a BlockedList,
    block: usize,
    buf: Vec<u32>,
    pos: usize,
}

impl Iterator for BlockedListIter<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        if self.pos >= self.buf.len() {
            if self.block >= self.list.num_blocks() {
                return None;
            }
            self.buf.clear();
            self.list
                .decode_block_into(self.block, &mut self.buf)
                .expect("compressed-in-memory list is valid by construction");
            self.block += 1;
            self.pos = 0;
        }
        let v = self.buf[self.pos];
        self.pos += 1;
        Some(v)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        // Remaining = undecoded blocks' elements + what's left in the buf.
        let remaining_in_buf = self.buf.len() - self.pos;
        let undecoded: usize = self.list.skips[self.block.min(self.list.num_blocks())..]
            .iter()
            .map(|s| s.count as usize)
            .sum();
        let n = remaining_in_buf + undecoded;
        (n, Some(n))
    }
}

impl ExactSizeIterator for BlockedListIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_docids(n: usize, stride: u32) -> Vec<u32> {
        (0..n as u32).map(|i| i * stride + (i % 3)).collect()
    }

    #[test]
    fn roundtrip_all_codecs() {
        let ids = sample_docids(1000, 7);
        for codec in [Codec::PforDelta, Codec::EliasFano, Codec::Varint] {
            let list = BlockedList::compress(&ids, codec, DEFAULT_BLOCK_LEN);
            assert_eq!(list.len(), 1000);
            assert_eq!(list.num_blocks(), 8); // ceil(1000/128)
            assert_eq!(list.decompress().unwrap(), ids, "{codec:?}");
        }
    }

    #[test]
    fn partial_last_block() {
        let ids = sample_docids(300, 5);
        let list = BlockedList::compress(&ids, Codec::EliasFano, 128);
        assert_eq!(list.skips[2].count, 44);
        assert_eq!(list.decompress().unwrap(), ids);
    }

    #[test]
    fn single_block_decoding() {
        let ids = sample_docids(256, 11);
        let list = BlockedList::compress(&ids, Codec::PforDelta, 128);
        let mut blk1 = Vec::new();
        list.decode_block_into(1, &mut blk1).unwrap();
        assert_eq!(blk1, &ids[128..256]);
    }

    #[test]
    fn find_block_semantics() {
        let ids: Vec<u32> = (0..512).map(|i| i * 10).collect(); // 4 blocks
        let list = BlockedList::compress(&ids, Codec::EliasFano, 128);
        // docid 0 is in block 0.
        assert_eq!(list.find_block(0), Some(0));
        // Last docid of block 0 is 1270.
        assert_eq!(list.find_block(1270), Some(0));
        assert_eq!(list.find_block(1271), Some(1));
        // Beyond the list.
        assert_eq!(list.find_block(ids.last().unwrap() + 1), None);
        // A docid that falls in a gap still maps to its covering block.
        assert_eq!(list.find_block(1275), Some(1));
    }

    #[test]
    fn skip_entries_are_consistent() {
        let ids = sample_docids(1000, 13);
        let list = BlockedList::compress(&ids, Codec::Varint, 128);
        let mut elem = 0u32;
        for (i, s) in list.skips.iter().enumerate() {
            assert_eq!(s.elem_start, elem);
            elem += s.count;
            let mut blk = Vec::new();
            list.decode_block_into(i, &mut blk).unwrap();
            assert_eq!(blk[0], s.first_docid);
            assert_eq!(*blk.last().unwrap(), s.last_docid);
        }
        assert_eq!(elem as usize, list.len());
    }

    #[test]
    fn block_len_is_configurable() {
        let ids = sample_docids(1000, 3);
        for bl in [64, 128, 256] {
            let list = BlockedList::compress(&ids, Codec::EliasFano, bl);
            assert_eq!(list.num_blocks(), 1000usize.div_ceil(bl));
            assert_eq!(list.decompress().unwrap(), ids);
        }
    }

    #[test]
    fn compression_beats_raw_on_dense_lists() {
        let ids: Vec<u32> = (0..10_000).map(|i| i * 3).collect();
        for codec in [Codec::PforDelta, Codec::EliasFano, Codec::Varint] {
            let list = BlockedList::compress(&ids, codec, 128);
            assert!(
                list.size_bits() < list.raw_bits() / 2,
                "{codec:?}: {} vs {}",
                list.size_bits(),
                list.raw_bits()
            );
        }
    }

    #[test]
    fn streaming_iterator_matches_bulk_decode() {
        let ids = sample_docids(1000, 9);
        for codec in [Codec::PforDelta, Codec::EliasFano, Codec::Varint] {
            let list = BlockedList::compress(&ids, codec, 128);
            let streamed: Vec<u32> = list.iter().collect();
            assert_eq!(streamed, ids, "{codec:?}");
            // size_hint is exact at every step.
            let mut it = list.iter();
            assert_eq!(it.len(), 1000);
            it.next();
            assert_eq!(it.len(), 999);
            for _ in 0..500 {
                it.next();
            }
            assert_eq!(it.len(), 499);
        }
    }

    #[test]
    fn empty_list_iterator() {
        let list = BlockedList::compress(&[], Codec::EliasFano, 128);
        assert_eq!(list.iter().count(), 0);
    }

    #[test]
    fn corrupt_lists_error_instead_of_panicking() {
        let ids = sample_docids(512, 13);
        for codec in [Codec::PforDelta, Codec::EliasFano, Codec::Varint] {
            let list = BlockedList::compress(&ids, codec, 128);
            // Truncating the word stream must never panic.
            for cut in [0, 1, list.words.len() / 2, list.words.len() - 1] {
                let mut short = list.clone();
                short.words.truncate(cut);
                assert!(short.decompress().is_err(), "{codec:?} cut={cut}");
            }
            // Single-bit flips either still decode or report an error.
            for bit in 0..64u32 {
                let mut flipped = list.clone();
                let w = (bit as usize * 37) % flipped.words.len();
                flipped.words[w] ^= 1 << (bit % 32);
                let _ = flipped.decompress();
            }
        }
    }

    #[test]
    fn docids_starting_at_zero() {
        let ids: Vec<u32> = (0..200).collect();
        for codec in [Codec::PforDelta, Codec::EliasFano, Codec::Varint] {
            let list = BlockedList::compress(&ids, codec, 128);
            assert_eq!(list.decompress().unwrap(), ids, "{codec:?}");
        }
    }
}
