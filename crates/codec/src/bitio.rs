//! Bit-granular writer/reader over 32-bit words, LSB-first.
//!
//! 32-bit words (rather than bytes) because the GPU kernels consume the
//! compressed streams word-wise — `__popc` over the Elias–Fano high-bits
//! array operates on exactly these words.

use crate::error::CodecError;

/// Appends bit fields into a growing `Vec<u32>`, least-significant bit of
/// word 0 first.
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    words: Vec<u32>,
    /// Bits used in the last word (0..=31; 0 also means "no partial word").
    used: u32,
}

impl BitWriter {
    pub fn new() -> Self {
        Self::default()
    }

    /// Total bits written so far.
    pub fn len_bits(&self) -> usize {
        if self.used == 0 {
            self.words.len() * 32
        } else {
            (self.words.len() - 1) * 32 + self.used as usize
        }
    }

    /// Writes the low `n` bits of `v` (`n <= 32`).
    pub fn write_bits(&mut self, v: u32, n: u32) {
        assert!(n <= 32, "write_bits supports at most 32 bits, got {n}");
        if n == 0 {
            return;
        }
        let v = if n == 32 { v } else { v & ((1u32 << n) - 1) };
        if self.used == 0 {
            self.words.push(v);
            self.used = n % 32;
            return;
        }
        let last = self.words.last_mut().expect("used != 0 implies a word");
        *last |= v << self.used;
        let fit = 32 - self.used;
        if n < fit {
            self.used += n;
        } else if n == fit {
            self.used = 0;
        } else {
            let spill = v >> fit;
            self.words.push(spill);
            self.used = n - fit;
        }
    }

    /// Writes `gap` zeros followed by a terminating one — the unary code
    /// used by the Elias–Fano high-bits array (paper Fig. 4).
    pub fn write_unary(&mut self, gap: u32) {
        let mut remaining = gap;
        while remaining >= 32 {
            self.write_bits(0, 32);
            remaining -= 32;
        }
        // `remaining` zeros then a one: the value 1 << remaining in
        // remaining+1 bits.
        self.write_bits(1u32 << remaining, remaining + 1);
    }

    /// Pads to a word boundary and returns the words.
    pub fn finish(self) -> Vec<u32> {
        self.words
    }

    /// Current number of complete+partial words.
    pub fn len_words(&self) -> usize {
        self.words.len()
    }
}

/// Reads bit fields from a `&[u32]`, LSB-first, mirroring [`BitWriter`].
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    words: &'a [u32],
    /// Absolute bit cursor.
    pos: usize,
}

impl<'a> BitReader<'a> {
    pub fn new(words: &'a [u32]) -> Self {
        BitReader { words, pos: 0 }
    }

    /// Starts reading at an absolute bit offset.
    pub fn at(words: &'a [u32], bit_pos: usize) -> Self {
        BitReader {
            words,
            pos: bit_pos,
        }
    }

    pub fn bit_pos(&self) -> usize {
        self.pos
    }

    /// Reads `n <= 32` bits. Fails with [`CodecError::Truncated`] when the
    /// read would run past the end of the word stream (the cursor is not
    /// advanced in that case).
    pub fn read_bits(&mut self, n: u32) -> Result<u32, CodecError> {
        assert!(n <= 32);
        if n == 0 {
            return Ok(0);
        }
        let word = self.pos / 32;
        let off = (self.pos % 32) as u32;
        let end_word = (self.pos + n as usize - 1) / 32;
        if end_word >= self.words.len() {
            return Err(CodecError::Truncated);
        }
        self.pos += n as usize;
        let lo = self.words[word] >> off;
        let have = 32 - off;
        let v = if n <= have {
            lo
        } else {
            lo | (self.words[word + 1] << have)
        };
        if n == 32 {
            Ok(v)
        } else {
            Ok(v & ((1u32 << n) - 1))
        }
    }

    /// Reads a unary code: returns the number of zeros before the next one
    /// bit, consuming the terminator. Fails with [`CodecError::UnaryOverrun`]
    /// when the stream ends before a terminating one bit.
    pub fn read_unary(&mut self) -> Result<u32, CodecError> {
        let mut zeros = 0u32;
        loop {
            let word = self.pos / 32;
            let off = (self.pos % 32) as u32;
            if word >= self.words.len() {
                return Err(CodecError::UnaryOverrun);
            }
            let chunk = self.words[word] >> off;
            if chunk == 0 {
                zeros += 32 - off;
                self.pos += (32 - off) as usize;
            } else {
                let tz = chunk.trailing_zeros();
                zeros += tz;
                self.pos += tz as usize + 1;
                return Ok(zeros);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_simple_fields() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.write_bits(0xFFFF, 16);
        w.write_bits(0, 5);
        w.write_bits(42, 32);
        let words = w.finish();
        let mut r = BitReader::new(&words);
        assert_eq!(r.read_bits(3).unwrap(), 0b101);
        assert_eq!(r.read_bits(16).unwrap(), 0xFFFF);
        assert_eq!(r.read_bits(5).unwrap(), 0);
        assert_eq!(r.read_bits(32).unwrap(), 42);
    }

    #[test]
    fn write_bits_masks_excess() {
        let mut w = BitWriter::new();
        w.write_bits(0xFF, 4); // only low 4 bits should land
        w.write_bits(0, 4);
        let words = w.finish();
        assert_eq!(words[0], 0x0F);
    }

    #[test]
    fn cross_word_boundary() {
        let mut w = BitWriter::new();
        w.write_bits(0x3FFFFFFF, 30);
        w.write_bits(0b1011, 4); // straddles word 0/1
        let words = w.finish();
        let mut r = BitReader::new(&words);
        assert_eq!(r.read_bits(30).unwrap(), 0x3FFFFFFF);
        assert_eq!(r.read_bits(4).unwrap(), 0b1011);
    }

    #[test]
    fn unary_roundtrip() {
        let gaps = [0u32, 1, 5, 31, 32, 33, 100, 0, 0, 64];
        let mut w = BitWriter::new();
        for &g in &gaps {
            w.write_unary(g);
        }
        let words = w.finish();
        let mut r = BitReader::new(&words);
        for &g in &gaps {
            assert_eq!(r.read_unary().unwrap(), g);
        }
    }

    #[test]
    fn len_bits_tracks_position() {
        let mut w = BitWriter::new();
        assert_eq!(w.len_bits(), 0);
        w.write_bits(1, 1);
        assert_eq!(w.len_bits(), 1);
        w.write_bits(0, 31);
        assert_eq!(w.len_bits(), 32);
        w.write_bits(0, 32);
        assert_eq!(w.len_bits(), 64);
        w.write_bits(3, 2);
        assert_eq!(w.len_bits(), 66);
    }

    #[test]
    fn reader_at_offset() {
        let mut w = BitWriter::new();
        w.write_bits(0b111, 3);
        w.write_bits(0b1010, 4);
        let words = w.finish();
        let mut r = BitReader::at(&words, 3);
        assert_eq!(r.read_bits(4).unwrap(), 0b1010);
    }

    #[test]
    fn truncated_reads_are_reported() {
        let words = [0xFFFF_FFFFu32];
        let mut r = BitReader::new(&words);
        assert_eq!(r.read_bits(32).unwrap(), u32::MAX);
        assert_eq!(r.read_bits(1), Err(CodecError::Truncated));
        // A failed read leaves the cursor in place.
        assert_eq!(r.bit_pos(), 32);
        // Straddling reads past the end fail too.
        let mut r = BitReader::at(&words, 30);
        assert_eq!(r.read_bits(4), Err(CodecError::Truncated));
        // Unary over all-zero words never finds a terminator.
        let zeros = [0u32, 0];
        let mut r = BitReader::new(&zeros);
        assert_eq!(r.read_unary(), Err(CodecError::UnaryOverrun));
    }

    #[test]
    fn zero_width_reads_and_writes() {
        let mut w = BitWriter::new();
        w.write_bits(123, 0);
        w.write_bits(7, 3);
        let words = w.finish();
        let mut r = BitReader::new(&words);
        assert_eq!(r.read_bits(0).unwrap(), 0);
        assert_eq!(r.read_bits(3).unwrap(), 7);
    }
}
